//! Build a custom feedforward topology (beyond the paper's tandem),
//! inspect its structure, and analyze it — including a static-priority
//! server, the paper's announced extension.
//!
//! Topology (an aggregation "parking-lot" with a priority core):
//!
//! ```text
//!   edge0 ─┐
//!   edge1 ─┼─> agg ──> core(SP) ──> egress
//!   edge2 ─┘            ^
//!              transit ─┘
//! ```
//!
//! ```sh
//! cargo run -p dnc-examples --example custom_topology
//! ```

use dnc_core::{decomposed::Decomposed, integrated::Integrated, DelayAnalysis};
use dnc_net::pairing::{partition, PairingStrategy};
use dnc_net::{Discipline, Flow, Network, Server};
use dnc_num::{int, rat, Rat};
use dnc_traffic::TrafficSpec;

fn main() {
    let mut net = Network::new();
    let edges: Vec<_> = (0..3)
        .map(|i| net.add_server(Server::unit_fifo(format!("edge{i}"))))
        .collect();
    let agg = net.add_server(Server {
        name: "agg".into(),
        rate: Rat::from(2),
        discipline: Discipline::Fifo,
    });
    let core = net.add_server(Server {
        name: "core".into(),
        rate: Rat::from(2),
        discipline: Discipline::StaticPriority,
    });
    let egress = net.add_server(Server::unit_fifo("egress"));

    // One premium (priority 0) and one standard (priority 2) connection
    // per edge switch, plus transit traffic entering at the core.
    let mut premium = Vec::new();
    for (i, &e) in edges.iter().enumerate() {
        premium.push(
            net.add_flow(Flow {
                name: format!("premium{i}"),
                spec: TrafficSpec::paper_source(int(1), rat(1, 16)),
                route: vec![e, agg, core, egress],
                priority: 0,
            })
            .unwrap(),
        );
        net.add_flow(Flow {
            name: format!("standard{i}"),
            spec: TrafficSpec::paper_source(int(4), rat(1, 8)),
            route: vec![e, agg, core],
            priority: 2,
        })
        .unwrap();
    }
    net.add_flow(Flow {
        name: "transit".into(),
        spec: TrafficSpec::paper_source(int(2), rat(1, 4)),
        route: vec![core, egress],
        priority: 1,
    })
    .unwrap();

    // Structure.
    net.validate().expect("feedforward and stable");
    println!("servers:");
    for (i, s) in net.servers().iter().enumerate() {
        println!(
            "  [{i}] {:<8} rate {:<4} {:?}  load {:.3}",
            s.name,
            s.rate.to_string(),
            s.discipline,
            net.utilization(dnc_net::ServerId(i)).to_f64()
        );
    }
    let order = net.topological_order().unwrap();
    println!(
        "topological order: {}",
        order
            .iter()
            .map(|&s| net.server(s).name.clone())
            .collect::<Vec<_>>()
            .join(" -> ")
    );
    let part = partition(&net, PairingStrategy::GreedyChain).unwrap();
    println!("integrated pairing ({} pairs):", part.pair_count());
    for g in &part.groups {
        let names: Vec<String> = g
            .servers()
            .iter()
            .map(|&s| net.server(s).name.clone())
            .collect();
        println!("  {}", names.join(" + "));
    }

    // Analysis.
    println!();
    for alg in [
        &Decomposed::paper() as &dyn DelayAnalysis,
        &Integrated::paper(),
    ] {
        let r = alg.analyze(&net).unwrap();
        println!("[{}]", alg.name());
        for f in &r.flows {
            println!("  {:<10} {:>9.4} ticks", f.name, f.e2e.to_f64());
        }
        // Premium traffic must beat standard traffic through the SP core.
        for &p in &premium {
            assert!(r.bound(p) < int(20));
        }
        println!();
    }
}
