//! Cyclic networks — the paper's announced future work, handled with
//! Cruz's time-stopping fixed point.
//!
//! The feedforward algorithms reject rings outright (a connection's local
//! delay feeds back into itself through the other connections). The
//! time-stopping iteration instead grows per-hop delay estimates
//! monotonically until they fix-point (a valid bound) or run away (the
//! method's stability region is exceeded — reported honestly, not as a
//! bound).
//!
//! ```sh
//! cargo run -p dnc-examples --example cyclic_ring
//! ```

use dnc_core::cyclic::TimeStopping;
use dnc_core::{decomposed::Decomposed, DelayAnalysis};
use dnc_net::builders::ring;
use dnc_num::{int, rat, Rat};
use dnc_sim::{all_greedy, simulate, SimConfig};
use dnc_traffic::TrafficSpec;

fn main() {
    let spec = TrafficSpec::paper_source(int(2), rat(1, 8));
    let (net, flows, _) = ring(4, 2, &spec);

    println!("4-server ring, four 2-hop connections wrapping around:");
    match Decomposed::paper().analyze(&net) {
        Err(e) => println!("  decomposed rejects it: {e}"),
        Ok(_) => unreachable!("rings are cyclic"),
    }

    let r = TimeStopping::default().analyze(&net).expect("stable ring");
    println!(
        "  time-stopping converged after {} iterations:",
        r.iterations
    );
    let bounds = r.bounds().expect("converged ring has bounds");
    for f in &bounds.flows {
        println!(
            "    {:<4} {:>10} = {:.4} ticks",
            f.name,
            f.e2e.to_string(),
            f.e2e.to_f64()
        );
    }

    // Feedback strength experiment: the fixed point exists only while the
    // burst amplification around the cycle stays below one. Full-circle
    // flows on a 5-ring amplify by ρ·n(n−1)/2.
    println!("\nfeedback-strength sweep (5-ring, full-circumference flows):");
    for rho_num in [1i128, 2, 3, 4] {
        let rho = Rat::new(rho_num, 20);
        let spec = TrafficSpec::token_bucket(int(2), rho);
        let (net5, _, _) = ring(5, 5, &spec);
        let label = format!("ρ = {rho} (amplification {})", rho * int(10));
        let ts = TimeStopping {
            max_iters: 48,
            ..TimeStopping::default()
        };
        match ts.analyze(&net5) {
            Ok(rep) if rep.converged => println!(
                "  {label:<32} converged in {:>2} iterations, bound {:.2}",
                rep.iterations,
                rep.bounds().expect("converged").flows[0].e2e.to_f64()
            ),
            Ok(rep) => println!(
                "  {label:<32} DID NOT converge ({} iterations)",
                rep.iterations
            ),
            Err(e) => println!("  {label:<32} diverged: {e}"),
        }
    }

    // Empirical check on the converged ring.
    let sim = simulate(
        &net,
        &all_greedy(&net),
        &SimConfig {
            ticks: 8192,
            ..SimConfig::default()
        },
    );
    println!("\ngreedy simulation of the 4-ring (8192 ticks):");
    for &f in &flows {
        println!(
            "  {:<4} observed max {:>3} ticks (bound {:.3})",
            bounds.flows[f.0].name,
            sim.flows[f.0].max_delay,
            bounds.bound(f).to_f64()
        );
        assert!(sim.max_delay(f.0) <= bounds.bound(f) + Rat::TWO);
    }
}
