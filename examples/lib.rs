//! Placeholder library target; the content of this package is its
//! examples (`cargo run -p dnc-examples --example quickstart`).
