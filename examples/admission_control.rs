//! Online admission control — the paper's motivating application.
//!
//! A bounded-delay service receives connection requests one at a time and
//! admits a request only if the delay analysis certifies every deadline
//! (the new connection's and all previously admitted ones). A tighter
//! analysis admits more connections; this example counts how many
//! identical requests each algorithm accepts on the same network.
//!
//! ```sh
//! cargo run -p dnc-examples --example admission_control
//! ```

use dnc_core::admission::{try_admit, Deadline};
use dnc_core::{decomposed::Decomposed, integrated::Integrated, DelayAnalysis};
use dnc_net::{Flow, Network, Server};
use dnc_num::{int, rat, Rat};
use dnc_traffic::TrafficSpec;

/// Empty 4-hop backbone.
fn backbone() -> (Network, Vec<dnc_net::ServerId>) {
    let mut net = Network::new();
    let servers = (0..4)
        .map(|i| net.add_server(Server::unit_fifo(format!("hop{i}"))))
        .collect();
    (net, servers)
}

fn admitted_connections(analysis: &dyn DelayAnalysis, deadline: Rat) -> usize {
    let (mut net, servers) = backbone();
    let mut deadlines: Vec<Deadline> = Vec::new();
    let mut count = 0usize;
    loop {
        let candidate = Flow {
            name: format!("conn{count}"),
            spec: TrafficSpec::paper_source(int(1), rat(1, 32)),
            route: servers.clone(),
            priority: 0,
        };
        match try_admit(&net, candidate, deadline, &deadlines, analysis).expect("analysis failure")
        {
            Some(admission) => {
                net = admission.net;
                deadlines.push(Deadline {
                    flow: admission.flow,
                    deadline,
                });
                count += 1;
                if count > 64 {
                    break; // safety stop
                }
            }
            None => break,
        }
    }
    count
}

fn main() {
    println!("identical requests: σ=1, ρ=1/32 across a 4-hop unit-rate backbone");
    println!(
        "{:>10} {:>12} {:>12}",
        "deadline", "decomposed", "integrated"
    );
    for dl in [6i64, 10, 16, 24] {
        let d = admitted_connections(&Decomposed::paper(), int(dl));
        let i = admitted_connections(&Integrated::paper(), int(dl));
        println!("{:>10} {:>12} {:>12}", dl, d, i);
        assert!(i >= d, "a tighter analysis can never admit fewer");
    }
    println!("\nintegrated admits the same or more connections at every deadline —");
    println!("the paper's effectiveness claim, measured as carried load.");
}
