//! The paper's opening contrast, made concrete: "for guaranteed-rate
//! scheduling algorithms, such as fair queueing, delay computation based
//! on Cruz' service curve model performs very well" — while for FIFO it
//! performs terribly (Figure 4) and Algorithm Integrated is needed.
//!
//! Same traffic, same chain, two builds: FIFO links vs GPS links with
//! per-connection reservations. For each, all applicable analyses plus an
//! adversarial simulation.
//!
//! ```sh
//! cargo run -p dnc-examples --example fair_queueing
//! ```

use dnc_core::{
    decomposed::Decomposed, integrated::Integrated, service_curve::ServiceCurve, DelayAnalysis,
};
use dnc_net::{Discipline, Flow, FlowId, Network, Server, ServerId};
use dnc_num::{int, rat, Rat};
use dnc_sim::{all_greedy, simulate, SimConfig};
use dnc_traffic::TrafficSpec;

fn build(discipline: Discipline) -> (Network, Vec<FlowId>, Vec<ServerId>) {
    let mut net = Network::new();
    let servers: Vec<ServerId> = (0..4)
        .map(|i| {
            net.add_server(Server {
                name: format!("hop{i}"),
                rate: Rat::ONE,
                discipline,
            })
        })
        .collect();
    // Two bursty connections sharing the whole chain.
    let specs = [
        TrafficSpec::paper_source(int(6), rat(1, 4)),
        TrafficSpec::paper_source(int(3), rat(1, 4)),
    ];
    let flows: Vec<FlowId> = specs
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            net.add_flow(Flow {
                name: format!("conn{i}"),
                spec: spec.clone(),
                route: servers.clone(),
                priority: 0,
            })
            .unwrap()
        })
        .collect();
    if discipline == Discipline::Gps {
        for &f in &flows {
            for &s in &servers {
                net.reserve(f, s, rat(1, 2)); // split the link evenly
            }
        }
    }
    (net, flows, servers)
}

fn main() {
    for (label, discipline) in [("FIFO", Discipline::Fifo), ("GPS", Discipline::Gps)] {
        let (net, flows, _) = build(discipline);
        println!("== 4-hop chain, {label} links ==");
        let sc = ServiceCurve::paper();
        let dec = Decomposed::paper();
        let int_ = Integrated::paper();
        let algs: Vec<&dyn DelayAnalysis> = vec![&sc, &dec, &int_];
        for alg in algs {
            match alg.analyze(&net) {
                Ok(r) => println!(
                    "  {:<14} conn0 {:>9.4}   conn1 {:>9.4}",
                    alg.name(),
                    r.bound(flows[0]).to_f64(),
                    r.bound(flows[1]).to_f64()
                ),
                Err(e) => println!("  {:<14} {e}", alg.name()),
            }
        }
        let sim = simulate(
            &net,
            &all_greedy(&net),
            &SimConfig {
                ticks: 8192,
                ..SimConfig::default()
            },
        );
        println!(
            "  {:<14} conn0 {:>9}   conn1 {:>9}",
            "simulated max", sim.flows[flows[0].0].max_delay, sim.flows[flows[1].0].max_delay
        );
        println!();
    }

    // The takeaway the paper builds on:
    let (fifo_net, fifo_flows, _) = build(Discipline::Fifo);
    let (gps_net, gps_flows, _) = build(Discipline::Gps);
    let sc_fifo = ServiceCurve::paper().analyze(&fifo_net).unwrap();
    let dec_fifo = Decomposed::paper().analyze(&fifo_net).unwrap();
    let sc_gps = ServiceCurve::paper().analyze(&gps_net).unwrap();
    let dec_gps = Decomposed::paper().analyze(&gps_net).unwrap();
    assert!(sc_gps.bound(gps_flows[0]) < dec_gps.bound(gps_flows[0]));
    println!("on GPS the service-curve method pays the burst once (beats decomposition);");
    if sc_fifo.bound(fifo_flows[0]) >= dec_fifo.bound(fifo_flows[0]) {
        println!(
            "on FIFO it does not — which is exactly why the paper builds Algorithm Integrated."
        );
    } else {
        println!("on FIFO its advantage collapses as load grows (see fig4) — hence Algorithm Integrated.");
    }
}
