//! Quickstart: build the paper's tandem network, run all three delay
//! analyses, and compare the bounds for Connection 0.
//!
//! ```sh
//! cargo run -p dnc-examples --example quickstart
//! ```

use dnc_core::{
    decomposed::Decomposed, integrated::Integrated, service_curve::ServiceCurve, DelayAnalysis,
};
use dnc_net::builders::{tandem, TandemOptions};
use dnc_num::{int, rat, Rat};

fn main() {
    // Four 3x3 switches in a chain; every source is a token bucket with
    // σ = 1 cell behind a unit-rate link, ρ = U/4 with work load U = 60%.
    let u = rat(3, 5);
    let rho = u / int(4);
    let t = tandem(4, Rat::ONE, rho, TandemOptions::default());

    println!(
        "tandem: {} switches, {} connections, interior utilization {}",
        t.middle.len(),
        t.net.flows().len(),
        t.net.max_utilization()
    );

    for alg in [
        &ServiceCurve::paper() as &dyn DelayAnalysis,
        &Decomposed::paper(),
        &Integrated::paper(),
    ] {
        let report = alg.analyze(&t.net).expect("analysis succeeds");
        let b = report.bound(t.conn0);
        println!(
            "{:<14} Connection 0 end-to-end bound: {:>10} = {:.4} ticks",
            alg.name(),
            b.to_string(),
            b.to_f64()
        );
    }

    // Full per-stage breakdown for the winning analysis.
    let report = Integrated::paper().analyze(&t.net).unwrap();
    let conn0 = &report.flows[t.conn0.0];
    println!("\nintegrated per-subnetwork breakdown for {}:", conn0.name);
    for (stage, d) in &conn0.stages {
        println!("  {:<10} {:>10} = {:.4}", stage, d.to_string(), d.to_f64());
    }
}
