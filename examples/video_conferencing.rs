//! A realistic bounded-delay workload: interactive video conferencing
//! over a metro aggregation network — the class of applications the
//! paper's introduction motivates ("a communication service with
//! deterministically bounded delays for all packets in a connection").
//!
//! Three site-to-site video connections (bursty, multi-bucket constrained)
//! share an aggregation tree with best-effort-style bulk transfers. The
//! example computes deterministic delay bounds per connection, checks the
//! 150-tick interactivity budget, and cross-checks with a randomized
//! simulation.
//!
//! ```sh
//! cargo run -p dnc-examples --example video_conferencing
//! ```

use dnc_core::{decomposed::Decomposed, integrated::Integrated, DelayAnalysis};
use dnc_net::{Discipline, Flow, Network, Server};
use dnc_num::{int, rat, Rat};
use dnc_sim::{simulate, SimConfig};
use dnc_traffic::{SourceModel, TokenBucket, TrafficSpec};

fn main() {
    // Topology: two access switches feed a metro core link, which feeds a
    // head-end distribution link. Unit = one ATM-style cell time.
    let mut net = Network::new();
    let access_a = net.add_server(Server::unit_fifo("access-A"));
    let access_b = net.add_server(Server::unit_fifo("access-B"));
    let core = net.add_server(Server {
        name: "metro-core".into(),
        rate: Rat::from(2), // 2 cells/tick trunk
        discipline: Discipline::Fifo,
    });
    let headend = net.add_server(Server::unit_fifo("head-end"));

    // Video: I-frame bursts constrained by a dual token bucket
    // (short-term burst 12 cells @ rate 1/3, long-term rate 1/8), peak 1.
    let video_spec = TrafficSpec::new(
        vec![
            TokenBucket::new(int(12), rat(1, 8)),
            TokenBucket::new(int(4), rat(1, 3)),
        ],
        Some(Rat::ONE),
    );
    // Bulk transfers: deep buckets, low urgency.
    let bulk_spec = TrafficSpec::paper_source(int(20), rat(1, 4));

    let mut add = |name: &str, spec: &TrafficSpec, route: Vec<dnc_net::ServerId>| {
        net.add_flow(Flow {
            name: name.into(),
            spec: spec.clone(),
            route,
            priority: 0,
        })
        .expect("valid route")
    };

    let video1 = add("video-A1", &video_spec, vec![access_a, core, headend]);
    let video2 = add("video-A2", &video_spec, vec![access_a, core, headend]);
    let video3 = add("video-B1", &video_spec, vec![access_b, core, headend]);
    let _bulk1 = add("bulk-A", &bulk_spec, vec![access_a, core]);
    let _bulk2 = add("bulk-B", &bulk_spec, vec![access_b, core, headend]);

    let budget = int(150);
    println!("interactivity budget: {budget} ticks\n");
    for alg in [
        &Decomposed::paper() as &dyn DelayAnalysis,
        &Integrated::paper(),
    ] {
        let report = alg.analyze(&net).expect("analysis succeeds");
        println!("[{}]", alg.name());
        for id in [video1, video2, video3] {
            let b = report.bound(id);
            println!(
                "  {:<10} bound {:>10.4} ticks  {}",
                report.flows[id.0].name,
                b.to_f64(),
                if b <= budget {
                    "MEETS budget"
                } else {
                    "MISSES budget"
                }
            );
        }
        println!();
    }

    // Empirical sanity check under randomized (conforming) traffic.
    let models: Vec<SourceModel> = net
        .flows()
        .iter()
        .map(|f| {
            if f.name.starts_with("video") {
                SourceModel::OnOff {
                    on: 12,
                    off: 36,
                    phase: 0,
                }
            } else {
                SourceModel::Greedy
            }
        })
        .collect();
    let sim = simulate(
        &net,
        &models,
        &SimConfig {
            ticks: 20_000,
            seed: 11,
            histogram_buckets: 512,
            ..SimConfig::default()
        },
    );
    let integrated = Integrated::paper().analyze(&net).unwrap();
    println!("simulated (on-off video, greedy bulk), 20k ticks:");
    for id in [video1, video2, video3] {
        let s = &sim.flows[id.0];
        println!(
            "  {:<10} delivered {:>6}  max {:>4}  mean {:>7.3}  p99 {:>4}  (bound {:.3})",
            integrated.flows[id.0].name,
            s.delivered,
            s.max_delay,
            s.mean_delay().to_f64(),
            s.quantile(rat(99, 100)),
            integrated.flows[id.0].e2e.to_f64(),
        );
        assert!(Rat::from(s.max_delay as i64) <= integrated.flows[id.0].e2e);
    }
}
