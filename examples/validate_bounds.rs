//! Validate the analytic bounds against adversarial simulation and the
//! exact fluid lemmas, on the paper's two-server subsystem (Figure 1).
//!
//! Three independent evaluations of the same system:
//! 1. the analytic bounds (Decomposed / Integrated / pair theorem),
//! 2. the exact fluid delay of the greedy sample path (Lemmas 1–4),
//! 3. the cell-level simulator driven by greedy sources.
//!
//! Ordering that must (and does) hold:
//! `simulated ≤ exact fluid ≤ integrated ≤ decomposed`.
//!
//! ```sh
//! cargo run -p dnc-examples --example validate_bounds
//! ```

use dnc_core::exact::TwoServerScenario;
use dnc_core::integrated::pair_delay_bound;
use dnc_core::OutputCap;
use dnc_curves::Curve;
use dnc_net::builders::two_server;
use dnc_num::{int, rat, Rat};
use dnc_sim::{all_greedy, simulate, SimConfig};
use dnc_traffic::TrafficSpec;

fn main() {
    // S12: two connections through both servers; S1 leaves after server 1;
    // S2 joins at server 2. Paper-style peak-capped sources.
    let s12_specs = [
        TrafficSpec::paper_source(int(4), rat(1, 8)),
        TrafficSpec::paper_source(int(2), rat(1, 8)),
    ];
    let s1_specs = [TrafficSpec::paper_source(int(3), rat(1, 8))];
    let s2_specs = [TrafficSpec::paper_source(int(5), rat(1, 8))];

    let agg = |specs: &[TrafficSpec]| -> Curve {
        specs
            .iter()
            .map(|s| s.arrival_curve())
            .reduce(|a, b| a.add(&b))
            .unwrap_or_else(Curve::zero)
    };
    let (f12, f1, f2) = (agg(&s12_specs), agg(&s1_specs), agg(&s2_specs));

    // 1. Analytic bounds.
    let pb = pair_delay_bound(&f12, &f1, &f2, Rat::ONE, Rat::ONE, OutputCap::Shift)
        .expect("stable system");
    let decomposed_sum = pb.d1 + pb.d2;
    println!("analytic bounds for the S12 aggregate:");
    println!("  decomposed (d1 + d2): {:>9.4}", decomposed_sum.to_f64());
    println!("  integrated (theorem): {:>9.4}", pb.through.to_f64());

    // 2. Exact fluid delay of the greedy sample path (arrivals equal to
    //    the constraint curves).
    let scenario = TwoServerScenario {
        a12: f12.clone(),
        a1: f1.clone(),
        a2: f2.clone(),
        c1: Rat::ONE,
        c2: Rat::ONE,
    };
    let exact = scenario.max_s12_delay(256);
    println!("  exact fluid (greedy): {:>9.4}", exact.to_f64());

    // 3. Cell-level simulation with greedy sources.
    let (net, _, _, f12_ids, _, _) =
        two_server(Rat::ONE, Rat::ONE, &s12_specs, &s1_specs, &s2_specs);
    let sim = simulate(
        &net,
        &all_greedy(&net),
        &SimConfig {
            ticks: 8192,
            ..SimConfig::default()
        },
    );
    let sim_max = f12_ids
        .iter()
        .map(|id| sim.flows[id.0].max_delay)
        .max()
        .unwrap();
    println!("  simulated  (greedy): {:>9}", sim_max);

    // The ordering that certifies everything.
    assert!(
        Rat::from(sim_max as i64) <= exact + Rat::ONE,
        "cell quantization only"
    );
    assert!(exact <= pb.through, "exact fluid must respect the theorem");
    assert!(pb.through <= decomposed_sum, "integrated never loses");
    println!("\nordering holds: simulated <= exact fluid <= integrated <= decomposed");
    println!(
        "integration gain on this subsystem: {:.1}%",
        (Rat::ONE - pb.through / decomposed_sum).to_f64() * 100.0
    );
}
