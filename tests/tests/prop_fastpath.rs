//! Property tests for the fast-path engine: worker-count invariance of
//! the parallel fan-out and Rat-exactness of incremental
//! re-certification against the from-scratch analysis.

use dnc_core::cache::AnalysisCache;
use dnc_core::integrated::Integrated;
use dnc_core::DelayAnalysis;
use dnc_net::builders::{random_feedforward, tandem, TandemOptions};
use dnc_net::Flow;
use dnc_num::{int, rat};
use dnc_traffic::TrafficSpec;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fanning pairing groups over worker threads must not change a
    /// single byte of the report: the wave schedule fixes both what each
    /// worker sees and the merge order.
    #[test]
    fn worker_count_never_changes_the_report(seed in 0u64..1 << 32) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = random_feedforward(&mut rng, 5, 7, 4, rat(3, 4), true);
        let sequential = Integrated::paper().analyze(&net);
        for workers in [2usize, 8] {
            let parallel = Integrated::paper().with_workers(workers).analyze(&net);
            match (&sequential, &parallel) {
                (Ok(a), Ok(b)) => {
                    prop_assert_eq!(
                        a.to_csv(), b.to_csv(),
                        "workers={} diverged from sequential", workers
                    );
                    for (fa, fb) in a.flows.iter().zip(b.flows.iter()) {
                        prop_assert_eq!(fa.e2e, fb.e2e);
                    }
                }
                (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string()),
                _ => prop_assert!(
                    false,
                    "sequential and workers={} disagree on success", workers
                ),
            }
        }
    }

    /// Randomized admit + release against the incremental splice: every
    /// answer it gives is Rat-exact equal to a from-scratch analysis,
    /// and an empty mutation (no dirty servers) replays the previous
    /// certification identically with zero recomputed units.
    #[test]
    fn incremental_recertification_is_exact(
        n in 3usize..6,
        start in 0usize..8,
        len in 1usize..4,
        sigma_halves in 1i128..4,
        rho_64ths in 1i128..5,
    ) {
        let t = tandem(n, int(1), rat(1, 16), TandemOptions::default());
        let alg = Integrated::paper();
        let cache = AnalysisCache::new();
        let (base_report, base_trace) = alg
            .analyze_traced(&t.net, Some(&cache))
            .expect("tandem analyzes");

        // No mutation: the splice must apply, recompute nothing, and
        // reproduce the certification bit-for-bit.
        let idle = alg
            .analyze_incremental(&t.net, &base_trace, &[], Some(&cache))
            .expect("tandem analyzes")
            .expect("unchanged partition always splices");
        prop_assert_eq!(idle.dirty_units, 0);
        prop_assert_eq!(idle.report.to_csv(), base_report.to_csv());

        // Admit a new flow over a random contiguous span of the middle
        // links, then release it again. The splice may bail (`None`)
        // when the extra flow changes the pairing partition — that is
        // the documented fallback, not a failure.
        let start = start % t.middle.len();
        let len = len.min(t.middle.len() - start);
        let route: Vec<_> = t.middle[start..start + len].to_vec();
        let mut grown = t.net.clone();
        let victim = grown
            .add_flow(Flow {
                name: "extra".into(),
                spec: TrafficSpec::paper_source(
                    rat(sigma_halves, 2),
                    rat(rho_64ths, 64),
                ),
                route: route.clone(),
                priority: 0,
            })
            .expect("light extra flow is valid");
        let admitted = alg
            .analyze_incremental(&grown, &base_trace, &route, Some(&cache))
            .expect("grown tandem analyzes");
        if let Some(out) = admitted {
            let scratch = alg.analyze(&grown).expect("grown tandem analyzes");
            prop_assert_eq!(out.report.to_csv(), scratch.to_csv());
            for (a, b) in out.report.flows.iter().zip(scratch.flows.iter()) {
                prop_assert_eq!(a.e2e, b.e2e);
            }

            // Release: shift the trace's flow ids past the victim and
            // splice back down to the original network.
            let mut back = grown.clone();
            back.remove_flow(victim).expect("victim is live");
            let mut prev = out.trace.clone();
            prev.remap_release(victim);
            let released = alg
                .analyze_incremental(&back, &prev, &route, Some(&cache))
                .expect("shrunk tandem analyzes");
            if let Some(out) = released {
                prop_assert_eq!(out.report.to_csv(), base_report.to_csv());
            }
        }
    }
}
