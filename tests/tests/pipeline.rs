//! Full-pipeline integration tests on the paper's tandem topology:
//! algorithm orderings, monotonicity, and closed-form cross-checks.

use dnc_core::closed_form;
use dnc_core::{
    decomposed::Decomposed, integrated::Integrated, service_curve::ServiceCurve, DelayAnalysis,
};
use dnc_net::builders::{tandem, TandemOptions};
use dnc_num::{int, rat, Rat};

fn u_grid() -> Vec<Rat> {
    (1..=19).map(|k| Rat::new(k, 20)).collect()
}

fn paper_tandem(n: usize, u: Rat) -> dnc_net::builders::Tandem {
    tandem(n, Rat::ONE, u / int(4), TandemOptions::default())
}

#[test]
fn integrated_never_worse_than_decomposed_anywhere() {
    for n in [2usize, 3, 4, 6, 8] {
        for u in u_grid() {
            let t = paper_tandem(n, u);
            let di = Integrated::paper().analyze(&t.net).unwrap();
            let dd = Decomposed::paper().analyze(&t.net).unwrap();
            for (a, b) in di.flows.iter().zip(dd.flows.iter()) {
                assert!(
                    a.e2e <= b.e2e,
                    "n={n} U={u} flow {}: integrated {} > decomposed {}",
                    a.name,
                    a.e2e,
                    b.e2e
                );
            }
        }
    }
}

#[test]
fn service_curve_loses_at_high_load() {
    // The paper's Figure 4 ordering: for every size, at high load the
    // service-curve bound exceeds the decomposed bound.
    for n in [2usize, 4, 6, 8] {
        let t = paper_tandem(n, rat(9, 10));
        let dsc = ServiceCurve::paper().analyze(&t.net).unwrap();
        let dd = Decomposed::paper().analyze(&t.net).unwrap();
        assert!(
            dsc.bound(t.conn0) > dd.bound(t.conn0),
            "n={n}: SC {} <= D {} at U=0.9",
            dsc.bound(t.conn0),
            dd.bound(t.conn0)
        );
    }
}

#[test]
fn bounds_monotone_in_load() {
    for alg in [
        &Decomposed::paper() as &dyn DelayAnalysis,
        &ServiceCurve::paper(),
        &Integrated::paper(),
    ] {
        let mut last = Rat::ZERO;
        for u in u_grid() {
            let t = paper_tandem(4, u);
            let b = alg.analyze(&t.net).unwrap().bound(t.conn0);
            assert!(b > last, "{}: bound not increasing at U={u}", alg.name());
            last = b;
        }
    }
}

#[test]
fn bounds_monotone_in_network_size() {
    for alg in [
        &Decomposed::paper() as &dyn DelayAnalysis,
        &ServiceCurve::paper(),
        &Integrated::paper(),
    ] {
        let mut last = Rat::ZERO;
        for n in [1usize, 2, 3, 4, 6, 8, 12] {
            let t = paper_tandem(n, rat(1, 2));
            let b = alg.analyze(&t.net).unwrap().bound(t.conn0);
            assert!(b > last, "{}: bound not increasing at n={n}", alg.name());
            last = b;
        }
    }
}

#[test]
fn improvement_grows_with_size_at_moderate_load() {
    // The paper's Figure 5 observation. In our reproduction the
    // size-monotonicity of R_{D,I} holds from U ≈ 0.2 up to ~0.8 (at very
    // light loads the n=2 ratio is marginally larger — see
    // EXPERIMENTS.md).
    for u in [rat(1, 4), rat(2, 5), rat(3, 5), rat(4, 5)] {
        let mut last = -Rat::ONE;
        for n in [2usize, 4, 8] {
            let t = paper_tandem(n, u);
            let dd = Decomposed::paper().analyze(&t.net).unwrap();
            let di = Integrated::paper().analyze(&t.net).unwrap();
            let r = dd.relative_improvement(&di, t.conn0);
            assert!(
                r > last,
                "R_D,I not growing with size at U={u}: n={n} gives {r}"
            );
            last = r;
        }
    }
}

#[test]
fn closed_form_matches_generic_on_uncapped_tandem() {
    for n in [1usize, 2, 4, 8] {
        for rho in [rat(1, 16), rat(1, 8), rat(3, 16)] {
            let opts = TandemOptions {
                unit_peak: false,
                ..TandemOptions::default()
            };
            let t = tandem(n, Rat::ONE, rho, opts);
            let generic = Decomposed::paper().analyze(&t.net).unwrap();
            let expect = closed_form::decomposed_tandem_uncapped(n, Rat::ONE, rho);
            let conn0 = &generic.flows[t.conn0.0];
            assert_eq!(conn0.stages.len(), n);
            for (j, ((_, got), want)) in conn0.stages.iter().zip(expect.iter()).enumerate() {
                assert_eq!(got, want, "n={n} ρ={rho} hop {j}");
            }
            assert_eq!(
                conn0.e2e,
                closed_form::decomposed_tandem_uncapped_e2e(n, Rat::ONE, rho)
            );
        }
    }
}

#[test]
fn closed_form_first_link_capped() {
    for (sig, rho) in [(1i64, rat(1, 8)), (2, rat(1, 16)), (1, rat(3, 16))] {
        let t = tandem(3, int(sig), rho, TandemOptions::default());
        let r = Decomposed::paper().analyze(&t.net).unwrap();
        assert_eq!(
            r.flows[t.conn0.0].stages[0].1,
            closed_form::first_link_delay_capped(int(sig), rho)
        );
    }
}

#[test]
fn all_connections_have_positive_bounds() {
    let t = paper_tandem(6, rat(7, 10));
    for alg in [
        &Decomposed::paper() as &dyn DelayAnalysis,
        &ServiceCurve::paper(),
        &Integrated::paper(),
    ] {
        let r = alg.analyze(&t.net).unwrap();
        assert_eq!(r.flows.len(), 13);
        for f in &r.flows {
            assert!(f.e2e.is_positive(), "{}: {}", alg.name(), f.name);
        }
    }
}

#[test]
fn exit_ports_do_not_change_conn0() {
    // Connection 0 never traverses an exit port, and exit ports are
    // downstream of everything it shares, so its bound is identical.
    let base = paper_tandem(4, rat(3, 5));
    let with_ports = tandem(
        4,
        Rat::ONE,
        rat(3, 20),
        TandemOptions {
            include_exit_ports: true,
            ..TandemOptions::default()
        },
    );
    let a = Decomposed::paper().analyze(&base.net).unwrap();
    let b = Decomposed::paper().analyze(&with_ports.net).unwrap();
    assert_eq!(a.bound(base.conn0), b.bound(with_ports.conn0));
}
