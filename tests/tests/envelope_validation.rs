//! Empirical validation of the paper's output-characterization step
//! (Algorithm Integrated Step 3.2 / Cruz's `b'(I) = b(I + d)`): the
//! measured arrival envelope of *internal* traffic in the simulator must
//! stay below the analytic constraint the analysis propagated for it.

use dnc_core::{decomposed::Decomposed, DelayAnalysis};
use dnc_net::builders::{tandem, TandemOptions};
use dnc_num::{int, rat, Rat};
use dnc_sim::{all_greedy, simulate, SimConfig};
use dnc_traffic::envelope::{envelope_violates, fit_token_bucket, measure_envelope};

/// Per-tick arrival counts of one flow at one server, via the sim trace.
fn internal_counts(
    t: &dnc_net::builders::Tandem,
    server: usize,
    flow: usize,
    ticks: u64,
) -> Vec<u64> {
    let cfg = SimConfig {
        ticks,
        trace_server: Some(server),
        trace_flow: Some(flow),
        ..SimConfig::default()
    };
    let report = simulate(&t.net, &all_greedy(&t.net), &cfg);
    let cum = report.trace.expect("trace requested").arrivals;
    // Cumulative -> per-tick.
    let mut counts = Vec::with_capacity(cum.len());
    let mut last = 0;
    for c in cum {
        counts.push(c - last);
        last = c;
    }
    counts
}

#[test]
fn internal_traffic_conforms_to_propagated_constraint() {
    // Connection 0's arrivals at the SECOND middle link must satisfy the
    // analytic constraint b(I + d1) that the decomposition propagated.
    let t = tandem(3, int(2), rat(3, 16), TandemOptions::default());
    let report = Decomposed::paper().analyze(&t.net).unwrap();
    let d1 = report.flows[t.conn0.0].stages[0].1;
    let source = t.net.flow(t.conn0).spec.arrival_curve();
    let propagated = source.shift_left(d1);

    let counts = internal_counts(&t, t.middle[1].0, t.conn0.0, 8192);
    let env = measure_envelope(&counts, 256);
    assert_eq!(
        envelope_violates(&env, &propagated),
        None,
        "internal stream exceeded its propagated constraint"
    );
    // The un-shifted source curve does NOT necessarily hold internally:
    // the whole point of Step 3.2 is that bursts grow. Verify the
    // propagated curve is genuinely looser.
    assert!(propagated.eval(Rat::ZERO) > source.eval(Rat::ZERO));
}

#[test]
fn internal_traffic_conforms_at_every_hop() {
    let t = tandem(4, int(1), rat(1, 8), TandemOptions::default());
    let report = Decomposed::paper().analyze(&t.net).unwrap();
    let source = t.net.flow(t.conn0).spec.arrival_curve();
    let mut shift = Rat::ZERO;
    for hop in 0..4 {
        let propagated = source.shift_left(shift);
        let counts = internal_counts(&t, t.middle[hop].0, t.conn0.0, 4096);
        let env = measure_envelope(&counts, 128);
        assert_eq!(
            envelope_violates(&env, &propagated),
            None,
            "hop {hop}: constraint violated"
        );
        shift += report.flows[t.conn0.0].stages[hop].1;
    }
}

#[test]
fn fitted_descriptor_of_internal_stream_is_sane() {
    // Fit (σ, ρ) to the measured internal envelope: the rate must match
    // the source's sustained rate (nothing is created or destroyed), and
    // the burst must lie between the source burst and the propagated one.
    let t = tandem(3, int(4), rat(3, 16), TandemOptions::default());
    let report = Decomposed::paper().analyze(&t.net).unwrap();
    let d1 = report.flows[t.conn0.0].stages[0].1;
    let counts = internal_counts(&t, t.middle[1].0, t.conn0.0, 16384);
    let env = measure_envelope(&counts, 512);
    let (sigma, rho) = fit_token_bucket(&env).unwrap();
    let source_rate = t.net.flow(t.conn0).spec.sustained_rate();
    assert!(
        rho >= source_rate * rat(9, 10) && rho <= source_rate * rat(11, 10),
        "fitted rate {rho} far from source rate {source_rate}"
    );
    let analytic_burst = t
        .net
        .flow(t.conn0)
        .spec
        .arrival_curve()
        .shift_left(d1)
        .eval(Rat::ZERO);
    assert!(
        Rat::from(sigma.ceil()) <= analytic_burst + Rat::ONE,
        "measured burst {sigma} above analytic {analytic_burst}"
    );
}

#[test]
fn aggregate_trace_equals_sum_of_flow_traces() {
    let t = tandem(2, int(1), rat(1, 8), TandemOptions::default());
    let server = t.middle[1].0;
    let total: u64 = internal_counts(&t, server, t.conn0.0, 1024)
        .iter()
        .sum::<u64>();
    let all_cfg = SimConfig {
        ticks: 1024,
        trace_server: Some(server),
        ..SimConfig::default()
    };
    let aggregate = simulate(&t.net, &all_greedy(&t.net), &all_cfg)
        .trace
        .unwrap()
        .arrivals
        .last()
        .copied()
        .unwrap();
    assert!(total <= aggregate);
    assert!(total > 0);
    // The other flows at this server account for the difference; check by
    // summing every per-flow trace.
    let mut sum = 0;
    for f in t.net.flows_through(dnc_net::ServerId(server)) {
        sum += internal_counts(&t, server, f.0, 1024).iter().sum::<u64>();
    }
    assert_eq!(sum, aggregate);
}
