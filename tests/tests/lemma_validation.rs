//! Validate the paper's Section-2 lemmas against the cell-level
//! simulator: two fully independent implementations of the same fluid
//! facts must agree up to cell quantization.

use dnc_core::exact;
use dnc_curves::Curve;
use dnc_net::builders::{tandem, two_server, TandemOptions};
use dnc_num::{int, rat, Rat};
use dnc_sim::{all_greedy, simulate, SimConfig};
use dnc_traffic::TrafficSpec;

/// Discrete Reich recursion: `W[t] = min(G[t], W[t-1] + C)` (unit-rate
/// servers serve whole cells, so `C` must be integral here).
fn discrete_reich(arrivals_cum: &[u64], c: u64) -> Vec<u64> {
    let mut w = Vec::with_capacity(arrivals_cum.len());
    let mut last = 0u64;
    for &g in arrivals_cum {
        let v = g.min(last + c);
        w.push(v);
        last = v;
    }
    w
}

#[test]
fn lemma1_output_function_matches_simulator() {
    // Trace the first middle link of a loaded tandem and compare its
    // departure process with Reich's formula applied to its arrival
    // process. The simulator banks at most one tick of credit, so the
    // discrete recursion must match exactly for a unit-rate server.
    let t = tandem(2, Rat::from(3), rat(3, 16), TandemOptions::default());
    let cfg = SimConfig {
        ticks: 512,
        trace_server: Some(t.middle[0].0),
        ..SimConfig::default()
    };
    let report = simulate(&t.net, &all_greedy(&t.net), &cfg);
    let trace = report.trace.expect("trace recorded");
    let predicted = discrete_reich(&trace.arrivals, 1);
    for (tick, (obs, pred)) in trace.departures.iter().zip(predicted.iter()).enumerate() {
        assert_eq!(
            obs, pred,
            "tick {tick}: simulator departed {obs}, Reich predicts {pred}"
        );
    }
}

#[test]
fn lemma1_holds_on_second_hop_too() {
    // The second middle link's arrivals are *network-internal* (outputs of
    // the first link plus fresh cross traffic) — Lemma 1 is agnostic.
    let t = tandem(3, Rat::from(2), rat(1, 8), TandemOptions::default());
    let cfg = SimConfig {
        ticks: 512,
        trace_server: Some(t.middle[1].0),
        ..SimConfig::default()
    };
    let report = simulate(&t.net, &all_greedy(&t.net), &cfg);
    let trace = report.trace.expect("trace recorded");
    let predicted = discrete_reich(&trace.arrivals, 1);
    assert_eq!(trace.departures, predicted);
}

#[test]
fn exact_fluid_vs_cell_sim_two_server() {
    // The fluid oracle (Lemmas 1-4 on greedy sample paths) and the cell
    // simulator measure the same scenario; the cell version can only be
    // at or below the fluid worst case, and within a few cells of it.
    let s12 = [TrafficSpec::paper_source(int(6), rat(1, 8))];
    let s1 = [TrafficSpec::paper_source(int(4), rat(1, 8))];
    let s2 = [TrafficSpec::paper_source(int(5), rat(1, 8))];
    let agg = |sp: &[TrafficSpec]| {
        sp.iter()
            .map(|s| s.arrival_curve())
            .reduce(|a, b| a.add(&b))
            .unwrap_or_else(Curve::zero)
    };
    let scenario = exact::TwoServerScenario {
        a12: agg(&s12),
        a1: agg(&s1),
        a2: agg(&s2),
        c1: Rat::ONE,
        c2: Rat::ONE,
    };
    let fluid = scenario.max_s12_delay(128);

    let (net, _, _, f12_ids, _, _) = two_server(Rat::ONE, Rat::ONE, &s12, &s1, &s2);
    let sim = simulate(
        &net,
        &all_greedy(&net),
        &SimConfig {
            ticks: 4096,
            ..SimConfig::default()
        },
    );
    let cell_max = f12_ids
        .iter()
        .map(|id| sim.flows[id.0].max_delay)
        .max()
        .unwrap();

    assert!(
        Rat::from(cell_max as i64) <= fluid + Rat::ONE,
        "cell sim {cell_max} above fluid worst case {fluid}"
    );
    assert!(
        Rat::from(cell_max as i64) + Rat::from(4) >= fluid,
        "cell sim {cell_max} too far below fluid {fluid}"
    );
}

#[test]
fn per_server_sojourn_below_local_bound() {
    use dnc_core::{decomposed::Decomposed, DelayAnalysis};
    // Each server's observed worst sojourn must stay below the decomposed
    // local delay bound for that server.
    let t = tandem(4, Rat::from(2), rat(3, 16), TandemOptions::default());
    let report = Decomposed::paper().analyze(&t.net).unwrap();
    let sim = simulate(
        &t.net,
        &all_greedy(&t.net),
        &SimConfig {
            ticks: 8192,
            ..SimConfig::default()
        },
    );
    // Collect each server's local bound from Connection 0's stages (it
    // traverses every middle link).
    let conn0 = &report.flows[t.conn0.0];
    for (hop, (label, bound)) in conn0.stages.iter().enumerate() {
        let sid = t.middle[hop];
        let observed = sim.servers[sid.0].max_sojourn;
        assert!(
            Rat::from(observed as i64) <= *bound,
            "server {label}: sojourn {observed} > local bound {bound}"
        );
    }
}
