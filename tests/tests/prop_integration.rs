//! Property-based integration tests: the two-server theorem and the full
//! algorithms under randomized parameters.

use dnc_core::exact::TwoServerScenario;
use dnc_core::integrated::{pair_delay_bound, Integrated};
use dnc_core::{decomposed::Decomposed, DelayAnalysis, OutputCap};
use dnc_curves::Curve;
use dnc_net::builders::random_feedforward;
use dnc_num::{rat, Rat};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Burst in [0, 6] quarters, rate in (0, 1/4) sixteenths.
fn arb_bucket() -> impl Strategy<Value = (Rat, Rat)> {
    (0i128..24, 1i128..4).prop_map(|(s, r)| (rat(s, 4), rat(r, 16)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pair_bound_sandwich(
        (s12, r12) in arb_bucket(),
        (s1, r1) in arb_bucket(),
        (s2, r2) in arb_bucket(),
    ) {
        let f12 = Curve::token_bucket(s12, r12);
        let f1 = Curve::token_bucket(s1, r1);
        let f2 = Curve::token_bucket(s2, r2);
        let pb = pair_delay_bound(&f12, &f1, &f2, Rat::ONE, Rat::ONE, OutputCap::Shift).unwrap();
        prop_assert!(pb.through >= pb.d1, "through below server-1 bound");
        prop_assert!(pb.through <= pb.d1 + pb.d2, "through above decomposed sum");
        prop_assert!(!pb.d1.is_negative() && !pb.d2.is_negative());
    }

    #[test]
    fn pair_bound_monotone_in_cross_burst(
        (s12, r12) in arb_bucket(),
        (s2, r2) in arb_bucket(),
        bump in 1i128..8,
    ) {
        let f12 = Curve::token_bucket(s12, r12);
        let zero = Curve::zero();
        let f2a = Curve::token_bucket(s2, r2);
        let f2b = Curve::token_bucket(s2 + rat(bump, 2), r2);
        let a = pair_delay_bound(&f12, &zero, &f2a, Rat::ONE, Rat::ONE, OutputCap::Shift).unwrap();
        let b = pair_delay_bound(&f12, &zero, &f2b, Rat::ONE, Rat::ONE, OutputCap::Shift).unwrap();
        prop_assert!(b.through >= a.through, "more cross burst cannot shrink the bound");
    }

    #[test]
    fn pair_bound_dominates_exact_greedy(
        (s12, r12) in arb_bucket(),
        (s1, r1) in arb_bucket(),
        (s2, r2) in arb_bucket(),
    ) {
        // Greedy sample paths: peak-capped realizations of the curves
        // (strictly increasing, A(0) = 0).
        prop_assume!(r12 + r1 < Rat::ONE && r12 + r2 < Rat::ONE);
        let peak = Rat::ONE;
        let a12 = Curve::token_bucket_peak(s12, r12, peak);
        let a1 = Curve::token_bucket_peak(s1, r1, peak);
        let a2 = Curve::token_bucket_peak(s2, r2, peak);
        let sc = TwoServerScenario {
            a12: a12.clone(), a1: a1.clone(), a2: a2.clone(),
            c1: Rat::ONE, c2: Rat::ONE,
        };
        let exact = sc.max_s12_delay(48);
        let pb = pair_delay_bound(&a12, &a1, &a2, Rat::ONE, Rat::ONE, OutputCap::Shift).unwrap();
        prop_assert!(
            exact <= pb.through,
            "exact greedy delay {} exceeds theorem bound {}", exact, pb.through
        );
    }

    #[test]
    fn pair_bound_general_rates(
        (s12, r12) in arb_bucket(),
        (s2, r2) in arb_bucket(),
        c1_num in 1i128..5,
        c2_num in 1i128..5,
    ) {
        let c1 = rat(c1_num, 2);
        let c2 = rat(c2_num, 2);
        prop_assume!(r12 < c1 && r12 + r2 < c2);
        let f12 = Curve::token_bucket(s12, r12);
        let zero = Curve::zero();
        let f2 = Curve::token_bucket(s2, r2);
        let pb = pair_delay_bound(&f12, &zero, &f2, c1, c2, OutputCap::Shift).unwrap();
        prop_assert!(pb.through >= pb.d1);
        prop_assert!(pb.through <= pb.d1 + pb.d2);
    }

    #[test]
    fn integrated_below_decomposed_on_random_networks(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = random_feedforward(&mut rng, 5, 7, 4, rat(3, 4), true);
        let dd = Decomposed::paper().analyze(&net).unwrap();
        let di = Integrated::paper().analyze(&net).unwrap();
        for (a, b) in di.flows.iter().zip(dd.flows.iter()) {
            prop_assert!(a.e2e <= b.e2e, "flow {}: {} > {}", a.name, a.e2e, b.e2e);
        }
    }

    #[test]
    fn optimal_pairing_sound_and_heavier(seed in 0u64..200) {
        use dnc_net::pairing::{partition, Group, PairingStrategy};
        let mut rng = StdRng::seed_from_u64(seed);
        let net = random_feedforward(&mut rng, 6, 8, 4, rat(3, 4), true);
        // Weight of a partition = flows captured by its pairs.
        let weight = |p: &dnc_net::pairing::Partition| -> usize {
            p.groups.iter().map(|g| match *g {
                Group::Pair(a, b) => net
                    .flows()
                    .iter()
                    .filter(|f| f.route.windows(2).any(|w| w[0] == a && w[1] == b))
                    .count(),
                Group::Single(_) => 0,
            }).sum()
        };
        let greedy = partition(&net, PairingStrategy::GreedyChain).unwrap();
        let optimal = partition(&net, PairingStrategy::OptimalSmall).unwrap();
        prop_assert!(weight(&optimal) >= weight(&greedy),
            "optimal weight {} below greedy {}", weight(&optimal), weight(&greedy));
        // And the resulting analysis is still sound (≤ decomposed).
        let alg = Integrated { cap: OutputCap::Shift, strategy: PairingStrategy::OptimalSmall, ..Integrated::default() };
        let di = alg.analyze(&net).unwrap();
        let dd = Decomposed::paper().analyze(&net).unwrap();
        for (a, b) in di.flows.iter().zip(dd.flows.iter()) {
            prop_assert!(a.e2e <= b.e2e);
        }
    }
}
