//! Guaranteed-rate (GPS) validation: the paper's premise that the
//! service-curve model is the right tool for fair-queueing disciplines,
//! checked analytically and against simulation.

use dnc_core::{
    decomposed::Decomposed, integrated::Integrated, service_curve::ServiceCurve, DelayAnalysis,
};
use dnc_net::{Discipline, Flow, FlowId, Network, Server, ServerId};
use dnc_num::{int, rat, Rat};
use dnc_sim::{all_greedy, simulate, SimConfig};
use dnc_traffic::{SourceModel, TrafficSpec};

fn gps_chain(hops: usize, specs: &[(TrafficSpec, Rat)]) -> (Network, Vec<FlowId>, Vec<ServerId>) {
    let mut net = Network::new();
    let servers: Vec<ServerId> = (0..hops)
        .map(|i| {
            net.add_server(Server {
                name: format!("g{i}"),
                rate: Rat::ONE,
                discipline: Discipline::Gps,
            })
        })
        .collect();
    let flows: Vec<FlowId> = specs
        .iter()
        .enumerate()
        .map(|(i, (spec, _))| {
            net.add_flow(Flow {
                name: format!("f{i}"),
                spec: spec.clone(),
                route: servers.clone(),
                priority: 0,
            })
            .unwrap()
        })
        .collect();
    for (f, (_, r)) in flows.iter().zip(specs) {
        for &s in &servers {
            net.reserve(*f, s, *r);
        }
    }
    (net, flows, servers)
}

#[test]
fn service_curve_beats_decomposition_on_every_gps_grid_point() {
    // The inverse of the FIFO Figure 4: on guaranteed-rate chains the
    // service-curve method wins at every size and burst level.
    for hops in [2usize, 4, 6] {
        for sigma in [2i64, 6, 12] {
            let (net, flows, _) = gps_chain(
                hops,
                &[
                    (TrafficSpec::paper_source(int(sigma), rat(1, 4)), rat(1, 2)),
                    (TrafficSpec::paper_source(int(sigma), rat(1, 4)), rat(1, 2)),
                ],
            );
            let sc = ServiceCurve::paper().analyze(&net).unwrap();
            let dec = Decomposed::paper().analyze(&net).unwrap();
            for &f in &flows {
                assert!(
                    sc.bound(f) <= dec.bound(f),
                    "hops={hops} σ={sigma}: SC {} > D {}",
                    sc.bound(f),
                    dec.bound(f)
                );
            }
            // Strictly better once there is more than one hop to pay the
            // burst at.
            if hops > 1 && sigma > 2 {
                assert!(sc.bound(flows[0]) < dec.bound(flows[0]));
            }
        }
    }
}

#[test]
fn gps_simulation_below_all_bounds() {
    let (net, flows, _) = gps_chain(
        3,
        &[
            (TrafficSpec::paper_source(int(4), rat(1, 4)), rat(3, 8)),
            (TrafficSpec::paper_source(int(2), rat(1, 4)), rat(3, 8)),
        ],
    );
    let sc = ServiceCurve::paper().analyze(&net).unwrap();
    let dec = Decomposed::paper().analyze(&net).unwrap();
    let int_ = Integrated::paper().analyze(&net).unwrap();
    let cfg = SimConfig {
        ticks: 8192,
        ..SimConfig::default()
    };
    let greedy = simulate(&net, &all_greedy(&net), &cfg);
    let onoff = simulate(
        &net,
        &vec![
            SourceModel::OnOff {
                on: 5,
                off: 7,
                phase: 1
            };
            net.flows().len()
        ],
        &cfg,
    );
    for &f in &flows {
        let worst = greedy.flows[f.0].max_delay.max(onoff.flows[f.0].max_delay);
        for report in [&sc, &dec, &int_] {
            assert!(
                Rat::from(worst as i64) <= report.bound(f),
                "flow {f}: sim {} > {} bound {}",
                worst,
                report.algorithm,
                report.bound(f)
            );
        }
    }
}

#[test]
fn gps_isolates_flows_from_each_other() {
    // Growing a neighbour's burst must not change a flow's own bound
    // (per-flow curves decouple) — unlike FIFO where it would.
    let bound_with_neighbour_burst = |sigma_other: i64| -> Rat {
        let (net, flows, _) = gps_chain(
            2,
            &[
                (TrafficSpec::paper_source(int(2), rat(1, 4)), rat(1, 2)),
                (
                    TrafficSpec::paper_source(int(sigma_other), rat(1, 4)),
                    rat(1, 2),
                ),
            ],
        );
        ServiceCurve::paper().analyze(&net).unwrap().bound(flows[0])
    };
    assert_eq!(
        bound_with_neighbour_burst(1),
        bound_with_neighbour_burst(30)
    );
}

#[test]
fn mixed_fifo_gps_network_analyzes() {
    // A FIFO access link feeding a GPS core: both analyses compose.
    let mut net = Network::new();
    let access = net.add_server(Server::unit_fifo("access"));
    let core = net.add_server(Server {
        name: "core".into(),
        rate: Rat::from(2),
        discipline: Discipline::Gps,
    });
    let mut flows = Vec::new();
    for k in 0..2 {
        let f = net
            .add_flow(Flow {
                name: format!("f{k}"),
                spec: TrafficSpec::paper_source(int(2), rat(1, 4)),
                route: vec![access, core],
                priority: 0,
            })
            .unwrap();
        net.reserve(f, core, rat(3, 4));
        flows.push(f);
    }
    let dec = Decomposed::paper().analyze(&net).unwrap();
    let int_ = Integrated::paper().analyze(&net).unwrap();
    let sim = simulate(
        &net,
        &all_greedy(&net),
        &SimConfig {
            ticks: 4096,
            ..SimConfig::default()
        },
    );
    for &f in &flows {
        assert!(int_.bound(f) <= dec.bound(f));
        assert!(sim.max_delay(f.0) <= int_.bound(f));
    }
}
