//! EDF discipline validation: schedulability ⇒ every simulated cell
//! meets its local deadline, and analysis bounds dominate simulation.

use dnc_core::edf::assign_even_deadlines;
use dnc_core::{decomposed::Decomposed, DelayAnalysis};
use dnc_net::{Discipline, Flow, FlowId, Network, Server, ServerId};
use dnc_num::{int, rat, Rat};
use dnc_sim::{all_greedy, simulate, SimConfig};
use dnc_traffic::TrafficSpec;

fn edf_server_net(
    flows: &[(TrafficSpec, Rat)], // (spec, local deadline)
) -> (Network, Vec<FlowId>, ServerId) {
    let mut net = Network::new();
    let s = net.add_server(Server {
        name: "edf".into(),
        rate: Rat::ONE,
        discipline: Discipline::Edf,
    });
    let ids: Vec<FlowId> = flows
        .iter()
        .enumerate()
        .map(|(i, (spec, d))| {
            let f = net
                .add_flow(Flow {
                    name: format!("f{i}"),
                    spec: spec.clone(),
                    route: vec![s],
                    priority: 0,
                })
                .unwrap();
            net.set_local_deadline(f, s, *d);
            f
        })
        .collect();
    (net, ids, s)
}

#[test]
fn schedulable_edf_meets_deadlines_in_simulation() {
    let (net, flows, _) = edf_server_net(&[
        (TrafficSpec::paper_source(int(1), rat(1, 8)), int(3)),
        (TrafficSpec::paper_source(int(3), rat(1, 4)), int(10)),
        (TrafficSpec::paper_source(int(2), rat(1, 8)), int(16)),
    ]);
    let bounds = Decomposed::paper().analyze(&net).unwrap();
    let sim = simulate(
        &net,
        &all_greedy(&net),
        &SimConfig {
            ticks: 8192,
            ..SimConfig::default()
        },
    );
    for &f in &flows {
        // The cell engine quantizes service to whole cells per tick;
        // allow one tick beyond the fluid deadline.
        assert!(
            sim.max_delay(f.0) <= bounds.bound(f) + Rat::ONE,
            "flow {f}: sim {} > deadline {}",
            sim.flows[f.0].max_delay,
            bounds.bound(f)
        );
        assert!(sim.flows[f.0].delivered > 0);
    }
}

#[test]
fn edf_reorders_in_favor_of_tight_deadlines() {
    // Same traffic, swapped deadlines: the tight-deadline flow's observed
    // worst case must drop.
    let spec = TrafficSpec::paper_source(int(4), rat(1, 4));
    let run = |d0: Rat, d1: Rat| -> (u64, u64) {
        let (net, flows, _) = edf_server_net(&[(spec.clone(), d0), (spec.clone(), d1)]);
        let sim = simulate(
            &net,
            &all_greedy(&net),
            &SimConfig {
                ticks: 4096,
                ..SimConfig::default()
            },
        );
        (
            sim.flows[flows[0].0].max_delay,
            sim.flows[flows[1].0].max_delay,
        )
    };
    let (a_tight, b_loose) = run(int(6), int(20));
    let (a_loose, b_tight) = run(int(20), int(6));
    assert!(a_tight < a_loose, "tight deadline must help flow 0");
    assert!(b_tight < b_loose, "tight deadline must help flow 1");
}

#[test]
fn edf_multihop_even_assignment_validates() {
    let mut net = Network::new();
    let servers: Vec<ServerId> = (0..3)
        .map(|i| {
            net.add_server(Server {
                name: format!("e{i}"),
                rate: Rat::ONE,
                discipline: Discipline::Edf,
            })
        })
        .collect();
    let mut flows = Vec::new();
    for k in 0..2 {
        flows.push(
            net.add_flow(Flow {
                name: format!("f{k}"),
                // Propagated bursts grow with the per-hop deadline
                // (σ' = σ + ρ·D·hops), so the sustained rate must be low
                // enough for an even split to stay feasible downstream
                // (here 2·(σ + ρ·2D) ≤ D at the third hop needs ρ ≤ 1/8).
                spec: TrafficSpec::paper_source(int(2), rat(1, 8)),
                route: servers.clone(),
                priority: 0,
            })
            .unwrap(),
        );
    }
    let e2e: Vec<(FlowId, Rat)> = flows.iter().map(|&f| (f, int(30))).collect();
    assign_even_deadlines(&mut net, &e2e);
    net.validate().unwrap();
    let bounds = Decomposed::paper().analyze(&net).unwrap();
    for &f in &flows {
        assert_eq!(bounds.bound(f), int(30));
    }
    let sim = simulate(
        &net,
        &all_greedy(&net),
        &SimConfig {
            ticks: 8192,
            ..SimConfig::default()
        },
    );
    for &f in &flows {
        assert!(
            sim.max_delay(f.0) <= int(30) + Rat::from(3),
            "one tick per hop slack"
        );
    }
}

#[test]
fn even_assignment_can_be_infeasible_downstream() {
    // The flip side, kept as a regression: at ρ = 1/4 the propagated
    // bursts outgrow ANY uniform per-hop deadline at the third hop
    // (2·(σ + ρ·2D) ≤ D has no solution when 2ρ·2 ≥ 1).
    let mut net = Network::new();
    let servers: Vec<ServerId> = (0..3)
        .map(|i| {
            net.add_server(Server {
                name: format!("e{i}"),
                rate: Rat::ONE,
                discipline: Discipline::Edf,
            })
        })
        .collect();
    let mut flows = Vec::new();
    for k in 0..2 {
        flows.push(
            net.add_flow(Flow {
                name: format!("f{k}"),
                spec: TrafficSpec::paper_source(int(2), rat(1, 4)),
                route: servers.clone(),
                priority: 0,
            })
            .unwrap(),
        );
    }
    for e2e in [12i64, 24, 48, 96] {
        let list: Vec<(FlowId, Rat)> = flows.iter().map(|&f| (f, int(e2e))).collect();
        assign_even_deadlines(&mut net, &list);
        assert!(
            Decomposed::paper().analyze(&net).is_err(),
            "e2e={e2e} should be infeasible at the third hop"
        );
    }
}

#[test]
fn edf_admits_what_fifo_cannot() {
    // The classical EDF advantage: heterogeneous deadlines. A FIFO server
    // gives everyone the aggregate bound; EDF certifies a 2-tick deadline
    // for the urgent flow next to a deep-bucket neighbour.
    let urgent = TrafficSpec::token_bucket(int(1), rat(1, 8));
    let bulk = TrafficSpec::token_bucket(int(6), rat(1, 4));
    let (net, flows, _) = edf_server_net(&[(urgent, int(2)), (bulk, int(30))]);
    let r = Decomposed::paper().analyze(&net).unwrap();
    assert_eq!(r.bound(flows[0]), int(2));
    // FIFO aggregate bound for the same mix is the total burst: 7.
    assert!(r.bound(flows[0]) < int(7));
}
