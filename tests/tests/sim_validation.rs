//! Simulation-vs-analysis validation: every observed delay of every
//! conforming workload must stay below every analytic bound, on the
//! tandem and on randomized feedforward networks.

use dnc_core::{decomposed::Decomposed, integrated::Integrated, DelayAnalysis};
use dnc_net::builders::{random_feedforward, tandem, TandemOptions};
use dnc_num::{rat, Rat};
use dnc_sim::{all_greedy, batch, simulate, SimConfig};
use dnc_traffic::SourceModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn cfg(ticks: u64) -> SimConfig {
    SimConfig {
        ticks,
        ..SimConfig::default()
    }
}

#[test]
fn tandem_greedy_below_integrated_bound() {
    for n in [2usize, 4, 8] {
        for u in [rat(3, 10), rat(3, 5), rat(9, 10)] {
            let t = tandem(n, Rat::ONE, u / Rat::from(4), TandemOptions::default());
            let sim = simulate(&t.net, &all_greedy(&t.net), &cfg(8192));
            let bound = Integrated::paper().analyze(&t.net).unwrap();
            for (i, f) in bound.flows.iter().enumerate() {
                assert!(
                    sim.max_delay(i) <= f.e2e,
                    "n={n} U={u} flow {}: sim {} > integrated {}",
                    f.name,
                    sim.flows[i].max_delay,
                    f.e2e
                );
            }
        }
    }
}

#[test]
fn tandem_randomized_workloads_below_bounds() {
    let t = tandem(4, Rat::ONE, rat(3, 16), TandemOptions::default());
    let bound = Integrated::paper().analyze(&t.net).unwrap();
    let model_sets: Vec<Vec<SourceModel>> = vec![
        vec![
            SourceModel::OnOff {
                on: 4,
                off: 4,
                phase: 1
            };
            t.net.flows().len()
        ],
        vec![SourceModel::Bernoulli { num: 2, den: 5 }; t.net.flows().len()],
        vec![
            SourceModel::Periodic {
                period: 5,
                burst: 2,
                phase: 2
            };
            t.net.flows().len()
        ],
    ];
    for models in model_sets {
        let reports = batch::collect_reports(batch::seed_sweep(
            &t.net,
            &models,
            &cfg(4096),
            &[1, 7, 13],
            3,
        ))
        .expect("seed sweep");
        for (i, f) in bound.flows.iter().enumerate() {
            let worst = batch::worst_delay(&reports, i);
            assert!(
                Rat::from(worst as i64) <= f.e2e,
                "flow {}: worst {} > bound {}",
                f.name,
                worst,
                f.e2e
            );
        }
    }
}

#[test]
fn random_feedforward_networks_validate() {
    let mut rng = StdRng::seed_from_u64(2024);
    for trial in 0..10 {
        let net = random_feedforward(&mut rng, 6, 9, 4, rat(4, 5), true);
        let dd = Decomposed::paper().analyze(&net).unwrap();
        let di = Integrated::paper().analyze(&net).unwrap();
        let sim = simulate(&net, &all_greedy(&net), &cfg(4096));
        for i in 0..net.flows().len() {
            assert!(
                di.flows[i].e2e <= dd.flows[i].e2e,
                "trial {trial}: integrated above decomposed for {}",
                net.flows()[i].name
            );
            assert!(
                sim.max_delay(i) <= di.flows[i].e2e,
                "trial {trial}: sim {} > integrated {} for {}",
                sim.flows[i].max_delay,
                di.flows[i].e2e,
                net.flows()[i].name
            );
        }
    }
}

#[test]
fn random_feedforward_uncapped_validate() {
    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..6 {
        let net = random_feedforward(&mut rng, 5, 7, 3, rat(3, 4), false);
        let dd = Decomposed::paper().analyze(&net).unwrap();
        let sim = simulate(&net, &all_greedy(&net), &cfg(4096));
        for i in 0..net.flows().len() {
            assert!(sim.max_delay(i) <= dd.flows[i].e2e);
        }
    }
}

#[test]
fn backlog_bounds_dominate_simulated_queues() {
    use dnc_core::decomposed::backlog_bounds;
    use dnc_core::OutputCap;
    for u in [rat(2, 5), rat(4, 5)] {
        let t = tandem(4, Rat::from(2), u / Rat::from(4), TandemOptions::default());
        let bounds = backlog_bounds(&t.net, OutputCap::Shift).unwrap();
        let sim = simulate(&t.net, &all_greedy(&t.net), &cfg(8192));
        for (i, s) in sim.servers.iter().enumerate() {
            assert!(
                Rat::from(s.max_backlog as i64) <= bounds[i] + Rat::ONE,
                "U={u} server {i}: backlog {} > bound {}",
                s.max_backlog,
                bounds[i]
            );
        }
    }
}

#[test]
fn fifo_family_bounds_dominate_simulation() {
    use dnc_core::fifo_family::FifoFamily;
    for n in [2usize, 4] {
        for u in [rat(2, 5), rat(4, 5)] {
            let t = tandem(n, Rat::ONE, u / Rat::from(4), TandemOptions::default());
            let bound = FifoFamily::default().analyze(&t.net).unwrap();
            let sim = simulate(&t.net, &all_greedy(&t.net), &cfg(8192));
            for (i, f) in bound.flows.iter().enumerate() {
                assert!(
                    sim.max_delay(i) <= f.e2e,
                    "n={n} U={u} flow {}: sim {} > fifo-family {}",
                    f.name,
                    sim.flows[i].max_delay,
                    f.e2e
                );
            }
        }
    }
}

#[test]
fn phased_adversaries_stay_below_bounds_and_beat_plain_greedy() {
    // Coordinated adversaries: cross connections delay their initial
    // burst so it collides with Connection 0's traffic in flight. Over a
    // grid of stagger patterns, the worst observed delay must grow
    // relative to the all-at-zero greedy pattern while staying below the
    // integrated bound.
    let t = tandem(4, Rat::from(4), rat(3, 16), TandemOptions::default());
    let bound = Integrated::paper().analyze(&t.net).unwrap();
    let greedy_run = simulate(&t.net, &all_greedy(&t.net), &cfg(4096));
    let base = greedy_run.flows[t.conn0.0].max_delay;

    let mut worst = base;
    for stagger in [2u64, 4, 8, 16] {
        // Cross connections at hop k burst at k·stagger; Connection 0
        // stays greedy from t = 0.
        let models: Vec<SourceModel> = t
            .net
            .flows()
            .iter()
            .map(|f| {
                if f.name == "conn0" {
                    SourceModel::Greedy
                } else {
                    let hop = f.route[0].0 as u64;
                    SourceModel::Phased {
                        start: hop * stagger,
                    }
                }
            })
            .collect();
        let run = simulate(&t.net, &models, &cfg(4096));
        let observed = run.flows[t.conn0.0].max_delay;
        worst = worst.max(observed);
        assert!(
            run.flows
                .iter()
                .zip(bound.flows.iter())
                .all(|(s, b)| Rat::from(s.max_delay as i64) <= b.e2e),
            "stagger {stagger}: a phased adversary broke a bound"
        );
    }
    assert!(
        worst > base,
        "no stagger beat plain greedy (base {base}) — adversary too weak"
    );
}

#[test]
fn sp_tandem_simulation_below_bounds() {
    use dnc_net::Discipline;
    let t = tandem(
        4,
        Rat::from(2),
        rat(3, 16),
        TandemOptions {
            discipline: Discipline::StaticPriority,
            ..TandemOptions::default()
        },
    );
    let di = Integrated::paper().analyze(&t.net).unwrap();
    let dd = Decomposed::paper().analyze(&t.net).unwrap();
    let sim = simulate(&t.net, &all_greedy(&t.net), &cfg(8192));
    for (i, f) in t.net.flows().iter().enumerate() {
        assert!(
            sim.max_delay(i) <= di.flows[i].e2e,
            "SP flow {}: sim {} > integrated {}",
            f.name,
            sim.flows[i].max_delay,
            di.flows[i].e2e
        );
        assert!(di.flows[i].e2e <= dd.flows[i].e2e);
    }
}

#[test]
fn sim_tightness_single_hop() {
    // On one shared hop with greedy peak-capped sources, the simulator
    // should come within a few cells of the analytic local bound (the
    // greedy sample path attains the constraint).
    let t = tandem(1, Rat::from(4), rat(9, 40), TandemOptions::default());
    let bound = Decomposed::paper().analyze(&t.net).unwrap().bound(t.conn0);
    let sim = simulate(&t.net, &all_greedy(&t.net), &cfg(8192));
    let observed = sim.max_delay(t.conn0.0);
    assert!(observed <= bound);
    // Cell quantization (unusable fractional tokens, whole-cell service)
    // costs a few cells; the fluid bound must still be of the same
    // magnitude as the realized worst case.
    assert!(
        observed * Rat::TWO >= bound,
        "greedy sim {} below half the single-hop bound {}",
        observed,
        bound
    );
}
