//! Time-stopping (cyclic-network) analysis validated against simulation.

use dnc_core::cyclic::TimeStopping;
use dnc_net::builders::ring;
use dnc_num::{int, rat, Rat};
use dnc_sim::{all_greedy, simulate, SimConfig};
use dnc_traffic::{SourceModel, TrafficSpec};

#[test]
fn ring_simulation_below_time_stopping_bounds() {
    for (sigma, rho) in [(1i64, rat(1, 8)), (3, rat(1, 8)), (2, rat(3, 16))] {
        let spec = TrafficSpec::paper_source(int(sigma), rho);
        let (net, flows, _) = ring(4, 2, &spec);
        let r = TimeStopping::default().analyze(&net).unwrap();
        assert!(r.converged, "σ={sigma} ρ={rho} must converge");
        let bounds = r.bounds().unwrap();
        let sim = simulate(
            &net,
            &all_greedy(&net),
            &SimConfig {
                ticks: 8192,
                ..SimConfig::default()
            },
        );
        for &f in &flows {
            // The cyclic simulator processes servers in id order, so a
            // wrapped route pays up to one extra tick per backward edge
            // that the fluid bound does not model: allow that slack.
            let slack = Rat::from(2);
            assert!(
                sim.max_delay(f.0) <= bounds.bound(f) + slack,
                "flow {f}: sim {} > bound {}",
                sim.flows[f.0].max_delay,
                bounds.bound(f)
            );
        }
    }
}

#[test]
fn ring_randomized_workloads_below_bounds() {
    let spec = TrafficSpec::paper_source(int(2), rat(1, 8));
    let (net, flows, _) = ring(5, 2, &spec);
    let r = TimeStopping::default().analyze(&net).unwrap();
    let bounds = r.bounds().expect("light ring converges");
    let models = vec![
        SourceModel::OnOff {
            on: 6,
            off: 10,
            phase: 2
        };
        net.flows().len()
    ];
    for seed in [3u64, 17, 99] {
        let sim = simulate(
            &net,
            &models,
            &SimConfig {
                ticks: 4096,
                seed,
                ..SimConfig::default()
            },
        );
        for &f in &flows {
            assert!(sim.max_delay(f.0) <= bounds.bound(f) + Rat::from(2));
        }
    }
}

#[test]
fn time_stopping_iterations_grow_with_feedback_strength() {
    let light = TimeStopping::default()
        .analyze(&ring(4, 2, &TrafficSpec::paper_source(int(1), rat(1, 16))).0)
        .unwrap();
    let heavy = TimeStopping::default()
        .analyze(&ring(4, 2, &TrafficSpec::paper_source(int(4), rat(3, 16))).0)
        .unwrap();
    assert!(light.converged && heavy.converged);
    assert!(heavy.iterations >= light.iterations);
}
