//! Placeholder library target; the content of this package is its
//! integration tests (`cargo test -p dnc-tests`).
