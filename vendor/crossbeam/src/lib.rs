//! Offline stand-in for the subset of `crossbeam` 0.8 this workspace
//! uses: [`scope`] with [`Scope::spawn`], implemented on top of
//! `std::thread::scope` (stable since Rust 1.63).
//!
//! The build environment has no access to crates.io; keeping the
//! `crossbeam::scope(|s| { s.spawn(|_| …); })` call-site idiom means the
//! real crate can be restored by editing one line of `Cargo.toml`.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A scope handle mirroring `crossbeam::thread::Scope`.
///
/// Wraps `std::thread::Scope`; `Copy` so it can be captured by spawned
/// closures that themselves spawn.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Clone for Scope<'scope, 'env> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a worker bound to this scope. As in crossbeam, the closure
    /// receives the scope again so workers can spawn sub-workers.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let handle = *self;
        self.inner.spawn(move || f(&handle))
    }
}

/// Create a scope whose spawned threads may borrow from the environment;
/// all threads are joined before `scope` returns. Returns `Err` with the
/// first panic payload if any worker panicked (crossbeam semantics).
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    // std::thread::scope resumes a child panic on the parent after all
    // threads join; catching it reproduces crossbeam's Result interface.
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

/// Submodule alias matching `crossbeam::thread::scope` paths.
pub mod thread {
    pub use super::{scope, Scope};
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn workers_share_borrowed_state() {
        let counter = AtomicUsize::new(0);
        let n = super::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            }
            7
        })
        .expect("no worker panicked");
        assert_eq!(n, 7);
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn worker_panic_becomes_err() {
        let r = super::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
