//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: [`Rng::gen_range`] / [`Rng::gen_ratio`] / [`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`], and [`rngs::StdRng`].
//!
//! The build environment has no access to crates.io, so the workspace
//! ships this deterministic splitmix64/xoshiro-style generator instead.
//! It is NOT cryptographically secure and makes no statistical-quality
//! claims beyond "good enough for randomized test topologies"; it exists
//! so call sites keep the upstream `rand` idiom and can be switched back
//! to the real crate by editing one line of `Cargo.toml`.

/// Low-level entropy source: everything is derived from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (the subset of `rand::SeedableRng` used here).
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleUniform: Copy {
    /// Sample uniformly from `[low, high)`. `high > low` is required.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as $wide).wrapping_sub(low as $wide) as u128;
                // Multiply-shift reduction; bias is negligible for the
                // small spans used in tests and irrelevant for stubs.
                let x = rng.next_u64() as u128;
                low.wrapping_add(((x * span) >> 64) as $t)
            }
        }
    )*};
}

impl_sample_uniform!(
    u8 => u128, u16 => u128, u32 => u128, u64 => u128, usize => u128,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

impl SampleUniform for i128 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        let span = high.wrapping_sub(low) as u128;
        let x = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        low.wrapping_add((x % span) as i128)
    }
}

impl SampleUniform for u128 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        let span = high - low;
        let x = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        low + (x % span)
    }
}

/// Ranges accepted by [`Rng::gen_range`] (mirrors `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draw one sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

macro_rules! impl_sample_range_inclusive {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                if hi < <$t>::MAX {
                    <$t>::sample_half_open(rng, lo, hi + 1)
                } else if lo > <$t>::MIN {
                    <$t>::sample_half_open(rng, lo - 1, hi).wrapping_add(1)
                } else {
                    // Full domain: every bit pattern is a valid sample.
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}

impl_sample_range_inclusive!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, i128, u128);

/// High-level convenience methods (the subset of `rand::Rng` used here).
pub trait Rng: RngCore {
    /// Uniform sample from `range` (`a..b` or `a..=b`).
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0, "gen_ratio: zero denominator");
        assert!(numerator <= denominator, "gen_ratio: probability above one");
        u32::sample_half_open(self, 0, denominator) < numerator
    }

    /// `true` with probability `p` (`0.0 ..= 1.0`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p outside [0, 1]");
        ((self.next_u64() >> 11) as f64) < p * (1u64 << 53) as f64
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xorshift-multiply generator standing in for
    /// `rand::rngs::StdRng`. Same seed ⇒ same stream, across platforms.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (public-domain construction by Vigna).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3u64..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(1i128..=8);
            assert!((1..=8).contains(&y));
            let z = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn gen_ratio_hits_both_sides() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_ratio(1, 3)).count();
        // Expect about one third; allow a very generous tolerance.
        assert!((2000..4700).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn full_range_inclusive_does_not_overflow() {
        let mut rng = StdRng::seed_from_u64(11);
        let _ = rng.gen_range(0u8..=u8::MAX);
        let _ = rng.gen_range(i64::MIN..=i64::MAX);
    }
}
