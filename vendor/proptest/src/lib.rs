//! Offline stand-in for the subset of the `proptest` API this workspace
//! uses. The build environment has no access to crates.io, so this crate
//! reimplements the `proptest!` macro family, the [`Strategy`] trait with
//! `prop_map`/`prop_flat_map`, range/tuple/collection strategies, and a
//! deterministic test runner.
//!
//! Differences from real proptest, deliberately accepted for a stub:
//! - **no shrinking** — a failure reports the per-case seed instead; the
//!   runner is fully deterministic (seeded from the test name), so every
//!   failure reproduces by re-running the test;
//! - failure messages carry the assertion text and location, not the
//!   generated values (values need not be `Debug` to generate).
//!
//! Call sites keep the upstream idiom, so the real crate can be restored
//! by editing one line of `Cargo.toml`.

/// The deterministic generator driving all strategies.
pub mod test_runner {
    /// splitmix64 stream; same seed ⇒ same values, across platforms.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Generator with an explicit seed.
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Generator seeded from a test name (FNV-1a), so each test has
        /// a stable, distinct stream.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64 uniformly distributed bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }

    /// Outcome of a single generated case.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; try another case.
        Reject,
        /// An assertion failed.
        Fail(String),
    }

    impl TestCaseError {
        /// Build a failure with a message.
        pub fn fail<S: Into<String>>(msg: S) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    /// Runner configuration (stub for `proptest::test_runner::Config`).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of accepted (non-rejected) cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Drive `f` until `cfg.cases` cases pass; panic on the first failure
    /// with the case seed, or when `prop_assume!` rejects too often.
    pub fn run<F>(cfg: &ProptestConfig, name: &str, mut f: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let mut seeder = TestRng::from_name(name);
        let mut accepted: u32 = 0;
        let mut rejected: u32 = 0;
        let max_rejects = cfg.cases.saturating_mul(32).max(4096);
        while accepted < cfg.cases {
            let case_seed = seeder.next_u64();
            match f(&mut TestRng::new(case_seed)) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject) => {
                    rejected += 1;
                    assert!(
                        rejected <= max_rejects,
                        "proptest stub: `{name}` rejected {rejected} cases via prop_assume!; \
                         strategy too narrow"
                    );
                }
                Err(TestCaseError::Fail(msg)) => panic!(
                    "proptest stub: test `{name}` failed at case #{accepted} \
                     (case seed {case_seed:#018x}, deterministic — rerun reproduces):\n{msg}"
                ),
            }
        }
    }
}

/// The [`Strategy`] trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values (stub: generation only, no shrink).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Derive a second strategy from each generated value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Keep only values satisfying `pred` (rejects by resampling).
        fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence,
                pred,
            }
        }
    }

    /// Strategies may be used behind references.
    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            // Bounded resampling; proptest rejects globally, the stub
            // retries locally which is equivalent for loose filters.
            for _ in 0..10_000 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!(
                "proptest stub: prop_filter({}) rejected 10000 samples in a row",
                self.whence
            );
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end.wrapping_sub(self.start) as u128;
                    let x = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                    self.start.wrapping_add((x % span) as $t)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi.wrapping_sub(lo) as u128).wrapping_add(1);
                    if span == 0 {
                        // Full-domain range: fold 128 random bits.
                        return (((rng.next_u64() as u128) << 64) | rng.next_u64() as u128) as $t;
                    }
                    let x = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                    lo.wrapping_add((x % span) as $t)
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, i128);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

/// Size specifications for collection strategies.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut test_runner::TestRng) -> usize {
        let span = (self.hi_inclusive - self.lo + 1) as u64;
        self.lo + rng.below(span) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use crate::SizeRange;

    /// Strategy yielding `Vec`s of `element` with length in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with element strategy and size range.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `Option` strategies (`proptest::option`).
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding `None` or `Some(inner)`.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Some` with probability 3/4, `None` otherwise (matches proptest's
    /// default weighting closely enough for tests).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Sampling strategies (`proptest::sample`).
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use crate::SizeRange;

    /// Strategy yielding order-preserving subsequences of a base vector.
    pub struct Subsequence<T> {
        base: Vec<T>,
        size: SizeRange,
    }

    /// Order-preserving random subsequence of `base` with length in `size`.
    pub fn subsequence<T: Clone>(base: Vec<T>, size: impl Into<SizeRange>) -> Subsequence<T> {
        Subsequence {
            base,
            size: size.into(),
        }
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;
        fn generate(&self, rng: &mut TestRng) -> Vec<T> {
            let n = self.base.len();
            let k = self.size.pick(rng).min(n);
            // Floyd's algorithm: k distinct indices, then emit in order.
            let mut chosen = vec![false; n];
            for j in (n - k)..n {
                let t = rng.below((j + 1) as u64) as usize;
                if chosen[t] {
                    chosen[j] = true;
                } else {
                    chosen[t] = true;
                }
            }
            self.base
                .iter()
                .zip(chosen.iter())
                .filter(|(_, &c)| c)
                .map(|(v, _)| v.clone())
                .collect()
        }
    }
}

/// `bool` strategies (`proptest::bool`).
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding each boolean with probability 1/2.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Uniform boolean strategy (stub for `proptest::bool::ANY`).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Everything a `proptest!` test usually imports.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Assert inside a proptest body; failure aborts only the current case
/// family with a report, like upstream `prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} at {}:{}", format_args!($($fmt)*), file!(), line!()),
            ));
        }
    };
}

/// `prop_assert!` for equality with a value dump.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` ({})\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            format_args!($($fmt)+),
            l,
            r
        );
    }};
}

/// `prop_assert!` for inequality with a value dump.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Discard the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Define property tests: each `fn name(pat in strategy, …) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    { ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )* } => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            $crate::test_runner::run(
                &cfg,
                stringify!($name),
                |__proptest_rng: &mut $crate::test_runner::TestRng|
                    -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strat),
                            __proptest_rng,
                        );
                    )+
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples((a, b) in (0i64..10, 5u32..=6), c in Just(3usize)) {
            prop_assert!((0..10).contains(&a));
            prop_assert!(b == 5 || b == 6);
            prop_assert_eq!(c, 3);
        }

        #[test]
        fn maps_and_vecs(v in crate::collection::vec((1i128..5).prop_map(|x| x * 2), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|x| [2, 4, 6, 8].contains(x)));
        }

        #[test]
        fn subsequence_is_ordered(s in crate::sample::subsequence(vec![1, 2, 3, 4, 5], 1..=5)) {
            prop_assert!(!s.is_empty());
            prop_assert!(s.windows(2).all(|w| w[0] < w[1]));
        }

        #[test]
        fn assume_rejects(x in 0u8..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    #[test]
    #[should_panic(expected = "proptest stub")]
    fn failures_panic_with_seed() {
        // No `#[test]` here: the fn is nested inside a test and is
        // invoked directly below.
        proptest! {
            fn always_fails(x in 0u8..2) {
                prop_assert!(x > 10);
            }
        }
        always_fails();
    }
}
