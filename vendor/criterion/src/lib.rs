//! Offline stand-in for the subset of `criterion` 0.5 this workspace
//! uses. The build environment has no access to crates.io, so this crate
//! keeps `cargo bench` compiling and produces simple wall-clock numbers
//! (median of N samples) instead of criterion's full statistics. Call
//! sites keep the upstream idiom, so restoring the real crate is a
//! one-line `Cargo.toml` change.

use std::fmt::Display;
use std::time::Instant;

/// Prevent the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for a parameterized benchmark (`function/parameter`).
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form, used inside a named group.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Run `f` repeatedly, recording one wall-clock sample per run.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up run, then `sample_size` timed runs.
        black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed().as_secs_f64());
        }
    }
}

fn run_one(name: &str, sample_size: usize, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size: sample_size.max(1),
    };
    f(&mut b);
    b.samples.sort_by(|x, y| x.total_cmp(y));
    let median = b.samples.get(b.samples.len() / 2).copied().unwrap_or(0.0);
    println!(
        "bench {name:<48} median {:>12.3} µs ({} samples)",
        median * 1e6,
        b.samples.len()
    );
}

/// Top-level benchmark driver (stub for `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Run a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.sample_size, |b| f(b));
        self
    }

    /// Run a parameterized benchmark.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&id.label, self.sample_size, |b| f(b, input));
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// Group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Run a named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, name), self.sample_size, |b| {
            f(b)
        });
        self
    }

    /// Run a parameterized benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &format!("{}/{}", self.name, id.label),
            self.sample_size,
            |b| f(b, input),
        );
        self
    }

    /// Finish the group (no-op in the stub; kept for API parity).
    pub fn finish(self) {}
}

/// Declare a group of benchmark functions (stub for `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declare the benchmark entry point (stub for `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
