//! The [`Curve`] type: a continuous piecewise-linear function on `[0, ∞)`.

use dnc_num::Rat;
use std::fmt;
use std::ops::Deref;

/// Breakpoint lists this long or shorter are stored inline in the
/// [`Curve`] value itself — no heap allocation. Real topologies are
/// dominated by token buckets (1 point), rate-latency curves (≤ 2) and
/// their small combinations, so 4 covers the overwhelming majority of
/// curves an analysis touches.
const INLINE_POINTS: usize = 4;

/// Small-vec breakpoint storage: inline array for ≤ [`INLINE_POINTS`]
/// breakpoints, spilling to a `Vec` beyond that. `Deref`s to the point
/// slice, so readers are untouched; equality/hash are slice-based and
/// therefore representation-independent (an inline curve and a spilled
/// curve with equal points compare equal, though canonical lengths make
/// that pairing unreachable in practice).
// The size asymmetry is the design: the inline array exists precisely
// so small curves pay no allocation, and boxing it (clippy's
// suggestion) would reintroduce one on every construction.
#[allow(clippy::large_enum_variant)]
enum PointBuf {
    Inline {
        len: u8,
        buf: [(Rat, Rat); INLINE_POINTS],
    },
    Heap(Vec<(Rat, Rat)>),
}

impl PointBuf {
    fn from_vec(v: Vec<(Rat, Rat)>) -> PointBuf {
        if v.len() <= INLINE_POINTS {
            let mut buf = [(Rat::ZERO, Rat::ZERO); INLINE_POINTS];
            for (slot, p) in buf.iter_mut().zip(v.iter()) {
                *slot = *p;
            }
            PointBuf::Inline {
                len: v.len() as u8,
                buf,
            }
        } else {
            PointBuf::Heap(v)
        }
    }

    fn as_slice(&self) -> &[(Rat, Rat)] {
        match self {
            PointBuf::Inline { len, buf } => buf.get(..*len as usize).unwrap_or(buf),
            PointBuf::Heap(v) => v,
        }
    }

    fn as_mut_slice(&mut self) -> &mut [(Rat, Rat)] {
        match self {
            PointBuf::Inline { len, buf } => {
                let n = (*len as usize).min(INLINE_POINTS);
                &mut buf[..n] // audit: allow(index, n is clamped to the buffer length)
            }
            PointBuf::Heap(v) => v,
        }
    }

    /// Shorten to `n` points (no-op when already shorter). A heap
    /// buffer stays heap even when it shrinks under the inline bound:
    /// canonicalization is the only shrinker and converts via
    /// [`PointBuf::from_vec`] on construction paths where it matters.
    fn truncate(&mut self, n: usize) {
        match self {
            PointBuf::Inline { len, .. } => *len = (*len).min(n as u8),
            PointBuf::Heap(v) => v.truncate(n),
        }
    }

    /// Apply `f` to every point, preserving the storage variant (no
    /// allocation for inline curves).
    fn map(&self, f: impl Fn(Rat, Rat) -> (Rat, Rat)) -> PointBuf {
        match self {
            PointBuf::Inline { len, buf } => {
                let mut out = *buf;
                for p in out.iter_mut().take(*len as usize) {
                    *p = f(p.0, p.1);
                }
                PointBuf::Inline {
                    len: *len,
                    buf: out,
                }
            }
            PointBuf::Heap(v) => PointBuf::Heap(v.iter().map(|&(x, y)| f(x, y)).collect()),
        }
    }
}

impl Deref for PointBuf {
    type Target = [(Rat, Rat)];
    #[inline]
    fn deref(&self) -> &[(Rat, Rat)] {
        self.as_slice()
    }
}

impl Clone for PointBuf {
    fn clone(&self) -> PointBuf {
        match self {
            PointBuf::Inline { len, buf } => PointBuf::Inline {
                len: *len,
                buf: *buf,
            },
            PointBuf::Heap(v) => {
                // The telemetry trail for the interning work: every
                // count here is a real allocation+copy of a segment
                // list. `dnc profile` surfaces it as `curve.clone.heap`
                // so cache/interning changes can prove copies dropped.
                dnc_telemetry::counter("curve.clone.heap", 1);
                PointBuf::Heap(v.clone())
            }
        }
    }
}

impl PartialEq for PointBuf {
    fn eq(&self, other: &PointBuf) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for PointBuf {}

impl std::hash::Hash for PointBuf {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

/// A continuous piecewise-linear function `f : [0, ∞) → ℚ`.
///
/// Representation: a non-empty list of breakpoints `(x_i, y_i)` with
/// `x_0 = 0` and strictly increasing `x_i`, plus a `final_slope`. Between
/// consecutive breakpoints the function interpolates linearly; after the
/// last breakpoint it continues affinely with `final_slope`. The
/// representation is kept *canonical* (no collinear interior breakpoints),
/// so derived structural equality coincides with functional equality.
///
/// Values may be negative (intermediate service-curve computations produce
/// dips below zero before the `[·]⁺` clamp); most analysis entry points
/// check shape predicates before trusting a curve.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Curve {
    /// Breakpoints; invariant: non-empty, `points[0].0 == 0`, strictly
    /// increasing x, no collinear interior points. Stored inline for
    /// the ≤ 4-breakpoint curves that dominate real topologies.
    points: PointBuf,
    /// Slope after the last breakpoint.
    final_slope: Rat,
}

/// One maximal linear piece of a [`Curve`], as reported by
/// [`Curve::segments`]. `end == None` marks the unbounded final piece.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Segment {
    /// Left endpoint of the piece.
    pub start: Rat,
    /// Value at `start`.
    pub value: Rat,
    /// Slope on the piece.
    pub slope: Rat,
    /// Right endpoint, `None` for the final unbounded piece.
    pub end: Option<Rat>,
}

impl Curve {
    /// Build a curve from breakpoints and a final slope, canonicalizing the
    /// representation. No shape is assumed or enforced: the result need not
    /// be concave, convex, or nondecreasing — analysis entry points check
    /// the predicates they rely on.
    ///
    /// # Panics
    /// Panics if `points` is empty, does not start at `x = 0`, or has
    /// non-increasing x coordinates.
    pub fn from_points(points: Vec<(Rat, Rat)>, final_slope: Rat) -> Curve {
        assert!(!points.is_empty(), "Curve::from_points: empty");
        assert!(
            points[0].0.is_zero(), // audit: allow(index, representation invariant: points is non-empty)
            "Curve::from_points: first breakpoint must be at x=0, got {}",
            points[0].0 // audit: allow(index, representation invariant: points is non-empty)
        );
        for (a, b) in points.iter().zip(points.iter().skip(1)) {
            assert!(
                a.0 < b.0,
                "Curve::from_points: x not strictly increasing ({} then {})",
                a.0,
                b.0
            );
        }
        let mut c = Curve {
            points: PointBuf::from_vec(points),
            final_slope,
        };
        c.canonicalize();
        crate::invariant::well_formed(&c, "from_points");
        c
    }

    /// Remove interior breakpoints that lie on the line through their
    /// neighbours, and a final breakpoint whose incoming slope equals
    /// `final_slope`. In place, allocation-free.
    fn canonicalize(&mut self) {
        loop {
            let pts = self.points.as_slice();
            let n = pts.len();
            if n == 1 {
                return;
            }
            // Drop the last breakpoint if the segment into it has the same
            // slope as the final slope.
            let (x_prev, y_prev) = pts[n - 2]; // audit: allow(index, n >= 2 on this branch)
            let (x_last, y_last) = pts[n - 1]; // audit: allow(index, n >= 2 on this branch)
            let incoming = (y_last - y_prev) / (x_last - x_prev);
            if incoming == self.final_slope {
                self.points.truncate(n - 1);
                continue;
            }
            break;
        }
        // Drop collinear interior points in one compaction pass: `w` is
        // the write cursor, `s[w - 1]` the last kept point.
        let n = self.points.len();
        if n > 2 {
            let s = self.points.as_mut_slice();
            let mut w = 1usize;
            for i in 1..n - 1 {
                let (x0, y0) = s[w - 1]; // audit: allow(index, w >= 1 and w <= i throughout the compaction)
                let (x1, y1) = s[i]; // audit: allow(index, loop index i < n - 1)
                let (x2, y2) = s[i + 1]; // audit: allow(index, loop index i < n - 1)
                let s01 = (y1 - y0) / (x1 - x0);
                let s12 = (y2 - y1) / (x2 - x1);
                if s01 != s12 {
                    s[w] = (x1, y1); // audit: allow(index, w <= i < n - 1)
                    w += 1;
                }
            }
            s[w] = s[n - 1]; // audit: allow(index, w <= n - 1 after dropping interior points)
            self.points.truncate(w + 1);
        }
    }

    /// The breakpoints (canonical form).
    #[inline]
    pub fn points(&self) -> &[(Rat, Rat)] {
        self.points.as_slice()
    }

    /// Slope of the unbounded final piece (the *ultimate rate*).
    #[inline]
    pub fn final_slope(&self) -> Rat {
        self.final_slope
    }

    /// x coordinate of the last breakpoint (start of the affine tail).
    #[inline]
    pub fn tail_start(&self) -> Rat {
        self.points.last().unwrap().0 // audit: allow(unwrap, representation invariant: points is non-empty)
    }

    /// Value at `t >= 0`.
    ///
    /// # Panics
    /// Panics if `t < 0`.
    pub fn eval(&self, t: Rat) -> Rat {
        assert!(!t.is_negative(), "Curve::eval at negative t = {t}");
        // Find the piece containing t: last breakpoint with x <= t.
        let idx = match self.points.binary_search_by(|p| p.0.cmp(&t)) {
            Ok(i) => i,
            Err(0) => unreachable!("x0 == 0 <= t"), // audit: allow(panic, first breakpoint is at x = 0 <= t, so the search cannot land before index 0)
            Err(i) => i - 1,
        };
        let (x0, y0) = self.points[idx]; // audit: allow(index, binary search returns a position within points)
        let slope = if idx + 1 < self.points.len() {
            let (x1, y1) = self.points[idx + 1]; // audit: allow(index, binary search returns a position within points)
            (y1 - y0) / (x1 - x0)
        } else {
            self.final_slope
        };
        y0 + slope * (t - x0)
    }

    /// Iterate over the maximal linear pieces.
    pub fn segments(&self) -> impl Iterator<Item = Segment> + '_ {
        let n = self.points.len();
        (0..n).map(move |i| {
            let (x0, y0) = self.points[i]; // audit: allow(index, i ranges over 0..n, and i + 1 is guarded)
            if i + 1 < n {
                let (x1, y1) = self.points[i + 1]; // audit: allow(index, guarded by i + 1 < n)
                Segment {
                    start: x0,
                    value: y0,
                    slope: (y1 - y0) / (x1 - x0),
                    end: Some(x1),
                }
            } else {
                Segment {
                    start: x0,
                    value: y0,
                    slope: self.final_slope,
                    end: None,
                }
            }
        })
    }

    /// The slopes of successive pieces (length = number of breakpoints).
    pub fn slopes(&self) -> Vec<Rat> {
        self.segments().map(|s| s.slope).collect()
    }

    /// `f(0)`.
    #[inline]
    pub fn at_zero(&self) -> Rat {
        self.points[0].1 // audit: allow(index, representation invariant: points is non-empty)
    }

    /// `true` iff every piece has non-negative slope.
    pub fn is_nondecreasing(&self) -> bool {
        self.segments().all(|s| !s.slope.is_negative())
    }

    /// `true` iff piece slopes are non-increasing (concave function).
    pub fn is_concave(&self) -> bool {
        let s = self.slopes();
        s.iter().zip(s.iter().skip(1)).all(|(a, b)| a >= b)
    }

    /// `true` iff piece slopes are non-decreasing (convex function).
    pub fn is_convex(&self) -> bool {
        let s = self.slopes();
        s.iter().zip(s.iter().skip(1)).all(|(a, b)| a <= b)
    }

    /// `true` iff the curve is identically zero.
    pub fn is_zero(&self) -> bool {
        // audit: allow(index, representation invariant: points is non-empty)
        self.points.len() == 1 && self.points[0].1.is_zero() && self.final_slope.is_zero()
    }

    /// `f(t + d)` as a curve in `t` (left shift / "output bound" shift).
    /// Preserves concavity, convexity, and the nondecreasing property.
    ///
    /// # Panics
    /// Panics if `d < 0`.
    pub fn shift_left(&self, d: Rat) -> Curve {
        assert!(!d.is_negative(), "shift_left by negative {d}");
        if d.is_zero() {
            return self.clone();
        }
        let y0 = self.eval(d);
        let mut pts = vec![(Rat::ZERO, y0)];
        for &(x, y) in self.points.iter() {
            if x > d {
                pts.push((x - d, y));
            }
        }
        Curve::from_points(pts, self.final_slope)
    }

    /// Right shift that *holds* the initial value: the result equals
    /// `f(0)` on `[0, d]` and `f(t − d)` afterwards. This is the building
    /// block of min-plus convolution (a candidate `f(x_i) + g(t − x_i)`
    /// extended leftwards by a constant). Preserves the nondecreasing
    /// property; concavity is generally lost (a flat piece is prepended).
    ///
    /// # Panics
    /// Panics if `d < 0`.
    pub fn shift_right_hold(&self, d: Rat) -> Curve {
        assert!(!d.is_negative(), "shift_right_hold by negative {d}");
        if d.is_zero() {
            return self.clone();
        }
        let mut pts = vec![(Rat::ZERO, self.at_zero())];
        for &(x, y) in self.points.iter() {
            pts.push((x + d, y));
        }
        Curve::from_points(pts, self.final_slope)
    }

    /// Pure right shift for *service* curves: the result is `0` on `[0, d]`
    /// and `f(t − d)` afterwards (equivalent to `f ⊗ δ_d`). Meaningful for
    /// curves with `f(0) = 0`; preserves the nondecreasing property, and
    /// convexity for convex nondecreasing service curves.
    ///
    /// # Panics
    /// Panics if `d < 0` or `f(0) != 0`.
    pub fn delay_by(&self, d: Rat) -> Curve {
        assert!(!d.is_negative(), "delay_by negative {d}");
        assert!(
            self.at_zero().is_zero(),
            "delay_by requires f(0)=0, got {}",
            self.at_zero()
        );
        self.shift_right_hold(d)
    }

    /// Add a constant to the curve. Shape-neutral: concavity, convexity,
    /// and the nondecreasing property are unchanged.
    pub fn shift_up(&self, c: Rat) -> Curve {
        Curve {
            points: self.points.map(|x, y| (x, y + c)),
            final_slope: self.final_slope,
        }
    }

    /// Multiply values by a constant `k`. For `k ≥ 0` this preserves
    /// concavity, convexity, and the nondecreasing property; `k < 0` swaps
    /// concave/convex and reverses monotonicity.
    pub fn scale_y(&self, k: Rat) -> Curve {
        let mut c = Curve {
            points: self.points.map(|x, y| (x, y * k)),
            final_slope: self.final_slope * k,
        };
        c.canonicalize();
        c
    }

    /// Stretch time by `k > 0`: result `g(t) = f(t / k)`. Preserves
    /// concavity, convexity, and the nondecreasing property.
    ///
    /// # Panics
    /// Panics unless `k > 0`.
    pub fn scale_x(&self, k: Rat) -> Curve {
        assert!(k.is_positive(), "scale_x requires k > 0, got {k}");
        let mut c = Curve {
            points: self.points.map(|x, y| (x * k, y)),
            final_slope: self.final_slope / k,
        };
        c.canonicalize();
        c
    }

    /// The positive part `max(f, 0)` — preserves convexity and the
    /// nondecreasing property (concavity is generally lost at the clamp).
    pub fn pos(&self) -> Curve {
        self.max(&Curve::zero())
    }

    /// The largest value the curve ever attains, or `None` if unbounded
    /// (positive final slope).
    pub fn sup_value(&self) -> Option<Rat> {
        if self.final_slope.is_positive() {
            return None;
        }
        self.points.iter().map(|&(_, y)| y).max()
    }

    /// Pointwise pseudo-inverse `f⁻¹(y) = inf { t ≥ 0 : f(t) ≥ y }` for
    /// nondecreasing curves. Returns `None` when `y` is never reached.
    ///
    /// # Panics
    /// Panics (debug) if the curve is not nondecreasing.
    pub fn pseudo_inverse(&self, y: Rat) -> Option<Rat> {
        debug_assert!(self.is_nondecreasing(), "pseudo_inverse of non-monotone");
        if y <= self.at_zero() {
            return Some(Rat::ZERO);
        }
        for seg in self.segments() {
            let seg_end_val = match seg.end {
                Some(e) => seg.value + seg.slope * (e - seg.start),
                None => {
                    // Final piece.
                    if seg.slope.is_positive() {
                        return Some(seg.start + (y - seg.value) / seg.slope);
                    } else {
                        return if seg.value >= y {
                            Some(seg.start)
                        } else {
                            None
                        };
                    }
                }
            };
            if seg_end_val >= y {
                if seg.slope.is_positive() {
                    let t = seg.start + (y - seg.value) / seg.slope;
                    return Some(t.max(seg.start));
                }
                // Flat segment already at level >= y: y <= value here.
                if seg.value >= y {
                    return Some(seg.start);
                }
                // slope zero but end value >= y > value: impossible.
                unreachable!("flat segment cannot increase"); // audit: allow(panic, zero-slope piece cannot climb from value < y to end value >= y)
            }
        }
        unreachable!("final segment handles the tail") // audit: allow(panic, the unbounded final piece returns unconditionally)
    }

    /// Collect the x coordinates of all breakpoints.
    pub fn breakpoint_xs(&self) -> Vec<Rat> {
        self.points.iter().map(|&(x, _)| x).collect()
    }

    /// Upper pseudo-inverse `f⁻¹₊(y) = sup { t ≥ 0 : f(t) ≤ y }` for
    /// nondecreasing curves. Returns `None` when the set is unbounded
    /// (the curve never exceeds `y`) and `Some(0)`-or-later otherwise;
    /// when `f(0) > y` the supremum of the empty set is taken as `0`.
    pub fn pseudo_inverse_upper(&self, y: Rat) -> Option<Rat> {
        debug_assert!(
            self.is_nondecreasing(),
            "pseudo_inverse_upper of non-monotone"
        );
        if self.at_zero() > y {
            return Some(Rat::ZERO);
        }
        // Walk pieces from the right: the answer is in the last piece
        // whose start value is <= y.
        let segs: Vec<Segment> = self.segments().collect();
        for seg in segs.iter().rev() {
            if seg.value <= y {
                return if seg.slope.is_positive() {
                    let t = seg.start + (y - seg.value) / seg.slope;
                    Some(match seg.end {
                        Some(e) => t.min(e),
                        None => t,
                    })
                } else {
                    // Flat at a level <= y: extends to the piece end, or
                    // forever on the final piece.
                    seg.end
                };
            }
        }
        Some(Rat::ZERO)
    }

    /// The *future minimum* `f̃(t) = inf_{s ≥ t} f(s)` — the largest
    /// nondecreasing function below `f`. Used to monotonize service
    /// curves that dip (e.g. FIFO-family curves whose cross traffic
    /// outruns the link rate for a while): any lower bound of a service
    /// curve is itself a valid service curve.
    pub fn future_min(&self) -> Curve {
        if self.is_nondecreasing() {
            return self.clone();
        }
        // The final piece must be nondecreasing for the infimum to exist.
        assert!(
            !self.final_slope().is_negative(),
            "future_min: curve decreases forever"
        );
        let segs: Vec<Segment> = self.segments().collect();
        // Build right-to-left. On the final piece (slope >= 0) f̃ = f; on
        // every earlier piece f̃(t) = min(inf_{[t, end]} f, m) with m the
        // infimum of f on [end, ∞).
        let last = *segs.last().unwrap(); // audit: allow(unwrap, segments yields one piece per breakpoint; points is non-empty)
        let mut rev: Vec<(Rat, Rat)> = vec![(last.start, last.value)];
        let mut m = last.value;
        for seg in segs.iter().rev().skip(1) {
            let end = seg.end.expect("only the last piece is unbounded"); // audit: allow(expect, rev().skip(1) visits only bounded pieces)
            let end_val = seg.value + seg.slope * (end - seg.start);
            m = m.min(end_val);
            if seg.slope.is_negative() {
                // f decreasing: inf over [t, end] is f(end) >= m? No:
                // m already includes f(end), so f̃ is the constant m.
                rev.push((seg.start, m));
            } else if seg.value >= m {
                // Increasing but everything at or above m: clamped flat.
                rev.push((seg.start, m));
            } else if end_val <= m {
                // Increasing and entirely below m: f̃ = f.
                rev.push((seg.start, seg.value));
            } else {
                // Crosses the level m at t*: f below, then flat at m.
                let t_star = seg.start + (m - seg.value) / seg.slope;
                rev.push((t_star, m));
                rev.push((seg.start, seg.value));
            }
            m = m.min(seg.value);
        }
        rev.reverse();
        rev.dedup_by(|b, a| a.0 == b.0);
        let out = Curve::from_points(rev, self.final_slope());
        debug_assert!(out.is_nondecreasing());
        out
    }
}

impl fmt::Debug for Curve {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Curve[")?;
        for (i, (x, y)) in self.points.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "({x},{y})")?;
        }
        write!(f, "; slope {}]", self.final_slope)
    }
}

impl fmt::Display for Curve {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnc_num::{int, rat};

    #[test]
    fn canonicalization_removes_collinear() {
        let c = Curve::from_points(
            vec![(int(0), int(0)), (int(1), int(1)), (int(2), int(2))],
            int(1),
        );
        assert_eq!(c.points().len(), 1);
        assert_eq!(c, Curve::from_points(vec![(int(0), int(0))], int(1)));
    }

    #[test]
    fn eval_pieces() {
        // f(t) = 2 + t on [0,2], then slope 3.
        let c = Curve::from_points(vec![(int(0), int(2)), (int(2), int(4))], int(3));
        assert_eq!(c.eval(int(0)), int(2));
        assert_eq!(c.eval(int(1)), int(3));
        assert_eq!(c.eval(int(2)), int(4));
        assert_eq!(c.eval(int(4)), int(10));
        assert_eq!(c.eval(rat(1, 2)), rat(5, 2));
    }

    #[test]
    fn shape_predicates() {
        let concave = Curve::from_points(vec![(int(0), int(0)), (int(1), int(2))], int(1));
        assert!(concave.is_concave());
        assert!(!concave.is_convex());
        assert!(concave.is_nondecreasing());

        let convex = Curve::from_points(vec![(int(0), int(0)), (int(1), int(0))], int(2));
        assert!(convex.is_convex());
        assert!(!convex.is_concave());

        let line = Curve::from_points(vec![(int(0), int(0))], int(1));
        assert!(line.is_concave() && line.is_convex());
    }

    #[test]
    fn shifts() {
        let c = Curve::from_points(vec![(int(0), int(1)), (int(2), int(5))], int(1));
        let l = c.shift_left(int(1));
        assert_eq!(l.eval(int(0)), int(3));
        assert_eq!(l.eval(int(1)), int(5));
        assert_eq!(l.eval(int(2)), int(6));

        let r = c.shift_right_hold(int(3));
        assert_eq!(r.eval(int(0)), int(1));
        assert_eq!(r.eval(int(3)), int(1));
        assert_eq!(r.eval(int(5)), int(5));
    }

    #[test]
    fn delay_by_requires_zero_start() {
        let beta = Curve::from_points(vec![(int(0), int(0))], int(2));
        let d = beta.delay_by(int(3));
        assert_eq!(d.eval(int(3)), int(0));
        assert_eq!(d.eval(int(5)), int(4));
    }

    #[test]
    #[should_panic(expected = "f(0)=0")]
    fn delay_by_rejects_nonzero_start() {
        let c = Curve::from_points(vec![(int(0), int(1))], int(2));
        let _ = c.delay_by(int(1));
    }

    #[test]
    fn scale_ops() {
        let c = Curve::from_points(vec![(int(0), int(0)), (int(2), int(2))], int(2));
        let sy = c.scale_y(int(3));
        assert_eq!(sy.eval(int(2)), int(6));
        assert_eq!(sy.final_slope(), int(6));
        let sx = c.scale_x(int(2));
        assert_eq!(sx.eval(int(4)), int(2));
        assert_eq!(sx.final_slope(), int(1));
    }

    #[test]
    fn pseudo_inverse_basics() {
        // Token-bucket-like: 2 + t/2.
        let c = Curve::from_points(vec![(int(0), int(2))], rat(1, 2));
        assert_eq!(c.pseudo_inverse(int(0)), Some(int(0)));
        assert_eq!(c.pseudo_inverse(int(2)), Some(int(0)));
        assert_eq!(c.pseudo_inverse(int(3)), Some(int(2)));
        // Bounded curve: saturates at 4.
        let b = Curve::from_points(vec![(int(0), int(0)), (int(4), int(4))], int(0));
        assert_eq!(b.pseudo_inverse(int(4)), Some(int(4)));
        assert_eq!(b.pseudo_inverse(int(5)), None);
    }

    #[test]
    fn pseudo_inverse_flat_segment() {
        // 0 -> 2 on [0,1], flat on [1,3], then slope 1.
        let c = Curve::from_points(
            vec![(int(0), int(0)), (int(1), int(2)), (int(3), int(2))],
            int(1),
        );
        assert_eq!(c.pseudo_inverse(int(2)), Some(int(1)));
        assert_eq!(c.pseudo_inverse(rat(5, 2)), Some(rat(7, 2)));
    }

    #[test]
    fn sup_value() {
        let b = Curve::from_points(vec![(int(0), int(0)), (int(4), int(4))], int(0));
        assert_eq!(b.sup_value(), Some(int(4)));
        let u = Curve::from_points(vec![(int(0), int(0))], int(1));
        assert_eq!(u.sup_value(), None);
    }

    #[test]
    fn pseudo_inverse_upper_basics() {
        // Rises to 4 by t=4, flat on [4,8], then rises again.
        let c = Curve::from_points(
            vec![(int(0), int(0)), (int(4), int(4)), (int(8), int(4))],
            int(1),
        );
        assert_eq!(c.pseudo_inverse_upper(int(2)), Some(int(2)));
        assert_eq!(c.pseudo_inverse_upper(int(4)), Some(int(8)));
        assert_eq!(c.pseudo_inverse_upper(int(5)), Some(int(9)));
        // Value below f(0): empty set -> 0 by convention.
        let d = Curve::constant(int(3));
        assert_eq!(d.pseudo_inverse_upper(int(1)), Some(int(0)));
        // Never exceeded: unbounded.
        assert_eq!(d.pseudo_inverse_upper(int(3)), None);
        assert_eq!(d.pseudo_inverse_upper(int(7)), None);
    }

    #[test]
    fn future_min_monotonizes_dip() {
        // Rises to 3 at t=1, dips to 1 at t=3, rises with slope 2.
        let c = Curve::from_points(
            vec![(int(0), int(0)), (int(1), int(3)), (int(3), int(1))],
            int(2),
        );
        let m = c.future_min();
        assert!(m.is_nondecreasing());
        // Flat at 1 from where the rise first hits 1 (t=1/3) to t=3.
        assert_eq!(m.eval(rat(1, 3)), int(1));
        assert_eq!(m.eval(int(1)), int(1));
        assert_eq!(m.eval(int(2)), int(1));
        assert_eq!(m.eval(int(3)), int(1));
        assert_eq!(m.eval(int(4)), int(3));
        // Below the original everywhere (sampled).
        for k in 0..20 {
            let t = rat(k, 2);
            assert!(m.eval(t) <= c.eval(t));
        }
    }

    #[test]
    fn future_min_identity_for_monotone() {
        let c = Curve::rate_latency(int(2), int(1));
        assert_eq!(c.future_min(), c);
    }

    #[test]
    fn future_min_double_dip() {
        // Two dips: 0→4 (t=1), →2 (t=2), →5 (t=3), →3 (t=4), slope 1.
        let c = Curve::from_points(
            vec![
                (int(0), int(0)),
                (int(1), int(4)),
                (int(2), int(2)),
                (int(3), int(5)),
                (int(4), int(3)),
            ],
            int(1),
        );
        let m = c.future_min();
        assert!(m.is_nondecreasing());
        for k in 0..24 {
            let t = rat(k, 2);
            assert!(m.eval(t) <= c.eval(t), "above original at {t}");
        }
        // Tight where it matters: equals the running future minimum.
        assert_eq!(m.eval(int(1)), int(2)); // future min after t=1 is 2
        assert_eq!(m.eval(int(3)), int(3)); // future min after t=3 is 3
        assert_eq!(m.eval(int(5)), int(4));
    }

    #[test]
    fn segments_iteration() {
        let c = Curve::from_points(vec![(int(0), int(0)), (int(2), int(4))], int(1));
        let segs: Vec<Segment> = c.segments().collect();
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].slope, int(2));
        assert_eq!(segs[0].end, Some(int(2)));
        assert_eq!(segs[1].slope, int(1));
        assert_eq!(segs[1].end, None);
    }
}
