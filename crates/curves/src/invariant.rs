//! Runtime invariant checks behind the `debug-invariants` cargo feature.
//!
//! Every function here is a no-op unless the crate is built with
//! `--features debug-invariants`, in which case the min-plus operations and
//! curve constructors assert their postconditions on every call:
//!
//! * representation well-formedness (breakpoints start at `x = 0`, strictly
//!   increasing, canonical form),
//! * shape preservation (convolution of nondecreasing curves is
//!   nondecreasing, deconvolution stays nondecreasing, ...),
//! * bound soundness (`hdev ≥ 0` and `α(t) ≤ β(t + d)` at the candidate
//!   abscissae, `vdev` dominates the pointwise excess),
//! * envelope inequalities (`(f ⊗ g)(t) ≤ f(t) + g(0)` and symmetrically —
//!   the `s = t` / `s = 0` candidates of the infimum).
//!
//! All checks run in exact `Rat` arithmetic, whose operators are
//! overflow-checked (they panic with a diagnostic rather than wrapping), so
//! a passing check is a proof for the sampled points, not an approximation.
//!
//! The whole test suite runs under this feature in CI; the checks are
//! deliberately `assert!`-based (not `debug_assert!`) so they also fire in
//! `--release` CI runs when the feature is on.

use crate::Curve;
use dnc_num::Rat;

/// `true` when the crate was built with `--features debug-invariants`.
pub const ENABLED: bool = cfg!(feature = "debug-invariants");

/// Sampling abscissae for pointwise checks: both curves' breakpoints plus
/// one point past the joint affine tail (enough to decide PWL inequalities
/// everywhere when combined with the tail-rate comparison done separately).
#[cfg(feature = "debug-invariants")]
fn sample_xs(curves: &[&Curve]) -> Vec<Rat> {
    let mut xs: Vec<Rat> = Vec::new();
    let mut tail = Rat::ZERO;
    for c in curves {
        xs.extend(c.breakpoint_xs());
        tail = tail.max(c.tail_start());
    }
    xs.push(tail + Rat::ONE);
    xs.sort();
    xs.dedup();
    xs
}

/// Representation well-formedness: non-empty, first breakpoint at `x = 0`,
/// strictly increasing x coordinates. (Canonicality — no collinear interior
/// breakpoints — is maintained by `canonicalize` and re-checked by the
/// constructor itself; this check guards the parts that later arithmetic
/// relies on for correctness.)
#[cfg(feature = "debug-invariants")]
pub(crate) fn well_formed(c: &Curve, ctx: &str) {
    let pts = c.points();
    assert!(
        !pts.is_empty(),
        "invariant[{ctx}]: curve has no breakpoints"
    );
    let first_x = pts.iter().map(|&(x, _)| x).next();
    assert!(
        first_x == Some(Rat::ZERO),
        "invariant[{ctx}]: first breakpoint not at x=0 in {c}"
    );
    for (a, b) in pts.iter().zip(pts.iter().skip(1)) {
        assert!(
            a.0 < b.0,
            "invariant[{ctx}]: breakpoints not strictly increasing ({} then {}) in {c}",
            a.0,
            b.0
        );
    }
}

#[cfg(not(feature = "debug-invariants"))]
#[inline(always)]
pub(crate) fn well_formed(_c: &Curve, _ctx: &str) {}

/// Wide-sense-increasing check.
#[cfg(feature = "debug-invariants")]
pub(crate) fn nondecreasing(c: &Curve, ctx: &str) {
    assert!(
        c.is_nondecreasing(),
        "invariant[{ctx}]: curve not wide-sense increasing: {c}"
    );
}

#[cfg(not(feature = "debug-invariants"))]
#[inline(always)]
pub(crate) fn nondecreasing(_c: &Curve, _ctx: &str) {}

/// Concavity check (arrival-curve shape).
#[cfg(feature = "debug-invariants")]
pub(crate) fn concave(c: &Curve, ctx: &str) {
    assert!(c.is_concave(), "invariant[{ctx}]: curve not concave: {c}");
}

#[cfg(not(feature = "debug-invariants"))]
#[inline(always)]
pub(crate) fn concave(_c: &Curve, _ctx: &str) {}

/// Convexity check (service-curve shape).
#[cfg(feature = "debug-invariants")]
pub(crate) fn convex(c: &Curve, ctx: &str) {
    assert!(c.is_convex(), "invariant[{ctx}]: curve not convex: {c}");
}

#[cfg(not(feature = "debug-invariants"))]
#[inline(always)]
pub(crate) fn convex(_c: &Curve, _ctx: &str) {}

/// Postconditions of `conv(f, g)` for nondecreasing operands: the result is
/// well-formed, nondecreasing, starts at `f(0) + g(0)`, and lies below both
/// single-candidate envelopes `f(t) + g(0)` and `g(t) + f(0)`.
#[cfg(feature = "debug-invariants")]
pub(crate) fn conv_post(f: &Curve, g: &Curve, out: &Curve) {
    well_formed(out, "conv");
    // The pointwise postconditions below assume the operands respect
    // `conv`'s wide-sense-increasing precondition; don't pile a misleading
    // secondary failure on top of a precondition violation.
    if f.is_nondecreasing() && g.is_nondecreasing() {
        nondecreasing(out, "conv");
        assert!(
            out.at_zero() == f.at_zero() + g.at_zero(),
            "invariant[conv]: (f⊗g)(0) = {} differs from f(0)+g(0) = {}",
            out.at_zero(),
            f.at_zero() + g.at_zero()
        );
        for t in sample_xs(&[f, g, out]) {
            let v = out.eval(t);
            assert!(
                v <= f.eval(t) + g.at_zero(),
                "invariant[conv]: result above f(t)+g(0) at t={t}"
            );
            assert!(
                v <= g.eval(t) + f.at_zero(),
                "invariant[conv]: result above g(t)+f(0) at t={t}"
            );
        }
    }
    assert!(
        out.final_slope() == f.final_slope().min(g.final_slope()),
        "invariant[conv]: ultimate rate {} is not min({}, {})",
        out.final_slope(),
        f.final_slope(),
        g.final_slope()
    );
}

#[cfg(not(feature = "debug-invariants"))]
#[inline(always)]
pub(crate) fn conv_post(_f: &Curve, _g: &Curve, _out: &Curve) {}

/// Postconditions of `deconv(f, g)`: well-formed, nondecreasing (for
/// nondecreasing operands), and dominating the `s = 0` candidate
/// `f(t) − g(0)` pointwise.
#[cfg(feature = "debug-invariants")]
pub(crate) fn deconv_post(f: &Curve, g: &Curve, out: &Curve) {
    well_formed(out, "deconv");
    if f.is_nondecreasing() && g.is_nondecreasing() {
        nondecreasing(out, "deconv");
        for t in sample_xs(&[f, g, out]) {
            assert!(
                out.eval(t) >= f.eval(t) - g.at_zero(),
                "invariant[deconv]: result below f(t) − g(0) at t={t}"
            );
        }
    }
}

#[cfg(not(feature = "debug-invariants"))]
#[inline(always)]
pub(crate) fn deconv_post(_f: &Curve, _g: &Curve, _out: &Curve) {}

/// Postconditions of a horizontal-deviation computation: `d ≥ 0` and the
/// defining soundness property `α(t) ≤ β(t + d)` at the sampled abscissae.
#[cfg(feature = "debug-invariants")]
pub(crate) fn hdev_post(alpha: &Curve, beta: &Curve, d: Rat) {
    assert!(
        !d.is_negative(),
        "invariant[hdev]: negative delay bound {d}"
    );
    // `t ↦ α(t) − β(t + d)` is PWL with kinks at α's breakpoints and at
    // β's breakpoints pulled back by d; checking all kinks plus a tail
    // point decides the inequality everywhere except the far tail, which
    // the callers' rate precondition covers.
    let mut xs = sample_xs(&[alpha, beta]);
    xs.extend(
        beta.breakpoint_xs()
            .into_iter()
            .filter(|&x| x >= d)
            .map(|x| x - d),
    );
    xs.sort();
    xs.dedup();
    for t in xs {
        assert!(
            alpha.eval(t) <= beta.eval(t + d),
            "invariant[hdev]: α({t}) = {} > β({t}+{d}) = {} — bound unsound",
            alpha.eval(t),
            beta.eval(t + d)
        );
    }
}

#[cfg(not(feature = "debug-invariants"))]
#[inline(always)]
pub(crate) fn hdev_post(_alpha: &Curve, _beta: &Curve, _d: Rat) {}

/// Postconditions of a vertical-deviation computation: `v` dominates the
/// pointwise excess `α(t) − β(t)` at the sampled abscissae.
#[cfg(feature = "debug-invariants")]
pub(crate) fn vdev_post(alpha: &Curve, beta: &Curve, v: Rat) {
    for t in sample_xs(&[alpha, beta]) {
        assert!(
            alpha.eval(t) - beta.eval(t) <= v,
            "invariant[vdev]: excess at t={t} exceeds the bound {v}"
        );
    }
}

#[cfg(not(feature = "debug-invariants"))]
#[inline(always)]
pub(crate) fn vdev_post(_alpha: &Curve, _beta: &Curve, _v: Rat) {}

#[cfg(all(test, feature = "debug-invariants"))]
mod tests {
    use super::*;
    use dnc_num::int;

    #[test]
    fn enabled_reflects_feature() {
        assert!(ENABLED);
    }

    #[test]
    fn well_formed_accepts_constructors() {
        well_formed(&Curve::token_bucket(int(3), int(1)), "test");
        well_formed(&Curve::rate_latency(int(2), int(5)), "test");
        nondecreasing(&Curve::zero(), "test");
    }

    #[test]
    #[should_panic(expected = "bound unsound")]
    fn hdev_post_rejects_undersized_delay() {
        let a = Curve::token_bucket(int(4), int(1));
        let b = Curve::rate_latency(int(2), int(3));
        // True delay is 5; claim 1 and the check must fire.
        hdev_post(&a, &b, int(1));
    }

    #[test]
    #[should_panic(expected = "exceeds the bound")]
    fn vdev_post_rejects_undersized_backlog() {
        let a = Curve::token_bucket(int(4), int(1));
        let b = Curve::rate_latency(int(2), int(3));
        // True backlog is 7; claim 2.
        vdev_post(&a, &b, int(2));
    }
}
