//! Error type for curve operations that can fail on unstable inputs.

use std::fmt;

/// Errors from min-plus / deviation operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CurveError {
    /// A deviation or deconvolution diverges because the arrival's ultimate
    /// rate exceeds the service's ultimate rate (the system is unstable).
    Unstable {
        /// Ultimate rate of the arrival side.
        arrival_rate: String,
        /// Ultimate rate of the service side.
        service_rate: String,
    },
    /// The demanded amount of data is never served (bounded service curve).
    NeverServed,
    /// An operation received a curve violating its shape precondition.
    BadShape(&'static str),
}

impl fmt::Display for CurveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CurveError::Unstable {
                arrival_rate,
                service_rate,
            } => write!(
                f,
                "unstable: arrival rate {arrival_rate} exceeds service rate {service_rate}"
            ),
            CurveError::NeverServed => write!(f, "demanded data is never served"),
            CurveError::BadShape(what) => write!(f, "shape precondition violated: {what}"),
        }
    }
}

impl std::error::Error for CurveError {}
