//! Hash-consing interner: canonical curves → copyable [`CurveId`]s.
//!
//! The analysis layers pass the *same* handful of curves through
//! `conv`/`deconv`/`hdev` thousands of times (fixed-point passes,
//! coordinate descent, repeated admission ops). Structural cache keys
//! made that memoizable but not cheap: every key cloned every segment
//! of every operand, and every key comparison re-walked them. The
//! interner removes both costs: [`intern`] canonicalizes a [`Curve`]
//! into a global append-only arena and returns a 4-byte [`CurveId`],
//! with the guarantee
//!
//! > `intern(a) == intern(b)` ⇔ `a == b` (structural) ⇔ `a == b`
//! > (as functions, because canonical representations are unique).
//!
//! So id equality *is* curve equality, [`crate::cache::CacheKey`]
//! collapses to a few id words, and the shape classification of
//! [`crate::shape`] is computed once per distinct curve ([`shape`])
//! instead of once per operation.
//!
//! **Id stability and store lifetime.** The arena is append-only and
//! process-global: a [`CurveId`] stays valid (and keeps resolving to
//! the same curve) for the lifetime of the process. Unlike
//! [`crate::cache::CurveCache`], the store never evicts — its size is
//! bounded by the number of *distinct* curves the process ever
//! constructs, which the workloads here keep small (caches churn
//! through keys; the store only grows on genuinely new curves). The
//! trade-off is deliberate: eviction would invalidate outstanding ids
//! or force generation counters onto the hot path (DESIGN §18).
//!
//! Feature compatibility: the store is plain `RwLock` + `HashMap` state
//! with no thread-locals, safe under the parallel analysis fan-out;
//! `telemetry` counters (`intern.hit` / `intern.miss`) are no-ops when
//! the feature is off, and `debug-invariants` sees every stored curve
//! because only canonical [`Curve`] values (already checked by their
//! constructors) are interned.

use crate::shape::{self, ShapeInfo};
use crate::Curve;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// A copyable handle to one interned curve. Equality, hashing, and
/// ordering are O(1) on the id word and agree with structural curve
/// equality (ids are only minted by [`intern`], one per distinct
/// canonical curve).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CurveId(u32);

impl CurveId {
    /// The raw arena index (for cache-key words and diagnostics).
    #[inline]
    pub fn index(self) -> u32 {
        self.0
    }
}

struct Entry {
    curve: Arc<Curve>,
    shape: OnceLock<ShapeInfo>,
}

struct Inner {
    /// Structural curve → arena index. Keys are the same `Arc`s the
    /// arena holds, so each distinct curve is stored once.
    ids: HashMap<Arc<Curve>, u32>,
    arena: Vec<Entry>,
}

static STORE: OnceLock<RwLock<Inner>> = OnceLock::new();

fn store() -> &'static RwLock<Inner> {
    STORE.get_or_init(|| {
        RwLock::new(Inner {
            ids: HashMap::new(),
            arena: Vec::new(),
        })
    })
}

/// Intern a curve: return the id of the arena entry structurally equal
/// to `c`, creating one on first sight. No shape precondition —
/// concave, convex, or neither, any canonical-form curve interns.
/// Thread-safe; the common case is one read-locked hash lookup.
pub fn intern(c: &Curve) -> CurveId {
    let lock = store();
    {
        // A poisoned lock only means another thread panicked while
        // appending an unrelated entry; the map/arena are still
        // consistent (insertions happen map-last, see below).
        let inner = lock.read().unwrap_or_else(|p| p.into_inner());
        if let Some(&id) = inner.ids.get(c) {
            dnc_telemetry::counter("intern.hit", 1);
            return CurveId(id);
        }
    }
    let mut inner = lock.write().unwrap_or_else(|p| p.into_inner());
    if let Some(&id) = inner.ids.get(c) {
        dnc_telemetry::counter("intern.hit", 1);
        return CurveId(id);
    }
    assert!(
        inner.arena.len() < u32::MAX as usize,
        "curve interner: arena exhausted"
    );
    let id = inner.arena.len() as u32;
    let arc = Arc::new(c.clone());
    inner.arena.push(Entry {
        curve: Arc::clone(&arc),
        shape: OnceLock::new(),
    });
    inner.ids.insert(arc, id);
    dnc_telemetry::counter("intern.miss", 1);
    CurveId(id)
}

/// Resolve an id back to its curve (a shared handle — cloning the
/// `Arc` is two atomic ops, not a segment copy). The curve comes back
/// exactly as interned: canonical form and shape (concave/convex
/// classification) are preserved bit-for-bit.
pub fn resolve(id: CurveId) -> Arc<Curve> {
    let inner = store().read().unwrap_or_else(|p| p.into_inner());
    Arc::clone(&inner.arena[id.0 as usize].curve) // audit: allow(index, ids are only minted by intern and the arena is append-only)
}

/// The memoized [`shape::classify`] of an interned curve: computed on
/// first request, a `Copy` read afterwards.
pub fn shape_of(id: CurveId) -> ShapeInfo {
    let inner = store().read().unwrap_or_else(|p| p.into_inner());
    let entry = &inner.arena[id.0 as usize]; // audit: allow(index, ids are only minted by intern and the arena is append-only)
    *entry.shape.get_or_init(|| shape::classify(&entry.curve))
}

/// Number of distinct curves interned so far (diagnostics/tests).
pub fn store_len() -> usize {
    store()
        .read()
        .unwrap_or_else(|p| p.into_inner())
        .arena
        .len()
}

// --- the curve-kernel knob -------------------------------------------

/// Tri-state: 0 = read `DNC_CURVE_KERNEL` on first use, 1 = on, 2 = off.
static KERNEL: AtomicU8 = AtomicU8::new(0);

/// Whether the shape fast paths and id-keyed operation memos in
/// [`crate::minplus`]/[`crate::bounds`] are active. Defaults to **on**;
/// set the environment variable `DNC_CURVE_KERNEL=0` (or `off`) before
/// first use, or call [`set_kernel_enabled`], to force the general
/// candidate-envelope paths. Results are bit-identical either way —
/// the knob exists so the differential harnesses (`cargo xtask
/// kernel-bench`, the proptests) can prove exactly that.
pub fn kernel_enabled() -> bool {
    match KERNEL.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let on = !matches!(
                std::env::var("DNC_CURVE_KERNEL").as_deref(),
                Ok("0") | Ok("off") | Ok("false")
            );
            KERNEL.store(if on { 1 } else { 2 }, Ordering::Relaxed);
            on
        }
    }
}

/// Force the curve-kernel knob (overrides the environment variable).
pub fn set_kernel_enabled(on: bool) {
    KERNEL.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnc_num::{int, rat};

    #[test]
    fn interning_is_injective_on_structure() {
        let a = Curve::token_bucket(int(2), rat(1, 4));
        let b = Curve::token_bucket(int(2), rat(1, 4));
        let c = Curve::token_bucket(int(3), rat(1, 4));
        assert_eq!(intern(&a), intern(&b));
        assert_ne!(intern(&a), intern(&c));
        assert_eq!(*resolve(intern(&a)), a);
        assert_eq!(*resolve(intern(&c)), c);
    }

    #[test]
    fn equal_functions_get_equal_ids() {
        // Same function, different construction routes: canonical form
        // makes them structurally equal, so the ids coincide.
        let direct = Curve::rate(int(2));
        let collinear = Curve::from_points(vec![(int(0), int(0)), (int(1), int(2))], int(2));
        assert_eq!(direct, collinear);
        assert_eq!(intern(&direct), intern(&collinear));
    }

    #[test]
    fn shape_is_memoized_per_id() {
        let c = Curve::token_bucket(int(5), int(1));
        let id = intern(&c);
        let s1 = shape_of(id);
        let s2 = shape_of(id);
        assert_eq!(s1, s2);
        assert_eq!(s1.as_token_bucket(), Some((int(5), int(1))));
    }

    #[test]
    fn concurrent_interning_agrees() {
        let curves: Vec<Curve> = (0..8)
            .map(|i| Curve::token_bucket(int(100 + i), int(1)))
            .collect();
        let ids: Vec<Vec<CurveId>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| s.spawn(|| curves.iter().map(intern).collect::<Vec<_>>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for other in &ids[1..] {
            assert_eq!(&ids[0], other);
        }
    }
}
