//! Content-addressed memoization for exact curve computations.
//!
//! The curve algebra is **pure and exact**: every operation is a
//! deterministic function of its operand curves and rational parameters,
//! and [`Curve`]'s canonical form makes structural equality coincide with
//! functional equality. That combination is what makes memoization sound
//! here — a cache hit returns a value that is bit-identical to what the
//! recomputation would produce, so cached and uncached runs of an
//! analysis cannot differ (DESIGN.md §13).
//!
//! Keys are **full structural keys** ([`CacheKey`]: the operation tag
//! plus clones of every input the computation reads), never bare hashes:
//! a 64-bit fingerprint collision would silently return a wrong bound,
//! which this workspace never accepts in exchange for speed. The hash is
//! only the bucket index; equality is checked on the real inputs.
//!
//! [`CurveCache`] is a thread-safe memo table with telemetry `cache.hit`
//! / `cache.miss` counters (surfaced by `dnc profile`) and whole-table
//! eviction once a capacity is reached — the workloads that benefit
//! (repeated passes of a fixed-point iteration, successive admission
//! operations on a mostly-unchanged network) re-warm a cleared table in
//! one round, so an LRU's bookkeeping would cost more than it saves.

use crate::Curve;
use dnc_num::Rat;
use std::collections::HashMap;
use std::sync::Mutex;

/// A structural cache key: an operation tag plus every input the
/// computation reads. Build one with the fluent helpers, listing inputs
/// in a fixed order per tag:
///
/// ```
/// use dnc_curves::cache::CacheKey;
/// use dnc_curves::Curve;
/// use dnc_num::{int, rat};
///
/// let g = Curve::token_bucket(int(2), rat(1, 4));
/// let key = CacheKey::new("local_delay").curve(&g).rat(int(1));
/// assert_eq!(key, CacheKey::new("local_delay").curve(&g).rat(int(1)));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    tag: &'static str,
    curves: Vec<Curve>,
    rats: Vec<Rat>,
    words: Vec<u64>,
}

impl CacheKey {
    /// Start a key for the operation named `tag`.
    pub fn new(tag: &'static str) -> CacheKey {
        CacheKey {
            tag,
            curves: Vec::new(),
            rats: Vec::new(),
            words: Vec::new(),
        }
    }

    /// Append one operand curve. Any shape is accepted — no concave,
    /// convex, or monotone precondition; the key records the curve's
    /// canonical segments structurally, whatever they describe.
    pub fn curve(mut self, c: &Curve) -> CacheKey {
        self.curves.push(c.clone());
        self
    }

    /// Append a sequence of operand curves (order-sensitive). Like
    /// [`CacheKey::curve`], shape-agnostic: no concave/convex/monotone
    /// precondition is imposed on the operands.
    pub fn curve_seq<'a, I: IntoIterator<Item = &'a Curve>>(mut self, cs: I) -> CacheKey {
        self.curves.extend(cs.into_iter().cloned());
        self
    }

    /// Append one rational parameter.
    pub fn rat(mut self, r: Rat) -> CacheKey {
        self.rats.push(r);
        self
    }

    /// Append a sequence of rational parameters (order-sensitive).
    pub fn rat_seq<I: IntoIterator<Item = Rat>>(mut self, rs: I) -> CacheKey {
        self.rats.extend(rs);
        self
    }

    /// Append one discrete parameter (an enum discriminant, a count, …).
    pub fn word(mut self, w: u64) -> CacheKey {
        self.words.push(w);
        self
    }
}

/// A thread-safe memo table from [`CacheKey`] to a cloneable value.
///
/// Lookups record `cache.hit` / `cache.miss` telemetry counters. When an
/// insert would push the table past its capacity the whole table is
/// cleared first (counted under `cache.evictions`); see the module docs
/// for why whole-table eviction fits the workloads this serves.
#[derive(Debug)]
pub struct CurveCache<V> {
    map: Mutex<HashMap<CacheKey, V>>,
    capacity: usize,
}

/// Default capacity: plenty for every topology in the test suite and the
/// benchmark harness while bounding memory on adversarial inputs.
pub const DEFAULT_CAPACITY: usize = 8192;

impl<V> Default for CurveCache<V> {
    fn default() -> Self {
        CurveCache::new(DEFAULT_CAPACITY)
    }
}

impl<V> CurveCache<V> {
    /// An empty cache evicting wholesale at `capacity` entries.
    pub fn new(capacity: usize) -> CurveCache<V> {
        CurveCache {
            map: Mutex::new(HashMap::new()),
            capacity: capacity.max(1),
        }
    }

    fn locked(&self) -> std::sync::MutexGuard<'_, HashMap<CacheKey, V>> {
        // A poisoned map only means another thread panicked mid-insert of
        // an unrelated entry; every stored value is still a completed,
        // exact result.
        self.map.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Number of memoized entries.
    pub fn len(&self) -> usize {
        self.locked().len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.locked().is_empty()
    }

    /// Drop every entry.
    pub fn clear(&self) {
        self.locked().clear();
    }
}

impl<V: Clone> CurveCache<V> {
    /// Look `key` up, recording a hit or miss counter.
    pub fn lookup(&self, key: &CacheKey) -> Option<V> {
        let hit = self.locked().get(key).cloned();
        match hit {
            Some(v) => {
                dnc_telemetry::counter("cache.hit", 1);
                Some(v)
            }
            None => {
                dnc_telemetry::counter("cache.miss", 1);
                None
            }
        }
    }

    /// Insert a computed value, evicting wholesale at capacity.
    pub fn insert(&self, key: CacheKey, value: V) {
        let mut map = self.locked();
        if map.len() >= self.capacity {
            map.clear();
            dnc_telemetry::counter("cache.evictions", 1);
        }
        map.insert(key, value);
    }

    /// Memoize an infallible computation.
    pub fn get_or_insert_with(&self, key: CacheKey, compute: impl FnOnce() -> V) -> V {
        if let Some(v) = self.lookup(&key) {
            return v;
        }
        let v = compute();
        self.insert(key, v.clone());
        v
    }

    /// Memoize a fallible computation: return the cached value for `key`
    /// or run `compute`, caching only the `Ok` result (errors are
    /// recomputed — they are rare and carry context that should stay
    /// fresh).
    pub fn get_or_try_insert_with<E>(
        &self,
        key: CacheKey,
        compute: impl FnOnce() -> Result<V, E>,
    ) -> Result<V, E> {
        if let Some(v) = self.lookup(&key) {
            return Ok(v);
        }
        let v = compute()?;
        self.insert(key, v.clone());
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnc_num::{int, rat};

    #[test]
    fn keys_are_structural_not_hashed() {
        let a = CacheKey::new("op")
            .curve(&Curve::token_bucket(int(2), rat(1, 4)))
            .rat(int(1));
        let b = CacheKey::new("op")
            .curve(&Curve::token_bucket(int(2), rat(1, 4)))
            .rat(int(1));
        let c = CacheKey::new("op")
            .curve(&Curve::token_bucket(int(3), rat(1, 4)))
            .rat(int(1));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, b.clone().word(0), "extra input distinguishes keys");
    }

    #[test]
    fn memoizes_and_returns_identical_values() {
        let cache: CurveCache<Rat> = CurveCache::default();
        let key = || CacheKey::new("sum").rat(int(2)).rat(int(3));
        let mut calls = 0;
        let v1: Result<Rat, ()> = cache.get_or_try_insert_with(key(), || {
            calls += 1;
            Ok(int(5))
        });
        let v2: Result<Rat, ()> = cache.get_or_try_insert_with(key(), || {
            calls += 1;
            Ok(int(99))
        });
        assert_eq!(v1, Ok(int(5)));
        assert_eq!(v2, Ok(int(5)), "hit must return the first computation");
        assert_eq!(calls, 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn errors_are_not_cached() {
        let cache: CurveCache<Rat> = CurveCache::default();
        let key = || CacheKey::new("fail");
        let r: Result<Rat, &str> = cache.get_or_try_insert_with(key(), || Err("boom"));
        assert!(r.is_err());
        assert!(cache.is_empty());
        let r: Result<Rat, &str> = cache.get_or_try_insert_with(key(), || Ok(int(1)));
        assert_eq!(r, Ok(int(1)));
    }

    #[test]
    fn capacity_evicts_wholesale() {
        let cache: CurveCache<u64> = CurveCache::new(2);
        cache.insert(CacheKey::new("a"), 1);
        cache.insert(CacheKey::new("b"), 2);
        assert_eq!(cache.len(), 2);
        cache.insert(CacheKey::new("c"), 3);
        assert_eq!(cache.len(), 1, "table cleared before the new insert");
        assert_eq!(cache.lookup(&CacheKey::new("c")), Some(3));
    }

    #[test]
    fn shared_across_threads() {
        let cache: CurveCache<Rat> = CurveCache::default();
        std::thread::scope(|s| {
            for i in 0..4i64 {
                let cache = &cache;
                s.spawn(move || {
                    let key = CacheKey::new("t").rat(int(i % 2));
                    let _: Result<Rat, ()> = cache.get_or_try_insert_with(key, || Ok(int(i)));
                });
            }
        });
        assert_eq!(cache.len(), 2);
    }
}
