//! Content-addressed memoization for exact curve computations.
//!
//! The curve algebra is **pure and exact**: every operation is a
//! deterministic function of its operand curves and rational parameters,
//! and [`Curve`]'s canonical form makes structural equality coincide with
//! functional equality. That combination is what makes memoization sound
//! here — a cache hit returns a value that is bit-identical to what the
//! recomputation would produce, so cached and uncached runs of an
//! analysis cannot differ (DESIGN.md §13, §18).
//!
//! Keys are **full structural keys** ([`CacheKey`]), never bare hashes:
//! a 64-bit fingerprint collision would silently return a wrong bound,
//! which this workspace never accepts in exchange for speed. Curve
//! operands are recorded as hash-consed [`CurveId`]s from
//! [`crate::intern`] — id equality is curve equality (the interner is
//! injective on canonical structure), so the key stays a real structural
//! key while comparing and hashing in O(1) per operand instead of
//! re-walking every segment.
//!
//! [`CurveCache`] is a thread-safe memo table with telemetry `cache.hit`
//! / `cache.miss` counters (surfaced by `dnc profile`) and **true LRU
//! eviction**: an intrusive doubly-linked recency list threaded through
//! the slot slab, evicting exactly one least-recently-used entry per
//! overflowing insert (counted under `cache.evictions`). The previous
//! whole-table `clear()` made every record in `BENCH_throughput.json`
//! report `cache.hit_rate = 0` under churny workloads — one cold key
//! past capacity threw away every warm entry. The linked-list
//! bookkeeping is two index writes per touch, far cheaper than one
//! wholesale re-warm.

use crate::intern::{self, CurveId};
use crate::Curve;
use dnc_num::Rat;
use std::collections::HashMap;
use std::sync::Mutex;

/// A structural cache key: an operation tag plus every input the
/// computation reads. Build one with the fluent helpers, listing inputs
/// in a fixed order per tag:
///
/// ```
/// use dnc_curves::cache::CacheKey;
/// use dnc_curves::Curve;
/// use dnc_num::{int, rat};
///
/// let g = Curve::token_bucket(int(2), rat(1, 4));
/// let key = CacheKey::new("local_delay").curve(&g).rat(int(1));
/// assert_eq!(key, CacheKey::new("local_delay").curve(&g).rat(int(1)));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    tag: &'static str,
    curves: Vec<CurveId>,
    rats: Vec<Rat>,
    words: Vec<u64>,
}

impl CacheKey {
    /// Start a key for the operation named `tag`.
    pub fn new(tag: &'static str) -> CacheKey {
        CacheKey {
            tag,
            curves: Vec::new(),
            rats: Vec::new(),
            words: Vec::new(),
        }
    }

    /// Append one operand curve (interned: the key records its
    /// [`CurveId`], whose equality is structural curve equality). Any
    /// shape is accepted — no concave, convex, or monotone precondition.
    pub fn curve(mut self, c: &Curve) -> CacheKey {
        self.curves.push(intern::intern(c));
        self
    }

    /// Append an already-interned operand curve.
    pub fn curve_id(mut self, id: CurveId) -> CacheKey {
        self.curves.push(id);
        self
    }

    /// Append a sequence of operand curves (order-sensitive). Like
    /// [`CacheKey::curve`], shape-agnostic: no concave/convex/monotone
    /// precondition is imposed on the operands.
    pub fn curve_seq<'a, I: IntoIterator<Item = &'a Curve>>(mut self, cs: I) -> CacheKey {
        self.curves.extend(cs.into_iter().map(intern::intern));
        self
    }

    /// Append one rational parameter.
    pub fn rat(mut self, r: Rat) -> CacheKey {
        self.rats.push(r);
        self
    }

    /// Append a sequence of rational parameters (order-sensitive).
    pub fn rat_seq<I: IntoIterator<Item = Rat>>(mut self, rs: I) -> CacheKey {
        self.rats.extend(rs);
        self
    }

    /// Append one discrete parameter (an enum discriminant, a count, …).
    pub fn word(mut self, w: u64) -> CacheKey {
        self.words.push(w);
        self
    }
}

/// Slot-index sentinel for "no neighbour" in the recency list.
const NIL: usize = usize::MAX;

struct Slot<V> {
    key: CacheKey,
    value: V,
    /// Towards more recently used (NIL at the head).
    prev: usize,
    /// Towards less recently used (NIL at the tail).
    next: usize,
}

struct Lru<V> {
    map: HashMap<CacheKey, usize>,
    slots: Vec<Option<Slot<V>>>,
    free: Vec<usize>,
    /// Most recently used slot, NIL when empty.
    head: usize,
    /// Least recently used slot, NIL when empty.
    tail: usize,
}

impl<V> Lru<V> {
    fn new() -> Lru<V> {
        Lru {
            map: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    fn slot(&mut self, idx: usize) -> &mut Slot<V> {
        match self.slots.get_mut(idx) {
            Some(Some(s)) => s,
            _ => unreachable!("lru: dangling slot index"), // audit: allow(panic, map and recency list only reference occupied slots)
        }
    }

    /// Unlink `idx` from the recency list.
    fn detach(&mut self, idx: usize) {
        let (prev, next) = {
            let s = self.slot(idx);
            (s.prev, s.next)
        };
        if prev == NIL {
            self.head = next;
        } else {
            self.slot(prev).next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slot(next).prev = prev;
        }
    }

    /// Link `idx` as the most-recently-used entry.
    fn push_front(&mut self, idx: usize) {
        let old_head = self.head;
        {
            let s = self.slot(idx);
            s.prev = NIL;
            s.next = old_head;
        }
        if old_head != NIL {
            self.slot(old_head).prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Remove the least-recently-used entry. Returns `false` when empty.
    fn evict_tail(&mut self) -> bool {
        let idx = self.tail;
        if idx == NIL {
            return false;
        }
        self.detach(idx);
        if let Some(slot) = self.slots.get_mut(idx).and_then(Option::take) {
            self.map.remove(&slot.key);
        }
        self.free.push(idx);
        true
    }

    fn insert_front(&mut self, key: CacheKey, value: V) {
        let slot = Some(Slot {
            key: key.clone(),
            value,
            prev: NIL,
            next: NIL,
        });
        let idx = match self
            .free
            .pop()
            .and_then(|i| self.slots.get_mut(i).map(|s| (i, s)))
        {
            Some((i, reuse)) => {
                *reuse = slot;
                i
            }
            None => {
                self.slots.push(slot);
                self.slots.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
    }
}

/// A thread-safe memo table from [`CacheKey`] to a cloneable value.
///
/// Lookups record `cache.hit` / `cache.miss` telemetry counters and
/// refresh the entry's recency. When an insert would push the table past
/// its capacity, the **least recently used** entry — and only it — is
/// evicted first (one `cache.evictions` count per evicted entry).
#[derive(Debug)]
pub struct CurveCache<V> {
    inner: Mutex<LruBox<V>>,
    capacity: usize,
}

/// Newtype so the `Mutex` debug output stays readable.
struct LruBox<V>(Lru<V>);

impl<V> std::fmt::Debug for LruBox<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Lru(len={})", self.0.map.len())
    }
}

/// Default capacity: plenty for every topology in the test suite and the
/// benchmark harness while bounding memory on adversarial inputs.
pub const DEFAULT_CAPACITY: usize = 8192;

impl<V> Default for CurveCache<V> {
    fn default() -> Self {
        CurveCache::new(DEFAULT_CAPACITY)
    }
}

impl<V> CurveCache<V> {
    /// An empty cache with per-entry LRU eviction at `capacity` entries.
    pub fn new(capacity: usize) -> CurveCache<V> {
        CurveCache {
            inner: Mutex::new(LruBox(Lru::new())),
            capacity: capacity.max(1),
        }
    }

    fn locked(&self) -> std::sync::MutexGuard<'_, LruBox<V>> {
        // A poisoned table only means another thread panicked mid-insert
        // of an unrelated entry; every stored value is still a completed,
        // exact result.
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Number of memoized entries.
    pub fn len(&self) -> usize {
        self.locked().0.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.locked().0.map.is_empty()
    }

    /// Drop every entry.
    pub fn clear(&self) {
        let mut g = self.locked();
        g.0 = Lru::new();
    }
}

impl<V: Clone> CurveCache<V> {
    /// Look `key` up, recording a hit or miss counter and refreshing the
    /// entry's recency on a hit.
    pub fn lookup(&self, key: &CacheKey) -> Option<V> {
        let mut g = self.locked();
        let lru = &mut g.0;
        match lru.map.get(key).copied() {
            Some(idx) => {
                lru.detach(idx);
                lru.push_front(idx);
                let v = lru.slot(idx).value.clone();
                drop(g);
                dnc_telemetry::counter("cache.hit", 1);
                Some(v)
            }
            None => {
                drop(g);
                dnc_telemetry::counter("cache.miss", 1);
                None
            }
        }
    }

    /// Non-mutating probe: the value for `key` without touching recency
    /// or the hit/miss counters (diagnostics and the LRU model tests).
    pub fn peek(&self, key: &CacheKey) -> Option<V> {
        let mut g = self.locked();
        let lru = &mut g.0;
        lru.map
            .get(key)
            .copied()
            .map(|idx| lru.slot(idx).value.clone())
    }

    /// Insert a computed value as the most-recent entry, evicting the
    /// single least-recently-used entry if the table is full.
    pub fn insert(&self, key: CacheKey, value: V) {
        let mut g = self.locked();
        let lru = &mut g.0;
        if let Some(idx) = lru.map.get(&key).copied() {
            // Same key recomputed (two threads racing the same miss):
            // refresh value and recency; both values are bit-identical
            // by purity, so either is correct.
            lru.detach(idx);
            lru.slot(idx).value = value;
            lru.push_front(idx);
            return;
        }
        let mut evicted = 0u64;
        while lru.map.len() >= self.capacity {
            if !lru.evict_tail() {
                break;
            }
            evicted += 1;
        }
        lru.insert_front(key, value);
        drop(g);
        if evicted > 0 {
            dnc_telemetry::counter("cache.evictions", evicted);
        }
    }

    /// Memoize an infallible computation.
    pub fn get_or_insert_with(&self, key: CacheKey, compute: impl FnOnce() -> V) -> V {
        if let Some(v) = self.lookup(&key) {
            return v;
        }
        let v = compute();
        self.insert(key, v.clone());
        v
    }

    /// Memoize a fallible computation: return the cached value for `key`
    /// or run `compute`, caching only the `Ok` result (errors are
    /// recomputed — they are rare and carry context that should stay
    /// fresh).
    pub fn get_or_try_insert_with<E>(
        &self,
        key: CacheKey,
        compute: impl FnOnce() -> Result<V, E>,
    ) -> Result<V, E> {
        if let Some(v) = self.lookup(&key) {
            return Ok(v);
        }
        let v = compute()?;
        self.insert(key, v.clone());
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnc_num::{int, rat};

    #[test]
    fn keys_are_structural_not_hashed() {
        let a = CacheKey::new("op")
            .curve(&Curve::token_bucket(int(2), rat(1, 4)))
            .rat(int(1));
        let b = CacheKey::new("op")
            .curve(&Curve::token_bucket(int(2), rat(1, 4)))
            .rat(int(1));
        let c = CacheKey::new("op")
            .curve(&Curve::token_bucket(int(3), rat(1, 4)))
            .rat(int(1));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, b.clone().word(0), "extra input distinguishes keys");
    }

    #[test]
    fn interned_key_equals_curve_key() {
        let g = Curve::token_bucket(int(2), rat(1, 4));
        let id = crate::intern::intern(&g);
        assert_eq!(
            CacheKey::new("op").curve(&g),
            CacheKey::new("op").curve_id(id)
        );
    }

    #[test]
    fn memoizes_and_returns_identical_values() {
        let cache: CurveCache<Rat> = CurveCache::default();
        let key = || CacheKey::new("sum").rat(int(2)).rat(int(3));
        let mut calls = 0;
        let v1: Result<Rat, ()> = cache.get_or_try_insert_with(key(), || {
            calls += 1;
            Ok(int(5))
        });
        let v2: Result<Rat, ()> = cache.get_or_try_insert_with(key(), || {
            calls += 1;
            Ok(int(99))
        });
        assert_eq!(v1, Ok(int(5)));
        assert_eq!(v2, Ok(int(5)), "hit must return the first computation");
        assert_eq!(calls, 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn errors_are_not_cached() {
        let cache: CurveCache<Rat> = CurveCache::default();
        let key = || CacheKey::new("fail");
        let r: Result<Rat, &str> = cache.get_or_try_insert_with(key(), || Err("boom"));
        assert!(r.is_err());
        assert!(cache.is_empty());
        let r: Result<Rat, &str> = cache.get_or_try_insert_with(key(), || Ok(int(1)));
        assert_eq!(r, Ok(int(1)));
    }

    #[test]
    fn capacity_evicts_least_recently_used_only() {
        let cache: CurveCache<u64> = CurveCache::new(2);
        cache.insert(CacheKey::new("a"), 1);
        cache.insert(CacheKey::new("b"), 2);
        // Touch "a" so "b" becomes the LRU entry.
        assert_eq!(cache.lookup(&CacheKey::new("a")), Some(1));
        cache.insert(CacheKey::new("c"), 3);
        assert_eq!(cache.len(), 2, "exactly one entry evicted");
        assert_eq!(cache.peek(&CacheKey::new("b")), None, "LRU entry gone");
        assert_eq!(cache.peek(&CacheKey::new("a")), Some(1), "warm entry kept");
        assert_eq!(cache.peek(&CacheKey::new("c")), Some(3));
    }

    #[test]
    fn eviction_follows_recency_chain() {
        let cache: CurveCache<u64> = CurveCache::new(3);
        for (k, v) in [("a", 1), ("b", 2), ("c", 3)] {
            cache.insert(CacheKey::new(k).word(0), v);
        }
        // Recency now c > b > a; touch a and b, then overflow twice.
        cache.lookup(&CacheKey::new("a").word(0));
        cache.lookup(&CacheKey::new("b").word(0));
        cache.insert(CacheKey::new("d").word(0), 4); // evicts c
        cache.insert(CacheKey::new("e").word(0), 5); // evicts a
        assert_eq!(cache.peek(&CacheKey::new("c").word(0)), None);
        assert_eq!(cache.peek(&CacheKey::new("a").word(0)), None);
        assert_eq!(cache.peek(&CacheKey::new("b").word(0)), Some(2));
        assert_eq!(cache.peek(&CacheKey::new("d").word(0)), Some(4));
        assert_eq!(cache.peek(&CacheKey::new("e").word(0)), Some(5));
    }

    #[test]
    fn reinsert_refreshes_instead_of_duplicating() {
        let cache: CurveCache<u64> = CurveCache::new(2);
        cache.insert(CacheKey::new("a"), 1);
        cache.insert(CacheKey::new("b"), 2);
        cache.insert(CacheKey::new("a"), 1); // refresh, not duplicate
        cache.insert(CacheKey::new("c"), 3); // evicts b (a was refreshed)
        assert_eq!(cache.peek(&CacheKey::new("a")), Some(1));
        assert_eq!(cache.peek(&CacheKey::new("b")), None);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn shared_across_threads() {
        let cache: CurveCache<Rat> = CurveCache::default();
        std::thread::scope(|s| {
            for i in 0..4i64 {
                let cache = &cache;
                s.spawn(move || {
                    let key = CacheKey::new("t").rat(int(i % 2));
                    let _: Result<Rat, ()> = cache.get_or_try_insert_with(key, || Ok(int(i)));
                });
            }
        });
        assert_eq!(cache.len(), 2);
    }
}
