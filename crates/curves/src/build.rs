//! Named constructors for the curve shapes network calculus uses.

use crate::curve::Curve;
use dnc_num::Rat;

impl Curve {
    /// The identically-zero curve — trivially concave, convex, and
    /// nondecreasing.
    pub fn zero() -> Curve {
        Curve::from_points(vec![(Rat::ZERO, Rat::ZERO)], Rat::ZERO)
    }

    /// The constant curve `f(t) = c` — concave, convex, and nondecreasing
    /// (flat).
    pub fn constant(c: Rat) -> Curve {
        Curve::from_points(vec![(Rat::ZERO, c)], Rat::ZERO)
    }

    /// The affine curve `f(t) = b + r·t` — concave and convex; nondecreasing
    /// iff `r ≥ 0`.
    pub fn affine(b: Rat, r: Rat) -> Curve {
        Curve::from_points(vec![(Rat::ZERO, b)], r)
    }

    /// The pure rate curve `λ_r(t) = r·t` — concave, convex, and (for
    /// `r ≥ 0`) nondecreasing.
    pub fn rate(r: Rat) -> Curve {
        Curve::affine(Rat::ZERO, r)
    }

    /// Token-bucket arrival curve `γ_{σ,ρ}(t) = σ + ρ·t` (burst `σ`,
    /// sustained rate `ρ`). The result is concave and nondecreasing. No
    /// peak-rate cap; see [`Curve::token_bucket_peak`] for the capped form.
    ///
    /// # Panics
    /// Panics if `σ < 0` or `ρ < 0`.
    pub fn token_bucket(sigma: Rat, rho: Rat) -> Curve {
        assert!(!sigma.is_negative(), "token_bucket: σ < 0");
        assert!(!rho.is_negative(), "token_bucket: ρ < 0");
        let c = Curve::affine(sigma, rho);
        crate::invariant::concave(&c, "token_bucket");
        crate::invariant::nondecreasing(&c, "token_bucket");
        c
    }

    /// Peak-rate-capped token bucket `min{ p·t, σ + ρ·t }` — the paper's
    /// source model `b(I) = min{ I, σ + ρ·I }` with `p = 1` (unit links).
    /// The result is concave and nondecreasing.
    ///
    /// # Panics
    /// Panics unless `p > ρ ≥ 0` and `σ ≥ 0` (with `σ = 0` degenerating to
    /// the pure rate curve).
    pub fn token_bucket_peak(sigma: Rat, rho: Rat, p: Rat) -> Curve {
        assert!(!sigma.is_negative(), "token_bucket_peak: σ < 0");
        assert!(!rho.is_negative(), "token_bucket_peak: ρ < 0");
        assert!(
            p > rho,
            "token_bucket_peak: peak {p} must exceed rate {rho}"
        );
        if sigma.is_zero() {
            return Curve::rate(rho);
        }
        // Crossover where p·t = σ + ρ·t.
        let t_star = sigma / (p - rho);
        let c = Curve::from_points(vec![(Rat::ZERO, Rat::ZERO), (t_star, p * t_star)], rho);
        crate::invariant::concave(&c, "token_bucket_peak");
        crate::invariant::nondecreasing(&c, "token_bucket_peak");
        c
    }

    /// Rate-latency service curve `β_{R,T}(t) = R·(t − T)⁺` — convex and
    /// nondecreasing.
    ///
    /// # Panics
    /// Panics if `R < 0` or `T < 0`.
    pub fn rate_latency(r: Rat, t: Rat) -> Curve {
        assert!(!r.is_negative(), "rate_latency: R < 0");
        assert!(!t.is_negative(), "rate_latency: T < 0");
        if t.is_zero() {
            return Curve::rate(r);
        }
        let c = Curve::from_points(vec![(Rat::ZERO, Rat::ZERO), (t, Rat::ZERO)], r);
        crate::invariant::convex(&c, "rate_latency");
        crate::invariant::nondecreasing(&c, "rate_latency");
        c
    }

    /// Concave hull of several token buckets: `min_i γ_{σ_i, ρ_i}` — the
    /// standard multi-leaky-bucket constraint.
    ///
    /// # Panics
    /// Panics if the slice is empty.
    pub fn multi_token_bucket(buckets: &[(Rat, Rat)]) -> Curve {
        assert!(!buckets.is_empty(), "multi_token_bucket: empty");
        // audit: allow(index, buckets checked non-empty by the assert above)
        let mut acc = Curve::token_bucket(buckets[0].0, buckets[0].1);
        // audit: allow(index, buckets checked non-empty by the assert above)
        for &(s, r) in &buckets[1..] {
            acc = acc.min(&Curve::token_bucket(s, r));
        }
        crate::invariant::concave(&acc, "multi_token_bucket");
        crate::invariant::nondecreasing(&acc, "multi_token_bucket");
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnc_num::{int, rat};

    #[test]
    fn zero_and_constant() {
        assert!(Curve::zero().is_zero());
        let c = Curve::constant(int(5));
        assert_eq!(c.eval(int(100)), int(5));
    }

    #[test]
    fn token_bucket_shape() {
        let tb = Curve::token_bucket(int(3), rat(1, 2));
        assert_eq!(tb.eval(int(0)), int(3));
        assert_eq!(tb.eval(int(4)), int(5));
        assert!(tb.is_concave());
    }

    #[test]
    fn token_bucket_peak_shape() {
        // min{ t, 1 + t/4 }: crossover at t = 4/3.
        let tb = Curve::token_bucket_peak(int(1), rat(1, 4), int(1));
        assert_eq!(tb.eval(int(0)), int(0));
        assert_eq!(tb.eval(int(1)), int(1));
        assert_eq!(tb.eval(rat(4, 3)), rat(4, 3));
        assert_eq!(tb.eval(int(4)), int(2));
        assert!(tb.is_concave());
        assert!(tb.is_nondecreasing());
    }

    #[test]
    fn token_bucket_peak_zero_burst() {
        let tb = Curve::token_bucket_peak(int(0), rat(1, 4), int(1));
        assert_eq!(tb, Curve::rate(rat(1, 4)));
    }

    #[test]
    fn rate_latency_shape() {
        let b = Curve::rate_latency(int(2), int(3));
        assert_eq!(b.eval(int(0)), int(0));
        assert_eq!(b.eval(int(3)), int(0));
        assert_eq!(b.eval(int(5)), int(4));
        assert!(b.is_convex());
        assert!(b.is_nondecreasing());
        assert_eq!(Curve::rate_latency(int(2), int(0)), Curve::rate(int(2)));
    }

    #[test]
    fn multi_token_bucket_is_min() {
        let m = Curve::multi_token_bucket(&[(int(4), rat(1, 4)), (int(1), int(1))]);
        assert!(m.is_concave());
        assert_eq!(m.eval(int(0)), int(1));
        // Crossover where 1 + t = 4 + t/4 -> t = 4.
        assert_eq!(m.eval(int(4)), int(5));
        assert_eq!(m.eval(int(8)), int(6));
    }
}
