//! Functional transforms: exact composition and inversion of PWL curves.
//!
//! These power the "exact fluid" machinery (the paper's Lemmas 2–4): a
//! FIFO server's bit-index bookkeeping is the composition of cumulative
//! functions with (inverses of) other cumulative functions.

use crate::Curve;
use dnc_num::Rat;

/// Functional inverse of a *strictly increasing* (hence nondecreasing)
/// curve with `f(0) = 0` — every piece has positive slope. The result maps
/// amount → time and is itself strictly increasing; it swaps concave and
/// convex.
///
/// # Panics
/// Panics if a piece has non-positive slope or `f(0) != 0`.
pub fn inverse_strict(f: &Curve) -> Curve {
    let mut pts: Vec<(Rat, Rat)> = Vec::with_capacity(f.points().len());
    for seg in f.segments() {
        assert!(
            seg.slope.is_positive(),
            "inverse_strict: curve not strictly increasing"
        );
        pts.push((seg.value, seg.start));
    }
    assert!(
        pts[0].0.is_zero(), // audit: allow(index, segments yields at least one piece, so pts is non-empty)
        "inverse_strict: expected f(0) = 0 (cumulative function)"
    );
    let final_slope = f.final_slope().recip();
    Curve::from_points(pts, final_slope)
}

/// Composition `outer ∘ inner` of PWL curves (`inner` nondecreasing with
/// non-negative values). Exact: the result's breakpoints are `inner`'s
/// own plus the `inner`-preimages of `outer`'s.
pub fn compose(outer: &Curve, inner: &Curve) -> Curve {
    debug_assert!(inner.is_nondecreasing(), "compose: inner must be monotone");
    let mut ts: Vec<Rat> = inner.breakpoint_xs();
    for &(x, _) in outer.points() {
        if let Some(t) = inner.pseudo_inverse(x) {
            ts.push(t);
        }
    }
    ts.push(Rat::ZERO);
    ts.sort();
    ts.dedup();
    let pts: Vec<(Rat, Rat)> = ts.iter().map(|&t| (t, outer.eval(inner.eval(t)))).collect();
    // Beyond the last candidate both curves are affine on the relevant
    // ranges, so one extra sample pins the final slope.
    let last = *ts.last().unwrap(); // audit: allow(unwrap, ts contains at least Rat::ZERO, pushed above)
    let probe = last + Rat::ONE;
    let final_slope = outer.eval(inner.eval(probe)) - outer.eval(inner.eval(last));
    Curve::from_points(pts, final_slope)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnc_num::{int, rat};

    #[test]
    fn inverse_of_rate() {
        let f = Curve::rate(rat(1, 2));
        let inv = inverse_strict(&f);
        assert_eq!(inv, Curve::rate(int(2)));
    }

    #[test]
    fn inverse_round_trip_composition() {
        let f = Curve::from_points(vec![(int(0), int(0)), (int(3), int(6))], rat(1, 3));
        let inv = inverse_strict(&f);
        let id = compose(&inv, &f);
        for t in [int(0), int(1), int(3), int(7), rat(5, 2)] {
            assert_eq!(id.eval(t), t);
        }
    }

    #[test]
    fn compose_preserves_monotonicity() {
        let outer = Curve::token_bucket_peak(int(2), rat(1, 4), int(1));
        let inner = Curve::rate_latency(int(2), int(1));
        let c = compose(&outer, &inner);
        assert!(c.is_nondecreasing());
        for t in [int(0), int(1), int(2), int(5)] {
            assert_eq!(c.eval(t), outer.eval(inner.eval(t)));
        }
    }
}
