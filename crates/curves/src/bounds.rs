//! Bound extraction: horizontal deviation (delay), vertical deviation
//! (backlog), and busy-period length.
//!
//! When [`crate::intern::kernel_enabled`] (the default), [`hdev`] and
//! [`hdev_general`] answer the ubiquitous token-bucket/rate-latency
//! case with the closed form `σ/R + T` ([`crate::shape::closed_hdev`])
//! and memoize everything else in global caches keyed by interned
//! [`CurveId`]s; shape preconditions are checked against the memoized
//! [`crate::shape::ShapeInfo`] flags so the error behavior is
//! unchanged. [`hdev_envelope`] / [`hdev_general_envelope`] expose the
//! always-general candidate scans for differential testing.

use crate::cache::{CacheKey, CurveCache};
use crate::intern::{self, CurveId};
use crate::shape;
use crate::{Curve, CurveError};
use dnc_num::Rat;
use std::sync::OnceLock;

static HDEV_MEMO: OnceLock<CurveCache<Rat>> = OnceLock::new();
static HDEV_GENERAL_MEMO: OnceLock<CurveCache<Rat>> = OnceLock::new();

fn hdev_memo() -> &'static CurveCache<Rat> {
    HDEV_MEMO.get_or_init(CurveCache::default)
}

fn hdev_general_memo() -> &'static CurveCache<Rat> {
    HDEV_GENERAL_MEMO.get_or_init(CurveCache::default)
}

/// Shared unstable-rate error so every path words it identically.
fn unstable(alpha: &Curve, beta: &Curve) -> CurveError {
    CurveError::Unstable {
        arrival_rate: alpha.final_slope().to_string(),
        service_rate: beta.final_slope().to_string(),
    }
}

/// The id pair for an (α, β) memo key (order matters: hdev is not
/// symmetric).
fn pair_key(tag: &'static str, a: CurveId, b: CurveId) -> CacheKey {
    CacheKey::new(tag).curve_id(a).curve_id(b)
}

/// Horizontal deviation `h(α, β) = sup_{t≥0} inf { d ≥ 0 : α(t) ≤ β(t+d) }`
/// — the worst-case *delay* of a flow with arrival curve `α` through a
/// server with service curve `β`.
///
/// Requires a concave nondecreasing `α` and a convex nondecreasing `β`
/// (always the case in this workspace: arrivals are concave hulls of token
/// buckets, services are rate-latency/residual curves). Under these shapes
/// `t ↦ β⁻¹(α(t)) − t` is concave, so the supremum is attained at a
/// breakpoint of `α` or at a preimage under `α` of a breakpoint value of
/// `β`; we enumerate exactly those candidates.
///
/// Errors with [`CurveError::Unstable`] when `rate(α) > rate(β)` and with
/// [`CurveError::NeverServed`] when `α` outgrows a bounded `β`.
pub fn hdev(alpha: &Curve, beta: &Curve) -> Result<Rat, CurveError> {
    crate::limits::checkpoint(alpha.points().len() + beta.points().len());
    let _span = dnc_telemetry::span("curve.hdev");
    if intern::kernel_enabled() {
        let aid = intern::intern(alpha);
        let bid = intern::intern(beta);
        let ash = intern::shape_of(aid);
        let bsh = intern::shape_of(bid);
        if !ash.is_nondecreasing() || !ash.is_concave() {
            return Err(CurveError::BadShape(
                "hdev: α must be concave nondecreasing",
            ));
        }
        if !bsh.is_nondecreasing() || !bsh.is_convex() {
            return Err(CurveError::BadShape("hdev: β must be convex nondecreasing"));
        }
        if alpha.final_slope() > beta.final_slope() {
            return Err(unstable(alpha, beta));
        }
        let best = match shape::closed_hdev(&ash, &bsh) {
            Some(d) => {
                dnc_telemetry::counter("curve.hdev.fast_path", 1);
                d
            }
            None => hdev_memo().get_or_try_insert_with(pair_key("curve.hdev", aid, bid), || {
                hdev_core(alpha, beta)
            })?,
        };
        crate::invariant::hdev_post(alpha, beta, best);
        return Ok(best);
    }
    hdev_checked(alpha, beta)
}

/// The always-general horizontal deviation, bypassing the shape fast
/// path and the operation memo regardless of the kernel knob. Same
/// precondition as [`hdev`]: nondecreasing α and β. Bit-identical to
/// [`hdev`] — the property the differential tests assert by calling
/// both.
pub fn hdev_envelope(alpha: &Curve, beta: &Curve) -> Result<Rat, CurveError> {
    crate::limits::checkpoint(alpha.points().len() + beta.points().len());
    let _span = dnc_telemetry::span("curve.hdev");
    hdev_checked(alpha, beta)
}

/// Shape/stability checks plus the candidate scan (the pre-kernel
/// [`hdev`] body).
fn hdev_checked(alpha: &Curve, beta: &Curve) -> Result<Rat, CurveError> {
    if !alpha.is_nondecreasing() || !alpha.is_concave() {
        return Err(CurveError::BadShape(
            "hdev: α must be concave nondecreasing",
        ));
    }
    if !beta.is_nondecreasing() || !beta.is_convex() {
        return Err(CurveError::BadShape("hdev: β must be convex nondecreasing"));
    }
    if alpha.final_slope() > beta.final_slope() {
        return Err(unstable(alpha, beta));
    }
    let best = hdev_core(alpha, beta)?;
    crate::invariant::hdev_post(alpha, beta, best);
    Ok(best)
}

/// The candidate scan of [`hdev`] (preconditions checked by callers).
fn hdev_core(alpha: &Curve, beta: &Curve) -> Result<Rat, CurveError> {
    // Candidate abscissae: breakpoints of α and α-preimages of β's
    // breakpoint values.
    let mut cands: Vec<Rat> = alpha.breakpoint_xs();
    for &(_, v) in beta.points() {
        if let Some(t) = alpha.pseudo_inverse(v) {
            cands.push(t);
        }
    }
    cands.push(Rat::ZERO);
    cands.sort();
    cands.dedup();

    let mut best = Rat::ZERO;

    // β's pseudo-inverse jumps at y = 0 when β has a latency (an initial
    // zero-valued flat): β⁻¹(0) = 0 but β⁻¹(0⁺) = T. If α leaves zero at
    // some t₀ (α(t₀)=0, α > 0 after), the deviation supremum is approached
    // as t → t₀⁺ with limit T − t₀, which no breakpoint candidate sees.
    let latency = beta
        .points()
        .iter()
        .rev()
        .find(|&&(_, y)| y.is_zero())
        .map(|&(x, _)| x);
    if let Some(t_lat) = latency {
        // t₀ = sup { t : α(t) = 0 } (α concave nondecreasing: zero set is
        // an initial interval).
        let t0 = alpha
            .points()
            .iter()
            .rev()
            .find(|&&(_, y)| y.is_zero())
            .map(|&(x, _)| x);
        if let Some(t0) = t0 {
            // Only relevant if α actually becomes positive after t₀.
            let becomes_positive = alpha.final_slope().is_positive()
                || alpha.points().iter().any(|&(_, y)| y.is_positive());
            if becomes_positive && t_lat > t0 {
                best = best.max(t_lat - t0);
            }
        }
    }

    for t in cands {
        let need = alpha.eval(t);
        match beta.pseudo_inverse(need) {
            Some(tau) => {
                let d = tau - t;
                if d > best {
                    best = d;
                }
            }
            None => return Err(CurveError::NeverServed),
        }
    }
    // Equal ultimate rates: the deviation is constant on the far tail; the
    // last candidate already covers it (φ is concave). If β is bounded
    // (rate 0) and α keeps growing, pseudo_inverse above already errored.
    if alpha.final_slope() == beta.final_slope() && alpha.final_slope().is_positive() {
        // Evaluate one point deep in the joint tail for safety.
        let t = alpha.tail_start().max(beta.tail_start()) + Rat::ONE;
        if let Some(tau) = beta.pseudo_inverse(alpha.eval(t)) {
            let d = tau - t;
            if d > best {
                best = d;
            }
        } else {
            return Err(CurveError::NeverServed);
        }
    }
    Ok(best)
}

/// Horizontal deviation for **arbitrary nondecreasing** PWL curves —
/// used when the service curve is not convex (e.g. monotonized
/// FIFO-family curves, convolutions of ramps).
///
/// For fixed `t` the needed delay is `β⁻¹(α(t)) − t` (lower
/// pseudo-inverse). Between consecutive candidate abscissae — breakpoints
/// of `α` and α-preimages (lower *and* upper) of β's breakpoint values —
/// the deviation is linear in `t`, so its supremum is attained at a
/// candidate; β's flat segments additionally contribute limit values
/// `β⁻¹₊(v) − α⁻¹₊(v)` approached as `α(t) → v⁺`.
pub fn hdev_general(alpha: &Curve, beta: &Curve) -> Result<Rat, CurveError> {
    crate::limits::checkpoint(alpha.points().len() + beta.points().len());
    let _span = dnc_telemetry::span("curve.hdev_general");
    if intern::kernel_enabled() {
        let aid = intern::intern(alpha);
        let bid = intern::intern(beta);
        let ash = intern::shape_of(aid);
        let bsh = intern::shape_of(bid);
        if !ash.is_nondecreasing() {
            return Err(CurveError::BadShape(
                "hdev_general: α must be nondecreasing",
            ));
        }
        if !bsh.is_nondecreasing() {
            return Err(CurveError::BadShape(
                "hdev_general: β must be nondecreasing",
            ));
        }
        if alpha.final_slope() > beta.final_slope() {
            return Err(unstable(alpha, beta));
        }
        // The closed form computes the same supremum h(α, β); for
        // token-bucket/rate-latency operands the flat-segment limit
        // contributions are dominated by σ/R + T, so the value agrees
        // with the candidate scan (differentially re-proven by
        // tests/prop_intern.rs).
        let best = match shape::closed_hdev(&ash, &bsh) {
            Some(d) => {
                dnc_telemetry::counter("curve.hdev.fast_path", 1);
                d
            }
            None => hdev_general_memo()
                .get_or_try_insert_with(pair_key("curve.hdev_general", aid, bid), || {
                    hdev_general_core(alpha, beta)
                })?,
        };
        crate::invariant::hdev_post(alpha, beta, best);
        return Ok(best);
    }
    hdev_general_checked(alpha, beta)
}

/// The always-general [`hdev_general`] candidate scan, bypassing the
/// fast path and the memo regardless of the kernel knob. Same
/// precondition as [`hdev_general`]: nondecreasing α and β.
/// Bit-identical to [`hdev_general`].
pub fn hdev_general_envelope(alpha: &Curve, beta: &Curve) -> Result<Rat, CurveError> {
    crate::limits::checkpoint(alpha.points().len() + beta.points().len());
    let _span = dnc_telemetry::span("curve.hdev_general");
    hdev_general_checked(alpha, beta)
}

/// Shape/stability checks plus the candidate scan (the pre-kernel
/// [`hdev_general`] body).
fn hdev_general_checked(alpha: &Curve, beta: &Curve) -> Result<Rat, CurveError> {
    if !alpha.is_nondecreasing() {
        return Err(CurveError::BadShape(
            "hdev_general: α must be nondecreasing",
        ));
    }
    if !beta.is_nondecreasing() {
        return Err(CurveError::BadShape(
            "hdev_general: β must be nondecreasing",
        ));
    }
    if alpha.final_slope() > beta.final_slope() {
        return Err(unstable(alpha, beta));
    }
    let best = hdev_general_core(alpha, beta)?;
    crate::invariant::hdev_post(alpha, beta, best);
    Ok(best)
}

/// The candidate scan of [`hdev_general`] (preconditions checked by
/// callers).
fn hdev_general_core(alpha: &Curve, beta: &Curve) -> Result<Rat, CurveError> {
    let mut cands: Vec<Rat> = alpha.breakpoint_xs();
    cands.push(Rat::ZERO);
    for &(_, v) in beta.points() {
        if let Some(t) = alpha.pseudo_inverse(v) {
            cands.push(t);
        }
        if let Some(t) = alpha.pseudo_inverse_upper(v) {
            cands.push(t);
        }
    }
    // Deep-tail candidate for the equal-ultimate-rate case.
    let tail = alpha.tail_start().max(beta.tail_start()) + Rat::ONE;
    cands.push(tail);
    cands.sort();
    cands.dedup();

    let mut best = Rat::ZERO;
    for t in cands {
        match beta.pseudo_inverse(alpha.eval(t)) {
            Some(tau) => best = best.max(tau - t),
            None => return Err(CurveError::NeverServed),
        }
    }
    // Jump (flat-segment) limit contributions: as α(t) → v⁺ just past
    // t_v = sup{t : α(t) ≤ v}, the needed delay approaches β⁻¹₊(v) − t_v.
    for &(_, v) in beta.points() {
        let (Some(t_v), Some(tau)) = (alpha.pseudo_inverse_upper(v), beta.pseudo_inverse_upper(v))
        else {
            continue;
        };
        // Only relevant if α actually exceeds v after t_v.
        best = best.max(tau - t_v);
    }
    Ok(best.max(Rat::ZERO))
}

/// Vertical deviation `v(α, β) = sup_{t≥0} [α(t) − β(t)]` — the worst-case
/// *backlog* for a nondecreasing arrival curve `α` and service curve `β`.
/// Errors when the difference grows without bound.
pub fn vdev(alpha: &Curve, beta: &Curve) -> Result<Rat, CurveError> {
    let _span = dnc_telemetry::span("curve.vdev");
    let diff = alpha.sub(beta);
    if diff.final_slope().is_positive() {
        return Err(CurveError::Unstable {
            arrival_rate: alpha.final_slope().to_string(),
            service_rate: beta.final_slope().to_string(),
        });
    }
    let v = diff
        .points()
        .iter()
        .map(|&(_, y)| y)
        .max()
        // audit: allow(expect, Curve representation guarantees at least one breakpoint)
        .expect("non-empty curve");
    crate::invariant::vdev_post(alpha, beta, v);
    Ok(v)
}

/// Longest busy period of a constant-rate-`c` work-conserving server fed
/// by arrivals constrained by a nondecreasing `f`:
/// `sup { t ≥ 0 : f(t) ≥ c·t }`.
///
/// Errors with [`CurveError::Unstable`] when the arrivals never fall below
/// the service line (`rate(f) > c`, or `rate(f) = c` with positive excess).
pub fn busy_period(f: &Curve, c: Rat) -> Result<Rat, CurveError> {
    assert!(c.is_positive(), "busy_period: rate must be positive");
    let diff = f.sub(&Curve::rate(c));
    let unstable = || CurveError::Unstable {
        arrival_rate: f.final_slope().to_string(),
        service_rate: c.to_string(),
    };
    if diff.final_slope().is_positive() {
        return Err(unstable());
    }
    let pts = diff.points();
    let last = *pts.last().unwrap(); // audit: allow(unwrap, Curve representation guarantees at least one breakpoint)
    if diff.final_slope().is_zero() {
        return if last.1.is_positive() {
            Err(unstable())
        } else if last.1.is_zero() {
            Ok(last.0)
        } else {
            // Tail strictly below: last crossing is interior (found below).
            interior_last_root(&diff).ok_or_else(unstable)
        };
    }
    // Negative tail slope.
    if !last.1.is_negative() {
        // Root on the tail segment: y + slope·Δ = 0.
        return Ok(last.0 + last.1 / (-diff.final_slope()));
    }
    interior_last_root(&diff).ok_or_else(unstable)
}

/// The largest interior `t` with `diff(t) = 0` given `diff` ends negative;
/// `None` if `diff` never reaches `≥ 0` (cannot happen for `diff(0) ≥ 0`).
fn interior_last_root(diff: &Curve) -> Option<Rat> {
    let pts = diff.points();
    // Find the last breakpoint with value >= 0; the crossing lies in the
    // segment that follows (whose right endpoint is negative).
    for i in (0..pts.len()).rev() {
        let (x0, y0) = pts[i]; // audit: allow(index, loop index from a range over pts, with i + 1 guarded)
        if !y0.is_negative() {
            if y0.is_zero() {
                return Some(x0);
            }
            // Segment from (x0, y0 > 0) down to a negative value.
            let slope = if i + 1 < pts.len() {
                let (x1, y1) = pts[i + 1]; // audit: allow(index, loop index from a range over pts, with i + 1 guarded)
                (y1 - y0) / (x1 - x0)
            } else {
                diff.final_slope()
            };
            debug_assert!(slope.is_negative());
            return Some(x0 + y0 / (-slope));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnc_num::{int, rat};

    #[test]
    fn hdev_token_bucket_rate_latency() {
        // Classic: h(γ_{σ,ρ}, β_{R,T}) = σ/R + T for ρ ≤ R.
        let a = Curve::token_bucket(int(4), int(1));
        let b = Curve::rate_latency(int(2), int(3));
        assert_eq!(hdev(&a, &b).unwrap(), int(5));
    }

    #[test]
    fn hdev_aggregate_through_rate() {
        // FIFO local delay: h(G, λ_C) with G = 3 + t/2, C = 1 -> delay 3.
        let g = Curve::token_bucket(int(3), rat(1, 2));
        assert_eq!(hdev(&g, &Curve::rate(int(1))).unwrap(), int(3));
    }

    #[test]
    fn hdev_peak_capped_is_smaller() {
        // Peak cap flattens the early burst: delay shrinks.
        let capped = Curve::token_bucket_peak(int(3), rat(1, 2), int(1));
        let d = hdev(&capped, &Curve::rate(int(1))).unwrap();
        assert_eq!(d, int(0)); // never exceeds the unit service line
        let d2 = hdev(&capped, &Curve::rate(rat(3, 4))).unwrap();
        assert!(d2.is_positive());
    }

    #[test]
    fn hdev_unstable() {
        let a = Curve::token_bucket(int(1), int(2));
        let b = Curve::rate(int(1));
        assert!(matches!(hdev(&a, &b), Err(CurveError::Unstable { .. })));
    }

    #[test]
    fn hdev_never_served() {
        // A truncated (concave) service curve violates hdev's convexity
        // precondition.
        let a = Curve::token_bucket(int(10), rat(1, 2));
        let trunc = Curve::from_points(vec![(int(0), int(0)), (int(4), int(4))], int(0));
        assert!(matches!(hdev(&a, &trunc), Err(CurveError::BadShape(_))));
        // Bounded arrival exceeding a constant (convex) service: never served.
        let a2 = Curve::constant(int(10));
        let b = Curve::constant(int(4));
        assert!(matches!(hdev(&a2, &b), Err(CurveError::NeverServed)));
    }

    #[test]
    fn hdev_equal_rates() {
        // α = 2 + t, β = (t − 3)⁺ ... equal unit rates: deviation settles
        // at 5 (burst 2 / rate 1 + latency 3).
        let a = Curve::token_bucket(int(2), int(1));
        let b = Curve::rate_latency(int(1), int(3));
        assert_eq!(hdev(&a, &b).unwrap(), int(5));
    }

    #[test]
    fn hdev_general_agrees_with_hdev_on_convex() {
        let a = Curve::token_bucket(int(4), int(1));
        let b = Curve::rate_latency(int(2), int(3));
        assert_eq!(hdev_general(&a, &b).unwrap(), hdev(&a, &b).unwrap());
        let a2 = Curve::token_bucket_peak(int(3), rat(1, 2), int(1));
        let b2 = Curve::rate(rat(3, 4));
        assert_eq!(hdev_general(&a2, &b2).unwrap(), hdev(&a2, &b2).unwrap());
    }

    #[test]
    fn hdev_general_nonconvex_service() {
        // β: fast ramp to 2 by t=1, flat to t=3, then slope 1 — not
        // convex. α = 1 + t/2.
        let beta = Curve::from_points(
            vec![(int(0), int(0)), (int(1), int(2)), (int(3), int(2))],
            int(1),
        );
        let alpha = Curve::token_bucket(int(1), rat(1, 2));
        let d = hdev_general(&alpha, &beta).unwrap();
        // Brute-force the deviation on a fine grid (lower bound on sup).
        let mut brute = Rat::ZERO;
        for k in 0..200 {
            let t = rat(k, 8);
            let need = beta.pseudo_inverse(alpha.eval(t)).unwrap() - t;
            brute = brute.max(need);
        }
        assert!(d >= brute, "missed the brute-force sup");
        // Soundness: α(t) ≤ β(t + d) sampled.
        for k in 0..200 {
            let t = rat(k, 8);
            assert!(alpha.eval(t) <= beta.eval(t + d));
        }
        // The flat segment of β forces a deviation past the naive one:
        // as α(t) → 2⁺ (t → 2⁺), β⁻¹ jumps from 1 to 3.
        assert!(d >= int(1));
    }

    #[test]
    fn hdev_general_rejects_unstable() {
        let a = Curve::token_bucket(int(1), int(2));
        let b = Curve::rate(int(1));
        assert!(matches!(
            hdev_general(&a, &b),
            Err(CurveError::Unstable { .. })
        ));
    }

    #[test]
    fn vdev_basics() {
        // Backlog of γ_{4,1} over β_{2,3}: peak at t = 3: 4+3 − 0 = 7.
        let a = Curve::token_bucket(int(4), int(1));
        let b = Curve::rate_latency(int(2), int(3));
        assert_eq!(vdev(&a, &b).unwrap(), int(7));
        assert!(matches!(
            vdev(&Curve::rate(int(2)), &Curve::rate(int(1))),
            Err(CurveError::Unstable { .. })
        ));
    }

    #[test]
    fn busy_period_token_bucket() {
        // f = 3 + t/2 vs rate 1: crossing at t = 6.
        let f = Curve::token_bucket(int(3), rat(1, 2));
        assert_eq!(busy_period(&f, int(1)).unwrap(), int(6));
    }

    #[test]
    fn busy_period_unstable_cases() {
        assert!(busy_period(&Curve::token_bucket(int(1), int(2)), int(1)).is_err());
        // Equal-rate with positive burst: never drains.
        assert!(busy_period(&Curve::token_bucket(int(1), int(1)), int(1)).is_err());
        // Equal-rate with zero burst: busy period 0.
        assert_eq!(busy_period(&Curve::rate(int(1)), int(1)).unwrap(), int(0));
    }

    #[test]
    fn busy_period_peak_capped() {
        // min{t, 2 + t/2} vs rate 3/4: f(t) = t up to t=4 beats 3t/4; after
        // t=4: 2 + t/2 vs 3t/4 -> crossing at t=8.
        let f = Curve::token_bucket_peak(int(2), rat(1, 2), int(1));
        assert_eq!(busy_period(&f, rat(3, 4)).unwrap(), int(8));
    }
}
