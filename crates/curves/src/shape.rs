//! Shape classification and closed-form fast paths for the two curve
//! families that dominate real topologies.
//!
//! Almost every curve an analysis touches is a **token bucket**
//! `γ_{σ,ρ}(t) = σ + ρt` or a **rate-latency** curve
//! `β_{R,T}(t) = R·(t − T)⁺`. For those shapes the min-plus operators
//! have one-line closed forms (the same ones hand-derived in
//! `crates/core/src/closed_form.rs` and pinned by the property tests in
//! `crates/curves/tests/prop_curves.rs`), so the candidate-envelope
//! machinery in [`crate::minplus`] is pure overhead. This module:
//!
//! * classifies a canonical [`Curve`] into a [`ShapeInfo`] — the
//!   token-bucket / rate-latency parameters when they exist, plus the
//!   concave/convex/nondecreasing flags every analysis precondition
//!   checks ([`classify`] is O(points) and the result is memoized per
//!   interned curve by [`crate::intern::shape`]);
//! * provides the closed forms themselves ([`closed_conv`],
//!   [`closed_deconv`], [`closed_hdev`]), each returning `None` unless
//!   the preconditions under which it is *provably bit-identical* to
//!   the general path hold.
//!
//! The shape lattice is intentionally not a partition: the rate curve
//! `λ_r` is simultaneously `γ_{0,r}` and `β_{r,0}`, and the zero curve
//! is `γ_{0,0}` = `β_{0,0}`. [`ShapeInfo`] therefore exposes the two
//! views independently instead of forcing a single tag.
//!
//! Soundness of "closed form == general path" rests on canonical
//! representations being **unique**: two curves equal as functions are
//! structurally equal ([`Curve`] docs), so producing the mathematically
//! equal result in canonical form *is* producing the bit-identical
//! result. The differential proptests in `tests/prop_intern.rs`
//! re-check every closed form against the envelope construction.

use crate::Curve;
use dnc_num::Rat;

/// Memoizable shape summary of one canonical curve.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShapeInfo {
    /// `Some((σ, ρ))` iff the curve is `γ_{σ,ρ}` with `σ, ρ ≥ 0`.
    token_bucket: Option<(Rat, Rat)>,
    /// `Some((R, T))` iff the curve is `β_{R,T}` with `R, T ≥ 0`.
    rate_latency: Option<(Rat, Rat)>,
    /// Piece slopes are non-increasing.
    concave: bool,
    /// Piece slopes are non-decreasing.
    convex: bool,
    /// Every piece slope is ≥ 0.
    nondecreasing: bool,
    /// The curve is identically zero.
    zero: bool,
}

impl ShapeInfo {
    /// The token-bucket view: `Some((σ, ρ))` when the curve equals
    /// `γ_{σ,ρ}(t) = σ + ρt` with non-negative burst and rate.
    #[inline]
    pub fn as_token_bucket(&self) -> Option<(Rat, Rat)> {
        self.token_bucket
    }

    /// The rate-latency view: `Some((R, T))` when the curve equals
    /// `β_{R,T}(t) = R·(t − T)⁺` with non-negative rate and latency.
    /// The zero curve reports `(0, 0)`; a pure rate curve reports
    /// latency `0`.
    #[inline]
    pub fn as_rate_latency(&self) -> Option<(Rat, Rat)> {
        self.rate_latency
    }

    /// Whether the curve is concave (memoized [`Curve::is_concave`]).
    #[inline]
    pub fn is_concave(&self) -> bool {
        self.concave
    }

    /// Whether the curve is convex (memoized [`Curve::is_convex`]).
    #[inline]
    pub fn is_convex(&self) -> bool {
        self.convex
    }

    /// Whether the curve is nondecreasing (memoized
    /// [`Curve::is_nondecreasing`]).
    #[inline]
    pub fn is_nondecreasing(&self) -> bool {
        self.nondecreasing
    }

    /// Whether the curve is identically zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.zero
    }
}

/// Classify one canonical curve into the shape lattice: token bucket
/// (concave two-piece), rate latency (convex two-piece), or general.
/// No precondition beyond canonical form — the classifier itself
/// decides concavity/convexity. O(points); called once per interned
/// curve by [`crate::intern::shape`], which memoizes the result.
pub fn classify(c: &Curve) -> ShapeInfo {
    let pts = c.points();
    let fs = c.final_slope();

    // γ_{σ,ρ}: a single breakpoint (0, σ) with tail slope ρ, both ≥ 0.
    let token_bucket = match pts {
        [(x0, y0)] if x0.is_zero() && !y0.is_negative() && !fs.is_negative() => Some((*y0, fs)),
        _ => None,
    };

    // β_{R,T}: either the affine-through-origin form (T = 0, any rate
    // r ≥ 0 — includes the zero curve) or the canonical two-point form
    // (0,0)—(T,0) with tail slope R. Canonicalization guarantees the
    // two-point form only survives with R ≠ 0 (a zero tail slope would
    // have collapsed the latency breakpoint), so R > 0 there.
    let rate_latency = match pts {
        [(x0, y0)] if x0.is_zero() && y0.is_zero() && !fs.is_negative() => Some((fs, Rat::ZERO)),
        [(x0, y0), (x1, y1)]
            if x0.is_zero() && y0.is_zero() && y1.is_zero() && fs.is_positive() =>
        {
            Some((fs, *x1))
        }
        _ => None,
    };

    ShapeInfo {
        token_bucket,
        rate_latency,
        concave: c.is_concave(),
        convex: c.is_convex(),
        nondecreasing: c.is_nondecreasing(),
        zero: c.is_zero(),
    }
}

/// Build `γ_{σ,ρ}` directly in canonical form (no assertions beyond the
/// [`Curve::from_points`] invariants — callers pass σ, ρ ≥ 0).
fn gamma(sigma: Rat, rho: Rat) -> Curve {
    Curve::from_points(vec![(Rat::ZERO, sigma)], rho)
}

/// Build `β_{R,T}` directly in canonical form. `R = 0` or `T = 0`
/// collapse to the rate/zero curve exactly as canonicalization would.
fn beta(r: Rat, t: Rat) -> Curve {
    if r.is_zero() || t.is_zero() {
        return Curve::from_points(vec![(Rat::ZERO, Rat::ZERO)], r);
    }
    Curve::from_points(vec![(Rat::ZERO, Rat::ZERO), (t, Rat::ZERO)], r)
}

/// Closed-form min-plus convolution, when a proven form applies:
///
/// * `γ_{σ1,ρ1} ⊗ γ_{σ2,ρ2} = γ_{σ1+σ2, min(ρ1,ρ2)}` — for affine
///   operands the infimum of `s ↦ f(s) + g(t−s)` is attained at an
///   endpoint, giving `σ1 + σ2 + min(ρ1,ρ2)·t`.
/// * `β_{R1,T1} ⊗ β_{R2,T2} = β_{min(R1,R2), T1+T2}` — latencies add,
///   the slower rate wins (`prop_curves.rs` pins both).
///
/// Shape preconditions are carried by the [`ShapeInfo`] arguments: the
/// forms apply only to the concave token-bucket and convex
/// rate-latency classes; anything else returns `None`.
pub fn closed_conv(fs: &ShapeInfo, gs: &ShapeInfo) -> Option<Curve> {
    if let (Some((s1, r1)), Some((s2, r2))) = (fs.as_token_bucket(), gs.as_token_bucket()) {
        return Some(gamma(s1 + s2, r1.min(r2)));
    }
    if let (Some((r1, t1)), Some((r2, t2))) = (fs.as_rate_latency(), gs.as_rate_latency()) {
        return Some(beta(r1.min(r2), t1 + t2));
    }
    None
}

/// Closed-form min-plus deconvolution
/// `γ_{σ,ρ} ⊘ β_{R,T} = γ_{σ+ρT, ρ}` for `ρ ≤ R` (the sup walks the
/// burst up the latency). Applies only to the concave token-bucket ⊘
/// convex rate-latency pair. Callers handle `ρ > R` (unstable) before
/// asking; this returns `None` there so the general path constructs the
/// identical error.
pub fn closed_deconv(fs: &ShapeInfo, gs: &ShapeInfo) -> Option<Curve> {
    let (sigma, rho) = fs.as_token_bucket()?;
    let (r, t) = gs.as_rate_latency()?;
    if rho > r {
        return None;
    }
    Some(gamma(sigma + rho * t, rho))
}

/// Closed-form horizontal deviation
/// `h(γ_{σ,ρ}, β_{R,T}) = σ/R + T` for `ρ ≤ R`, `R > 0` — the classic
/// burst-over-rate-plus-latency bound, tight for these shapes.
///
/// Declines (`None`) when `α` is identically zero: the true deviation
/// is then `0`, not `T`, and the general path's candidate scan gets it
/// right. Also declines `R = 0` (with `ρ ≤ R` that forces a constant
/// `α`; the general path reports `NeverServed`/`0` as appropriate) and
/// `ρ > R` (unstable — general path constructs the error).
pub fn closed_hdev(fs: &ShapeInfo, gs: &ShapeInfo) -> Option<Rat> {
    let (sigma, rho) = fs.as_token_bucket()?;
    let (r, t) = gs.as_rate_latency()?;
    if fs.is_zero() || !r.is_positive() || rho > r {
        return None;
    }
    Some(sigma / r + t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnc_num::{int, rat};

    #[test]
    fn classify_token_bucket_and_rate_latency() {
        let tb = classify(&Curve::token_bucket(int(4), rat(1, 2)));
        assert_eq!(tb.as_token_bucket(), Some((int(4), rat(1, 2))));
        assert_eq!(tb.as_rate_latency(), None);
        assert!(tb.is_concave() && tb.is_nondecreasing());

        let rl = classify(&Curve::rate_latency(int(2), int(3)));
        assert_eq!(rl.as_rate_latency(), Some((int(2), int(3))));
        assert_eq!(rl.as_token_bucket(), None);
        assert!(rl.is_convex() && rl.is_nondecreasing());
    }

    #[test]
    fn classify_lattice_overlaps() {
        // λ_r is both γ_{0,r} and β_{r,0}.
        let r = classify(&Curve::rate(int(3)));
        assert_eq!(r.as_token_bucket(), Some((int(0), int(3))));
        assert_eq!(r.as_rate_latency(), Some((int(3), int(0))));
        // The zero curve is γ_{0,0} = β_{0,0}.
        let z = classify(&Curve::zero());
        assert_eq!(z.as_token_bucket(), Some((int(0), int(0))));
        assert_eq!(z.as_rate_latency(), Some((int(0), int(0))));
        assert!(z.is_zero());
    }

    #[test]
    fn classify_rejects_negative_params_and_general_shapes() {
        // Negative burst: affine but not a token bucket.
        let neg = Curve::from_points(vec![(int(0), int(-1))], int(1));
        let s = classify(&neg);
        assert_eq!(s.as_token_bucket(), None);
        assert_eq!(s.as_rate_latency(), None);
        // Two-segment concave peak: neither family.
        let peak = Curve::token_bucket_peak(int(2), rat(1, 2), int(1));
        let s = classify(&peak);
        assert_eq!(s.as_token_bucket(), None);
        assert_eq!(s.as_rate_latency(), None);
        assert!(s.is_concave());
    }

    #[test]
    fn closed_forms_match_pinned_examples() {
        let g1 = Curve::token_bucket(int(2), int(3));
        let g2 = Curve::token_bucket(int(5), int(1));
        let got = closed_conv(&classify(&g1), &classify(&g2)).unwrap();
        assert_eq!(got, Curve::token_bucket(int(7), int(1)));

        let b1 = Curve::rate_latency(int(3), int(2));
        let b2 = Curve::rate_latency(int(1), int(5));
        let got = closed_conv(&classify(&b1), &classify(&b2)).unwrap();
        assert_eq!(got, Curve::rate_latency(int(1), int(7)));

        let a = Curve::token_bucket(int(2), int(1));
        let b = Curve::rate_latency(int(3), int(4));
        let got = closed_deconv(&classify(&a), &classify(&b)).unwrap();
        assert_eq!(got, Curve::token_bucket(int(6), int(1)));

        let a = Curve::token_bucket(int(4), int(1));
        let b = Curve::rate_latency(int(2), int(3));
        assert_eq!(closed_hdev(&classify(&a), &classify(&b)), Some(int(5)));
    }

    #[test]
    fn closed_hdev_declines_zero_alpha_and_unstable() {
        let z = classify(&Curve::zero());
        let b = classify(&Curve::rate_latency(int(2), int(3)));
        assert_eq!(closed_hdev(&z, &b), None, "α ≡ 0 has deviation 0, not T");
        let fast = classify(&Curve::token_bucket(int(1), int(5)));
        assert_eq!(closed_hdev(&fast, &b), None, "ρ > R is unstable");
        let a = classify(&Curve::token_bucket(int(1), int(0)));
        assert_eq!(closed_hdev(&a, &classify(&Curve::zero())), None, "R = 0");
    }
}
