#![warn(missing_docs)]

//! # dnc-curves — piecewise-linear min-plus curve algebra
//!
//! Deterministic network calculus manipulates *wide-sense increasing
//! piecewise-linear functions* on `[0, ∞)`: traffic-constraint functions
//! (arrival curves), service curves, output bounds. This crate provides the
//! exact algebra those computations need, over [`dnc_num::Rat`] rationals:
//!
//! * the [`Curve`] type: continuous PWL functions with finitely many
//!   breakpoints and an ultimately-affine tail;
//! * pointwise operations: [`Curve::add`], [`Curve::sub`], [`Curve::min`],
//!   [`Curve::max`], scaling and shifting;
//! * min-plus operations: [`minplus::conv`] (⊗) and [`minplus::deconv`] (⊘);
//! * bound extraction: [`bounds::hdev`] (delay = horizontal deviation),
//!   [`bounds::vdev`] (backlog = vertical deviation),
//!   [`bounds::busy_period`];
//! * shape predicates ([`Curve::is_concave`], [`Curve::is_convex`],
//!   [`Curve::is_nondecreasing`]) that the analysis layers use to check
//!   their preconditions.
//!
//! All operations are **exact**: results are the true PWL functions, not
//! samples, so `(f ⊗ g) ⊗ h == f ⊗ (g ⊗ h)` holds as structural equality.
//!
//! ```
//! use dnc_curves::{Curve, minplus, bounds};
//! use dnc_num::{rat, int};
//!
//! // A token-bucket arrival curve and a rate-latency service curve.
//! let alpha = Curve::token_bucket(int(4), rat(1, 2));
//! let beta = Curve::rate_latency(int(1), int(3));
//! // Worst-case delay: burst/r + latency = 4/1 + 3.
//! assert_eq!(bounds::hdev(&alpha, &beta).unwrap(), int(7));
//! // Two servers in tandem: convolution adds latencies, takes min rate.
//! let net = minplus::conv(&beta, &Curve::rate_latency(int(2), int(1)));
//! assert_eq!(net, Curve::rate_latency(int(1), int(4)));
//! ```

mod build;
mod combine;
mod curve;
mod error;

pub mod bounds;
pub mod cache;
pub mod intern;
pub mod invariant;
pub mod limits;
pub mod minplus;
pub mod shape;
pub mod transform;

pub use curve::{Curve, Segment};
pub use error::CurveError;
