//! Min-plus convolution (⊗) and deconvolution (⊘) of piecewise-linear
//! curves.
//!
//! Both operations are computed **exactly** for wide-sense increasing,
//! ultimately affine PWL functions by candidate-envelope construction:
//!
//! * `(f ⊗ g)(t) = inf_{0≤s≤t} f(s) + g(t−s)` — for each fixed `t` the
//!   infimum of the piecewise-linear function `s ↦ f(s) + g(t−s)` over a
//!   closed interval is attained at one of its vertices, i.e. at a
//!   breakpoint of `f` (`s = x_i`) or a breakpoint of `g` (`t − s = u_j`).
//!   Each vertex family, viewed as a function of `t`, is a shifted copy of
//!   the other curve; extending it leftwards by a constant never goes below
//!   an already-present candidate (monotonicity), so the pointwise minimum
//!   of the extended candidates equals the convolution everywhere.
//! * `(f ⊘ g)(t) = sup_{s≥0} f(t+s) − g(s)` — symmetric argument with
//!   maxima; requires `rate(f) ≤ rate(g)`, otherwise the supremum is `+∞`
//!   and [`CurveError::Unstable`] is returned.
//!
//! The brute-force definitions are re-checked against these constructions
//! by the property tests in `tests/prop_minplus.rs`.
//!
//! **The curve kernel.** When [`crate::intern::kernel_enabled`] (the
//! default), [`conv`] and [`deconv`] first try the closed-form fast
//! paths of [`crate::shape`] (token-bucket/rate-latency operands skip
//! the envelope entirely) and otherwise memoize the envelope result in
//! a global [`CurveCache`] keyed by interned [`CurveId`]s — the
//! convolution key is order-normalized because ⊗ is commutative.
//! Everything observable is unchanged: canonical representations are
//! unique, so fast-path, memoized, and envelope results are
//! bit-identical (re-proven per run by `tests/prop_intern.rs` and
//! `cargo xtask kernel-bench`); [`crate::limits::checkpoint`] still
//! runs once per call *before* any cache probe, so operation/segment
//! budgets behave identically. [`conv_envelope`] / [`deconv_envelope`]
//! expose the always-general path for differential testing.

use crate::cache::{CacheKey, CurveCache};
use crate::intern::{self, CurveId};
use crate::shape;
use crate::{Curve, CurveError};
use dnc_num::Rat;
use std::sync::OnceLock;

static CONV_MEMO: OnceLock<CurveCache<CurveId>> = OnceLock::new();
static DECONV_MEMO: OnceLock<CurveCache<CurveId>> = OnceLock::new();

fn conv_memo() -> &'static CurveCache<CurveId> {
    CONV_MEMO.get_or_init(CurveCache::default)
}

fn deconv_memo() -> &'static CurveCache<CurveId> {
    DECONV_MEMO.get_or_init(CurveCache::default)
}

/// Min-plus convolution `f ⊗ g`.
///
/// # Panics
/// Panics (debug) if either curve is not nondecreasing. Panics with a
/// [`crate::limits::BudgetBreach`] payload when thread-local
/// [`crate::limits`] are installed and breached.
pub fn conv(f: &Curve, g: &Curve) -> Curve {
    crate::limits::checkpoint(f.points().len() + g.points().len());
    let _span = dnc_telemetry::span("curve.conv");
    dnc_telemetry::gauge_u64("curve.conv.segments_in", || {
        (f.points().len() + g.points().len()) as u64
    });
    debug_assert!(f.is_nondecreasing(), "conv: f must be nondecreasing");
    debug_assert!(g.is_nondecreasing(), "conv: g must be nondecreasing");

    let out = if intern::kernel_enabled() {
        conv_kernel(f, g)
    } else {
        conv_core(f, g)
    };
    dnc_telemetry::gauge_u64("curve.conv.segments_out", || out.points().len() as u64);
    crate::invariant::conv_post(f, g, &out);
    out
}

/// The always-general candidate-envelope convolution, bypassing the
/// shape fast paths and the operation memo regardless of the kernel
/// knob. Same precondition as [`conv`]: both operands nondecreasing
/// (debug-asserted). Bit-identical to [`conv`] — that is the property
/// the differential tests assert by calling both.
pub fn conv_envelope(f: &Curve, g: &Curve) -> Curve {
    crate::limits::checkpoint(f.points().len() + g.points().len());
    let _span = dnc_telemetry::span("curve.conv");
    debug_assert!(f.is_nondecreasing(), "conv: f must be nondecreasing");
    debug_assert!(g.is_nondecreasing(), "conv: g must be nondecreasing");
    let out = conv_core(f, g);
    crate::invariant::conv_post(f, g, &out);
    out
}

/// Fast-path / memoized convolution (kernel on).
fn conv_kernel(f: &Curve, g: &Curve) -> Curve {
    let fid = intern::intern(f);
    let gid = intern::intern(g);
    if let Some(out) = shape::closed_conv(&intern::shape_of(fid), &intern::shape_of(gid)) {
        dnc_telemetry::counter("curve.conv.fast_path", 1);
        return out;
    }
    // ⊗ is commutative and canonical forms are unique, so (f, g) and
    // (g, f) share one memo entry.
    let (lo, hi) = if fid <= gid { (fid, gid) } else { (gid, fid) };
    let key = CacheKey::new("curve.conv").curve_id(lo).curve_id(hi);
    let out_id = conv_memo().get_or_insert_with(key, || intern::intern(&conv_core(f, g)));
    (*intern::resolve(out_id)).clone()
}

/// The candidate-envelope construction itself.
fn conv_core(f: &Curve, g: &Curve) -> Curve {
    let mut candidates: Vec<Curve> = Vec::new();
    for &(x, y) in f.points() {
        // f(x) + g(t − x), held constant at f(x) + g(0) before t = x.
        candidates.push(g.shift_right_hold(x).shift_up(y));
    }
    for &(u, v) in g.points() {
        candidates.push(f.shift_right_hold(u).shift_up(v));
    }
    Curve::min_all(candidates.iter())
}

/// Min-plus convolution of many curves (left fold). As with [`conv`], the
/// operands should be nondecreasing; the fold then stays nondecreasing.
///
/// # Panics
/// Panics on an empty iterator.
pub fn conv_all<'a, I: IntoIterator<Item = &'a Curve>>(curves: I) -> Curve {
    let mut it = curves.into_iter();
    let first = it.next().expect("conv_all of empty iterator").clone(); // audit: allow(expect, documented panic: empty iterator)
    it.fold(first, |acc, c| conv(&acc, c))
}

/// Min-plus deconvolution `f ⊘ g`.
///
/// Returns [`CurveError::Unstable`] when `rate(f) > rate(g)` (the result
/// would be `+∞` everywhere).
///
/// # Panics
/// Panics (debug) if either curve is not nondecreasing. Panics with a
/// [`crate::limits::BudgetBreach`] payload when thread-local
/// [`crate::limits`] are installed and breached.
pub fn deconv(f: &Curve, g: &Curve) -> Result<Curve, CurveError> {
    crate::limits::checkpoint(f.points().len() + g.points().len());
    let _span = dnc_telemetry::span("curve.deconv");
    dnc_telemetry::gauge_u64("curve.deconv.segments_in", || {
        (f.points().len() + g.points().len()) as u64
    });
    debug_assert!(f.is_nondecreasing(), "deconv: f must be nondecreasing");
    debug_assert!(g.is_nondecreasing(), "deconv: g must be nondecreasing");
    if f.final_slope() > g.final_slope() {
        return Err(CurveError::Unstable {
            arrival_rate: f.final_slope().to_string(),
            service_rate: g.final_slope().to_string(),
        });
    }

    let out = if intern::kernel_enabled() {
        deconv_kernel(f, g)
    } else {
        deconv_core(f, g)
    };
    dnc_telemetry::gauge_u64("curve.deconv.segments_out", || out.points().len() as u64);
    crate::invariant::deconv_post(f, g, &out);
    Ok(out)
}

/// The always-general candidate-envelope deconvolution, bypassing the
/// shape fast paths and the operation memo regardless of the kernel
/// knob. Same precondition as [`deconv`]: both operands nondecreasing
/// (debug-asserted). Bit-identical to [`deconv`].
pub fn deconv_envelope(f: &Curve, g: &Curve) -> Result<Curve, CurveError> {
    crate::limits::checkpoint(f.points().len() + g.points().len());
    let _span = dnc_telemetry::span("curve.deconv");
    debug_assert!(f.is_nondecreasing(), "deconv: f must be nondecreasing");
    debug_assert!(g.is_nondecreasing(), "deconv: g must be nondecreasing");
    if f.final_slope() > g.final_slope() {
        return Err(CurveError::Unstable {
            arrival_rate: f.final_slope().to_string(),
            service_rate: g.final_slope().to_string(),
        });
    }
    let out = deconv_core(f, g);
    crate::invariant::deconv_post(f, g, &out);
    Ok(out)
}

/// Fast-path / memoized deconvolution (kernel on; stability already
/// checked by the caller, so the envelope cannot fail).
fn deconv_kernel(f: &Curve, g: &Curve) -> Curve {
    let fid = intern::intern(f);
    let gid = intern::intern(g);
    if let Some(out) = shape::closed_deconv(&intern::shape_of(fid), &intern::shape_of(gid)) {
        dnc_telemetry::counter("curve.deconv.fast_path", 1);
        return out;
    }
    let key = CacheKey::new("curve.deconv").curve_id(fid).curve_id(gid);
    let out_id = deconv_memo().get_or_insert_with(key, || intern::intern(&deconv_core(f, g)));
    (*intern::resolve(out_id)).clone()
}

/// The candidate-envelope construction itself (requires
/// `rate(f) ≤ rate(g)`, checked by the callers).
fn deconv_core(f: &Curve, g: &Curve) -> Curve {
    let mut candidates: Vec<Curve> = Vec::new();
    // Family A: s pinned to a breakpoint u_j of g: f(t + u_j) − g(u_j).
    for &(u, v) in g.points() {
        candidates.push(f.shift_left(u).shift_up(-v));
    }
    // Family B: t + s pinned to a breakpoint x_i of f:
    // b_i(t) = f(x_i) − g(x_i − t) on [0, x_i], constant f(x_i) − g(0) after.
    for &(x, y) in f.points() {
        candidates.push(reverse_about(g, x).scale_y(-Rat::ONE).shift_up(y));
    }
    Curve::max_all(candidates.iter())
}

/// The curve `t ↦ g(x − t)` on `[0, x]`, extended by the constant `g(0)`
/// for `t ≥ x` (used by deconvolution's family-B candidates).
fn reverse_about(g: &Curve, x: Rat) -> Curve {
    if x.is_zero() {
        return Curve::constant(g.at_zero());
    }
    let mut pts: Vec<(Rat, Rat)> = Vec::new();
    // t = 0 corresponds to g(x).
    pts.push((Rat::ZERO, g.eval(x)));
    // Breakpoints u of g with 0 < u < x map to t = x − u (descending u =>
    // ascending t).
    let mut inner: Vec<Rat> = g
        .breakpoint_xs()
        .into_iter()
        .filter(|&u| u.is_positive() && u < x)
        .collect();
    inner.sort_by(|a, b| b.cmp(a));
    for u in inner {
        pts.push((x - u, g.eval(u)));
    }
    // t = x corresponds to g(0); constant afterwards.
    pts.push((x, g.at_zero()));
    Curve::from_points(pts, Rat::ZERO)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnc_num::{int, rat};

    #[test]
    fn conv_rate_latency_adds_latency_min_rate() {
        let b1 = Curve::rate_latency(int(3), int(2));
        let b2 = Curve::rate_latency(int(1), int(5));
        assert_eq!(conv(&b1, &b2), Curve::rate_latency(int(1), int(7)));
        assert_eq!(conv(&b2, &b1), Curve::rate_latency(int(1), int(7)));
    }

    #[test]
    fn conv_token_buckets() {
        // γ_{σ1,ρ1} ⊗ γ_{σ2,ρ2} = σ1+σ2 + min(ρ1,ρ2)·t.
        let g1 = Curve::token_bucket(int(2), int(3));
        let g2 = Curve::token_bucket(int(5), int(1));
        assert_eq!(conv(&g1, &g2), Curve::token_bucket(int(7), int(1)));
    }

    #[test]
    fn conv_concave_zero_at_zero_is_min() {
        // Both concave with f(0)=g(0)=0: f ⊗ g = min(f, g).
        let f = Curve::token_bucket_peak(int(1), rat(1, 4), int(1));
        let g = Curve::token_bucket_peak(int(3), rat(1, 2), int(2));
        assert_eq!(conv(&f, &g), f.min(&g));
    }

    #[test]
    fn conv_with_zero_collapses() {
        // f ⊗ 0 = f(0) held constant... actually inf_s f(s) + 0 = f(0).
        let f = Curve::token_bucket(int(2), int(1));
        assert_eq!(conv(&f, &Curve::zero()), Curve::constant(int(2)));
    }

    #[test]
    fn conv_matches_definition_pointwise() {
        let f = Curve::rate_latency(int(2), int(1));
        let g = Curve::token_bucket_peak(int(2), rat(1, 2), int(3));
        let c = conv(&f, &g);
        // Dense check of inf over s grid (s on 1/8 grid up to t).
        for tn in 0..48 {
            let t = rat(tn, 8);
            let mut best = f.eval(Rat::ZERO) + g.eval(t);
            let mut sn = 0;
            while rat(sn, 8) <= t {
                let s = rat(sn, 8);
                let v = f.eval(s) + g.eval(t - s);
                if v < best {
                    best = v;
                }
                sn += 1;
            }
            assert!(c.eval(t) <= best, "conv above definition at t={t}");
        }
    }

    #[test]
    fn kernel_agrees_with_envelope() {
        // Mixed shapes exercise fast path, memo, and envelope on the
        // same operands; every pairing must agree bit-for-bit.
        let curves = [
            Curve::token_bucket(int(2), int(3)),
            Curve::token_bucket(int(0), int(1)),
            Curve::rate_latency(int(3), int(2)),
            Curve::rate(int(2)),
            Curve::zero(),
            Curve::token_bucket_peak(int(2), rat(1, 2), int(3)),
        ];
        for f in &curves {
            for g in &curves {
                assert_eq!(conv(f, g), conv_envelope(f, g), "conv {f} ⊗ {g}");
                let fast = deconv(f, g);
                let slow = deconv_envelope(f, g);
                assert_eq!(fast, slow, "deconv {f} ⊘ {g}");
            }
        }
    }

    #[test]
    fn deconv_token_bucket_by_rate_latency() {
        // γ_{σ,ρ} ⊘ β_{R,T} = γ_{σ+ρT, ρ} when ρ ≤ R.
        let a = Curve::token_bucket(int(2), int(1));
        let b = Curve::rate_latency(int(3), int(4));
        assert_eq!(deconv(&a, &b).unwrap(), Curve::token_bucket(int(6), int(1)));
    }

    #[test]
    fn deconv_unstable() {
        let a = Curve::token_bucket(int(1), int(2));
        let b = Curve::rate_latency(int(1), int(0));
        assert!(matches!(deconv(&a, &b), Err(CurveError::Unstable { .. })));
    }

    #[test]
    fn deconv_peak_capped_by_slower_rate_latency() {
        // α = min{t, 1 + t/4}, β = β_{1/2, 2}. Output burst grows: the sup
        // walks past the latency and the fast initial slope.
        let a = Curve::token_bucket_peak(int(1), rat(1, 4), int(1));
        let b = Curve::rate_latency(rat(1, 2), int(2));
        let d = deconv(&a, &b).unwrap();
        // Definition cross-check on a grid.
        for tn in 0..32 {
            let t = rat(tn, 4);
            let mut best = a.eval(t) - b.eval(Rat::ZERO);
            for sn in 0..64 {
                let s = rat(sn, 4);
                let v = a.eval(t + s) - b.eval(s);
                if v > best {
                    best = v;
                }
            }
            assert!(d.eval(t) >= best, "deconv below definition at t={t}");
        }
        assert!(d.is_nondecreasing());
        assert!(d.is_concave());
    }

    #[test]
    fn conv_all_associativity_example() {
        let a = Curve::rate_latency(int(5), int(1));
        let b = Curve::rate_latency(int(3), int(2));
        let c = Curve::rate_latency(int(4), int(3));
        let left = conv(&conv(&a, &b), &c);
        let right = conv(&a, &conv(&b, &c));
        assert_eq!(left, right);
        assert_eq!(left, Curve::rate_latency(int(3), int(6)));
        assert_eq!(conv_all([&a, &b, &c]), left);
    }
}
