//! Pointwise combinations of curves: sum, difference, minimum, maximum.

use crate::curve::Curve;
use dnc_num::Rat;

/// Merge the breakpoint abscissae of two curves (sorted, deduplicated).
fn merged_xs(f: &Curve, g: &Curve) -> Vec<Rat> {
    let mut xs: Vec<Rat> = f
        .breakpoint_xs()
        .into_iter()
        .chain(g.breakpoint_xs())
        .collect();
    xs.sort();
    xs.dedup();
    xs
}

impl Curve {
    /// Pointwise sum `f + g` — preserves concavity, convexity, and the
    /// nondecreasing property when both operands have them.
    pub fn add(&self, g: &Curve) -> Curve {
        let xs = merged_xs(self, g);
        let pts = xs
            .into_iter()
            .map(|x| (x, self.eval(x) + g.eval(x)))
            .collect();
        Curve::from_points(pts, self.final_slope() + g.final_slope())
    }

    /// Pointwise difference `f − g`. The result is generally *not*
    /// nondecreasing even for nondecreasing operands; callers re-check
    /// shape predicates where they matter.
    pub fn sub(&self, g: &Curve) -> Curve {
        self.add(&g.scale_y(-Rat::ONE))
    }

    /// Sum of many curves — concave (resp. nondecreasing) when every
    /// summand is.
    ///
    /// # Panics
    /// Panics on an empty iterator.
    pub fn sum<'a, I: IntoIterator<Item = &'a Curve>>(curves: I) -> Curve {
        let mut it = curves.into_iter();
        let first = it.next().expect("Curve::sum of empty iterator").clone(); // audit: allow(expect, documented panic: empty iterator)
        it.fold(first, |acc, c| acc.add(c))
    }

    /// Pointwise minimum `min(f, g)` (exact: inserts crossing points).
    /// Preserves concavity and the nondecreasing property.
    pub fn min(&self, g: &Curve) -> Curve {
        self.extremum(g, true)
    }

    /// Pointwise maximum `max(f, g)` (exact: inserts crossing points).
    /// Preserves convexity and the nondecreasing property.
    pub fn max(&self, g: &Curve) -> Curve {
        self.extremum(g, false)
    }

    fn extremum(&self, g: &Curve, take_min: bool) -> Curve {
        let pick = |a: Rat, b: Rat| if take_min { a.min(b) } else { a.max(b) };
        let mut xs = merged_xs(self, g);

        // Insert interior crossing points: between consecutive xs both
        // curves are linear, so f − g is linear and crosses at most once.
        let mut crossings: Vec<Rat> = Vec::new();
        for w in xs.windows(2) {
            let (a, b) = (w[0], w[1]); // audit: allow(index, windows(2) yields exactly two elements)
            let da = self.eval(a) - g.eval(a);
            let db = self.eval(b) - g.eval(b);
            if (da.is_positive() && db.is_negative()) || (da.is_negative() && db.is_positive()) {
                // Linear interpolation root of the difference.
                let t = a + (b - a) * (da / (da - db));
                crossings.push(t);
            }
        }
        // Tail crossing after the last breakpoint.
        let last = *xs.last().unwrap(); // audit: allow(unwrap, merged_xs of non-empty curves is non-empty)
        let dv = self.eval(last) - g.eval(last);
        let ds = self.final_slope() - g.final_slope();
        if !ds.is_zero() {
            // diff(t) = dv + ds (t - last) = 0 at t = last - dv/ds, when
            // strictly beyond `last`.
            let t = last - dv / ds;
            if t > last {
                crossings.push(t);
            }
        }
        xs.extend(crossings);
        xs.sort();
        xs.dedup();

        let pts: Vec<(Rat, Rat)> = xs
            .iter()
            .map(|&x| (x, pick(self.eval(x), g.eval(x))))
            .collect();

        // Tail: after the last point there are no more crossings, so the
        // extremum follows a single curve. Decide by value then slope.
        let lx = *xs.last().unwrap(); // audit: allow(unwrap, merged_xs of non-empty curves is non-empty)
        let (fv, gv) = (self.eval(lx), g.eval(lx));
        let final_slope = if fv == gv {
            pick(self.final_slope(), g.final_slope())
        } else if (fv < gv) == take_min {
            self.final_slope()
        } else {
            g.final_slope()
        };
        Curve::from_points(pts, final_slope)
    }

    /// Minimum of many curves — concave (resp. nondecreasing) when every
    /// operand is; this is how multi-leaky-bucket envelopes stay concave.
    ///
    /// # Panics
    /// Panics on an empty iterator.
    pub fn min_all<'a, I: IntoIterator<Item = &'a Curve>>(curves: I) -> Curve {
        let mut it = curves.into_iter();
        let first = it.next().expect("Curve::min_all of empty iterator").clone(); // audit: allow(expect, documented panic: empty iterator)
        it.fold(first, |acc, c| acc.min(c))
    }

    /// Maximum of many curves — convex (resp. nondecreasing) when every
    /// operand is.
    ///
    /// # Panics
    /// Panics on an empty iterator.
    pub fn max_all<'a, I: IntoIterator<Item = &'a Curve>>(curves: I) -> Curve {
        let mut it = curves.into_iter();
        let first = it.next().expect("Curve::max_all of empty iterator").clone(); // audit: allow(expect, documented panic: empty iterator)
        it.fold(first, |acc, c| acc.max(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnc_num::{int, rat};

    #[test]
    fn add_merges_breakpoints() {
        let f = Curve::rate_latency(int(2), int(1));
        let g = Curve::token_bucket(int(3), int(1));
        let s = f.add(&g);
        assert_eq!(s.eval(int(0)), int(3));
        assert_eq!(s.eval(int(1)), int(4));
        assert_eq!(s.eval(int(2)), int(7));
        assert_eq!(s.final_slope(), int(3));
    }

    #[test]
    fn sub_inverse_of_add() {
        let f = Curve::token_bucket(int(5), rat(1, 3));
        let g = Curve::rate_latency(int(1), int(2));
        assert_eq!(f.add(&g).sub(&g), f);
    }

    #[test]
    fn min_inserts_crossing() {
        // f = 1 + t/4, g = t: cross at t = 4/3.
        let f = Curve::token_bucket(int(1), rat(1, 4));
        let g = Curve::rate(int(1));
        let m = g.min(&f);
        assert_eq!(m, Curve::token_bucket_peak(int(1), rat(1, 4), int(1)));
    }

    #[test]
    fn max_tail_crossing() {
        // f = 10 (constant), g = t: cross in the tail at t = 10.
        let f = Curve::constant(int(10));
        let g = Curve::rate(int(1));
        let m = f.max(&g);
        assert_eq!(m.eval(int(5)), int(10));
        assert_eq!(m.eval(int(10)), int(10));
        assert_eq!(m.eval(int(12)), int(12));
        assert_eq!(m.final_slope(), int(1));
        let mi = f.min(&g);
        assert_eq!(mi.eval(int(5)), int(5));
        assert_eq!(mi.eval(int(12)), int(10));
        assert_eq!(mi.final_slope(), int(0));
    }

    #[test]
    fn min_of_identical() {
        let f = Curve::token_bucket(int(2), int(1));
        assert_eq!(f.min(&f), f);
        assert_eq!(f.max(&f), f);
    }

    #[test]
    fn pos_clamps_negative_dip() {
        // t - 4: negative before t=4.
        let f = Curve::affine(int(-4), int(1));
        let p = f.pos();
        assert_eq!(p.eval(int(0)), int(0));
        assert_eq!(p.eval(int(4)), int(0));
        assert_eq!(p.eval(int(6)), int(2));
        assert_eq!(p, Curve::rate_latency(int(1), int(4)));
    }

    #[test]
    fn sum_and_min_all() {
        let curves = [
            Curve::token_bucket(int(1), int(1)),
            Curve::token_bucket(int(2), rat(1, 2)),
            Curve::token_bucket(int(4), rat(1, 4)),
        ];
        let s = Curve::sum(curves.iter());
        assert_eq!(s.eval(int(0)), int(7));
        assert_eq!(s.final_slope(), rat(7, 4));
        let m = Curve::min_all(curves.iter());
        assert!(m.is_concave());
        assert_eq!(m.eval(int(0)), int(1));
    }
}
