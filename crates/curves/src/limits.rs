//! Cooperative resource limits for the curve algebra's hot loops.
//!
//! The min-plus operations are exact but not cheap: segment counts can
//! grow multiplicatively under repeated convolution, and adversarial
//! topologies (Bouillard's accuracy-vs-tractability trade-off) can push a
//! single analysis past any reasonable time or memory budget. This module
//! lets a *runner* impose a budget on every curve operation executed by
//! the current thread without threading a parameter through each of the
//! dozens of call sites:
//!
//! * a wall-clock **deadline**,
//! * a **segment cap** (proxy for memory: the widest operand/result a
//!   single min-plus operation may touch),
//! * an **operation cap** (total `conv`/`deconv`/`hdev` calls),
//! * a shared **cancellation token** ([`CancelToken`]) that another
//!   thread may trip at any time.
//!
//! [`install`] puts a [`Limits`] into thread-local storage and returns an
//! RAII [`LimitsGuard`] that restores the previous state on drop (guards
//! nest). The instrumented operations call [`checkpoint`] at entry; when a
//! limit is breached the checkpoint **panics with a [`BudgetBreach`]
//! payload** (via `panic_any`). This is deliberate: the algebra's
//! signatures stay infallible for the nominal path, and a guarded runner
//! (see `dnc-core`'s `resilient` module) wraps each analysis in
//! `catch_unwind`, downcasts the payload, and degrades gracefully. With no
//! limits installed — the default — [`checkpoint`] is two thread-local
//! loads and a branch.

use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A shared, clonable cancellation flag. Cloning shares the flag: any
/// clone may [`CancelToken::cancel`], every clone observes it.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, untripped token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Trip the token; every holder sees the request at its next check.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether a cancellation was requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// A budget on curve operations run by the current thread.
#[derive(Clone, Debug, Default)]
pub struct Limits {
    /// Absolute wall-clock deadline.
    pub deadline: Option<Instant>,
    /// Largest segment count a single operation may touch (sum of the
    /// operand breakpoint counts reported at the checkpoint).
    pub segment_cap: Option<usize>,
    /// Total number of checkpointed operations allowed.
    pub op_cap: Option<u64>,
    /// Cooperative cancellation.
    pub cancel: Option<CancelToken>,
}

impl Limits {
    /// No limits at all (checkpoints always pass).
    pub fn unlimited() -> Limits {
        Limits::default()
    }
}

/// Which limit a checkpoint found breached.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BudgetBreach {
    /// The wall-clock deadline passed.
    Deadline,
    /// An operation touched more than `cap` segments.
    SegmentCap {
        /// The configured cap.
        cap: usize,
        /// The observed segment count.
        observed: usize,
    },
    /// The total operation budget ran out.
    OpCap {
        /// The configured cap.
        cap: u64,
    },
    /// The [`CancelToken`] was tripped.
    Cancelled,
}

impl fmt::Display for BudgetBreach {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetBreach::Deadline => write!(f, "wall-clock deadline exceeded"),
            BudgetBreach::SegmentCap { cap, observed } => {
                write!(f, "segment cap exceeded: {observed} > {cap}")
            }
            BudgetBreach::OpCap { cap } => write!(f, "operation cap exceeded ({cap} ops)"),
            BudgetBreach::Cancelled => write!(f, "cancelled"),
        }
    }
}

struct Active {
    limits: Limits,
    ops: u64,
}

thread_local! {
    static ACTIVE: RefCell<Vec<Active>> = const { RefCell::new(Vec::new()) };
}

/// RAII handle for an installed [`Limits`]; uninstalls on drop. Guards
/// nest (inner limits shadow outer ones until dropped).
#[must_use = "dropping the guard immediately uninstalls the limits"]
pub struct LimitsGuard {
    _private: (),
}

/// Install `limits` for the current thread until the returned guard is
/// dropped.
pub fn install(limits: Limits) -> LimitsGuard {
    ACTIVE.with(|a| a.borrow_mut().push(Active { limits, ops: 0 }));
    LimitsGuard { _private: () }
}

impl Drop for LimitsGuard {
    fn drop(&mut self) {
        ACTIVE.with(|a| {
            a.borrow_mut().pop();
        });
    }
}

/// Whether any limits are installed on this thread.
pub fn active() -> bool {
    ACTIVE.with(|a| !a.borrow().is_empty())
}

/// A snapshot of the innermost [`Limits`] installed on this thread, or
/// `None` when the stack is empty. Worker threads spawned by a guarded
/// parallel analysis [`install`] this snapshot so they honor the same
/// deadline and cancellation token as the coordinating thread. The
/// operation counter is per-installation, so `k` workers share the
/// wall-clock deadline and cancel flag exactly but may together perform
/// up to `k` times the op cap — the cap bounds per-thread work, which is
/// what keeps any single thread from running away.
pub fn current() -> Option<Limits> {
    ACTIVE.with(|a| a.borrow().last().map(|top| top.limits.clone()))
}

/// Budget checkpoint, called by the instrumented operations with the
/// segment count they are about to touch. No-op when no limits are
/// installed.
///
/// # Panics
/// Panics with a [`BudgetBreach`] payload (`panic_any`) when a limit is
/// breached — callers that install limits must run the analysis under
/// `catch_unwind` and downcast (see [`breach_of`]).
pub fn checkpoint(segments: usize) {
    let breach = ACTIVE.with(|a| {
        let mut stack = a.borrow_mut();
        let top = stack.last_mut()?;
        if let Some(tok) = &top.limits.cancel {
            if tok.is_cancelled() {
                return Some(BudgetBreach::Cancelled);
            }
        }
        if let Some(cap) = top.limits.segment_cap {
            if segments > cap {
                return Some(BudgetBreach::SegmentCap {
                    cap,
                    observed: segments,
                });
            }
        }
        if let Some(cap) = top.limits.op_cap {
            top.ops += 1;
            if top.ops > cap {
                return Some(BudgetBreach::OpCap { cap });
            }
        }
        if let Some(deadline) = top.limits.deadline {
            // audit: allow(det-wall-clock, checkpoint's sanctioned deadline probe; a breach aborts the attempt rather than skewing any bound)
            if Instant::now() >= deadline {
                return Some(BudgetBreach::Deadline);
            }
        }
        None
    });
    if let Some(b) = breach {
        // Documented panic_any payload; always caught by the guarded
        // runner's catch_unwind.
        std::panic::panic_any(b);
    }
}

/// Downcast a `catch_unwind` payload back to the [`BudgetBreach`] raised
/// by [`checkpoint`], if that is what unwound.
pub fn breach_of(payload: &(dyn std::any::Any + Send)) -> Option<&BudgetBreach> {
    payload.downcast_ref::<BudgetBreach>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minplus::conv;
    use crate::Curve;
    use dnc_num::{int, rat};
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::time::Duration;

    #[test]
    fn no_limits_no_effect() {
        assert!(!active());
        checkpoint(usize::MAX); // must not panic
    }

    #[test]
    fn op_cap_trips_after_budget() {
        let g = install(Limits {
            op_cap: Some(2),
            ..Limits::default()
        });
        checkpoint(1);
        checkpoint(1);
        let r = catch_unwind(AssertUnwindSafe(|| checkpoint(1)));
        let err = r.expect_err("third op must breach");
        assert_eq!(
            breach_of(err.as_ref()),
            Some(&BudgetBreach::OpCap { cap: 2 })
        );
        drop(g);
        checkpoint(1); // uninstalled again
    }

    #[test]
    fn segment_cap_trips_on_wide_operands() {
        let _g = install(Limits {
            segment_cap: Some(4),
            ..Limits::default()
        });
        checkpoint(4);
        let r = catch_unwind(AssertUnwindSafe(|| checkpoint(5)));
        assert!(matches!(
            breach_of(r.expect_err("must breach").as_ref()),
            Some(BudgetBreach::SegmentCap {
                cap: 4,
                observed: 5
            })
        ));
    }

    #[test]
    fn cancel_token_trips_checkpoints() {
        let tok = CancelToken::new();
        let _g = install(Limits {
            cancel: Some(tok.clone()),
            ..Limits::default()
        });
        checkpoint(1);
        tok.cancel();
        let r = catch_unwind(AssertUnwindSafe(|| checkpoint(1)));
        assert_eq!(
            breach_of(r.expect_err("must breach").as_ref()),
            Some(&BudgetBreach::Cancelled)
        );
    }

    #[test]
    fn expired_deadline_trips() {
        let _g = install(Limits {
            deadline: Some(Instant::now() - Duration::from_millis(1)),
            ..Limits::default()
        });
        let r = catch_unwind(AssertUnwindSafe(|| checkpoint(1)));
        assert_eq!(
            breach_of(r.expect_err("must breach").as_ref()),
            Some(&BudgetBreach::Deadline)
        );
    }

    #[test]
    fn conv_respects_op_cap() {
        let f = Curve::token_bucket(int(2), rat(1, 4));
        let g = Curve::rate_latency(int(1), int(3));
        let _lim = install(Limits {
            op_cap: Some(1),
            ..Limits::default()
        });
        let _first = conv(&f, &g); // within budget
        let r = catch_unwind(AssertUnwindSafe(|| conv(&f, &g)));
        assert!(breach_of(r.expect_err("second conv must breach").as_ref()).is_some());
    }

    #[test]
    fn guards_nest_and_restore() {
        let _outer = install(Limits {
            op_cap: Some(1000),
            ..Limits::default()
        });
        {
            let _inner = install(Limits {
                op_cap: Some(1),
                ..Limits::default()
            });
            checkpoint(1);
            let r = catch_unwind(AssertUnwindSafe(|| checkpoint(1)));
            assert!(r.is_err());
        }
        // Back on the outer budget: plenty left.
        for _ in 0..100 {
            checkpoint(1);
        }
    }
}
