//! Edge-case tests for the curve algebra: degenerate inputs, boundary
//! behaviour, and canonical-form guarantees that the property tests'
//! generators rarely produce.

use dnc_curves::{bounds, minplus, transform, Curve, CurveError};
use dnc_num::{int, rat, Rat};

#[test]
fn zero_curve_identities() {
    let z = Curve::zero();
    let f = Curve::token_bucket(int(3), rat(1, 2));
    assert_eq!(f.add(&z), f);
    assert_eq!(f.sub(&z), f);
    assert_eq!(f.min(&z), z);
    assert_eq!(f.max(&z), f);
    assert!(z.is_concave() && z.is_convex() && z.is_nondecreasing());
}

#[test]
fn constant_curve_behaviour() {
    let c = Curve::constant(int(5));
    assert_eq!(c.eval(int(1_000_000)), int(5));
    assert_eq!(c.final_slope(), int(0));
    assert_eq!(c.sup_value(), Some(int(5)));
    // Deconvolving a constant by anything nondecreasing keeps it constant
    // minus the service's starting value.
    let beta = Curve::rate_latency(int(1), int(2));
    let d = minplus::deconv(&c, &beta).unwrap();
    assert_eq!(d, Curve::constant(int(5)));
}

#[test]
fn eval_at_exact_breakpoints() {
    let f = Curve::from_points(
        vec![(int(0), int(1)), (int(2), int(3)), (int(5), int(3))],
        int(2),
    );
    assert_eq!(f.eval(int(0)), int(1));
    assert_eq!(f.eval(int(2)), int(3));
    assert_eq!(f.eval(int(5)), int(3));
    assert_eq!(f.eval(int(6)), int(5));
}

#[test]
fn canonicalization_is_idempotent_under_roundtrip() {
    let f = Curve::from_points(
        vec![
            (int(0), int(0)),
            (int(1), int(1)),
            (int(2), int(2)),
            (int(3), int(3)),
            (int(4), int(5)),
        ],
        int(2),
    );
    // Three collinear interior points collapse; the final point collapses
    // into the final slope.
    assert_eq!(f.points().len(), 2);
    let g = Curve::from_points(f.points().to_vec(), f.final_slope());
    assert_eq!(f, g);
}

#[test]
fn min_max_of_identical_curves() {
    let f = Curve::token_bucket_peak(int(2), rat(1, 3), int(1));
    assert_eq!(f.min(&f), f);
    assert_eq!(f.max(&f), f);
    assert_eq!(minplus::conv(&f, &f), f, "concave, f(0)=0: f ⊗ f = f");
}

#[test]
fn conv_with_identity_like_steep_ramp() {
    // A very steep rate curve approximates the min-plus identity δ₀.
    let f = Curve::rate_latency(int(2), int(1));
    let steep = Curve::rate(int(1_000_000));
    let c = minplus::conv(&f, &steep);
    for t in [int(0), int(1), int(2), int(10)] {
        assert!(f.eval(t) - c.eval(t) <= rat(1, 10));
        assert!(c.eval(t) <= f.eval(t));
    }
}

#[test]
fn deconv_by_zero_latency_rate_is_bounded_shift() {
    // f ⊘ λ_R for concave f with rate ≤ R is f itself.
    let f = Curve::token_bucket(int(3), rat(1, 4));
    let d = minplus::deconv(&f, &Curve::rate(int(1))).unwrap();
    assert_eq!(d, f);
}

#[test]
fn hdev_zero_arrival() {
    let z = Curve::zero();
    let beta = Curve::rate_latency(int(1), int(7));
    // No data: no delay, even with big latency.
    assert_eq!(bounds::hdev(&z, &beta).unwrap(), int(0));
}

#[test]
fn hdev_equal_curves_rate() {
    let f = Curve::rate(rat(1, 2));
    assert_eq!(bounds::hdev(&f, &f).unwrap(), int(0));
}

#[test]
fn vdev_of_dominated_curve_is_nonpositive() {
    let small = Curve::rate(rat(1, 4));
    let big = Curve::affine(int(1), rat(1, 2));
    let v = bounds::vdev(&small, &big).unwrap();
    assert!(v <= Rat::ZERO);
}

#[test]
fn busy_period_zero_arrivals() {
    assert_eq!(bounds::busy_period(&Curve::zero(), int(1)).unwrap(), int(0));
}

#[test]
fn shift_left_past_all_breakpoints() {
    let f = Curve::token_bucket_peak(int(2), rat(1, 4), int(1));
    let far = f.shift_left(int(100));
    // Beyond the crossover everything is affine.
    assert_eq!(far.points().len(), 1);
    assert_eq!(far.final_slope(), rat(1, 4));
    assert_eq!(far.eval(int(0)), f.eval(int(100)));
}

#[test]
fn shift_zero_is_identity() {
    let f = Curve::token_bucket(int(1), int(1));
    assert_eq!(f.shift_left(Rat::ZERO), f);
    assert_eq!(f.shift_right_hold(Rat::ZERO), f);
}

#[test]
fn scale_y_by_zero_flattens() {
    let f = Curve::token_bucket(int(3), int(2));
    assert_eq!(f.scale_y(Rat::ZERO), Curve::zero());
}

#[test]
fn pseudo_inverse_at_exact_plateau_boundaries() {
    // Plateau [2,4] at value 3.
    let f = Curve::from_points(
        vec![(int(0), int(0)), (int(2), int(3)), (int(4), int(3))],
        rat(3, 2),
    );
    assert_eq!(f.pseudo_inverse(int(3)), Some(int(2)), "lower: first hit");
    assert_eq!(
        f.pseudo_inverse_upper(int(3)),
        Some(int(4)),
        "upper: last hit"
    );
    assert_eq!(
        f.pseudo_inverse(rat(31, 10)),
        f.pseudo_inverse_upper(rat(31, 10))
    );
}

#[test]
fn compose_with_identity() {
    let id = Curve::rate(int(1));
    let f = Curve::token_bucket_peak(int(3), rat(1, 2), int(2));
    assert_eq!(transform::compose(&f, &id), f);
    assert_eq!(transform::compose(&id, &f), f);
}

#[test]
fn inverse_strict_of_inverse_is_original() {
    let f = Curve::from_points(vec![(int(0), int(0)), (int(2), int(8))], rat(1, 2));
    let ff = transform::inverse_strict(&transform::inverse_strict(&f));
    assert_eq!(ff, f);
}

#[test]
fn future_min_of_convex_dip_to_zero() {
    // Ct − α shape: starts 0, dips negative, recovers — clamp then
    // monotonize must equal monotonize of the clamp.
    let raw = Curve::rate(int(1)).sub(&Curve::token_bucket(int(2), rat(1, 2)));
    let a = raw.pos().future_min();
    let b = raw.future_min().pos();
    for t in 0..20 {
        assert_eq!(a.eval(int(t)), b.eval(int(t)), "t={t}");
    }
}

#[test]
fn hdev_general_equal_rate_tail() {
    // α and β with equal ultimate rates and α permanently above by a
    // fixed burst: deviation settles at burst/rate + latency.
    let alpha = Curve::token_bucket(int(2), rat(1, 2));
    let beta = Curve::rate_latency(rat(1, 2), int(1));
    assert_eq!(bounds::hdev_general(&alpha, &beta).unwrap(), int(5));
    assert_eq!(
        bounds::hdev(&alpha, &beta).unwrap(),
        bounds::hdev_general(&alpha, &beta).unwrap()
    );
}

#[test]
fn error_types_display() {
    let e = CurveError::Unstable {
        arrival_rate: "2".into(),
        service_rate: "1".into(),
    };
    assert!(e.to_string().contains("unstable"));
    assert!(CurveError::NeverServed.to_string().contains("never"));
    assert!(CurveError::BadShape("x").to_string().contains("x"));
}

#[test]
fn display_and_debug_formats() {
    let f = Curve::token_bucket_peak(int(1), rat(1, 4), int(1));
    let s = format!("{f}");
    assert!(s.contains("slope 1/4"));
    assert!(s.contains("(0,0)"));
}

#[test]
fn conv_all_single_element() {
    let f = Curve::rate_latency(int(2), int(1));
    assert_eq!(minplus::conv_all([&f]), f);
}

#[test]
#[should_panic(expected = "empty")]
fn conv_all_empty_panics() {
    let _ = minplus::conv_all::<[&Curve; 0]>([]);
}

#[test]
#[should_panic(expected = "negative")]
fn eval_negative_panics() {
    let _ = Curve::zero().eval(int(-1));
}

#[test]
#[should_panic(expected = "strictly increasing")]
fn from_points_rejects_duplicate_x() {
    let _ = Curve::from_points(vec![(int(0), int(0)), (int(0), int(1))], int(1));
}
