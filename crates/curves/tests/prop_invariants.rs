//! Property tests for the curve algebra's standing invariants. CI runs this
//! file twice — with and without `--features debug-invariants` — so the
//! properties are checked both by these explicit assertions and by the
//! library's internal postcondition layer.

use dnc_curves::{bounds, minplus, Curve};
use dnc_num::{rat, Rat};
use proptest::prelude::*;

/// A random token-bucket arrival curve with small rational parameters.
fn token_bucket_from(sn: i64, sd: i64, rn: i64, rd: i64) -> Curve {
    Curve::token_bucket(rat(sn, sd), rat(rn, rd))
}

/// A random rate-latency service curve; rate kept >= 1 so compositions
/// with the arrival strategies above stay stable.
fn rate_latency_from(rn: i64, rd: i64, tn: i64, td: i64) -> Curve {
    Curve::rate_latency(rat(rn, rd) + Rat::ONE, rat(tn, td))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Convolution of nondecreasing curves is nondecreasing, and
    /// compositions of token buckets / rate-latency curves stay
    /// nondecreasing through repeated conv.
    #[test]
    fn conv_preserves_nondecreasing(
        sn in 0i64..30, sd in 1i64..8, rn in 0i64..10, rd in 1i64..8,
        rn2 in 0i64..10, rd2 in 1i64..8, tn in 0i64..20, td in 1i64..8,
    ) {
        let a = token_bucket_from(sn, sd, rn, rd);
        let b = rate_latency_from(rn2, rd2, tn, td);
        prop_assert!(a.is_nondecreasing());
        prop_assert!(b.is_nondecreasing());
        let c = minplus::conv(&a, &b);
        prop_assert!(c.is_nondecreasing(), "conv broke monotonicity: {c}");
        let d = minplus::conv(&c, &a);
        prop_assert!(d.is_nondecreasing(), "second conv broke monotonicity: {d}");
    }

    /// Min-plus convolution is associative (exact structural equality —
    /// the representation is canonical).
    #[test]
    fn conv_is_associative(
        sn in 0i64..30, sd in 1i64..8, rn in 0i64..10, rd in 1i64..8,
        rn2 in 0i64..10, rd2 in 1i64..8, tn in 0i64..20, td in 1i64..8,
        rn3 in 0i64..10, rd3 in 1i64..8, tn3 in 0i64..20, td3 in 1i64..8,
    ) {
        let a = token_bucket_from(sn, sd, rn, rd);
        let b = rate_latency_from(rn2, rd2, tn, td);
        let c = rate_latency_from(rn3, rd3, tn3, td3);
        let left = minplus::conv(&minplus::conv(&a, &b), &c);
        let right = minplus::conv(&a, &minplus::conv(&b, &c));
        prop_assert_eq!(left, right);
    }

    /// Convolution is commutative.
    #[test]
    fn conv_is_commutative(
        sn in 0i64..30, sd in 1i64..8, rn in 0i64..10, rd in 1i64..8,
        rn2 in 0i64..10, rd2 in 1i64..8, tn in 0i64..20, td in 1i64..8,
    ) {
        let a = token_bucket_from(sn, sd, rn, rd);
        let b = rate_latency_from(rn2, rd2, tn, td);
        prop_assert_eq!(minplus::conv(&a, &b), minplus::conv(&b, &a));
    }

    /// Delay (hdev) and backlog (vdev) of a stable token-bucket /
    /// rate-latency pair are non-negative, and the delay is sound:
    /// α(t) ≤ β(t + d) on a sample grid.
    #[test]
    fn hdev_vdev_nonnegative_and_sound(
        sn in 0i64..30, sd in 1i64..8, rn in 0i64..10, rd in 1i64..8,
        rn2 in 0i64..10, tn in 0i64..20, td in 1i64..8,
    ) {
        let alpha = token_bucket_from(sn, sd, rn, rd);
        let beta = rate_latency_from(rn2 + rn, rd, tn, td);
        // rate(β) = (rn2+rn)/rd + 1 > rn/rd = rate(α): always stable.
        let d = bounds::hdev(&alpha, &beta).unwrap();
        prop_assert!(!d.is_negative(), "negative delay {d}");
        let v = bounds::vdev(&alpha, &beta).unwrap();
        prop_assert!(!v.is_negative(), "negative backlog {v}");
        // Soundness of d on a grid (denominator-aligned to stay exact).
        for k in 0..24 {
            let t = rat(k, 2);
            prop_assert!(
                alpha.eval(t) <= beta.eval(t + d),
                "unsound delay at t={}", t
            );
        }
        // Backlog dominates the pointwise excess on the same grid.
        for k in 0..24 {
            let t = rat(k, 2);
            prop_assert!(alpha.eval(t) - beta.eval(t) <= v);
        }
    }

    /// Deconvolution (output bound) of a stable pair stays concave and
    /// nondecreasing, and the composition conv(deconv(α, β), ...) keeps
    /// monotonicity — the chain the analysis algorithms execute.
    #[test]
    fn deconv_then_conv_preserves_shape(
        sn in 0i64..30, sd in 1i64..8, rn in 0i64..10, rd in 1i64..8,
        rn2 in 0i64..10, tn in 0i64..20, td in 1i64..8,
    ) {
        let alpha = token_bucket_from(sn, sd, rn, rd);
        let beta = rate_latency_from(rn2 + rn, rd, tn, td);
        let out = minplus::deconv(&alpha, &beta).unwrap();
        prop_assert!(out.is_nondecreasing(), "deconv broke monotonicity: {out}");
        prop_assert!(out.is_concave(), "deconv broke concavity: {out}");
        // Output dominates the input arrival constraint (s = 0 candidate
        // with β(0) = 0).
        for k in 0..24 {
            let t = rat(k, 2);
            prop_assert!(out.eval(t) >= alpha.eval(t) - beta.eval(Rat::ZERO));
        }
        let chained = minplus::conv(&out, &alpha);
        prop_assert!(chained.is_nondecreasing());
    }

    /// The output-propagation identity b'(I) = b(I + d): shifting a
    /// token bucket left by a non-negative delay keeps shape and equals
    /// pointwise evaluation of the original at I + d.
    #[test]
    fn shift_left_is_cruz_propagation(
        sn in 0i64..30, sd in 1i64..8, rn in 0i64..10, rd in 1i64..8,
        dn in 0i64..16, dd in 1i64..8,
    ) {
        let b = token_bucket_from(sn, sd, rn, rd);
        let d = rat(dn, dd);
        let shifted = b.shift_left(d);
        prop_assert!(shifted.is_nondecreasing());
        prop_assert!(shifted.is_concave());
        for k in 0..24 {
            let t = rat(k, 2);
            prop_assert_eq!(shifted.eval(t), b.eval(t + d), "at t={}", t);
        }
    }
}
