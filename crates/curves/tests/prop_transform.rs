//! Property tests for curve composition and inversion.

use dnc_curves::{transform, Curve};
use dnc_num::{rat, Rat};
use proptest::prelude::*;

/// Strictly increasing cumulative-like curve with f(0) = 0.
fn arb_strict() -> impl Strategy<Value = Curve> {
    (
        proptest::collection::vec((1i128..6, 1i128..4), 1..4),
        (1i128..4, 1i128..4),
    )
        .prop_map(|(segs, (fs_n, fs_d))| {
            let mut pts = vec![(Rat::ZERO, Rat::ZERO)];
            let mut x = Rat::ZERO;
            let mut y = Rat::ZERO;
            for (dx, slope_n) in segs {
                x += Rat::from_int(dx);
                y += Rat::from_int(dx) * Rat::new(slope_n, 2);
                pts.push((x, y));
            }
            Curve::from_points(pts, Rat::new(fs_n, fs_d))
        })
}

/// Nondecreasing curve (possibly with flats).
fn arb_monotone() -> impl Strategy<Value = Curve> {
    (
        proptest::collection::vec((1i128..6, 0i128..4), 1..4),
        (0i128..4, 1i128..4),
    )
        .prop_map(|(segs, (fs_n, fs_d))| {
            let mut pts = vec![(Rat::ZERO, Rat::ZERO)];
            let mut x = Rat::ZERO;
            let mut y = Rat::ZERO;
            for (dx, slope_n) in segs {
                x += Rat::from_int(dx);
                y += Rat::from_int(dx) * Rat::new(slope_n, 2);
                pts.push((x, y));
            }
            Curve::from_points(pts, Rat::new(fs_n, fs_d))
        })
}

fn grid(limit: i128) -> Vec<Rat> {
    (0..=limit * 2).map(|n| rat(n, 2)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn compose_pointwise(outer in arb_monotone(), inner in arb_monotone()) {
        let c = transform::compose(&outer, &inner);
        for t in grid(20) {
            prop_assert_eq!(c.eval(t), outer.eval(inner.eval(t)), "at {}", t);
        }
    }

    #[test]
    fn compose_associative(f in arb_monotone(), g in arb_monotone(), h in arb_monotone()) {
        let left = transform::compose(&transform::compose(&f, &g), &h);
        let right = transform::compose(&f, &transform::compose(&g, &h));
        for t in grid(16) {
            prop_assert_eq!(left.eval(t), right.eval(t), "at {}", t);
        }
    }

    #[test]
    fn inverse_round_trips(f in arb_strict()) {
        let inv = transform::inverse_strict(&f);
        for t in grid(16) {
            prop_assert_eq!(inv.eval(f.eval(t)), t, "f then inv at {}", t);
        }
        let back = transform::inverse_strict(&inv);
        prop_assert_eq!(back, f);
    }

    #[test]
    fn inverse_matches_pseudo_inverse(f in arb_strict(), y_num in 0i128..40) {
        // For strictly increasing curves the functional inverse agrees
        // with the (lower) pseudo-inverse wherever both are defined.
        let y = rat(y_num, 2);
        let inv = transform::inverse_strict(&f);
        if let Some(t) = f.pseudo_inverse(y) {
            prop_assert_eq!(inv.eval(y), t);
        }
    }

    #[test]
    fn compose_preserves_monotonicity(outer in arb_monotone(), inner in arb_monotone()) {
        prop_assert!(transform::compose(&outer, &inner).is_nondecreasing());
    }
}
