//! Property tests for the PWL curve algebra: pointwise ops agree with
//! sampling, min-plus ops agree with their defining inf/sup formulas, and
//! bound extraction is sound.

use dnc_curves::{bounds, minplus, Curve};
use dnc_num::{int, rat, Rat};
use proptest::prelude::*;

/// Small positive rational with denominator up to 8.
fn arb_pos() -> impl Strategy<Value = Rat> {
    (1i128..40, 1i128..8).prop_map(|(n, d)| rat(n, d))
}

/// Non-negative rational.
fn arb_nonneg() -> impl Strategy<Value = Rat> {
    (0i128..40, 1i128..8).prop_map(|(n, d)| rat(n, d))
}

/// Random concave nondecreasing arrival-like curve: a concave hull of 1–3
/// token buckets, optionally peak-capped.
fn arb_concave() -> impl Strategy<Value = Curve> {
    (
        proptest::collection::vec((arb_nonneg(), arb_nonneg()), 1..4),
        proptest::option::of(arb_pos()),
    )
        .prop_map(|(buckets, peak)| {
            let mut c = Curve::multi_token_bucket(&buckets);
            if let Some(p) = peak {
                c = c.min(&Curve::rate(p + c.final_slope()));
            }
            c
        })
}

/// Random convex nondecreasing service-like curve: convolution of 1–3
/// rate-latency curves.
fn arb_convex() -> impl Strategy<Value = Curve> {
    proptest::collection::vec((arb_pos(), arb_nonneg()), 1..4).prop_map(|rls| {
        let curves: Vec<Curve> = rls
            .into_iter()
            .map(|(r, t)| Curve::rate_latency(r, t))
            .collect();
        minplus::conv_all(curves.iter())
    })
}

/// Sample points for spot checks.
fn grid(limit: i128) -> Vec<Rat> {
    (0..=limit * 4).map(|n| rat(n, 4)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn add_pointwise(f in arb_concave(), g in arb_convex()) {
        let s = f.add(&g);
        for t in grid(12) {
            prop_assert_eq!(s.eval(t), f.eval(t) + g.eval(t));
        }
    }

    #[test]
    fn min_max_pointwise(f in arb_concave(), g in arb_concave()) {
        let mi = f.min(&g);
        let ma = f.max(&g);
        for t in grid(12) {
            prop_assert_eq!(mi.eval(t), f.eval(t).min(g.eval(t)));
            prop_assert_eq!(ma.eval(t), f.eval(t).max(g.eval(t)));
        }
    }

    #[test]
    fn min_of_concave_is_concave(f in arb_concave(), g in arb_concave()) {
        prop_assert!(f.min(&g).is_concave());
    }

    #[test]
    fn max_of_convex_is_convex(f in arb_convex(), g in arb_convex()) {
        prop_assert!(f.max(&g).is_convex());
    }

    #[test]
    fn sum_of_concave_is_concave(f in arb_concave(), g in arb_concave()) {
        let s = f.add(&g);
        prop_assert!(s.is_concave());
        prop_assert!(s.is_nondecreasing());
    }

    #[test]
    fn shift_left_pointwise(f in arb_concave(), d in arb_nonneg()) {
        let s = f.shift_left(d);
        for t in grid(10) {
            prop_assert_eq!(s.eval(t), f.eval(t + d));
        }
    }

    #[test]
    fn shift_right_hold_pointwise(f in arb_convex(), d in arb_pos()) {
        let s = f.shift_right_hold(d);
        for t in grid(10) {
            let expect = if t <= d { f.eval(int(0)) } else { f.eval(t - d) };
            prop_assert_eq!(s.eval(t), expect);
        }
    }

    #[test]
    fn pseudo_inverse_is_infimum(f in arb_concave(), y in arb_nonneg()) {
        if let Some(t) = f.pseudo_inverse(y) {
            prop_assert!(f.eval(t) >= y);
            // No earlier point reaches y (check a few strictly smaller t).
            let probes = [t * rat(1,2), t * rat(3,4), t * rat(7,8)];
            for p in probes {
                if p < t {
                    prop_assert!(f.eval(p) < y, "f({p}) >= {y} but inverse said {t}");
                }
            }
        }
    }

    #[test]
    fn conv_commutative(f in arb_convex(), g in arb_convex()) {
        prop_assert_eq!(minplus::conv(&f, &g), minplus::conv(&g, &f));
    }

    #[test]
    fn conv_associative(f in arb_convex(), g in arb_convex(), h in arb_convex()) {
        let left = minplus::conv(&minplus::conv(&f, &g), &h);
        let right = minplus::conv(&f, &minplus::conv(&g, &h));
        prop_assert_eq!(left, right);
    }

    #[test]
    fn conv_matches_definition(f in arb_concave(), g in arb_convex()) {
        let c = minplus::conv(&f, &g);
        // The convolution must (a) lower-bound every candidate split and
        // (b) equal the min over the candidate split set at each grid t.
        for t in grid(8) {
            let mut best: Option<Rat> = None;
            // Candidate splits: breakpoints of f, t - breakpoints of g, plus a grid.
            let mut splits: Vec<Rat> = f.breakpoint_xs();
            for u in g.breakpoint_xs() {
                if u <= t {
                    splits.push(t - u);
                }
            }
            for n in 0..=8 {
                splits.push(t * rat(n, 8));
            }
            for s in splits {
                if s.is_negative() || s > t { continue; }
                let v = f.eval(s) + g.eval(t - s);
                best = Some(match best { Some(b) => b.min(v), None => v });
            }
            prop_assert_eq!(c.eval(t), best.unwrap(), "conv mismatch at t={}", t);
        }
    }

    #[test]
    fn deconv_matches_definition(f in arb_concave(), g in arb_convex()) {
        prop_assume!(f.final_slope() <= g.final_slope());
        let d = minplus::deconv(&f, &g).unwrap();
        let horizon = f.tail_start().max(g.tail_start()) + int(2);
        for t in grid(6) {
            let mut best: Option<Rat> = None;
            let mut ss: Vec<Rat> = g.breakpoint_xs();
            for x in f.breakpoint_xs() {
                if x >= t { ss.push(x - t); }
            }
            let steps = 8i128;
            for n in 0..=steps {
                ss.push(horizon * rat(n, steps));
            }
            for s in ss {
                if s.is_negative() { continue; }
                let v = f.eval(t + s) - g.eval(s);
                best = Some(match best { Some(b) => b.max(v), None => v });
            }
            prop_assert_eq!(d.eval(t), best.unwrap(), "deconv mismatch at t={}", t);
        }
    }

    #[test]
    fn deconv_dominates_input(f in arb_concave(), g in arb_convex()) {
        // α ⊘ β ≥ α − β(0) ≥ ... in particular ≥ α shifted by latency.
        prop_assume!(f.final_slope() <= g.final_slope());
        let d = minplus::deconv(&f, &g).unwrap();
        for t in grid(8) {
            prop_assert!(d.eval(t) >= f.eval(t) - g.eval(int(0)));
        }
    }

    #[test]
    fn hdev_sound_and_tight(alpha in arb_concave(), beta in arb_convex()) {
        prop_assume!(beta.final_slope() >= alpha.final_slope());
        prop_assume!(beta.final_slope().is_positive());
        match bounds::hdev(&alpha, &beta) {
            Ok(d) => {
                prop_assert!(!d.is_negative());
                // Soundness: α(t) ≤ β(t + d) everywhere (sampled).
                for t in grid(10) {
                    prop_assert!(
                        alpha.eval(t) <= beta.eval(t + d),
                        "hdev unsound at t={}: α={} > β={}",
                        t, alpha.eval(t), beta.eval(t + d)
                    );
                }
                // Tightness: brute-force sup over grid cannot exceed d.
                for t in grid(10) {
                    let needed = beta.pseudo_inverse(alpha.eval(t)).unwrap() - t;
                    prop_assert!(needed <= d);
                }
            }
            Err(e) => prop_assert!(false, "unexpected hdev error: {e}"),
        }
    }

    #[test]
    fn vdev_sound(alpha in arb_concave(), beta in arb_convex()) {
        prop_assume!(beta.final_slope() > alpha.final_slope());
        let v = bounds::vdev(&alpha, &beta).unwrap();
        for t in grid(10) {
            prop_assert!(alpha.eval(t) - beta.eval(t) <= v);
        }
    }

    #[test]
    fn busy_period_sound(f in arb_concave(), c in arb_pos()) {
        prop_assume!(f.final_slope() < c);
        let b = bounds::busy_period(&f, c).unwrap();
        // After the busy period the arrivals stay strictly below the
        // service line (sampled).
        for k in 1..=8i128 {
            let t = b + rat(k, 2);
            prop_assert!(f.eval(t) < c * t, "arrivals above service after busy period");
        }
        // At b itself (or 0) arrivals meet/exceed the line.
        prop_assert!(f.eval(b) >= c * b);
    }

    #[test]
    fn hdev_general_matches_hdev_on_standard_shapes(
        alpha in arb_concave(), beta in arb_convex()
    ) {
        prop_assume!(beta.final_slope() >= alpha.final_slope());
        prop_assume!(beta.final_slope().is_positive());
        let a = bounds::hdev(&alpha, &beta).unwrap();
        let b = bounds::hdev_general(&alpha, &beta).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn future_min_is_greatest_monotone_lower_bound(
        f in arb_concave(), g in arb_convex(), k in 1i128..5
    ) {
        // Build a possibly-dipping curve: concave minus a scaled convex,
        // plus a growing tail.
        let dip = f.sub(&g.scale_y(rat(1, k))).add(&Curve::rate(g.final_slope()));
        prop_assume!(!dip.final_slope().is_negative());
        let m = dip.future_min();
        prop_assert!(m.is_nondecreasing());
        for t in grid(12) {
            prop_assert!(m.eval(t) <= dip.eval(t), "above the original at {}", t);
        }
        // Greatest: at every breakpoint of m, the value equals the true
        // future infimum (sampled forward).
        for &(x, y) in m.points() {
            let mut inf = dip.eval(x);
            for j in 0..40 {
                inf = inf.min(dip.eval(x + rat(j, 2)));
            }
            prop_assert!(y >= inf - rat(1, 1000), "not tight at {}", x);
            prop_assert!(y <= inf, "above future inf at {}", x);
        }
    }

    #[test]
    fn conv_rate_latency_closed_form(
        r1 in arb_pos(), t1 in arb_nonneg(), r2 in arb_pos(), t2 in arb_nonneg()
    ) {
        let c = minplus::conv(&Curve::rate_latency(r1, t1), &Curve::rate_latency(r2, t2));
        prop_assert_eq!(c, Curve::rate_latency(r1.min(r2), t1 + t2));
    }

    #[test]
    fn deconv_token_bucket_closed_form(
        s in arb_nonneg(), rho in arb_nonneg(), r in arb_pos(), t in arb_nonneg()
    ) {
        prop_assume!(rho <= r);
        let a = Curve::token_bucket(s, rho);
        let b = Curve::rate_latency(r, t);
        let d = minplus::deconv(&a, &b).unwrap();
        prop_assert_eq!(d, Curve::token_bucket(s + rho * t, rho));
    }
}
