//! Property tests for the curve kernel: the hash-consing interner, the
//! shape-specialized closed forms, and the LRU memo table.
//!
//! Three claims, each load-bearing for the kernel's soundness story
//! (DESIGN.md §18):
//!
//! 1. **Interning is semantics-preserving**: `intern` is injective on
//!    canonical structure, so id equality *is* curve equality and
//!    `resolve` round-trips bit-identically.
//! 2. **Closed forms are Rat-exact**: every shape-specialized fast path
//!    agrees exactly — not approximately — with the always-general
//!    `*_envelope` computation, on random shaped operands. Together
//!    with memoization purity this is what makes kernel-on and
//!    kernel-off runs bit-identical.
//! 3. **The LRU cache matches a reference model**: contents and
//!    eviction order track an executable brute-force LRU under random
//!    op sequences.

use dnc_curves::cache::{CacheKey, CurveCache};
use dnc_curves::{bounds, intern, minplus, shape, Curve};
use dnc_num::{rat, Rat};
use proptest::prelude::*;

/// Small positive rational with denominator up to 8.
fn arb_pos() -> impl Strategy<Value = Rat> {
    (1i128..40, 1i128..8).prop_map(|(n, d)| rat(n, d))
}

/// Non-negative rational.
fn arb_nonneg() -> impl Strategy<Value = Rat> {
    (0i128..40, 1i128..8).prop_map(|(n, d)| rat(n, d))
}

/// Random concave nondecreasing arrival-like curve.
fn arb_concave() -> impl Strategy<Value = Curve> {
    proptest::collection::vec((arb_nonneg(), arb_nonneg()), 1..4)
        .prop_map(|buckets| Curve::multi_token_bucket(&buckets))
}

/// Random convex nondecreasing service-like curve.
fn arb_convex() -> impl Strategy<Value = Curve> {
    proptest::collection::vec((arb_pos(), arb_nonneg()), 1..4).prop_map(|rls| {
        let curves: Vec<Curve> = rls
            .into_iter()
            .map(|(r, t)| Curve::rate_latency(r, t))
            .collect();
        minplus::conv_all(curves.iter())
    })
}

/// Exactly the shapes the closed forms specialize on.
fn arb_token_bucket() -> impl Strategy<Value = Curve> {
    (arb_nonneg(), arb_nonneg()).prop_map(|(sigma, rho)| Curve::token_bucket(sigma, rho))
}

fn arb_rate_latency() -> impl Strategy<Value = Curve> {
    (arb_pos(), arb_nonneg()).prop_map(|(r, t)| Curve::rate_latency(r, t))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---- 1. interning is semantics-preserving ------------------------

    #[test]
    fn intern_round_trips_and_is_injective(f in arb_concave(), g in arb_convex()) {
        let fid = intern::intern(&f);
        let gid = intern::intern(&g);
        prop_assert_eq!(&*intern::resolve(fid), &f, "resolve must round-trip");
        prop_assert_eq!(&*intern::resolve(gid), &g, "resolve must round-trip");
        prop_assert_eq!(intern::intern(&f.clone()), fid, "re-interning is stable");
        prop_assert_eq!(fid == gid, f == g, "id equality iff curve equality");
    }

    #[test]
    fn interned_shape_matches_direct_classification(f in arb_token_bucket(), g in arb_rate_latency()) {
        for c in [&f, &g] {
            let direct = shape::classify(c);
            let memoized = intern::shape_of(intern::intern(c));
            prop_assert_eq!(direct.as_token_bucket(), memoized.as_token_bucket());
            prop_assert_eq!(direct.as_rate_latency(), memoized.as_rate_latency());
            prop_assert_eq!(direct.is_concave(), memoized.is_concave());
            prop_assert_eq!(direct.is_convex(), memoized.is_convex());
            prop_assert_eq!(direct.is_nondecreasing(), memoized.is_nondecreasing());
            prop_assert_eq!(direct.is_zero(), memoized.is_zero());
        }
    }

    // ---- 2. kernel paths are Rat-exact vs the general envelopes ------

    #[test]
    fn conv_kernel_is_exact_on_shaped_pairs(f in arb_token_bucket(), g in arb_token_bucket()) {
        intern::set_kernel_enabled(true);
        prop_assert_eq!(minplus::conv(&f, &g), minplus::conv_envelope(&f, &g));
    }

    #[test]
    fn conv_kernel_is_exact_on_general_pairs(f in arb_concave(), g in arb_convex()) {
        intern::set_kernel_enabled(true);
        prop_assert_eq!(minplus::conv(&f, &g), minplus::conv_envelope(&f, &g));
        prop_assert_eq!(minplus::conv(&g, &f), minplus::conv_envelope(&g, &f));
    }

    #[test]
    fn rl_conv_closed_form_is_exact(f in arb_rate_latency(), g in arb_rate_latency()) {
        intern::set_kernel_enabled(true);
        prop_assert_eq!(minplus::conv(&f, &g), minplus::conv_envelope(&f, &g));
    }

    #[test]
    fn deconv_kernel_is_exact(a in arb_token_bucket(), b in arb_rate_latency()) {
        intern::set_kernel_enabled(true);
        let kernel = minplus::deconv(&a, &b);
        let general = minplus::deconv_envelope(&a, &b);
        match (kernel, general) {
            (Ok(k), Ok(g)) => prop_assert_eq!(k, g),
            (Err(k), Err(g)) => prop_assert_eq!(k.to_string(), g.to_string()),
            (k, g) => prop_assert!(false, "kernel {k:?} vs envelope {g:?}"),
        }
    }

    #[test]
    fn hdev_kernel_is_exact(a in arb_token_bucket(), b in arb_rate_latency()) {
        intern::set_kernel_enabled(true);
        let kernel = bounds::hdev(&a, &b);
        let general = bounds::hdev_envelope(&a, &b);
        match (kernel, general) {
            (Ok(k), Ok(g)) => prop_assert_eq!(k, g),
            (Err(k), Err(g)) => prop_assert_eq!(k.to_string(), g.to_string()),
            (k, g) => prop_assert!(false, "kernel {k:?} vs envelope {g:?}"),
        }
    }

    #[test]
    fn hdev_general_kernel_is_exact(a in arb_concave(), b in arb_convex()) {
        intern::set_kernel_enabled(true);
        let kernel = bounds::hdev_general(&a, &b);
        let general = bounds::hdev_general_envelope(&a, &b);
        match (kernel, general) {
            (Ok(k), Ok(g)) => prop_assert_eq!(k, g),
            (Err(k), Err(g)) => prop_assert_eq!(k.to_string(), g.to_string()),
            (k, g) => prop_assert!(false, "kernel {k:?} vs envelope {g:?}"),
        }
    }

    // ---- 3. the LRU cache matches a reference model ------------------

    #[test]
    fn lru_matches_reference_model(
        capacity in 1usize..6,
        ops in proptest::collection::vec((0u64..12, proptest::bool::ANY), 1..80),
    ) {
        let cache: CurveCache<u64> = CurveCache::new(capacity);
        // Reference: most-recent first, at most `capacity` pairs.
        let mut model: Vec<(u64, u64)> = Vec::new();
        for (k, is_insert) in ops {
            let key = CacheKey::new("prop.lru").word(k);
            if is_insert {
                cache.insert(key, k * 100);
                if let Some(pos) = model.iter().position(|&(mk, _)| mk == k) {
                    model.remove(pos);
                }
                model.insert(0, (k, k * 100));
                while model.len() > capacity {
                    model.pop();
                }
            } else {
                let got = cache.lookup(&key);
                let want = model.iter().position(|&(mk, _)| mk == k);
                match (got, want) {
                    (Some(v), Some(pos)) => {
                        prop_assert_eq!(v, model[pos].1);
                        let entry = model.remove(pos);
                        model.insert(0, entry);
                    }
                    (None, None) => {}
                    (got, want) => prop_assert!(
                        false,
                        "lookup({k}) = {got:?} but model says {want:?}"
                    ),
                }
            }
        }
        prop_assert_eq!(cache.len(), model.len());
        for (k, v) in model {
            let key = CacheKey::new("prop.lru").word(k);
            prop_assert_eq!(cache.peek(&key), Some(v), "model entry {k} missing");
        }
    }
}
