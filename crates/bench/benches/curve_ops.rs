//! Micro-benchmarks of the min-plus substrate: the inner loops every
//! analysis is built from.

use criterion::{criterion_group, criterion_main, Criterion};
use dnc_curves::{bounds, minplus, Curve};
use dnc_num::{rat, Rat};

/// A concave arrival-like curve with `k` pieces.
fn concave(k: i128) -> Curve {
    let buckets: Vec<(Rat, Rat)> = (1..=k).map(|i| (rat(8 * i, 1), rat(1, 2 * i))).collect();
    Curve::multi_token_bucket(&buckets).min(&Curve::rate(Rat::from(2)))
}

/// A convex service-like curve with `k` pieces.
fn convex(k: i128) -> Curve {
    let curves: Vec<Curve> = (1..=k)
        .map(|i| Curve::rate_latency(rat(3, i), rat(i, 2)))
        .collect();
    minplus::conv_all(curves.iter())
}

fn bench_curve_ops(c: &mut Criterion) {
    let a4 = concave(4);
    let a8 = concave(8);
    let b4 = convex(4);
    let b8 = convex(8);

    c.bench_function("add_8x8", |b| b.iter(|| criterion::black_box(a8.add(&b8))));
    c.bench_function("min_8x8", |b| b.iter(|| criterion::black_box(a8.min(&a4))));
    c.bench_function("conv_4x4", |b| {
        b.iter(|| criterion::black_box(minplus::conv(&b4, &b4)))
    });
    c.bench_function("conv_8x8", |b| {
        b.iter(|| criterion::black_box(minplus::conv(&b8, &b8)))
    });
    c.bench_function("deconv_8x8", |b| {
        b.iter(|| criterion::black_box(minplus::deconv(&a8, &b8).unwrap()))
    });
    c.bench_function("hdev_8x8", |b| {
        b.iter(|| criterion::black_box(bounds::hdev(&a8, &b8).unwrap()))
    });
    c.bench_function("busy_period_8", |b| {
        b.iter(|| criterion::black_box(bounds::busy_period(&a8, Rat::from(2)).unwrap()))
    });
}

criterion_group!(benches, bench_curve_ops);
criterion_main!(benches);
