//! Runtime of the three delay-analysis algorithms — the paper's
//! *efficiency* requirement ("simple and fast in order to be used as part
//! of online connection admission control"). One full analysis of the
//! tandem network per iteration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dnc_bench::{paper_tandem, Algo};
use dnc_num::Rat;

fn bench_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis");
    group.sample_size(20);
    for &(n, u_num, u_den) in &[(4usize, 3i128, 5i128), (8, 9, 10)] {
        let u = Rat::new(u_num, u_den);
        let t = paper_tandem(n, u);
        for algo in [Algo::Decomposed, Algo::ServiceCurve, Algo::Integrated] {
            group.bench_with_input(
                BenchmarkId::new(algo.label(), format!("n{n}_u{u_num}of{u_den}")),
                &t,
                |b, t| {
                    b.iter(|| {
                        let r = algo.analyze(&t.net).expect("analysis succeeds");
                        criterion::black_box(r.bound(t.conn0))
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_admission_decision(c: &mut Criterion) {
    // A single online admission decision: analyze with the candidate
    // included (the operation a switch controller runs per request).
    use dnc_core::admission::{try_admit, Deadline};
    use dnc_core::integrated::Integrated;
    use dnc_net::Flow;
    use dnc_traffic::TrafficSpec;

    let t = paper_tandem(8, Rat::new(1, 2));
    let deadlines: Vec<Deadline> = vec![Deadline {
        flow: t.conn0,
        deadline: Rat::from(200),
    }];
    c.bench_function("admission_decision_n8", |b| {
        b.iter(|| {
            let candidate = Flow {
                name: "cand".into(),
                spec: TrafficSpec::paper_source(Rat::ONE, Rat::new(1, 64)),
                route: t.middle.clone(),
                priority: 0,
            };
            let r = try_admit(
                &t.net,
                candidate,
                Rat::from(500),
                &deadlines,
                &Integrated::paper(),
            )
            .unwrap();
            criterion::black_box(r.is_some())
        })
    });
}

fn bench_extensions(c: &mut Criterion) {
    use dnc_core::cyclic::TimeStopping;
    use dnc_core::fifo_family::FifoFamily;
    use dnc_core::DelayAnalysis;
    use dnc_net::builders::ring;
    use dnc_traffic::TrafficSpec;

    // Time-stopping on a cyclic ring (the feedforward algorithms cannot
    // touch this topology at all).
    let spec = TrafficSpec::paper_source(Rat::from(2), Rat::new(1, 8));
    let (ring_net, _, _) = ring(6, 2, &spec);
    c.bench_function("time_stopping_ring6", |b| {
        b.iter(|| {
            let r = TimeStopping::default().analyze(&ring_net).unwrap();
            assert!(r.converged);
            criterion::black_box(r.iterations)
        })
    });

    // The θ-family coordinate descent (the expensive modern baseline).
    let t = paper_tandem(4, Rat::new(3, 5));
    c.bench_function("fifo_family_n4", |b| {
        b.iter(|| {
            criterion::black_box(
                FifoFamily::default()
                    .analyze(&t.net)
                    .unwrap()
                    .bound(t.conn0),
            )
        })
    });
}

criterion_group!(
    benches,
    bench_algorithms,
    bench_admission_decision,
    bench_extensions
);
criterion_main!(benches);
