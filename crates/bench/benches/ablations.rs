//! Ablation benches for the design choices DESIGN.md calls out:
//! pairing strategy, output-propagation cap, and the cost of the
//! two-server theorem itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dnc_bench::paper_tandem;
use dnc_core::integrated::{pair_delay_bound, Integrated};
use dnc_core::{decomposed::Decomposed, DelayAnalysis, OutputCap};
use dnc_curves::Curve;
use dnc_net::pairing::PairingStrategy;
use dnc_num::{rat, Rat};

fn bench_pairing_strategy(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_pairing");
    group.sample_size(20);
    let t = paper_tandem(8, rat(3, 5));
    for (label, strategy) in [
        ("singletons", PairingStrategy::Singletons),
        ("greedy_chain", PairingStrategy::GreedyChain),
        ("optimal_small", PairingStrategy::OptimalSmall),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &t, |b, t| {
            let alg = Integrated {
                cap: OutputCap::Shift,
                strategy,
                ..Integrated::default()
            };
            b.iter(|| criterion::black_box(alg.analyze(&t.net).unwrap().bound(t.conn0)))
        });
    }
    group.finish();
}

fn bench_output_cap(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_output_cap");
    group.sample_size(20);
    let t = paper_tandem(8, rat(3, 5));
    for (label, cap) in [
        ("shift", OutputCap::Shift),
        ("shift_rate_capped", OutputCap::ShiftRateCapped),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &t, |b, t| {
            let alg = Decomposed { cap };
            b.iter(|| criterion::black_box(alg.analyze(&t.net).unwrap().bound(t.conn0)))
        });
    }
    group.finish();
}

fn bench_pair_theorem(c: &mut Criterion) {
    // The core primitive of Algorithm Integrated in isolation.
    let f12 = Curve::token_bucket(Rat::from(3), rat(1, 8))
        .add(&Curve::token_bucket(Rat::from(1), rat(1, 16)));
    let f1 = Curve::token_bucket(Rat::from(2), rat(1, 8));
    let f2 = Curve::token_bucket(Rat::from(4), rat(1, 8));
    c.bench_function("pair_delay_bound", |b| {
        b.iter(|| {
            criterion::black_box(
                pair_delay_bound(&f12, &f1, &f2, Rat::ONE, Rat::ONE, OutputCap::Shift).unwrap(),
            )
        })
    });
}

criterion_group!(
    benches,
    bench_pairing_strategy,
    bench_output_cap,
    bench_pair_theorem
);
criterion_main!(benches);
