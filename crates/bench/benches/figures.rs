//! One Criterion bench per paper figure: times the regeneration of the
//! corresponding data series (a full work-load sweep for one network
//! size per figure; the `fig4`/`fig5`/`fig6` binaries produce the full
//! multi-size CSVs).

use criterion::{criterion_group, criterion_main, Criterion};
use dnc_bench::{sweep, u_grid, Algo};

fn bench_fig4(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_decomposed_vs_service_curve");
    g.sample_size(10);
    g.bench_function("n4_full_load_grid", |b| {
        b.iter(|| {
            criterion::black_box(sweep(
                &[4],
                &u_grid(),
                &[Algo::ServiceCurve, Algo::Decomposed],
                1,
            ))
        })
    });
    g.finish();
}

fn bench_fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_integrated_vs_decomposed");
    g.sample_size(10);
    g.bench_function("n4_full_load_grid", |b| {
        b.iter(|| {
            criterion::black_box(sweep(
                &[4],
                &u_grid(),
                &[Algo::Decomposed, Algo::Integrated],
                1,
            ))
        })
    });
    g.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_integrated_vs_service_curve");
    g.sample_size(10);
    g.bench_function("n4_full_load_grid", |b| {
        b.iter(|| {
            criterion::black_box(sweep(
                &[4],
                &u_grid(),
                &[Algo::ServiceCurve, Algo::Integrated],
                1,
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_fig4, bench_fig5, bench_fig6);
criterion_main!(benches);
