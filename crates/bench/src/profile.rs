//! Profile harness as a library: wall-time one analysis of the paper
//! tandem per algorithm, so `cargo xtask bench` can fold algorithm-level
//! cost into the perf trajectory alongside the engine-level throughput
//! numbers. `dnc profile` remains the interactive variant over arbitrary
//! scenario files; this one is deliberately pinned to [`paper_tandem`]
//! so trajectory points are comparable across runs.

use crate::{paper_tandem, Algo};
use dnc_num::Rat;

/// Knobs of a profile run.
#[derive(Clone, Debug)]
pub struct ProfileConfig {
    /// Tandem size.
    pub n: usize,
    /// Work load `U`.
    pub u: Rat,
    /// Analyses of each algorithm, averaged over (cold every time).
    pub repeats: usize,
}

impl Default for ProfileConfig {
    fn default() -> ProfileConfig {
        ProfileConfig {
            n: 8,
            u: Rat::new(6, 20),
            repeats: 3,
        }
    }
}

/// One algorithm's measurement.
#[derive(Clone, Debug)]
pub struct AlgoProfile {
    /// Algorithm label.
    pub label: &'static str,
    /// Mean wall time per analysis, in microseconds.
    pub wall_us: u64,
    /// Connection 0's bound (`None` when the algorithm diverged).
    pub bound: Option<Rat>,
}

/// A full profile run.
#[derive(Clone, Debug)]
pub struct ProfileReport {
    /// Configuration the run used.
    pub cfg: ProfileConfig,
    /// One entry per algorithm, [`Algo`] declaration order.
    pub algos: Vec<AlgoProfile>,
}

/// Time every algorithm on the pinned tandem.
pub fn run_profile(cfg: &ProfileConfig) -> ProfileReport {
    let _span = dnc_telemetry::span("profile.run");
    let tandem = paper_tandem(cfg.n, cfg.u);
    let repeats = cfg.repeats.max(1);
    let algos = [
        Algo::Decomposed,
        Algo::ServiceCurve,
        Algo::Integrated,
        Algo::FifoFamily,
    ]
    .into_iter()
    .map(|algo| {
        let (bound, total_us) = crate::trajectory::time_micros(|| {
            let mut bound = None;
            for _ in 0..repeats {
                bound = algo
                    .analyze(&tandem.net)
                    .ok()
                    .map(|r| r.bound(tandem.conn0));
            }
            bound
        });
        AlgoProfile {
            label: algo.label(),
            wall_us: total_us / repeats as u64,
            bound,
        }
    })
    .collect();
    ProfileReport {
        cfg: cfg.clone(),
        algos,
    }
}

/// The run as `dnc-metrics/v1` series: one row per algorithm.
pub fn profile_series(report: &ProfileReport) -> Vec<dnc_telemetry::export::Series> {
    use dnc_telemetry::export::{Cell, Series};
    use dnc_telemetry::schema;
    let mut s = Series::new(
        "profile",
        vec![
            schema::LABEL,
            schema::NETWORK_SIZE,
            schema::WORK_LOAD,
            schema::WALL_TIME,
            schema::bound_column(),
        ],
    );
    for a in &report.algos {
        s.push_row(vec![
            Cell::Text(a.label.to_string()),
            Cell::int(report.cfg.n as u64),
            Cell::Num(report.cfg.u.to_f64()),
            Cell::int(a.wall_us),
            a.bound.map_or(Cell::Null, |b| Cell::Num(b.to_f64())),
        ]);
    }
    vec![s]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_series_validate_against_schema() {
        let report = run_profile(&ProfileConfig {
            n: 2,
            repeats: 1,
            ..ProfileConfig::default()
        });
        let mut doc = dnc_telemetry::export::MetricsDoc::new(
            "profile-test",
            dnc_telemetry::Snapshot::default(),
        );
        doc.series = profile_series(&report);
        let json = dnc_telemetry::export::metrics_json(&doc);
        dnc_telemetry::schema::validate_metrics(&json).unwrap();
    }

    #[test]
    fn profiles_all_four_algorithms() {
        let report = run_profile(&ProfileConfig {
            n: 3,
            repeats: 1,
            ..ProfileConfig::default()
        });
        assert_eq!(report.algos.len(), 4);
        for a in &report.algos {
            assert!(a.bound.is_some(), "{} diverged on a small tandem", a.label);
        }
        assert_eq!(report.algos[0].label, "decomposed");
    }
}
