//! Disk-fault torture falsifier: enumerate every storage failpoint of
//! the durable admission engine and prove fail-stop recovery at each.
//!
//! Each scenario first runs a **probe**: the full deterministic
//! admit/release workload through a counting (never-faulting) storage
//! backend, which enumerates every syscall site the run touches —
//! journal creation, each record append and fsync, every snapshot
//! publish (temp write, fsync, rename, directory fsync), and every
//! journal rotation. The probe also checks the compaction contract:
//! recovery after the run must load the newest snapshot and replay
//! *only* the journal tail past it.
//!
//! Then, for every enumerated site (times every fault kind — EIO,
//! ENOSPC, short write, crash before, crash after), the same workload
//! runs against a fresh journal with a [`FaultFs`] armed to fail at
//! exactly that site. The engine is expected to **fail stop**: the
//! in-flight operation errs, the journal handle is poisoned, and no
//! further work is acknowledged. Recovery then runs with the *real*
//! backend and must land exactly on `fold(schedule[..k])` for some `k`
//! between the acked count and acked + in-flight — folded by plain
//! list arithmetic, never the engine's replay code — twice (recovery
//! must be deterministic). An acked operation missing after recovery,
//! an operation appearing that was never journaled, a recovery error
//! (e.g. a torn snapshot accepted or a layout the stitcher cannot
//! explain), or divergent recovery rounds are all violations.
//!
//! Scenario seeds derive exactly as in the chaos/churn harnesses, so a
//! sweep is a pure function of its config.

use crate::chaos::scenario_rng;
use crate::paper_tandem;
use dnc_net::{Network, ServerId};
use dnc_num::Rat;
use dnc_service::{
    AdmitOp, AdmitRequest, ChurnEngine, EngineConfig, FaultFs, Op, Request, StorageHandle,
    FAULT_KINDS,
};
use rand::rngs::StdRng;
use rand::Rng;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Knobs of a torture sweep.
#[derive(Clone, Debug)]
pub struct TortureConfig {
    /// Independent scenarios (workload + site sweep) per run.
    pub scenarios: usize,
    /// Requests per scenario workload.
    pub ops: usize,
    /// Master seed: the whole sweep is a pure function of it.
    pub seed: u64,
    /// Snapshot-and-rotate the journal every N committed ops (the
    /// sweep exists to hit the publish/rotate failpoints, so this is
    /// always on; keep it small relative to `ops`).
    pub snapshot_every: u64,
    /// Visit every `stride`-th failpoint (1 = all of them).
    pub stride: usize,
}

impl Default for TortureConfig {
    fn default() -> TortureConfig {
        TortureConfig {
            scenarios: 2,
            ops: 12,
            seed: 1,
            snapshot_every: 4,
            stride: 1,
        }
    }
}

/// One workload step: a single request, or a group-committed batch.
#[derive(Clone, Debug)]
enum Step {
    One(Request),
    Batch(Vec<Request>),
}

/// One scenario's outcome.
#[derive(Clone, Debug)]
pub struct ScenarioOutcome {
    /// Scenario index within the sweep.
    pub scenario: usize,
    /// Tandem size the workload ran against.
    pub n: usize,
    /// Base work load `U` of the tandem.
    pub u: Rat,
    /// Storage syscall sites the probe enumerated.
    pub sites: u64,
    /// Fault-injection runs (visited sites x fault kinds).
    pub runs: usize,
    /// Runs in which the armed fault actually tripped.
    pub faults_tripped: usize,
    /// Post-fault recoveries performed (two per run).
    pub recoveries: usize,
    /// Operations acknowledged across all fault runs.
    pub acked_total: u64,
    /// Falsifier hits: lost acks, phantom ops, recovery errors,
    /// non-deterministic recovery, or a broken compaction contract.
    pub violations: Vec<String>,
}

/// A full torture sweep.
#[derive(Clone, Debug)]
pub struct TortureReport {
    /// Configuration the sweep used.
    pub cfg: TortureConfig,
    /// One outcome per scenario.
    pub outcomes: Vec<ScenarioOutcome>,
}

impl TortureReport {
    /// Total falsifier hits across all scenarios.
    pub fn violation_count(&self) -> usize {
        self.outcomes.iter().map(|o| o.violations.len()).sum()
    }

    /// Whether every injected fault was survived without loss.
    pub fn sound(&self) -> bool {
        self.violation_count() == 0
    }
}

/// Draw a deterministic workload whose every request commits on a
/// fault-free run: admits carry deadlines far above any bound the
/// small tandem can produce, and releases target names the schedule
/// itself knows are live — so the acked/pending ledger in a fault run
/// is exact without consulting engine state.
fn draw_schedule(rng: &mut StdRng, scenario: usize, servers: usize, ops: usize) -> Vec<Step> {
    let mut live: Vec<String> = Vec::new();
    let mut next = 0usize;
    let mut draw_one = |rng: &mut StdRng, live: &mut Vec<String>| -> Request {
        if live.is_empty() || rng.gen_ratio(7, 10) {
            next += 1;
            let name = format!("t{scenario}-{next}");
            live.push(name.clone());
            let start = rng.gen_range(0..servers);
            let len = rng.gen_range(1..=servers - start);
            Request::Admit(AdmitRequest {
                name,
                route: (start..start + len).map(ServerId).collect(),
                buckets: vec![(
                    Rat::from(rng.gen_range(1i64..=2)),
                    Rat::new(rng.gen_range(1i128..=2), 40),
                )],
                peak: None,
                priority: 1,
                deadline: Rat::from(rng.gen_range(1000i64..=2000)),
            })
        } else {
            let victim = rng.gen_range(0..live.len());
            Request::Release {
                name: live.remove(victim),
            }
        }
    };
    (0..ops)
        .map(|step| {
            if step % 5 == 4 {
                Step::Batch(vec![draw_one(rng, &mut live), draw_one(rng, &mut live)])
            } else {
                Step::One(draw_one(rng, &mut live))
            }
        })
        .collect()
}

/// The committed operation a request journals (admits and releases
/// only — the workload never draws queries).
fn op_of(req: &Request) -> Option<Op> {
    match req {
        Request::Admit(a) => Some(Op::Admit(AdmitOp {
            name: a.name.clone(),
            route: a.route.clone(),
            buckets: a.buckets.clone(),
            peak: a.peak,
            priority: a.priority,
            deadline: a.deadline,
        })),
        Request::Release { name } => Some(Op::Release { name: name.clone() }),
        Request::Query { .. } => None,
    }
}

/// Flatten the schedule into journal order.
fn flatten(schedule: &[Step]) -> Vec<Op> {
    let mut ops = Vec::new();
    for step in schedule {
        match step {
            Step::One(req) => ops.extend(op_of(req)),
            Step::Batch(reqs) => ops.extend(reqs.iter().filter_map(op_of)),
        }
    }
    ops
}

/// Fold a committed prefix into the canonical state string by plain
/// list arithmetic — deliberately *not* the engine's replay code, so
/// the falsifier has an independent oracle.
fn fold_state(base_flows: usize, ops: &[Op]) -> String {
    let mut admitted: Vec<&AdmitOp> = Vec::new();
    for op in ops {
        match op {
            Op::Admit(a) => admitted.push(a),
            Op::Release { name } => {
                if let Some(i) = admitted.iter().position(|a| a.name == *name) {
                    admitted.remove(i);
                }
            }
        }
    }
    let mut s = format!("base {base_flows}\n");
    for a in admitted {
        s.push_str(&Op::Admit((*a).clone()).encode());
        s.push('\n');
    }
    s
}

fn engine_cfg(cfg: &TortureConfig) -> EngineConfig {
    EngineConfig {
        snapshot_every: Some(cfg.snapshot_every.max(1)),
        ..EngineConfig::default()
    }
}

/// Drive the workload against a fault-armed backend; returns the count
/// of acked ops, the ops in flight when the fault struck, and protocol
/// violations seen *before* recovery (an op acked after the engine
/// first errored would show up here).
fn drive_faulted(
    base: &Network,
    cfg: &TortureConfig,
    schedule: &[Step],
    path: &Path,
    fs: StorageHandle,
    tag: &str,
) -> (usize, usize, Vec<String>) {
    let mut violations = Vec::new();
    let mut acked = 0usize;
    let mut pending = 0usize;
    match ChurnEngine::open_with(base.clone(), Vec::new(), engine_cfg(cfg), path, fs) {
        Err(_) => {} // fault during journal creation: nothing acked
        Ok((mut engine, _)) => {
            'drive: for (stepno, step) in schedule.iter().enumerate() {
                match step {
                    Step::One(req) => match engine.process(req.clone()) {
                        Ok(resp) => {
                            if resp.committed() {
                                acked += 1;
                            } else {
                                violations.push(format!(
                                    "{tag} step {stepno}: fault-free prefix refused {resp:?}"
                                ));
                            }
                        }
                        Err(_) => {
                            pending = 1;
                            break 'drive;
                        }
                    },
                    Step::Batch(reqs) => {
                        let size = reqs.len();
                        match engine.process_batch(reqs.clone()) {
                            Ok(resps) => {
                                for resp in &resps {
                                    if resp.committed() {
                                        acked += 1;
                                    } else {
                                        violations.push(format!(
                                            "{tag} step {stepno}: fault-free prefix refused {resp:?}"
                                        ));
                                    }
                                }
                            }
                            Err(_) => {
                                pending = size;
                                break 'drive;
                            }
                        }
                    }
                }
            }
        }
    }
    (acked, pending, violations)
}

/// Recover `path` with the real backend, twice, and check the landed
/// state against the independent prefix oracle: it must equal
/// `fold(ops[..k])` for exactly one `k` in `acked..=acked+pending`,
/// with `committed_seq == k`, identically across both rounds.
fn check_recovery(
    base: &Network,
    cfg: &TortureConfig,
    path: &Path,
    ops: &[Op],
    acked: usize,
    pending: usize,
    tag: &str,
) -> (usize, Vec<String>) {
    let mut violations = Vec::new();
    let mut recoveries = 0;
    let base_flows = base.flows().len();
    let hi = (acked + pending).min(ops.len());
    let mut first: Option<(u64, u64)> = None; // (digest, committed_seq)
    for round in 0..2 {
        match ChurnEngine::open(base.clone(), Vec::new(), engine_cfg(cfg), path) {
            Err(e) => {
                violations.push(format!("{tag} recovery round {round}: {e}"));
                return (recoveries, violations);
            }
            Ok((engine, info)) => {
                recoveries += 1;
                let state = engine.canonical_state();
                let matched = (acked..=hi).find(|&k| {
                    fold_state(base_flows, &ops[..k]) == state && info.committed_seq == k as u64
                });
                match matched {
                    None => violations.push(format!(
                        "{tag} recovery round {round}: state (seq {}) is not \
                         fold(schedule[..k]) for any k in {acked}..={hi} — an acked op \
                         was lost or a phantom op appeared",
                        info.committed_seq
                    )),
                    Some(k) => {
                        if let Some((_, snap_seq)) = info.snapshot {
                            if info.ops_replayed as u64 != (k as u64).saturating_sub(snap_seq) {
                                violations.push(format!(
                                    "{tag} recovery round {round}: snapshot at seq {snap_seq} \
                                     but {} op(s) replayed to reach seq {k} — not tail-only",
                                    info.ops_replayed
                                ));
                            }
                        }
                    }
                }
                match first {
                    None => first = Some((engine.state_digest(), info.committed_seq)),
                    Some(want) => {
                        if want != (engine.state_digest(), info.committed_seq) {
                            violations.push(format!("{tag}: recovery is not deterministic"));
                        }
                    }
                }
            }
        }
    }
    (recoveries, violations)
}

/// Remove a fault run's journal plus its snapshot/rotation siblings.
fn cleanup(path: &Path) {
    if let (Some(dir), Some(stem)) = (path.parent(), path.file_name().and_then(|s| s.to_str())) {
        if let Ok(entries) = std::fs::read_dir(dir) {
            for entry in entries.flatten() {
                if entry.file_name().to_string_lossy().starts_with(stem) {
                    let _ = std::fs::remove_file(entry.path());
                }
            }
        }
    }
}

/// Run one scenario: probe the failpoint count and compaction
/// contract, then sweep every visited site across every fault kind.
pub fn run_scenario(scenario: usize, cfg: &TortureConfig, dir: &Path) -> ScenarioOutcome {
    let mut rng = scenario_rng(cfg.seed, scenario);
    let n = rng.gen_range(2usize..=3);
    let u = Rat::new(rng.gen_range(2i128..=8), 20);
    let base = paper_tandem(n, u).net;
    let schedule = draw_schedule(&mut rng, scenario, n, cfg.ops);
    let ops = flatten(&schedule);
    let mut violations = Vec::new();

    // Probe: enumerate sites on a fault-free run, then hold recovery to
    // the compaction contract (newest snapshot + tail-only replay).
    let probe_path = dir.join(format!("t{scenario}-probe.wal"));
    let probe = Arc::new(FaultFs::probe());
    let (acked, pending, mut early) = drive_faulted(
        &base,
        cfg,
        &schedule,
        &probe_path,
        probe.clone() as StorageHandle,
        &format!("scenario {scenario} probe"),
    );
    violations.append(&mut early);
    let sites = probe.sites_visited();
    if acked != ops.len() || pending != 0 {
        violations.push(format!(
            "scenario {scenario} probe: {acked} of {} ops acked with no fault armed",
            ops.len()
        ));
    }
    let (_, mut probe_violations) = check_recovery(
        &base,
        cfg,
        &probe_path,
        &ops,
        acked,
        pending,
        &format!("scenario {scenario} probe"),
    );
    violations.append(&mut probe_violations);
    if acked as u64 >= cfg.snapshot_every.max(1) {
        match ChurnEngine::open(base.clone(), Vec::new(), engine_cfg(cfg), &probe_path) {
            Ok((_, info)) if info.snapshot.is_none() => violations.push(format!(
                "scenario {scenario} probe: {acked} commits at cadence {} but recovery \
                 found no snapshot — compaction never happened",
                cfg.snapshot_every
            )),
            Ok(_) => {}
            Err(e) => violations.push(format!("scenario {scenario} probe re-open: {e}")),
        }
    }
    cleanup(&probe_path);

    // The sweep: every stride-th site, every fault kind.
    let mut runs = 0usize;
    let mut faults_tripped = 0usize;
    let mut recoveries = 0usize;
    let mut acked_total = 0u64;
    let mut site = 0u64;
    while site < sites {
        for kind in FAULT_KINDS {
            runs += 1;
            let tag = format!("scenario {scenario} site {site} kind {kind}");
            let path = dir.join(format!("t{scenario}-s{site}-{kind}.wal"));
            let fault = Arc::new(FaultFs::new(site, kind));
            let (acked, pending, mut early) = drive_faulted(
                &base,
                cfg,
                &schedule,
                &path,
                fault.clone() as StorageHandle,
                &tag,
            );
            violations.append(&mut early);
            if fault.tripped() {
                faults_tripped += 1;
            } else {
                violations.push(format!("{tag}: the armed fault never tripped"));
            }
            acked_total += acked as u64;
            let (recs, mut fails) = check_recovery(&base, cfg, &path, &ops, acked, pending, &tag);
            recoveries += recs;
            violations.append(&mut fails);
            cleanup(&path);
        }
        site += cfg.stride.max(1) as u64;
    }

    dnc_telemetry::counter("torture.scenarios", 1);
    if !violations.is_empty() {
        dnc_telemetry::counter("torture.violations", violations.len() as u64);
    }

    ScenarioOutcome {
        scenario,
        n,
        u,
        sites,
        runs,
        faults_tripped,
        recoveries,
        acked_total,
        violations,
    }
}

/// Scratch directory for one sweep's journals — unique per run so
/// concurrent runs never share or delete each other's files.
fn scratch_dir(seed: u64) -> PathBuf {
    static RUN: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let run = RUN.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    std::env::temp_dir().join(format!("dnc_torture_{}_{seed}_{run}", std::process::id()))
}

/// Run the whole sweep. Deterministic in `cfg`.
pub fn run_torture(cfg: &TortureConfig) -> TortureReport {
    let _span = dnc_telemetry::span("torture.run");
    let dir = scratch_dir(cfg.seed);
    let _ = std::fs::create_dir_all(&dir);
    let outcomes = (0..cfg.scenarios)
        .map(|scenario| run_scenario(scenario, cfg, &dir))
        .collect();
    let _ = std::fs::remove_dir_all(&dir);
    TortureReport {
        cfg: cfg.clone(),
        outcomes,
    }
}

/// The sweep as `dnc-metrics/v1` series: one row per scenario.
pub fn torture_series(report: &TortureReport) -> Vec<dnc_telemetry::export::Series> {
    use dnc_telemetry::export::{Cell, Series};
    use dnc_telemetry::schema::{self, ColumnMeta};
    const SCENARIO: ColumnMeta = ColumnMeta {
        label: "scenario",
        unit: "",
    };
    const SITES: ColumnMeta = ColumnMeta {
        label: "failpoint sites",
        unit: "",
    };
    const RUNS: ColumnMeta = ColumnMeta {
        label: "fault runs",
        unit: "",
    };
    const TRIPPED: ColumnMeta = ColumnMeta {
        label: "faults tripped",
        unit: "",
    };
    const RECOVERIES: ColumnMeta = ColumnMeta {
        label: "recoveries",
        unit: "",
    };
    const ACKED: ColumnMeta = ColumnMeta {
        label: "ops acked",
        unit: "",
    };
    const VIOLATIONS: ColumnMeta = ColumnMeta {
        label: "violations",
        unit: "",
    };
    let mut s = Series::new(
        "torture",
        vec![
            SCENARIO,
            schema::NETWORK_SIZE,
            schema::WORK_LOAD,
            SITES,
            RUNS,
            TRIPPED,
            RECOVERIES,
            ACKED,
            VIOLATIONS,
        ],
    );
    for o in &report.outcomes {
        s.push_row(vec![
            Cell::int(o.scenario as u64),
            Cell::int(o.n as u64),
            Cell::Num(o.u.to_f64()),
            Cell::int(o.sites),
            Cell::int(o.runs as u64),
            Cell::int(o.faults_tripped as u64),
            Cell::int(o.recoveries as u64),
            Cell::int(o.acked_total),
            Cell::int(o.violations.len() as u64),
        ]);
    }
    vec![s]
}

/// Write `<dir>/metrics-torture.json`; returns the path written.
pub fn write_torture_metrics_in(dir: &Path, report: &TortureReport) -> std::io::Result<PathBuf> {
    crate::write_metrics_doc_in(dir, "torture", torture_series(report))
}

/// Render the sweep as a fixed-width text report.
pub fn render_report(report: &TortureReport) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "torture: {} scenario(s) x {} ops, seed {}, snapshot every {}, site stride {}",
        report.cfg.scenarios,
        report.cfg.ops,
        report.cfg.seed,
        report.cfg.snapshot_every,
        report.cfg.stride
    );
    let _ = writeln!(
        s,
        "{:>4} {:>3} {:>5} {:>6} {:>6} {:>8} {:>11} {:>7} {:>10}",
        "scn", "n", "U", "sites", "runs", "tripped", "recoveries", "acked", "violations"
    );
    for o in &report.outcomes {
        let _ = writeln!(
            s,
            "{:>4} {:>3} {:>5.2} {:>6} {:>6} {:>8} {:>11} {:>7} {:>10}",
            o.scenario,
            o.n,
            o.u.to_f64(),
            o.sites,
            o.runs,
            o.faults_tripped,
            o.recoveries,
            o.acked_total,
            o.violations.len()
        );
    }
    for o in &report.outcomes {
        for v in &o.violations {
            let _ = writeln!(s, "VIOLATION: {v}");
        }
    }
    if report.sound() {
        let _ = writeln!(
            s,
            "no torture violations — every acked op survived every injected fault"
        );
    } else {
        let _ = writeln!(s, "VIOLATIONS: {}", report.violation_count());
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> TortureConfig {
        TortureConfig {
            scenarios: 1,
            ops: 5,
            seed: 11,
            snapshot_every: 2,
            stride: 3,
        }
    }

    #[test]
    fn torture_sweep_is_sound_and_trips_every_armed_fault() {
        let report = run_torture(&tiny());
        assert!(report.sound(), "{}", render_report(&report));
        let o = &report.outcomes[0];
        assert!(o.sites > 0, "probe enumerated no failpoints");
        assert!(o.runs > 0 && o.faults_tripped == o.runs, "{o:?}");
        assert!(o.recoveries == 2 * o.runs, "{o:?}");
    }

    #[test]
    fn torture_is_deterministic_in_its_seed() {
        let a = run_torture(&tiny());
        let b = run_torture(&tiny());
        assert_eq!(a.outcomes[0].sites, b.outcomes[0].sites);
        assert_eq!(a.outcomes[0].acked_total, b.outcomes[0].acked_total);
        assert_eq!(a.outcomes[0].violations, b.outcomes[0].violations);
    }

    #[test]
    fn a_lost_ack_is_flagged() {
        // Feed the oracle a recovered journal that is missing the last
        // acked op: pretend one more op was acked than was journaled.
        let dir = scratch_dir(99);
        let _ = std::fs::create_dir_all(&dir);
        let cfg = tiny();
        let mut rng = scenario_rng(cfg.seed, 0);
        let n = rng.gen_range(2usize..=3);
        let u = Rat::new(rng.gen_range(2i128..=8), 20);
        let base = paper_tandem(n, u).net;
        let schedule = draw_schedule(&mut rng, 0, n, cfg.ops);
        let ops = flatten(&schedule);
        let path = dir.join("lost-ack.wal");
        let probe = Arc::new(FaultFs::probe());
        let (acked, _, _) = drive_faulted(
            &base,
            &cfg,
            &schedule,
            &path,
            probe as StorageHandle,
            "lost-ack",
        );
        assert_eq!(acked, ops.len());
        // Claim one phantom ack beyond the journaled history: recovery
        // cannot produce it, so the oracle must flag the loss.
        let (_, violations) = check_recovery(&base, &cfg, &path, &ops, acked + 1, 0, "lost-ack");
        assert!(
            violations.iter().any(|v| v.contains("acked op was lost")),
            "{violations:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn series_validate_against_schema() {
        let report = run_torture(&tiny());
        let mut doc = dnc_telemetry::export::MetricsDoc::new(
            "torture-test",
            dnc_telemetry::Snapshot::default(),
        );
        doc.series = torture_series(&report);
        let json = dnc_telemetry::export::metrics_json(&doc);
        dnc_telemetry::schema::validate_metrics(&json).unwrap();
        let text = render_report(&report);
        assert!(text.contains("1 scenario(s)"), "{text}");
    }
}
