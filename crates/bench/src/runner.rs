//! One-command bench recorder: run every harness with pinned seeds,
//! archive their raw `dnc-metrics/v1` outputs, and append one
//! `dnc-bench/v1` record per trajectory.
//!
//! `run_bench` is the engine behind both `cargo xtask bench` and
//! `dnc bench`. One invocation:
//!
//! 1. runs throughput + profile inside one telemetry window and
//!    chaos + churn inside a second,
//! 2. archives each harness's raw metrics doc under
//!    `<out_dir>/runs/<sha>-<ts>/` (validated against the
//!    `dnc-metrics/v1` schema) so repeated runs stop silently
//!    overwriting `results/metrics-*.json`,
//! 3. appends a throughput-family record to `BENCH_throughput.json`
//!    and a churn-family record to `BENCH_churn.json`,
//! 4. gates the grown trajectories and, on request, renders the static
//!    dashboard.
//!
//! The runner never decides exit codes — it reports soundness failures
//! and gate verdicts, and the callers map those onto
//! [`crate::exit::VIOLATION`] / [`crate::exit::REGRESSION`].

use crate::dashboard::{render_dashboard, Panel};
use crate::trajectory::{
    append_record, evaluate_gate, load_trajectory, render_gate_table, resolve_stamp, BenchRecord,
    GateConfig, GateReport, Stamp,
};
use crate::{chaos, churn, profile, socket, throughput};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::PathBuf;

/// Knobs of one recorded bench run.
#[derive(Clone, Debug)]
pub struct BenchOptions {
    /// Shrunk harness configs for CI and smoke runs.
    pub quick: bool,
    /// Master seed handed to every harness.
    pub seed: u64,
    /// Root for raw-metrics archives (`<out_dir>/runs/<slug>/`).
    pub out_dir: PathBuf,
    /// Directory holding the `BENCH_*.json` trajectories (repo root).
    pub bench_dir: PathBuf,
    /// Gate window/threshold used for the verdicts.
    pub gate: GateConfig,
    /// Render the static dashboard into this directory.
    pub dashboard: Option<PathBuf>,
    /// Injected run identity; `None` resolves the ambient stamp.
    pub stamp: Option<Stamp>,
}

impl Default for BenchOptions {
    fn default() -> BenchOptions {
        BenchOptions {
            quick: false,
            seed: 1,
            out_dir: PathBuf::from("results"),
            bench_dir: PathBuf::from("."),
            gate: GateConfig::default(),
            dashboard: None,
            stamp: None,
        }
    }
}

/// Everything one run produced.
#[derive(Clone, Debug)]
pub struct BenchSummary {
    /// The stamp written into both records.
    pub stamp: Stamp,
    /// Where the raw metrics docs were archived.
    pub archive_dir: PathBuf,
    /// The two trajectory files appended to.
    pub trajectory_paths: [PathBuf; 2],
    /// Soundness failures any harness reported (empty = all sound).
    pub harness_failures: Vec<String>,
    /// Gate verdicts per trajectory, `(name, report)`.
    pub gates: Vec<(String, GateReport)>,
    /// `index.html` path when a dashboard was rendered.
    pub dashboard_index: Option<PathBuf>,
    /// Human-readable run summary (harness lines + gate tables).
    pub text: String,
}

impl BenchSummary {
    /// True when any gated metric of any trajectory left its band.
    pub fn regressed(&self) -> bool {
        self.gates.iter().any(|(_, g)| g.regressed())
    }

    /// True when every harness was sound.
    pub fn sound(&self) -> bool {
        self.harness_failures.is_empty()
    }
}

fn throughput_config(opts: &BenchOptions) -> throughput::ThroughputConfig {
    if opts.quick {
        throughput::ThroughputConfig {
            n: 6,
            ops: 16,
            seed: opts.seed,
            workers: 2,
            ..throughput::ThroughputConfig::default()
        }
    } else {
        throughput::ThroughputConfig {
            seed: opts.seed,
            ..throughput::ThroughputConfig::default()
        }
    }
}

fn profile_config(opts: &BenchOptions) -> profile::ProfileConfig {
    if opts.quick {
        profile::ProfileConfig {
            n: 4,
            repeats: 1,
            ..profile::ProfileConfig::default()
        }
    } else {
        profile::ProfileConfig::default()
    }
}

fn socket_config(opts: &BenchOptions) -> socket::SocketConfig {
    if opts.quick {
        socket::SocketConfig {
            ops_per_client: 6,
            seed: opts.seed,
            ..socket::SocketConfig::default()
        }
    } else {
        socket::SocketConfig {
            seed: opts.seed,
            ..socket::SocketConfig::default()
        }
    }
}

fn chaos_config(opts: &BenchOptions) -> chaos::ChaosConfig {
    if opts.quick {
        chaos::ChaosConfig {
            scenarios: 4,
            seed: opts.seed,
            ticks: 256,
        }
    } else {
        chaos::ChaosConfig {
            seed: opts.seed,
            ..chaos::ChaosConfig::default()
        }
    }
}

fn churn_config(opts: &BenchOptions) -> churn::ChurnConfig {
    if opts.quick {
        churn::ChurnConfig {
            seqs: 2,
            ops: 12,
            seed: opts.seed,
            kill_points: 2,
            workers: 1,
            snapshot_every: None,
        }
    } else {
        churn::ChurnConfig {
            seed: opts.seed,
            ..churn::ChurnConfig::default()
        }
    }
}

/// Counter map of a snapshot: raw counters plus per-span call counts.
fn snapshot_counters(snap: &dnc_telemetry::Snapshot) -> BTreeMap<String, u64> {
    let mut map = snap.counters.clone();
    for (name, stat) in &snap.spans {
        map.insert(format!("span.{name}.count"), stat.count);
    }
    map
}

/// Derived cache hit rate of a snapshot window, when the cache saw
/// traffic at all.
fn cache_hit_rate(snap: &dnc_telemetry::Snapshot) -> Option<f64> {
    let hit = snap.counter_value("cache.hit");
    let miss = snap.counter_value("cache.miss");
    let total = hit + miss;
    if total == 0 {
        None
    } else {
        Some(hit as f64 / total as f64)
    }
}

fn shared_knobs(opts: &BenchOptions) -> BTreeMap<String, String> {
    BTreeMap::from([
        ("quick".to_string(), opts.quick.to_string()),
        ("seed".to_string(), opts.seed.to_string()),
    ])
}

/// Read a just-written metrics doc back and check it against the
/// `dnc-metrics/v1` schema, so a malformed archive fails the run
/// instead of poisoning the trajectory's provenance.
fn check_archived(path: &std::path::Path) -> std::io::Result<()> {
    let text = std::fs::read_to_string(path)?;
    dnc_telemetry::schema::validate_metrics(&text).map_err(|e| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("{}: {e}", path.display()),
        )
    })
}

/// Run all four harnesses, archive, append, gate, and (optionally)
/// render the dashboard. See the module docs for the exact sequence.
pub fn run_bench(opts: &BenchOptions) -> std::io::Result<BenchSummary> {
    let stamp = opts.stamp.clone().unwrap_or_else(resolve_stamp);
    // Same SHA + same second (back-to-back runs) must not silently
    // overwrite an earlier run's raw archive: suffix until fresh.
    let runs = opts.out_dir.join("runs");
    let mut archive_dir = runs.join(stamp.run_slug());
    let mut nth = 1u32;
    while archive_dir.exists() {
        nth += 1;
        archive_dir = runs.join(format!("{}-{nth}", stamp.run_slug()));
    }
    std::fs::create_dir_all(&archive_dir)?;
    let mut text = String::new();
    let _ = writeln!(
        text,
        "bench: {} run, seed {}, {} @ {}",
        if opts.quick { "quick" } else { "full" },
        opts.seed,
        stamp.git_sha,
        stamp.timestamp
    );
    let mut failures = Vec::new();

    // Window 1: throughput + profile + socket → BENCH_throughput.json.
    let tcfg = throughput_config(opts);
    let pcfg = profile_config(opts);
    let scfg = socket_config(opts);
    dnc_telemetry::reset();
    let tp = throughput::run_throughput(&tcfg);
    let prof = profile::run_profile(&pcfg);
    let sock = socket::run_socket(&scfg);
    let snap1 = dnc_telemetry::snapshot();
    check_archived(&throughput::write_throughput_metrics_in(&archive_dir, &tp)?)?;
    check_archived(&crate::write_metrics_doc_in(
        &archive_dir,
        "profile",
        profile::profile_series(&prof),
    )?)?;
    check_archived(&socket::write_socket_metrics_in(&archive_dir, &sock)?)?;

    if !tp.sound() {
        failures.push(format!(
            "throughput: {} cross-mode mismatch(es)",
            tp.mismatches.len()
        ));
    }
    if !sock.sound() {
        failures.push(format!(
            "socket: {} soundness mismatch(es)",
            sock.mismatches.len()
        ));
    }
    let mut throughput_record = BenchRecord::stamped(&stamp);
    throughput_record.knobs = shared_knobs(opts);
    for (k, v) in [
        ("throughput.n", tcfg.n.to_string()),
        ("throughput.ops", tcfg.ops.to_string()),
        ("throughput.workers", tcfg.workers.to_string()),
        ("profile.n", pcfg.n.to_string()),
        ("profile.repeats", pcfg.repeats.to_string()),
        ("socket.clients", scfg.clients.to_string()),
        ("socket.ops", scfg.ops_per_client.to_string()),
        ("socket.batch", scfg.batch.to_string()),
    ] {
        throughput_record.knobs.insert(k.to_string(), v);
    }
    for mode in &tp.modes {
        throughput_record.metrics.insert(
            format!("throughput.{}.wall_us", mode.label),
            mode.wall_us as f64,
        );
        throughput_record.metrics.insert(
            format!("throughput.{}.admissions_per_sec", mode.label),
            mode.admissions_per_sec,
        );
    }
    throughput_record
        .metrics
        .insert("throughput.speedup".to_string(), tp.speedup());
    throughput_record.metrics.insert(
        "throughput.mismatches".to_string(),
        tp.mismatches.len() as f64,
    );
    throughput_record.metrics.insert(
        "throughput.cache_entries".to_string(),
        tp.cache_entries as f64,
    );
    if let Some(base) = tp.mode("scratch-seq") {
        throughput_record
            .metrics
            .insert("throughput.commits".to_string(), base.commits as f64);
    }
    for a in &prof.algos {
        throughput_record
            .metrics
            .insert(format!("profile.{}.wall_us", a.label), a.wall_us as f64);
        if let Some(b) = a.bound {
            throughput_record
                .metrics
                .insert(format!("profile.{}.bound", a.label), b.to_f64());
        }
    }
    for m in &sock.modes {
        let key = m.label.replace('-', "_");
        throughput_record
            .metrics
            .insert(format!("socket.{key}.acks_per_sec"), m.acks_per_sec);
        throughput_record
            .metrics
            .insert(format!("socket.{key}.wall_us"), m.wall_us as f64);
        throughput_record.metrics.insert(
            format!("socket.{key}.group_commits"),
            m.group_commits as f64,
        );
    }
    throughput_record
        .metrics
        .insert("socket.speedup".to_string(), sock.speedup());
    throughput_record.metrics.insert(
        "socket.mismatches".to_string(),
        sock.mismatches.len() as f64,
    );
    if let Some(rate) = cache_hit_rate(&snap1) {
        throughput_record
            .metrics
            .insert("cache.hit_rate".to_string(), rate);
    }
    throughput_record.counters = snapshot_counters(&snap1);

    let _ = writeln!(text, "  {}", throughput_one_liner(&tp));
    let _ = writeln!(text, "  {}", profile_one_liner(&prof));
    let _ = writeln!(text, "  {}", socket_one_liner(&sock));

    // Window 2: chaos + churn → BENCH_churn.json.
    let ccfg = chaos_config(opts);
    let ucfg = churn_config(opts);
    dnc_telemetry::reset();
    let chaos_rep = chaos::run_chaos(&ccfg);
    let churn_rep = churn::run_churn(&ucfg);
    let snap2 = dnc_telemetry::snapshot();
    check_archived(&chaos::write_chaos_metrics_in(&archive_dir, &chaos_rep)?)?;
    check_archived(&churn::write_churn_metrics_in(&archive_dir, &churn_rep)?)?;

    if chaos_rep.violation_count() > 0 {
        failures.push(format!(
            "chaos: {} bound violation(s)",
            chaos_rep.violation_count()
        ));
    }
    if !churn_rep.sound() {
        failures.push(format!(
            "churn: {} violation(s), {} recovery failure(s)",
            churn_rep.violation_count(),
            churn_rep.recovery_failure_count()
        ));
    }
    let mut churn_record = BenchRecord::stamped(&stamp);
    churn_record.knobs = shared_knobs(opts);
    for (k, v) in [
        ("chaos.scenarios", ccfg.scenarios.to_string()),
        ("chaos.ticks", ccfg.ticks.to_string()),
        ("churn.seqs", ucfg.seqs.to_string()),
        ("churn.ops", ucfg.ops.to_string()),
        ("churn.kill_points", ucfg.kill_points.to_string()),
    ] {
        churn_record.knobs.insert(k.to_string(), v);
    }
    let m = &mut churn_record.metrics;
    m.insert(
        "chaos.scenarios".to_string(),
        chaos_rep.outcomes.len() as f64,
    );
    m.insert(
        "chaos.checked_claims".to_string(),
        chaos_rep.checked_count() as f64,
    );
    m.insert(
        "chaos.violations".to_string(),
        chaos_rep.violation_count() as f64,
    );
    m.insert(
        "churn.sequences".to_string(),
        churn_rep.outcomes.len() as f64,
    );
    for (key, total) in [
        (
            "churn.commits",
            churn_rep.outcomes.iter().map(|o| o.commits).sum::<u64>(),
        ),
        (
            "churn.rollbacks",
            churn_rep.outcomes.iter().map(|o| o.rollbacks).sum::<u64>(),
        ),
        (
            "churn.cert_checks",
            churn_rep
                .outcomes
                .iter()
                .map(|o| o.cert_checks as u64)
                .sum::<u64>(),
        ),
        (
            "churn.recovery_checks",
            churn_rep
                .outcomes
                .iter()
                .map(|o| o.recovery_checks as u64)
                .sum::<u64>(),
        ),
    ] {
        m.insert(key.to_string(), total as f64);
    }
    m.insert(
        "churn.violations".to_string(),
        churn_rep.violation_count() as f64,
    );
    m.insert(
        "churn.recovery_failures".to_string(),
        churn_rep.recovery_failure_count() as f64,
    );
    churn_record.counters = snapshot_counters(&snap2);

    let _ = writeln!(
        text,
        "  chaos: {} scenario(s), {} claim(s) checked, {} violation(s)",
        chaos_rep.outcomes.len(),
        chaos_rep.checked_count(),
        chaos_rep.violation_count()
    );
    let _ = writeln!(
        text,
        "  churn: {} sequence(s), {} violation(s), {} recovery failure(s)",
        churn_rep.outcomes.len(),
        churn_rep.violation_count(),
        churn_rep.recovery_failure_count()
    );
    let _ = writeln!(text, "  archived raw metrics: {}", archive_dir.display());

    // Append one record per trajectory, then gate the grown files.
    let throughput_path = opts.bench_dir.join("BENCH_throughput.json");
    let churn_path = opts.bench_dir.join("BENCH_churn.json");
    append_record(&throughput_path, &throughput_record)?;
    append_record(&churn_path, &churn_record)?;

    let mut gates = Vec::new();
    let mut panels_data = Vec::new();
    for (name, path) in [("throughput", &throughput_path), ("churn", &churn_path)] {
        let records = load_trajectory(path)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        let _ = writeln!(
            text,
            "  appended: {} (now {} record(s))",
            path.display(),
            records.len()
        );
        let gate = evaluate_gate(&records, &opts.gate);
        let _ = write!(text, "{}", render_gate_table(name, &gate));
        gates.push((name.to_string(), gate));
        panels_data.push((name, records));
    }

    let dashboard_index = match &opts.dashboard {
        Some(dir) => {
            let panels: Vec<Panel> = panels_data
                .iter()
                .zip(&gates)
                .map(|((name, records), (_, gate))| Panel {
                    name,
                    records,
                    gate,
                })
                .collect();
            let index = render_dashboard(dir, &panels)?;
            let _ = writeln!(text, "  dashboard: {}", index.display());
            Some(index)
        }
        None => None,
    };
    for f in &failures {
        let _ = writeln!(text, "  HARNESS FAILURE: {f}");
    }

    Ok(BenchSummary {
        stamp,
        archive_dir,
        trajectory_paths: [throughput_path, churn_path],
        harness_failures: failures,
        gates,
        dashboard_index,
        text,
    })
}

fn throughput_one_liner(tp: &throughput::ThroughputReport) -> String {
    let rates: Vec<String> = tp
        .modes
        .iter()
        .map(|mode| format!("{} {:.0}/s", mode.label, mode.admissions_per_sec))
        .collect();
    format!(
        "throughput: {}; speedup {:.2}x; {} mismatch(es)",
        rates.join(", "),
        tp.speedup(),
        tp.mismatches.len()
    )
}

fn socket_one_liner(sock: &socket::SocketReport) -> String {
    let rates: Vec<String> = sock
        .modes
        .iter()
        .map(|m| format!("{} {:.0} acks/s", m.label, m.acks_per_sec))
        .collect();
    format!(
        "socket: {}; group-commit speedup {:.2}x; {} mismatch(es)",
        rates.join(", "),
        sock.speedup(),
        sock.mismatches.len()
    )
}

fn profile_one_liner(prof: &profile::ProfileReport) -> String {
    let cells: Vec<String> = prof
        .algos
        .iter()
        .map(|a| format!("{} {}us", a.label, a.wall_us))
        .collect();
    format!("profile: {}", cells.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_stamp() -> Stamp {
        Stamp {
            timestamp: "2026-08-08T00:00:00Z".to_string(),
            git_sha: "cafe0001".to_string(),
            toolchain: "rustc test".to_string(),
        }
    }

    fn scratch(label: &str) -> PathBuf {
        std::env::temp_dir().join(format!("dnc_runner_{label}_{}", std::process::id()))
    }

    #[test]
    fn quick_run_appends_valid_records_and_archives() {
        let root = scratch("append");
        let _ = std::fs::remove_dir_all(&root);
        let opts = BenchOptions {
            quick: true,
            seed: 3,
            out_dir: root.join("results"),
            bench_dir: root.clone(),
            stamp: Some(test_stamp()),
            dashboard: Some(root.join("dashboard")),
            ..BenchOptions::default()
        };
        let summary = run_bench(&opts).unwrap();
        assert!(summary.sound(), "{:?}", summary.harness_failures);
        assert!(!summary.regressed(), "first run has nothing to gate");
        for path in &summary.trajectory_paths {
            let text = std::fs::read_to_string(path).unwrap();
            dnc_telemetry::schema::validate_bench(&text).unwrap();
        }
        // The throughput stages share one analysis cache, so the
        // record must show real reuse, not the perpetual zero that
        // per-stage private caches used to report: the shared cache
        // retains entries in every build, and the derived
        // `cache.hit_rate` is present whenever counters are compiled
        // in (the telemetry feature — CI's bench-record job).
        let records = load_trajectory(&summary.trajectory_paths[0]).unwrap();
        let entries = records[0]
            .metrics
            .get("throughput.cache_entries")
            .copied()
            .unwrap_or(0.0);
        assert!(entries > 0.0, "shared cache memoized nothing: {entries}");
        if cfg!(feature = "telemetry") {
            let rate = records[0]
                .metrics
                .get("cache.hit_rate")
                .copied()
                .unwrap_or(0.0);
            assert!(rate > 0.0, "cache.hit_rate missing or zero: {rate}");
        }
        // All four harness docs archived under runs/<slug>/.
        let slug_dir = &summary.archive_dir;
        for name in ["throughput", "profile", "socket", "chaos", "churn"] {
            assert!(
                slug_dir.join(format!("metrics-{name}.json")).exists(),
                "missing archived metrics-{name}.json"
            );
        }
        assert!(summary.dashboard_index.as_ref().unwrap().exists());

        // A second run appends (not overwrites) and gates quietly
        // against the identical first record.
        let summary2 = run_bench(&opts).unwrap();
        let records = load_trajectory(&summary2.trajectory_paths[0]).unwrap();
        assert_eq!(records.len(), 2, "append-only trajectory");
        assert_eq!(summary2.gates[0].1.priors, 1);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn quick_configs_shrink_every_harness() {
        let opts = BenchOptions {
            quick: true,
            seed: 9,
            ..BenchOptions::default()
        };
        assert!(throughput_config(&opts).ops < throughput::ThroughputConfig::default().ops);
        assert!(chaos_config(&opts).scenarios < chaos::ChaosConfig::default().scenarios);
        assert!(churn_config(&opts).seqs < churn::ChurnConfig::default().seqs);
        assert!(profile_config(&opts).n < profile::ProfileConfig::default().n);
        assert_eq!(throughput_config(&opts).seed, 9);
        assert_eq!(chaos_config(&opts).seed, 9);
    }
}
