//! Churn soundness harness: randomized admit/release sequences against
//! the durable admission engine, with two independent falsifiers.
//!
//! 1. **Certification falsifier** — the engine claims every commit
//!    leaves all live deadlines certified. After every commit the
//!    harness re-derives every bound with an *independent* analysis
//!    run ([`Integrated::paper`] through [`certify`], not the engine's
//!    guarded runner) and flags any deadline the independent run says
//!    is missed. A flagged deadline means the engine acknowledged a
//!    mutation its own certificate does not cover — the one thing this
//!    harness exists to catch.
//! 2. **Durability falsifier** — after the sequence, the write-ahead
//!    journal is cut at random byte offsets (a simulated crash
//!    mid-write). Recovery from each cut must land *exactly* on the
//!    state after some prefix of committed operations: the replayed
//!    prefix is folded by plain list arithmetic — no engine code — and
//!    the recovered engine's canonical state must match it
//!    byte-for-byte, twice (recovery itself must be deterministic).
//!
//! Sequences use the same per-scenario seed derivation as the chaos
//! harness, so `--seq K` of a master seed replays alone, bit-exact.

use crate::chaos::scenario_rng;
use crate::{paper_tandem, write_metrics_doc};
use dnc_core::admission::certify;
use dnc_core::integrated::Integrated;
use dnc_net::{Network, ServerId};
use dnc_num::Rat;
use dnc_service::journal::replay;
use dnc_service::{AdmitRequest, ChurnEngine, EngineConfig, Op, Request, Response};
use rand::rngs::StdRng;
use rand::Rng;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Knobs of a churn run.
#[derive(Clone, Debug)]
pub struct ChurnConfig {
    /// Number of randomized admit/release sequences.
    pub seqs: usize,
    /// Requests per sequence.
    pub ops: usize,
    /// Master seed: the whole run is a pure function of it.
    pub seed: u64,
    /// Random journal-truncation offsets tried per sequence.
    pub kill_points: usize,
    /// Analysis worker threads per certification (1 = sequential; the
    /// report is bit-identical at any worker count).
    pub workers: usize,
    /// Snapshot-and-rotate the journal every N committed ops. `None`
    /// (the default) keeps the full journal, which is what the raw
    /// truncation falsifier assumes; with a cadence set, the harness
    /// instead checks that recovery replays only the tail past the
    /// newest snapshot and still lands on the live state.
    pub snapshot_every: Option<u64>,
}

impl Default for ChurnConfig {
    fn default() -> ChurnConfig {
        ChurnConfig {
            seqs: 6,
            ops: 40,
            seed: 1,
            kill_points: 8,
            workers: 1,
            snapshot_every: None,
        }
    }
}

/// One sequence's outcome.
#[derive(Clone, Debug)]
pub struct SequenceOutcome {
    /// Sequence index within the run.
    pub seq: usize,
    /// Tandem size the sequence ran against.
    pub n: usize,
    /// Base work load `U` of the tandem.
    pub u: Rat,
    /// Committed operations (admits + releases).
    pub commits: u64,
    /// Rejected admits (rolled back, never journaled).
    pub rollbacks: u64,
    /// Connections still live at the end.
    pub live: usize,
    /// Independent re-certifications run (one per commit).
    pub cert_checks: usize,
    /// Certification falsifier hits: deadlines the engine left
    /// uncovered after an acknowledged commit.
    pub violations: Vec<String>,
    /// Journal truncation offsets recovered from (plus the final
    /// whole-journal recovery rounds).
    pub recovery_checks: usize,
    /// Durability falsifier hits: recoveries that did not land on a
    /// committed prefix, or were not deterministic.
    pub recovery_failures: Vec<String>,
    /// Valid journal bytes seen by the final recovery.
    pub journal_bytes: u64,
    /// Newest snapshot the final recovery loaded: `(generation, seq)`.
    pub snapshot_gen: Option<(u64, u64)>,
    /// Operations the final recovery replayed past the snapshot (the
    /// whole journal when no snapshot exists).
    pub tail_replayed: usize,
}

/// A full churn run.
#[derive(Clone, Debug)]
pub struct ChurnReport {
    /// Configuration the run used.
    pub cfg: ChurnConfig,
    /// One outcome per sequence.
    pub outcomes: Vec<SequenceOutcome>,
}

impl ChurnReport {
    /// Total certification-falsifier hits across all sequences.
    pub fn violation_count(&self) -> usize {
        self.outcomes.iter().map(|o| o.violations.len()).sum()
    }

    /// Total durability-falsifier hits across all sequences.
    pub fn recovery_failure_count(&self) -> usize {
        self.outcomes
            .iter()
            .map(|o| o.recovery_failures.len())
            .sum()
    }

    /// Whether every falsifier came up empty.
    pub fn sound(&self) -> bool {
        self.violation_count() == 0 && self.recovery_failure_count() == 0
    }
}

/// Draw one admit request: a contiguous downstream span of the tandem,
/// a small token bucket, no peak cap (so even a lone flow has a
/// strictly positive bound), and a deadline tight enough to force some
/// rejections.
fn draw_admit(rng: &mut StdRng, seq: usize, k: usize, servers: usize) -> Request {
    let start = rng.gen_range(0..servers);
    let len = rng.gen_range(1..=servers - start);
    Request::Admit(AdmitRequest {
        name: format!("c{seq}-{k}"),
        route: (start..start + len).map(ServerId).collect(),
        buckets: vec![(
            Rat::from(rng.gen_range(1i64..=4)),
            Rat::new(rng.gen_range(1i128..=3), 40),
        )],
        peak: None,
        priority: 1,
        deadline: Rat::from(rng.gen_range(4i64..=120)),
    })
}

/// Fold a committed-operation prefix into the canonical state string by
/// plain list arithmetic — deliberately *not* the engine's replay code,
/// so the durability falsifier has an independent oracle.
fn expected_state(base_flows: usize, ops: &[Op]) -> String {
    let mut admitted: Vec<&dnc_service::AdmitOp> = Vec::new();
    for op in ops {
        match op {
            Op::Admit(a) => admitted.push(a),
            Op::Release { name } => {
                if let Some(i) = admitted.iter().position(|a| a.name == *name) {
                    admitted.remove(i);
                }
            }
        }
    }
    let mut s = format!("base {base_flows}\n");
    for a in admitted {
        s.push_str(&Op::Admit((*a).clone()).encode());
        s.push('\n');
    }
    s
}

/// Re-certify every live deadline with an independent analysis run;
/// returns falsifier hits (empty = the engine's claim holds).
fn independent_recheck(engine: &ChurnEngine, seq: usize, step: usize) -> Vec<String> {
    let deadlines = engine.deadlines();
    if deadlines.is_empty() {
        return Vec::new();
    }
    match certify(engine.network(), &deadlines, &Integrated::paper()) {
        Ok(cert) => cert
            .violations
            .iter()
            .map(|d| {
                format!(
                    "seq {seq} step {step}: flow {:?} bound {} > deadline {} under independent analysis",
                    d.flow,
                    cert.report.bound(d.flow),
                    d.deadline
                )
            })
            .collect(),
        Err(e) => vec![format!(
            "seq {seq} step {step}: independent analysis failed on committed state: {e}"
        )],
    }
}

/// Cut the journal at `kill_points` random offsets and check each
/// recovery against the independent prefix oracle.
fn kill_point_checks(
    rng: &mut StdRng,
    journal: &Path,
    base: &Network,
    kill_points: usize,
    seq: usize,
) -> (usize, Vec<String>) {
    let mut failures = Vec::new();
    let mut checks = 0;
    let Ok(bytes) = std::fs::read(journal) else {
        return (0, vec![format!("seq {seq}: cannot re-read journal")]);
    };
    let magic = dnc_service::journal::HEADER_LEN;
    if bytes.len() <= magic {
        return (0, Vec::new());
    }
    let Ok(full) = replay(journal) else {
        return (0, vec![format!("seq {seq}: full journal does not replay")]);
    };
    let killed_path = journal.with_extension("killed");
    for point in 0..kill_points {
        let cut = rng.gen_range(magic..=bytes.len());
        checks += 1;
        let fail = |m: String| format!("seq {seq} kill {point} (cut {cut}): {m}");
        if std::fs::write(&killed_path, &bytes[..cut]).is_err() {
            failures.push(fail("cannot write truncated copy".into()));
            continue;
        }
        let Ok(prefix) = replay(&killed_path) else {
            failures.push(fail("truncated journal does not replay".into()));
            continue;
        };
        // The surviving ops must be a prefix of the committed sequence.
        let committed: Vec<String> = full.ops.iter().map(Op::encode).collect();
        let survived: Vec<String> = prefix.ops.iter().map(Op::encode).collect();
        if survived.len() > committed.len() || survived[..] != committed[..survived.len()] {
            failures.push(fail("recovered ops are not a committed prefix".into()));
            continue;
        }
        let want = expected_state(base.flows().len(), &prefix.ops);
        let mut digests = Vec::new();
        let mut recovered_ok = true;
        // Recover twice: the second open sees the already-truncated
        // file and must land on the identical state (determinism).
        for round in 0..2 {
            match ChurnEngine::open(
                base.clone(),
                Vec::new(),
                EngineConfig::default(),
                &killed_path,
            ) {
                Ok((engine, info)) => {
                    if round == 0 && info.ops_replayed != prefix.ops.len() {
                        failures.push(fail(format!(
                            "replayed {} ops, journal holds {}",
                            info.ops_replayed,
                            prefix.ops.len()
                        )));
                        recovered_ok = false;
                        break;
                    }
                    if engine.canonical_state() != want {
                        failures.push(fail(format!(
                            "recovered state diverges from the committed prefix:\n{}\nvs expected\n{want}",
                            engine.canonical_state()
                        )));
                        recovered_ok = false;
                        break;
                    }
                    digests.push(engine.state_digest());
                }
                Err(e) => {
                    failures.push(fail(format!("recovery failed: {e}")));
                    recovered_ok = false;
                    break;
                }
            }
        }
        if recovered_ok && digests.windows(2).any(|w| w[0] != w[1]) {
            failures.push(fail("recovery is not deterministic".into()));
        }
    }
    let _ = std::fs::remove_file(&killed_path);
    (checks, failures)
}

/// Run one churn sequence: drive the engine through a randomized
/// admit/release mix with both falsifiers armed.
pub fn run_sequence(seq: usize, cfg: &ChurnConfig, dir: &Path) -> SequenceOutcome {
    let mut rng = scenario_rng(cfg.seed, seq);
    let n = rng.gen_range(2usize..=4);
    let u = Rat::new(rng.gen_range(2i128..=10), 20);
    let base = paper_tandem(n, u).net;
    let journal = dir.join(format!("seq{seq}.wal"));
    let _ = std::fs::remove_file(&journal);

    let mut violations = Vec::new();
    let mut cert_checks = 0;
    let mut next_name = 0usize;
    let engine_cfg = || EngineConfig {
        workers: cfg.workers.max(1),
        snapshot_every: cfg.snapshot_every,
        ..EngineConfig::default()
    };
    let (commits, rollbacks, live, live_digest) = match ChurnEngine::open(
        base.clone(),
        Vec::new(),
        engine_cfg(),
        &journal,
    ) {
        Err(e) => {
            violations.push(format!("seq {seq}: engine failed to open: {e}"));
            (0, 0, 0, None)
        }
        Ok((mut engine, _)) => {
            for step in 0..cfg.ops {
                let live_names: Vec<String> = engine.admitted().map(|q| q.name).collect();
                let req = if live_names.is_empty() || rng.gen_ratio(3, 5) {
                    next_name += 1;
                    draw_admit(&mut rng, seq, next_name, n)
                } else {
                    let victim = rng.gen_range(0..live_names.len());
                    Request::Release {
                        name: live_names.get(victim).cloned().unwrap_or_default(),
                    }
                };
                match engine.process(req) {
                    Err(e) => {
                        violations.push(format!("seq {seq} step {step}: engine error: {e}"));
                        break;
                    }
                    Ok(resp) => {
                        if resp.committed() {
                            cert_checks += 1;
                            violations.extend(independent_recheck(&engine, seq, step));
                        }
                        if let Response::Admitted {
                            bound, deadline, ..
                        } = &resp
                        {
                            if bound > deadline {
                                violations.push(format!(
                                    "seq {seq} step {step}: acknowledged bound {bound} above deadline {deadline}"
                                ));
                            }
                        }
                    }
                }
            }
            let stats = engine.stats();
            let digest = engine.state_digest();
            (
                stats.commits,
                stats.rollbacks,
                engine.admitted().count(),
                Some(digest),
            )
        }
    };

    // Final whole-journal recovery, twice: collect the recovery-banner
    // facts (journal bytes, snapshot generation, tail replayed) and
    // check the recovered state digest against the live engine and the
    // second round against the first (determinism).
    let mut recovery_checks = 0usize;
    let mut recovery_failures: Vec<String> = Vec::new();
    let mut journal_bytes = 0u64;
    let mut snapshot_gen = None;
    let mut tail_replayed = 0usize;
    let mut digests: Vec<u64> = Vec::new();
    for round in 0..2 {
        match ChurnEngine::open(base.clone(), Vec::new(), engine_cfg(), &journal) {
            Ok((engine, info)) => {
                recovery_checks += 1;
                if round == 0 {
                    journal_bytes = info.valid_len;
                    snapshot_gen = info.snapshot;
                    tail_replayed = info.ops_replayed;
                    if let Some((gen, snap_seq)) = info.snapshot {
                        if info.ops_replayed as u64 != info.committed_seq.saturating_sub(snap_seq) {
                            recovery_failures.push(format!(
                                "seq {seq}: snapshot gen {gen} at seq {snap_seq} but {} op(s) \
                                 replayed to reach seq {} — recovery is not tail-only",
                                info.ops_replayed, info.committed_seq
                            ));
                        }
                    }
                    if let Some(every) = cfg.snapshot_every {
                        if info.ops_replayed as u64 >= every.max(1) * 2 {
                            recovery_failures.push(format!(
                                "seq {seq}: replayed {} op(s) at snapshot cadence {every} — \
                                 compaction is not bounding the tail",
                                info.ops_replayed
                            ));
                        }
                    }
                }
                digests.push(engine.state_digest());
            }
            Err(e) => recovery_failures.push(format!("seq {seq} recovery round {round}: {e}")),
        }
    }
    if digests.windows(2).any(|w| w[0] != w[1]) {
        recovery_failures.push(format!("seq {seq}: final recovery is not deterministic"));
    }
    if let (Some(live), Some(rec)) = (&live_digest, digests.first()) {
        if live != rec {
            recovery_failures.push(format!(
                "seq {seq}: recovered state digest diverges from the live engine"
            ));
        }
    }

    // The raw truncation falsifier assumes an unrotated journal whose
    // first op is seq 0; with compaction on, the tail-only checks above
    // replace it.
    if cfg.snapshot_every.is_none() {
        let (kp_checks, kp_failures) =
            kill_point_checks(&mut rng, &journal, &base, cfg.kill_points, seq);
        recovery_checks += kp_checks;
        recovery_failures.extend(kp_failures);
    }
    let _ = std::fs::remove_file(&journal);

    dnc_telemetry::counter("churn.sequences", 1);
    if !violations.is_empty() {
        dnc_telemetry::counter("churn.violations", violations.len() as u64);
    }
    if !recovery_failures.is_empty() {
        dnc_telemetry::counter("churn.recovery_failures", recovery_failures.len() as u64);
    }

    SequenceOutcome {
        seq,
        n,
        u,
        commits,
        rollbacks,
        live,
        cert_checks,
        violations,
        recovery_checks,
        recovery_failures,
        journal_bytes,
        snapshot_gen,
        tail_replayed,
    }
}

/// Scratch directory for one run's journals — unique per run so
/// concurrent runs (parallel tests, most often) never share or delete
/// each other's journals.
fn scratch_dir(seed: u64) -> PathBuf {
    static RUN: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let run = RUN.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    std::env::temp_dir().join(format!("dnc_churn_{}_{seed}_{run}", std::process::id()))
}

/// Run the whole harness. Deterministic in `cfg` (journals live in a
/// scratch directory and are removed as each sequence finishes).
pub fn run_churn(cfg: &ChurnConfig) -> ChurnReport {
    let _span = dnc_telemetry::span("churn.run");
    let dir = scratch_dir(cfg.seed);
    let _ = std::fs::create_dir_all(&dir);
    let outcomes = (0..cfg.seqs)
        .map(|seq| run_sequence(seq, cfg, &dir))
        .collect();
    let _ = std::fs::remove_dir_all(&dir);
    ChurnReport {
        cfg: cfg.clone(),
        outcomes,
    }
}

/// Replay one sequence of the run `cfg` describes, alone and bit-exact.
pub fn replay_sequence(cfg: &ChurnConfig, seq: usize) -> SequenceOutcome {
    let dir = scratch_dir(cfg.seed);
    let _ = std::fs::create_dir_all(&dir);
    let outcome = run_sequence(seq, cfg, &dir);
    let _ = std::fs::remove_dir_all(&dir);
    outcome
}

/// The run as `dnc-metrics/v1` series: one row per sequence.
pub fn churn_series(report: &ChurnReport) -> Vec<dnc_telemetry::export::Series> {
    use dnc_telemetry::export::{Cell, Series};
    use dnc_telemetry::schema::{self, ColumnMeta};
    const SEQ: ColumnMeta = ColumnMeta {
        label: "sequence",
        unit: "",
    };
    const COMMITS: ColumnMeta = ColumnMeta {
        label: "commits",
        unit: "",
    };
    const ROLLBACKS: ColumnMeta = ColumnMeta {
        label: "rollbacks",
        unit: "",
    };
    const LIVE: ColumnMeta = ColumnMeta {
        label: "live connections",
        unit: "",
    };
    const CERT_CHECKS: ColumnMeta = ColumnMeta {
        label: "independent re-certifications",
        unit: "",
    };
    const VIOLATIONS: ColumnMeta = ColumnMeta {
        label: "certification violations",
        unit: "",
    };
    const RECOVERIES: ColumnMeta = ColumnMeta {
        label: "kill-point recoveries",
        unit: "",
    };
    const RECOVERY_FAILURES: ColumnMeta = ColumnMeta {
        label: "recovery failures",
        unit: "",
    };
    const JOURNAL_BYTES: ColumnMeta = ColumnMeta {
        label: "journal bytes",
        unit: "B",
    };
    const TAIL_REPLAYED: ColumnMeta = ColumnMeta {
        label: "tail ops replayed",
        unit: "",
    };
    let mut s = Series::new(
        "churn",
        vec![
            SEQ,
            schema::NETWORK_SIZE,
            schema::WORK_LOAD,
            COMMITS,
            ROLLBACKS,
            LIVE,
            CERT_CHECKS,
            VIOLATIONS,
            RECOVERIES,
            RECOVERY_FAILURES,
            JOURNAL_BYTES,
            TAIL_REPLAYED,
        ],
    );
    for o in &report.outcomes {
        s.push_row(vec![
            Cell::int(o.seq as u64),
            Cell::int(o.n as u64),
            Cell::Num(o.u.to_f64()),
            Cell::int(o.commits),
            Cell::int(o.rollbacks),
            Cell::int(o.live as u64),
            Cell::int(o.cert_checks as u64),
            Cell::int(o.violations.len() as u64),
            Cell::int(o.recovery_checks as u64),
            Cell::int(o.recovery_failures.len() as u64),
            Cell::int(o.journal_bytes),
            Cell::int(o.tail_replayed as u64),
        ]);
    }
    vec![s]
}

/// Write `results/metrics-churn.json` for a finished run; returns the
/// path written.
pub fn write_churn_metrics(report: &ChurnReport) -> std::io::Result<std::path::PathBuf> {
    write_metrics_doc("churn", churn_series(report))
}

/// Write `<dir>/metrics-churn.json`; returns the path written.
pub fn write_churn_metrics_in(
    dir: &std::path::Path,
    report: &ChurnReport,
) -> std::io::Result<std::path::PathBuf> {
    crate::write_metrics_doc_in(dir, "churn", churn_series(report))
}

/// Render the run as a fixed-width text report.
pub fn render_report(report: &ChurnReport) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "churn: {} sequences x {} ops, seed {}, {} kill points each{}{}",
        report.cfg.seqs,
        report.cfg.ops,
        report.cfg.seed,
        report.cfg.kill_points,
        if report.cfg.workers > 1 {
            format!(", {} workers", report.cfg.workers)
        } else {
            String::new()
        },
        match report.cfg.snapshot_every {
            Some(every) => format!(", snapshot every {every}"),
            None => String::new(),
        }
    );
    let _ = writeln!(
        s,
        "{:>4} {:>3} {:>5} {:>8} {:>10} {:>5} {:>7} {:>10} {:>10} {:>9}",
        "seq",
        "n",
        "U",
        "commits",
        "rollbacks",
        "live",
        "cert",
        "cert_viol",
        "recoveries",
        "rec_fail"
    );
    for o in &report.outcomes {
        let _ = writeln!(
            s,
            "{:>4} {:>3} {:>5.2} {:>8} {:>10} {:>5} {:>7} {:>10} {:>10} {:>9}",
            o.seq,
            o.n,
            o.u.to_f64(),
            o.commits,
            o.rollbacks,
            o.live,
            o.cert_checks,
            o.violations.len(),
            o.recovery_checks,
            o.recovery_failures.len()
        );
    }
    for o in &report.outcomes {
        let _ = writeln!(
            s,
            "seq {} recovery: journal {} byte(s), {}, {} op(s) replayed since snapshot",
            o.seq,
            o.journal_bytes,
            match o.snapshot_gen {
                Some((gen, seq)) => format!("snapshot generation {gen} (seq {seq})"),
                None => "no snapshot".to_string(),
            },
            o.tail_replayed
        );
    }
    for o in &report.outcomes {
        for v in o.violations.iter().chain(&o.recovery_failures) {
            let _ = writeln!(s, "VIOLATION: {v}");
        }
    }
    if report.sound() {
        let _ = writeln!(s, "no certification or recovery violations");
    } else {
        let _ = writeln!(
            s,
            "VIOLATIONS: {} certification, {} recovery",
            report.violation_count(),
            report.recovery_failure_count()
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ChurnConfig {
        ChurnConfig {
            seqs: 2,
            ops: 16,
            seed: 7,
            kill_points: 4,
            workers: 1,
            snapshot_every: None,
        }
    }

    #[test]
    fn churn_run_is_sound_and_exercises_both_paths() {
        let report = run_churn(&small());
        assert!(report.sound(), "{}", render_report(&report));
        let commits: u64 = report.outcomes.iter().map(|o| o.commits).sum();
        assert!(commits > 0, "no sequence committed anything");
        let recoveries: usize = report.outcomes.iter().map(|o| o.recovery_checks).sum();
        assert!(recoveries > 0, "no kill point was exercised");
    }

    #[test]
    fn sequence_replay_matches_the_full_run() {
        let cfg = small();
        let full = run_churn(&cfg);
        for want in &full.outcomes {
            let got = replay_sequence(&cfg, want.seq);
            assert_eq!(got.n, want.n);
            assert_eq!(got.u, want.u);
            assert_eq!(got.commits, want.commits);
            assert_eq!(got.rollbacks, want.rollbacks);
            assert_eq!(got.live, want.live);
            assert_eq!(got.violations, want.violations);
            assert_eq!(got.recovery_failures, want.recovery_failures);
        }
    }

    #[test]
    fn series_validate_against_schema() {
        let report = run_churn(&ChurnConfig {
            seqs: 1,
            ops: 8,
            seed: 3,
            kill_points: 2,
            workers: 1,
            snapshot_every: None,
        });
        let mut doc = dnc_telemetry::export::MetricsDoc::new(
            "churn-test",
            dnc_telemetry::Snapshot::default(),
        );
        doc.series = churn_series(&report);
        let json = dnc_telemetry::export::metrics_json(&doc);
        dnc_telemetry::schema::validate_metrics(&json).unwrap();
        let text = render_report(&report);
        assert!(text.contains("1 sequences"), "{text}");
    }

    #[test]
    fn churn_with_compaction_stays_sound_and_bounds_the_tail() {
        let report = run_churn(&ChurnConfig {
            snapshot_every: Some(3),
            ..small()
        });
        assert!(report.sound(), "{}", render_report(&report));
        let snapped = report
            .outcomes
            .iter()
            .filter(|o| o.snapshot_gen.is_some())
            .count();
        assert!(snapped > 0, "no sequence ever snapshotted");
        for o in &report.outcomes {
            assert!(
                (o.tail_replayed as u64) < 6,
                "seq {} replayed {} ops at cadence 3",
                o.seq,
                o.tail_replayed
            );
        }
        let text = render_report(&report);
        assert!(text.contains("snapshot generation"), "{text}");
        assert!(text.contains("snapshot every 3"), "{text}");
    }

    #[test]
    fn expected_state_folds_releases() {
        let a = |name: &str| {
            Op::Admit(dnc_service::AdmitOp {
                name: name.into(),
                route: vec![ServerId(0)],
                buckets: vec![(Rat::ONE, Rat::new(1, 8))],
                peak: None,
                priority: 1,
                deadline: Rat::from(10),
            })
        };
        let ops = vec![a("x"), a("y"), Op::Release { name: "x".into() }];
        let state = expected_state(3, &ops);
        assert!(state.starts_with("base 3\n"), "{state}");
        assert!(state.contains("admit y"), "{state}");
        assert!(!state.contains("admit x"), "{state}");
    }
}
