//! The `dnc-bench/v1` perf-trajectory layer.
//!
//! `cargo xtask bench` (and `dnc bench`) append one record per run to
//! the repo-root trajectory files `BENCH_throughput.json` and
//! `BENCH_churn.json`. The files are JSON Lines — one self-contained
//! record object per line — because append-only is the whole contract:
//! a run never rewrites history, a truncated tail line (crash mid-append)
//! is detected by the validator without poisoning earlier records, and
//! `git diff` shows exactly one added line per run.
//!
//! A record carries the run identity (timestamp, git SHA, toolchain),
//! the knob settings that produced it, and two flat maps: `metrics`
//! (per-harness measurements) and `counters` (telemetry totals). The
//! identity fields flow in through [`Stamp`], never from ad-hoc clock
//! reads at the emit site: [`resolve_stamp`] is the single wall-clock
//! read, and each of its fields is env-overridable
//! (`DNC_BENCH_TIMESTAMP`, `DNC_BENCH_GIT_SHA`, `DNC_BENCH_TOOLCHAIN`)
//! so deterministic replays produce byte-identical records and the
//! `det-wall-clock` deepcheck lint has a single site to reason about.
//!
//! On top of the parsed trajectory sits the regression gate: for every
//! metric of the latest record it takes the median of up to the last K
//! prior samples as the baseline, allows a configurable percentage band
//! around it, and classifies the metric by name into lower-is-better,
//! higher-is-better, or informational (see [`metric_direction`]).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

use dnc_telemetry::export::escape_json;
use dnc_telemetry::json::{self, Value};
use dnc_telemetry::schema;

/// Run identity written into every record: the injected clock source.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Stamp {
    /// UTC timestamp, `YYYY-MM-DDTHH:MM:SSZ`.
    pub timestamp: String,
    /// Short git commit SHA (or `unknown` outside a checkout).
    pub git_sha: String,
    /// `rustc --version` line (or `unknown`).
    pub toolchain: String,
}

impl Stamp {
    /// Directory-name-safe `<sha>-<ts>` slug for archiving a run's raw
    /// metrics under `results/runs/`.
    pub fn run_slug(&self) -> String {
        let mut slug = String::new();
        for c in self
            .git_sha
            .chars()
            .chain("-".chars())
            .chain(self.timestamp.chars())
        {
            if c.is_ascii_alphanumeric() || c == '-' {
                slug.push(c);
            } else {
                slug.push('-');
            }
        }
        slug
    }
}

/// Resolve the run stamp: each field comes from its environment
/// override when set, else from the ambient source. This is the one
/// sanctioned wall-clock read of the bench recorder — every timestamp
/// in a record or archive path derives from the `Stamp` it returns.
pub fn resolve_stamp() -> Stamp {
    let timestamp = std::env::var("DNC_BENCH_TIMESTAMP").unwrap_or_else(|_| {
        let secs = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_secs());
        format_utc(secs)
    });
    let git_sha = std::env::var("DNC_BENCH_GIT_SHA").unwrap_or_else(|_| {
        std::process::Command::new("git")
            .args(["rev-parse", "--short=12", "HEAD"])
            .output()
            .ok()
            .filter(|o| o.status.success())
            .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".to_string())
    });
    let toolchain = std::env::var("DNC_BENCH_TOOLCHAIN").unwrap_or_else(|_| {
        std::process::Command::new("rustc")
            .arg("--version")
            .output()
            .ok()
            .filter(|o| o.status.success())
            .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".to_string())
    });
    Stamp {
        timestamp,
        git_sha,
        toolchain,
    }
}

/// Run `f` and return its result plus elapsed wall-clock microseconds.
/// The harnesses' single sanctioned stopwatch: here wall time *is* the
/// measurement (it lands in the trajectory as `*.wall_us`), not state
/// a deterministic replay must reproduce — see DESIGN §15.2.
pub fn time_micros<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let started = std::time::Instant::now(); // audit: allow(det-wall-clock, the stopwatch is the measurement itself, not replayable state)
    let out = f();
    let elapsed = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
    (out, elapsed)
}

/// Render seconds-since-epoch as `YYYY-MM-DDTHH:MM:SSZ` (proleptic
/// Gregorian, civil-from-days per Hinnant's algorithm — no locale, no
/// libc).
pub fn format_utc(secs_since_epoch: u64) -> String {
    let secs = secs_since_epoch;
    let days = (secs / 86_400) as i64;
    let rem = secs % 86_400;
    let (h, m, s) = (rem / 3600, (rem % 3600) / 60, rem % 60);

    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let mth = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if mth <= 2 { y + 1 } else { y };
    format!("{y:04}-{mth:02}-{d:02}T{h:02}:{m:02}:{s:02}Z")
}

/// One `dnc-bench/v1` trajectory record.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BenchRecord {
    /// UTC timestamp of the run.
    pub timestamp: String,
    /// Git SHA the run was built from.
    pub git_sha: String,
    /// Toolchain version line.
    pub toolchain: String,
    /// Knob settings as strings (seed, quick, harness configs).
    pub knobs: BTreeMap<String, String>,
    /// Per-harness measurements, flat `harness.qualifier` names.
    pub metrics: BTreeMap<String, f64>,
    /// Telemetry counter/span totals captured around the harnesses.
    pub counters: BTreeMap<String, u64>,
}

impl BenchRecord {
    /// A record carrying the given stamp and no measurements yet.
    pub fn stamped(stamp: &Stamp) -> BenchRecord {
        BenchRecord {
            timestamp: stamp.timestamp.clone(),
            git_sha: stamp.git_sha.clone(),
            toolchain: stamp.toolchain.clone(),
            ..BenchRecord::default()
        }
    }
}

/// JSON for one metric value: integers render without a fraction,
/// non-finite values (which no harness should produce) clamp to 0 so
/// the record always validates.
fn metric_number(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    if v == v.trunc() && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Serialize a record as one JSON line (no trailing newline). Key order
/// is fixed; map entries are BTreeMap-ordered, so equal records always
/// produce byte-identical lines.
pub fn record_line(record: &BenchRecord) -> String {
    let mut s = String::new();
    let _ = write!(s, "{{\"schema\": \"{}\"", schema::BENCH_SCHEMA);
    for (key, value) in [
        ("timestamp", &record.timestamp),
        ("git_sha", &record.git_sha),
        ("toolchain", &record.toolchain),
    ] {
        let _ = write!(s, ", \"{key}\": \"{}\"", escape_json(value));
    }
    let _ = write!(s, ", \"knobs\": {{");
    for (i, (k, v)) in record.knobs.iter().enumerate() {
        let sep = if i == 0 { "" } else { ", " };
        let _ = write!(s, "{sep}\"{}\": \"{}\"", escape_json(k), escape_json(v));
    }
    let _ = write!(s, "}}, \"metrics\": {{");
    for (i, (k, v)) in record.metrics.iter().enumerate() {
        let sep = if i == 0 { "" } else { ", " };
        let _ = write!(s, "{sep}\"{}\": {}", escape_json(k), metric_number(*v));
    }
    let _ = write!(s, "}}, \"counters\": {{");
    for (i, (k, v)) in record.counters.iter().enumerate() {
        let sep = if i == 0 { "" } else { ", " };
        let _ = write!(s, "{sep}\"{}\": {v}", escape_json(k));
    }
    s.push_str("}}");
    s
}

fn string_field(obj: &Value, key: &str) -> Result<String, String> {
    obj.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or(format!("missing string field `{key}`"))
}

/// Parse a trajectory file (JSON Lines) into records, oldest first.
/// Blank lines are skipped; any malformed line is an error naming its
/// line number.
pub fn parse_trajectory(input: &str) -> Result<Vec<BenchRecord>, String> {
    let mut records = Vec::new();
    for (i, line) in input.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let at = |e: String| format!("line {}: {e}", i + 1);
        let doc = json::parse(line).map_err(|e| at(e.to_string()))?;
        match doc.get("schema").and_then(Value::as_str) {
            Some(s) if s == schema::BENCH_SCHEMA => {}
            Some(s) => {
                return Err(at(format!(
                    "schema is `{s}`, expected `{}`",
                    schema::BENCH_SCHEMA
                )))
            }
            None => return Err(at("missing string field `schema`".to_string())),
        }
        let mut record = BenchRecord {
            timestamp: string_field(&doc, "timestamp").map_err(&at)?,
            git_sha: string_field(&doc, "git_sha").map_err(&at)?,
            toolchain: string_field(&doc, "toolchain").map_err(&at)?,
            ..BenchRecord::default()
        };
        let knobs = doc
            .get("knobs")
            .and_then(Value::as_object)
            .ok_or_else(|| at("missing object field `knobs`".to_string()))?;
        for (k, v) in knobs {
            let s = v
                .as_str()
                .ok_or_else(|| at(format!("knobs.{k} must be a string")))?;
            record.knobs.insert(k.clone(), s.to_string());
        }
        let metrics = doc
            .get("metrics")
            .and_then(Value::as_object)
            .ok_or_else(|| at("missing object field `metrics`".to_string()))?;
        for (k, v) in metrics {
            let n = v
                .as_number()
                .ok_or_else(|| at(format!("metrics.{k} must be a number")))?;
            record.metrics.insert(k.clone(), n);
        }
        let counters = doc
            .get("counters")
            .and_then(Value::as_object)
            .ok_or_else(|| at("missing object field `counters`".to_string()))?;
        for (k, v) in counters {
            let n = v
                .as_number()
                .ok_or_else(|| at(format!("counters.{k} must be a number")))?;
            record.counters.insert(k.clone(), n.max(0.0) as u64);
        }
        records.push(record);
    }
    Ok(records)
}

/// Append one record to a trajectory file as a single line, creating
/// the file (and parent directory) on first use. Never rewrites
/// existing content — the append-only invariant of the trajectory.
pub fn append_record(path: &Path, record: &BenchRecord) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .create(true)
        .open(path)?;
    writeln!(f, "{}", record_line(record))
}

/// Read and parse a trajectory file; a missing file is an empty
/// trajectory, any other error is reported as a string.
pub fn load_trajectory(path: &Path) -> Result<Vec<BenchRecord>, String> {
    match std::fs::read_to_string(path) {
        Ok(text) => parse_trajectory(&text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
        Err(e) => Err(format!("{}: {e}", path.display())),
    }
}

/// Regression-gate knobs.
#[derive(Clone, Copy, Debug)]
pub struct GateConfig {
    /// How many prior records the baseline median is taken over.
    pub window: usize,
    /// Noise band around the baseline, in percent.
    pub threshold_pct: u32,
}

impl Default for GateConfig {
    fn default() -> GateConfig {
        GateConfig {
            window: 5,
            threshold_pct: 25,
        }
    }
}

/// Which way a metric is allowed to drift.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Growth past the band is a regression (wall times, violations).
    LowerIsBetter,
    /// Shrinkage past the band is a regression (rates, speedups).
    HigherIsBetter,
    /// Tracked but never gated (commit counts, scenario totals).
    Informational,
}

/// Classify a metric by name. The table is deliberately substring-based
/// so new harness metrics inherit a sensible direction from their
/// naming convention without touching the gate.
pub fn metric_direction(name: &str) -> Direction {
    const LOWER: &[&str] = &["wall_us", "violations", "mismatches", "failures"];
    const HIGHER: &[&str] = &["admissions_per_sec", "speedup", "hit_rate"];
    if LOWER.iter().any(|p| name.contains(p)) {
        Direction::LowerIsBetter
    } else if HIGHER.iter().any(|p| name.contains(p)) {
        Direction::HigherIsBetter
    } else {
        Direction::Informational
    }
}

/// One metric's gate verdict.
#[derive(Clone, Debug)]
pub struct MetricVerdict {
    /// Metric name.
    pub metric: String,
    /// Median of the prior window.
    pub baseline: f64,
    /// The latest record's value.
    pub latest: f64,
    /// Signed drift from the baseline, in percent (0 when the baseline
    /// is 0).
    pub delta_pct: f64,
    /// Gating direction the metric was classified into.
    pub direction: Direction,
    /// True when the drift left the noise band against the direction.
    pub regressed: bool,
}

/// The gate's result over one trajectory.
#[derive(Clone, Debug, Default)]
pub struct GateReport {
    /// Prior records the baseline could draw on (0 = nothing to gate).
    pub priors: usize,
    /// Band width used, in percent.
    pub threshold_pct: u32,
    /// One verdict per latest-record metric with at least one prior
    /// sample.
    pub verdicts: Vec<MetricVerdict>,
}

impl GateReport {
    /// Verdicts that tripped the gate.
    pub fn regressions(&self) -> Vec<&MetricVerdict> {
        self.verdicts.iter().filter(|v| v.regressed).collect()
    }

    /// True when any gated metric left its band.
    pub fn regressed(&self) -> bool {
        self.verdicts.iter().any(|v| v.regressed)
    }
}

/// Median of a non-empty sample (mean of the middle two when even).
fn median(values: &mut [f64]) -> f64 {
    values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = values.len();
    if n % 2 == 1 {
        values[n / 2]
    } else {
        (values[n / 2 - 1] + values[n / 2]) / 2.0
    }
}

/// Absolute slack added to every band so a 0-valued baseline still
/// gates cleanly: `violations` at 0 regresses on the first real hit,
/// not on floating-point dust.
const ABS_SLACK: f64 = 1e-9;

/// Gate the latest record of a trajectory against the median of up to
/// `cfg.window` prior records. With no prior records (first run ever)
/// nothing is gated.
pub fn evaluate_gate(records: &[BenchRecord], cfg: &GateConfig) -> GateReport {
    let Some((latest, prior)) = records.split_last() else {
        return GateReport {
            threshold_pct: cfg.threshold_pct,
            ..GateReport::default()
        };
    };
    let window = &prior[prior.len().saturating_sub(cfg.window)..];
    let mut verdicts = Vec::new();
    for (name, &value) in &latest.metrics {
        let mut history: Vec<f64> = window
            .iter()
            .filter_map(|r| r.metrics.get(name).copied())
            .collect();
        if history.is_empty() {
            continue; // new metric: nothing to compare against yet
        }
        let baseline = median(&mut history);
        let band = baseline.abs() * f64::from(cfg.threshold_pct) / 100.0 + ABS_SLACK;
        let delta = value - baseline;
        let direction = metric_direction(name);
        let regressed = match direction {
            Direction::LowerIsBetter => delta > band,
            Direction::HigherIsBetter => -delta > band,
            Direction::Informational => false,
        };
        let delta_pct = if baseline.abs() > ABS_SLACK {
            delta / baseline * 100.0
        } else {
            0.0
        };
        verdicts.push(MetricVerdict {
            metric: name.clone(),
            baseline,
            latest: value,
            delta_pct,
            direction,
            regressed,
        });
    }
    GateReport {
        priors: window.len(),
        threshold_pct: cfg.threshold_pct,
        verdicts,
    }
}

fn gate_number(v: f64) -> String {
    if v == v.trunc() && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.3}")
    }
}

/// Render a gate report as a fixed-width diff table.
pub fn render_gate_table(name: &str, report: &GateReport) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "gate[{name}]: band ±{}% around median of last {} prior run(s)",
        report.threshold_pct, report.priors
    );
    if report.priors == 0 {
        let _ = writeln!(s, "  no prior records — nothing gated");
        return s;
    }
    let _ = writeln!(
        s,
        "  {:<46} {:>14} {:>14} {:>9}  status",
        "metric", "baseline", "latest", "delta"
    );
    for v in &report.verdicts {
        let status = if v.regressed {
            "REGRESSED"
        } else if v.direction == Direction::Informational {
            "info"
        } else {
            "ok"
        };
        let _ = writeln!(
            s,
            "  {:<46} {:>14} {:>14} {:>+8.1}%  {}",
            v.metric,
            gate_number(v.baseline),
            gate_number(v.latest),
            v.delta_pct,
            status
        );
    }
    let regressions = report.regressions();
    if regressions.is_empty() {
        let _ = writeln!(s, "  all gated metrics within band");
    } else {
        let _ = writeln!(
            s,
            "  REGRESSED: {} metric(s) out of band",
            regressions.len()
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(metrics: &[(&str, f64)]) -> BenchRecord {
        BenchRecord {
            timestamp: "2026-08-08T00:00:00Z".to_string(),
            git_sha: "abc123".to_string(),
            toolchain: "rustc test".to_string(),
            knobs: BTreeMap::from([("seed".to_string(), "1".to_string())]),
            metrics: metrics.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            counters: BTreeMap::from([("curve.conv".to_string(), 7u64)]),
        }
    }

    #[test]
    fn utc_formatting_matches_known_instants() {
        assert_eq!(format_utc(0), "1970-01-01T00:00:00Z");
        assert_eq!(format_utc(86_399), "1970-01-01T23:59:59Z");
        // leap-year day: 2024-02-29
        assert_eq!(format_utc(1_709_164_800), "2024-02-29T00:00:00Z");
        assert_eq!(format_utc(1_754_611_200), "2025-08-08T00:00:00Z");
    }

    #[test]
    fn stamp_env_overrides_win() {
        std::env::set_var("DNC_BENCH_TIMESTAMP", "2001-01-01T00:00:00Z");
        std::env::set_var("DNC_BENCH_GIT_SHA", "feedface");
        std::env::set_var("DNC_BENCH_TOOLCHAIN", "rustc 0.0-test");
        let stamp = resolve_stamp();
        std::env::remove_var("DNC_BENCH_TIMESTAMP");
        std::env::remove_var("DNC_BENCH_GIT_SHA");
        std::env::remove_var("DNC_BENCH_TOOLCHAIN");
        assert_eq!(stamp.timestamp, "2001-01-01T00:00:00Z");
        assert_eq!(stamp.git_sha, "feedface");
        assert_eq!(stamp.toolchain, "rustc 0.0-test");
        assert_eq!(stamp.run_slug(), "feedface-2001-01-01T00-00-00Z");
    }

    #[test]
    fn record_round_trips_and_validates() {
        let rec = record(&[("throughput.speedup", 1.75), ("x.wall_us", 1200.0)]);
        let line = record_line(&rec);
        dnc_telemetry::schema::validate_bench_record(&line).unwrap();
        let parsed = parse_trajectory(&line).unwrap();
        assert_eq!(parsed, vec![rec.clone()]);
        // byte-identical re-serialization: deterministic replay contract
        assert_eq!(record_line(&parsed[0]), line);
    }

    #[test]
    fn append_grows_one_line_per_run() {
        let dir = std::env::temp_dir().join(format!("dnc_trajectory_{}", std::process::id()));
        let path = dir.join("BENCH_test.json");
        let _ = std::fs::remove_file(&path);
        let rec = record(&[("m", 1.0)]);
        append_record(&path, &rec).unwrap();
        append_record(&path, &rec).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        dnc_telemetry::schema::validate_bench(&text).unwrap();
        assert_eq!(load_trajectory(&path).unwrap().len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(load_trajectory(&path).unwrap().len(), 0, "missing = empty");
    }

    #[test]
    fn parse_rejects_malformed_lines_by_number() {
        let good = record_line(&record(&[("m", 1.0)]));
        let err = parse_trajectory(&format!("{good}\n{{\"schema\": \"nope\"}}\n")).unwrap_err();
        assert!(err.starts_with("line 2"), "{err}");
    }

    #[test]
    fn gate_flat_trajectory_is_quiet() {
        let recs: Vec<BenchRecord> = (0..6).map(|_| record(&[("a.wall_us", 100.0)])).collect();
        let report = evaluate_gate(&recs, &GateConfig::default());
        assert_eq!(report.priors, 5);
        assert!(!report.regressed(), "{:?}", report.verdicts);
    }

    #[test]
    fn gate_tolerates_in_band_noise() {
        let mut recs: Vec<BenchRecord> = [100.0, 110.0, 92.0, 105.0, 97.0]
            .iter()
            .map(|&v| record(&[("a.wall_us", v)]))
            .collect();
        recs.push(record(&[("a.wall_us", 118.0)])); // +18% of median 100
        let report = evaluate_gate(&recs, &GateConfig::default());
        assert!(!report.regressed(), "{:?}", report.verdicts);
    }

    #[test]
    fn gate_flags_genuine_regressions_both_directions() {
        let mut recs: Vec<BenchRecord> = (0..4)
            .map(|_| record(&[("a.wall_us", 100.0), ("b.admissions_per_sec", 1000.0)]))
            .collect();
        recs.push(record(&[
            ("a.wall_us", 210.0),
            ("b.admissions_per_sec", 400.0),
        ]));
        let report = evaluate_gate(&recs, &GateConfig::default());
        let regressed: Vec<&str> = report
            .regressions()
            .iter()
            .map(|v| v.metric.as_str())
            .collect();
        assert_eq!(regressed, ["a.wall_us", "b.admissions_per_sec"]);
        let table = render_gate_table("throughput", &report);
        assert!(table.contains("REGRESSED: 2 metric(s)"), "{table}");
    }

    #[test]
    fn gate_zero_baseline_counts_trip_on_first_hit() {
        let mut recs: Vec<BenchRecord> = (0..3).map(|_| record(&[("violations", 0.0)])).collect();
        recs.push(record(&[("violations", 1.0)]));
        let report = evaluate_gate(&recs, &GateConfig::default());
        assert!(report.regressed());
    }

    #[test]
    fn gate_first_run_and_informational_never_trip() {
        let report = evaluate_gate(&[record(&[("a.wall_us", 9e9)])], &GateConfig::default());
        assert_eq!(report.priors, 0);
        assert!(!report.regressed());
        let recs = vec![record(&[("commits", 100.0)]), record(&[("commits", 1.0)])];
        let report = evaluate_gate(&recs, &GateConfig::default());
        assert!(!report.regressed(), "informational metrics never gate");
        assert_eq!(report.verdicts.len(), 1);
        assert_eq!(report.verdicts[0].direction, Direction::Informational);
    }

    #[test]
    fn direction_table_covers_harness_metrics() {
        assert_eq!(
            metric_direction("throughput.incremental.wall_us"),
            Direction::LowerIsBetter
        );
        assert_eq!(
            metric_direction("throughput.speedup"),
            Direction::HigherIsBetter
        );
        assert_eq!(metric_direction("churn.commits"), Direction::Informational);
    }
}
