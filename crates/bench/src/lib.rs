#![warn(missing_docs)]

//! # dnc-bench — harness regenerating the paper's evaluation
//!
//! Shared machinery for the figure-regeneration binaries (`fig4`, `fig5`,
//! `fig6`, `validate`, `admission`) and the Criterion benches: tandem
//! parameter sweeps over network size `n` and work load `U = 4ρ`,
//! parallelized with crossbeam, plus small CSV/table writers.
//!
//! The paper's evaluation reports, for Connection 0 of the tandem
//! network:
//!
//! * Figure 4 — Decomposed vs Service Curve (delays and `R_{SC,D}`),
//! * Figure 5 — Integrated vs Decomposed (delays and `R_{D,I}`),
//! * Figure 6 — Integrated vs Service Curve (delays and `R_{SC,I}`),
//!
//! each for several network sizes as functions of `U`. Absolute numbers
//! differ from the paper (whose exact parameters are lost to OCR); the
//! *shapes* — orderings, growth with load and size, crossovers — are the
//! reproduction target, recorded in `EXPERIMENTS.md`.

pub mod chaos;
pub mod chart;
pub mod churn;
pub mod dashboard;
pub mod exit;
pub mod profile;
pub mod runner;
pub mod socket;
pub mod throughput;
pub mod torture;
pub mod trajectory;

use dnc_core::{
    decomposed::Decomposed, fifo_family::FifoFamily, integrated::Integrated,
    service_curve::ServiceCurve, AnalysisReport, DelayAnalysis,
};
use dnc_net::builders::{tandem, Tandem, TandemOptions};
use dnc_num::Rat;
use std::io::Write;
use std::path::Path;

/// The three algorithms under comparison, as a sendable enum (the benches
/// fan sweeps out across threads).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algo {
    /// Algorithm Decomposed (Cruz).
    Decomposed,
    /// Algorithm Service Curve (induced FIFO curves).
    ServiceCurve,
    /// Algorithm Integrated (the paper's contribution).
    Integrated,
    /// θ-parameterized FIFO service-curve family (post-paper baseline).
    FifoFamily,
}

impl Algo {
    /// Short label used in CSV headers (matches the paper's terminology).
    pub fn label(self) -> &'static str {
        match self {
            Algo::Decomposed => "decomposed",
            Algo::ServiceCurve => "service_curve",
            Algo::Integrated => "integrated",
            Algo::FifoFamily => "fifo_family",
        }
    }

    /// Run the algorithm.
    pub fn analyze(
        self,
        net: &dnc_net::Network,
    ) -> Result<AnalysisReport, dnc_core::AnalysisError> {
        match self {
            Algo::Decomposed => Decomposed::paper().analyze(net),
            Algo::ServiceCurve => ServiceCurve::paper().analyze(net),
            Algo::Integrated => Integrated::paper().analyze(net),
            Algo::FifoFamily => FifoFamily::default().analyze(net),
        }
    }
}

/// One point of a tandem sweep.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// Network size (number of switches / hops of Connection 0).
    pub n: usize,
    /// Work load `U` (interior-link utilization), exact.
    pub u: Rat,
    /// Connection 0's end-to-end bound per algorithm, in `algos` order;
    /// `None` when the algorithm diverged at this load.
    pub bounds: Vec<Option<Rat>>,
}

/// The standard work-load grid `U = k/20, k = 1..=19` (0.05 … 0.95).
pub fn u_grid() -> Vec<Rat> {
    (1..=19).map(|k| Rat::new(k, 20)).collect()
}

/// Build the paper's tandem for a given size and work load (`ρ = U/4`,
/// `σ = 1`).
pub fn paper_tandem(n: usize, u: Rat) -> Tandem {
    tandem(n, Rat::ONE, u / Rat::from(4), TandemOptions::default())
}

/// Sweep `algos` over all `(n, U)` combinations, in parallel.
pub fn sweep(ns: &[usize], us: &[Rat], algos: &[Algo], workers: usize) -> Vec<SweepPoint> {
    let combos: Vec<(usize, Rat)> = ns
        .iter()
        .flat_map(|&n| us.iter().map(move |&u| (n, u)))
        .collect();
    let mut results: Vec<Option<SweepPoint>> = vec![None; combos.len()];
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slot = std::sync::Mutex::new(&mut results);

    crossbeam::scope(|scope| {
        for _ in 0..workers.max(1).min(combos.len()) {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= combos.len() {
                    break;
                }
                let (n, u) = combos[i];
                let t = paper_tandem(n, u);
                let bounds = algos
                    .iter()
                    .map(|a| a.analyze(&t.net).ok().map(|r| r.bound(t.conn0)))
                    .collect();
                slot.lock().unwrap()[i] = Some(SweepPoint { n, u, bounds });
            });
        }
    })
    .expect("sweep worker panicked");

    results
        .into_iter()
        .map(|p| p.expect("all points run"))
        .collect()
}

/// The paper's relative-improvement metric `R_{X,Y} = (D_X − D_Y)/D_X`.
pub fn relative_improvement(dx: Rat, dy: Rat) -> Rat {
    if dx.is_zero() {
        Rat::ZERO
    } else {
        (dx - dy) / dx
    }
}

/// Write sweep results as CSV: one row per `(n, U)`, a `bound_<algo>`
/// column per algorithm, plus `R_first_second` when two algorithms are
/// present (the paper's pairing convention: `R_{X,Y}` with `X` the first
/// algorithm).
pub fn write_csv(path: &Path, points: &[SweepPoint], algos: &[Algo]) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
    write!(out, "n,u")?;
    for a in algos {
        write!(out, ",bound_{}", a.label())?;
    }
    if algos.len() == 2 {
        writeln!(out, ",rel_improvement")?;
    } else {
        writeln!(out)?;
    }
    for p in points {
        write!(out, "{},{:.4}", p.n, p.u.to_f64())?;
        for b in &p.bounds {
            match b {
                Some(v) => write!(out, ",{:.6}", v.to_f64())?,
                None => write!(out, ",inf")?,
            }
        }
        if algos.len() == 2 {
            match (&p.bounds[0], &p.bounds[1]) {
                (Some(x), Some(y)) => {
                    writeln!(out, ",{:.6}", relative_improvement(*x, *y).to_f64())?
                }
                _ => writeln!(out, ",")?,
            }
        } else {
            writeln!(out)?;
        }
    }
    out.flush()
}

/// Render a sweep as a fixed-width text table (one block per `n`),
/// mirroring the series the paper plots.
pub fn render_table(points: &[SweepPoint], algos: &[Algo]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let mut ns: Vec<usize> = points.iter().map(|p| p.n).collect();
    ns.sort_unstable();
    ns.dedup();
    for n in ns {
        let _ = writeln!(s, "== n = {n} hops ==");
        let _ = write!(s, "{:>6}", "U");
        for a in algos {
            let _ = write!(s, "{:>16}", a.label());
        }
        if algos.len() == 2 {
            let _ = write!(s, "{:>10}", "R");
        }
        let _ = writeln!(s);
        for p in points.iter().filter(|p| p.n == n) {
            let _ = write!(s, "{:>6.2}", p.u.to_f64());
            for b in &p.bounds {
                match b {
                    Some(v) => {
                        let _ = write!(s, "{:>16.4}", v.to_f64());
                    }
                    None => {
                        let _ = write!(s, "{:>16}", "inf");
                    }
                }
            }
            if algos.len() == 2 {
                if let (Some(x), Some(y)) = (&p.bounds[0], &p.bounds[1]) {
                    let _ = write!(s, "{:>10.4}", relative_improvement(*x, *y).to_f64());
                }
            }
            let _ = writeln!(s);
        }
        let _ = writeln!(s);
    }
    s
}

/// Default output directory for the figure binaries (`results/`),
/// honouring `DNC_RESULTS_DIR`.
pub fn results_dir() -> std::path::PathBuf {
    std::env::var_os("DNC_RESULTS_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("results"))
}

/// Sweep results as `dnc-metrics/v1` series: a long-format `bounds`
/// table (one row per `(n, U, algorithm)`) and, for two-algorithm
/// sweeps, the paper's `rel_improvement` series.
pub fn sweep_series(points: &[SweepPoint], algos: &[Algo]) -> Vec<dnc_telemetry::export::Series> {
    use dnc_telemetry::export::{Cell, Series};
    use dnc_telemetry::schema;
    let mut bounds = Series::new(
        "bounds",
        vec![
            schema::NETWORK_SIZE,
            schema::WORK_LOAD,
            schema::LABEL,
            schema::bound_column(),
        ],
    );
    for p in points {
        for (a, b) in algos.iter().zip(&p.bounds) {
            bounds.push_row(vec![
                Cell::int(p.n as u64),
                Cell::Num(p.u.to_f64()),
                Cell::Text(a.label().to_string()),
                b.map_or(Cell::Null, |v| Cell::Num(v.to_f64())),
            ]);
        }
    }
    let mut out = vec![bounds];
    if algos.len() == 2 {
        let mut rel = Series::new(
            "rel_improvement",
            vec![
                schema::NETWORK_SIZE,
                schema::WORK_LOAD,
                schema::REL_IMPROVEMENT,
            ],
        );
        for p in points {
            let cell = match (&p.bounds[0], &p.bounds[1]) {
                (Some(x), Some(y)) => Cell::Num(relative_improvement(*x, *y).to_f64()),
                _ => Cell::Null,
            };
            rel.push_row(vec![Cell::int(p.n as u64), Cell::Num(p.u.to_f64()), cell]);
        }
        out.push(rel);
    }
    out
}

/// Write `<dir>/metrics-<name>.json`: the given series wrapped around
/// whatever the telemetry registry aggregated since the last reset (an
/// empty snapshot in builds without `--features telemetry`). Returns the
/// path written.
pub fn write_metrics_doc_in(
    dir: &Path,
    name: &str,
    series: Vec<dnc_telemetry::export::Series>,
) -> std::io::Result<std::path::PathBuf> {
    let mut doc = dnc_telemetry::export::MetricsDoc::new(name, dnc_telemetry::snapshot())
        .with_meta(
            "telemetry",
            if dnc_telemetry::enabled() {
                "on"
            } else {
                "off"
            },
        );
    doc.series = series;
    let path = dir.join(format!("metrics-{name}.json"));
    dnc_telemetry::export::write_metrics(&doc, &path)?;
    Ok(path)
}

/// [`write_metrics_doc_in`] into the default [`results_dir`].
pub fn write_metrics_doc(
    name: &str,
    series: Vec<dnc_telemetry::export::Series>,
) -> std::io::Result<std::path::PathBuf> {
    write_metrics_doc_in(&results_dir(), name, series)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnc_num::rat;

    #[test]
    fn sweep_produces_all_points() {
        let pts = sweep(&[2, 4], &[rat(1, 4), rat(1, 2)], &[Algo::Decomposed], 2);
        assert_eq!(pts.len(), 4);
        assert!(pts.iter().all(|p| p.bounds[0].is_some()));
    }

    #[test]
    fn parallel_equals_sequential() {
        let us = [rat(1, 4), rat(1, 2), rat(3, 4)];
        let a = sweep(&[2, 4], &us, &[Algo::Integrated, Algo::Decomposed], 4);
        let b = sweep(&[2, 4], &us, &[Algo::Integrated, Algo::Decomposed], 1);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.bounds, y.bounds);
        }
    }

    #[test]
    fn sweep_series_validates_against_schema() {
        let algos = [Algo::Decomposed, Algo::Integrated];
        let pts = sweep(&[2], &[rat(1, 4), rat(1, 2)], &algos, 1);
        let series = sweep_series(&pts, &algos);
        assert_eq!(series.len(), 2, "bounds + rel_improvement");
        assert_eq!(series[0].rows.len(), 4, "one row per (n, U, algorithm)");
        assert_eq!(series[1].rows.len(), 2, "one row per (n, U)");
        let mut doc = dnc_telemetry::export::MetricsDoc::new(
            "test-sweep",
            dnc_telemetry::Snapshot::default(),
        );
        doc.series = series;
        let json = dnc_telemetry::export::metrics_json(&doc);
        dnc_telemetry::schema::validate_metrics(&json).unwrap();
        assert!(json.contains("\"decomposed\""));
        assert!(json.contains("relative improvement"));
    }

    #[test]
    fn metrics_doc_written_to_results_dir() {
        let dir = std::env::temp_dir().join(format!("dnc_bench_metrics_{}", std::process::id()));
        std::env::set_var("DNC_RESULTS_DIR", &dir);
        let algos = [Algo::Decomposed];
        let pts = sweep(&[2], &[rat(1, 2)], &algos, 1);
        let path = write_metrics_doc("smoke", sweep_series(&pts, &algos)).unwrap();
        std::env::remove_var("DNC_RESULTS_DIR");
        assert!(path.ends_with("metrics-smoke.json"), "{path:?}");
        let json = std::fs::read_to_string(&path).unwrap();
        dnc_telemetry::schema::validate_metrics(&json).unwrap();
    }

    #[test]
    fn table_and_csv_smoke() {
        let pts = sweep(&[2], &[rat(1, 2)], &[Algo::Decomposed, Algo::Integrated], 1);
        let table = render_table(&pts, &[Algo::Decomposed, Algo::Integrated]);
        assert!(table.contains("n = 2"));
        let dir = std::env::temp_dir().join("dnc_bench_test");
        let path = dir.join("smoke.csv");
        write_csv(&path, &pts, &[Algo::Decomposed, Algo::Integrated]).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("n,u,bound_decomposed,bound_integrated,rel_improvement"));
        assert_eq!(content.lines().count(), 2);
    }
}
