//! The workspace's unified process exit-code table.
//!
//! Every binary (the `dnc` CLI and the bench harness bins alike) maps
//! outcomes to exit codes through these constants, so scripts and CI can
//! branch on them without per-binary lore. `cargo xtask deepcheck`
//! (`contract-exit`) flags bare exit-code literals anywhere else: this
//! module is the one place the integers are allowed to appear.

/// Success.
pub const OK: i32 = 0;

/// The run completed but found a bound violation (soundness failure).
pub const VIOLATION: i32 = 1;

/// Usage or input error (bad flags, unreadable files).
pub const USAGE: i32 = 2;

/// No valid bound within budget: time-stopping divergence or guard
/// exhaustion after the full degradation chain.
pub const NO_BOUND: i32 = 3;

/// The perf-trajectory regression gate tripped: at least one metric of
/// the latest bench record left the noise band of the recent history.
pub const REGRESSION: i32 = 4;
