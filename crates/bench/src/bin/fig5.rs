//! Regenerate **Figure 5**: Integrated vs Decomposed end-to-end delay of
//! Connection 0 on the tandem network, plus the relative improvement
//! `R_{D,I}`, for n ∈ {2, 4, 8} over the work-load grid.
//!
//! Expected shape (paper): Integrated always outperforms Decomposed, and
//! for loads up to ~80% the improvement grows with network size.

use dnc_bench::{render_table, results_dir, sweep, sweep_series, u_grid, write_csv, Algo};

fn main() {
    dnc_telemetry::reset();
    let algos = [Algo::Decomposed, Algo::Integrated];
    let ns = [2usize, 4, 8];
    let pts = sweep(&ns, &u_grid(), &algos, num_workers());
    print!("{}", render_table(&pts, &algos));
    let path = results_dir().join("fig5.csv");
    write_csv(&path, &pts, &algos).expect("write fig5.csv");
    println!("wrote {}", path.display());
    let svg =
        dnc_bench::chart::figure_chart("Figure 5: Integrated vs Decomposed", &pts, &algos).to_svg();
    let svg_path = results_dir().join("fig5.svg");
    std::fs::write(&svg_path, svg).expect("write fig5.svg");
    println!("wrote {}", svg_path.display());
    let mpath =
        dnc_bench::write_metrics_doc("fig5", sweep_series(&pts, &algos)).expect("write metrics");
    println!("wrote {}", mpath.display());
}

fn num_workers() -> usize {
    std::thread::available_parallelism().map_or(4, |n| n.get())
}
