//! Churn soundness sweep: randomized admit/release sequences through
//! the durable admission engine, with independent re-certification
//! after every commit and kill-point crash-recovery checks against the
//! write-ahead journal.
//!
//! Usage: `churn [--seqs N] [--ops N] [--seed S] [--kill-points K] [--seq I]
//! [--workers W] [--out-dir DIR]`
//! `--seq I` replays sequence `I` of the seed alone (bit-exact).
//! `--workers W` fans each certification over `W` threads — the
//! falsifiers must stay just as quiet.
//! Exits 1 on any certification or recovery violation; a full sweep
//! also writes `<out-dir>/metrics-churn.json` (`dnc-metrics/v1`,
//! default `results/`).

use dnc_bench::churn::{
    render_report, replay_sequence, run_churn, write_churn_metrics_in, ChurnConfig, ChurnReport,
};

fn main() {
    let mut cfg = ChurnConfig::default();
    let mut seq: Option<usize> = None;
    let mut out_dir = dnc_bench::results_dir();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let int = |i: usize, name: &str| -> u64 {
            args.get(i + 1)
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| {
                    eprintln!("{name} needs an integer");
                    std::process::exit(dnc_bench::exit::USAGE);
                })
        };
        match args[i].as_str() {
            "--seqs" => {
                cfg.seqs = int(i, "--seqs") as usize;
                i += 2;
            }
            "--ops" => {
                cfg.ops = int(i, "--ops") as usize;
                i += 2;
            }
            "--seed" => {
                cfg.seed = int(i, "--seed");
                i += 2;
            }
            "--kill-points" => {
                cfg.kill_points = int(i, "--kill-points") as usize;
                i += 2;
            }
            "--seq" => {
                seq = Some(int(i, "--seq") as usize);
                i += 2;
            }
            "--workers" => {
                cfg.workers = (int(i, "--workers") as usize).max(1);
                i += 2;
            }
            "--out-dir" => {
                out_dir = args
                    .get(i + 1)
                    .map(std::path::PathBuf::from)
                    .unwrap_or_else(|| {
                        eprintln!("--out-dir needs a path");
                        std::process::exit(dnc_bench::exit::USAGE);
                    });
                i += 2;
            }
            other => {
                eprintln!("unknown option {other}");
                eprintln!(
                    "usage: churn [--seqs N] [--ops N] [--seed S] [--kill-points K] [--seq I] [--workers W] [--out-dir DIR]"
                );
                std::process::exit(dnc_bench::exit::USAGE);
            }
        }
    }

    if let Some(id) = seq {
        let outcome = replay_sequence(&cfg, id);
        let report = ChurnReport {
            cfg: cfg.clone(),
            outcomes: vec![outcome],
        };
        print!("{}", render_report(&report));
        if !report.sound() {
            std::process::exit(dnc_bench::exit::VIOLATION);
        }
        return;
    }

    let report = run_churn(&cfg);
    print!("{}", render_report(&report));
    match write_churn_metrics_in(&out_dir, &report) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write metrics: {e}"),
    }
    if !report.sound() {
        std::process::exit(dnc_bench::exit::VIOLATION);
    }
}
