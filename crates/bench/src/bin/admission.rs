//! Admission-control effectiveness table (our extension of the paper's
//! evaluation): the largest tandem work load each analysis can certify
//! for a family of Connection-0 deadlines — a direct measure of how many
//! connections each method lets a bounded-delay service carry.

use dnc_bench::results_dir;
use dnc_core::admission::max_admissible_utilization;
use dnc_core::DelayAnalysis;
use dnc_core::{decomposed::Decomposed, integrated::Integrated, service_curve::ServiceCurve};
use dnc_num::Rat;
use dnc_telemetry::export::{Cell, Series};
use dnc_telemetry::schema;
use std::io::Write;

fn main() {
    dnc_telemetry::reset();
    let ns = [2usize, 4, 8];
    let deadlines: [Rat; 4] = [Rat::from(8), Rat::from(16), Rat::from(32), Rat::from(64)];
    let algos: [(&'static str, Box<dyn DelayAnalysis>); 3] = [
        ("service_curve", Box::new(ServiceCurve::paper())),
        ("decomposed", Box::new(Decomposed::paper())),
        ("integrated", Box::new(Integrated::paper())),
    ];

    println!(
        "{:>3} {:>9} {:>15} {:>15} {:>15}",
        "n", "deadline", "service_curve", "decomposed", "integrated"
    );
    let mut csv = String::from("n,deadline,service_curve,decomposed,integrated\n");
    // Long-format mirror of the CSV: one row per (n, deadline, algorithm),
    // with the largest certifiable work load in the WORK_LOAD column.
    let mut series = Series::new(
        "admission",
        vec![
            schema::NETWORK_SIZE,
            schema::DEADLINE,
            schema::LABEL,
            schema::WORK_LOAD,
        ],
    );
    for &n in &ns {
        for &dl in &deadlines {
            let mut cells: Vec<String> = Vec::new();
            for (label, alg) in &algos {
                let u = max_admissible_utilization(n, Rat::ONE, dl, alg.as_ref(), 40);
                series.push_row(vec![
                    Cell::int(n as u64),
                    Cell::Num(dl.to_f64()),
                    Cell::Text(label.to_string()),
                    u.map_or(Cell::Null, |u| Cell::Num(u.to_f64())),
                ]);
                cells.push(match u {
                    Some(u) => format!("{:.3}", u.to_f64()),
                    None => "-".to_string(),
                });
            }
            println!(
                "{:>3} {:>9} {:>15} {:>15} {:>15}",
                n,
                dl.to_f64(),
                cells[0],
                cells[1],
                cells[2]
            );
            csv.push_str(&format!(
                "{},{},{},{},{}\n",
                n,
                dl.to_f64(),
                cells[0],
                cells[1],
                cells[2]
            ));
        }
    }

    let path = results_dir().join("admission.csv");
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(csv.as_bytes()).unwrap();
    println!("wrote {}", path.display());
    let mpath = dnc_bench::write_metrics_doc("admission", vec![series]).expect("write metrics");
    println!("wrote {}", mpath.display());
}
