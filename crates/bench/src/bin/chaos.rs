//! Chaos soundness sweep: randomized fault scenarios through the
//! simulator and the guarded analysis chain, flagging any simulated
//! delay above a bound still claimed valid for the degraded capacity.
//!
//! Usage: `chaos [--scenarios N] [--seed S] [--ticks T] [--scenario K]
//! [--out-dir DIR]`
//! `--scenario K` replays scenario `K` of the seed alone (bit-exact,
//! without running the others). Exits 1 on any soundness violation;
//! a full sweep also writes `<out-dir>/metrics-chaos.json`
//! (`dnc-metrics/v1`, default `results/`).

use dnc_bench::chaos::{
    render_report, render_scenario, replay_scenario, run_chaos, write_chaos_metrics_in, ChaosConfig,
};

fn main() {
    let mut cfg = ChaosConfig::default();
    let mut scenario: Option<usize> = None;
    let mut out_dir = dnc_bench::results_dir();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> Option<&String> { args.get(i + 1) };
        match args[i].as_str() {
            "--scenarios" => {
                cfg.scenarios = value(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--scenarios needs an integer");
                    std::process::exit(dnc_bench::exit::USAGE);
                });
                i += 2;
            }
            "--seed" => {
                cfg.seed = value(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed needs an integer");
                    std::process::exit(dnc_bench::exit::USAGE);
                });
                i += 2;
            }
            "--ticks" => {
                cfg.ticks = value(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--ticks needs an integer");
                    std::process::exit(dnc_bench::exit::USAGE);
                });
                i += 2;
            }
            "--scenario" => {
                scenario = Some(value(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--scenario needs an integer");
                    std::process::exit(dnc_bench::exit::USAGE);
                }));
                i += 2;
            }
            "--out-dir" => {
                out_dir = value(i).map(std::path::PathBuf::from).unwrap_or_else(|| {
                    eprintln!("--out-dir needs a path");
                    std::process::exit(dnc_bench::exit::USAGE);
                });
                i += 2;
            }
            other => {
                eprintln!("unknown option {other}");
                eprintln!("usage: chaos [--scenarios N] [--seed S] [--ticks T] [--scenario K] [--out-dir DIR]");
                std::process::exit(dnc_bench::exit::USAGE);
            }
        }
    }

    if let Some(id) = scenario {
        let outcome = replay_scenario(&cfg, id);
        print!("{}", render_scenario(&cfg, &outcome));
        if !outcome.violations.is_empty() {
            std::process::exit(dnc_bench::exit::VIOLATION);
        }
        return;
    }

    let report = run_chaos(&cfg);
    print!("{}", render_report(&report));
    match write_chaos_metrics_in(&out_dir, &report) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write metrics: {e}"),
    }
    if report.violation_count() > 0 {
        std::process::exit(dnc_bench::exit::VIOLATION);
    }
}
