//! Chaos soundness sweep: randomized fault scenarios through the
//! simulator and the guarded analysis chain, flagging any simulated
//! delay above a bound still claimed valid for the degraded capacity.
//!
//! Usage: `chaos [--scenarios N] [--seed S] [--ticks T]`
//! Exits 1 on any soundness violation; writes
//! `results/metrics-chaos.json` (`dnc-metrics/v1`).

use dnc_bench::chaos::{render_report, run_chaos, write_chaos_metrics, ChaosConfig};

fn main() {
    let mut cfg = ChaosConfig::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> Option<&String> { args.get(i + 1) };
        match args[i].as_str() {
            "--scenarios" => {
                cfg.scenarios = value(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--scenarios needs an integer");
                    std::process::exit(2);
                });
                i += 2;
            }
            "--seed" => {
                cfg.seed = value(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed needs an integer");
                    std::process::exit(2);
                });
                i += 2;
            }
            "--ticks" => {
                cfg.ticks = value(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--ticks needs an integer");
                    std::process::exit(2);
                });
                i += 2;
            }
            other => {
                eprintln!("unknown option {other}");
                eprintln!("usage: chaos [--scenarios N] [--seed S] [--ticks T]");
                std::process::exit(2);
            }
        }
    }

    let report = run_chaos(&cfg);
    print!("{}", render_report(&report));
    match write_chaos_metrics(&report) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write metrics: {e}"),
    }
    if report.violation_count() > 0 {
        std::process::exit(1);
    }
}
