//! Socket acks/sec: drive the TCP admission front end with concurrent
//! pipelining clients under two commit modes (per-op fsync, group
//! commit) and report end-to-end acknowledged ops per second for each.
//! Both modes must acknowledge the same workload and their journals
//! must replay to the served state — speed without durability is a
//! violation.
//!
//! Usage: `socket [--clients N] [--ops N] [--batch N] [--seed S]
//! [--check X] [--out-dir DIR]`
//! `--check X` additionally requires the group-commit mode to reach at
//! least `X` (a float, e.g. `2.0`) times the per-op acks/sec.
//! Exits 1 on any soundness mismatch (or a failed `--check`); also
//! writes `<out-dir>/metrics-socket.json` (`dnc-metrics/v1`, default
//! `results/`).

use dnc_bench::socket::{render_report, run_socket, write_socket_metrics_in, SocketConfig};

fn main() {
    let mut cfg = SocketConfig::default();
    let mut check: Option<f64> = None; // audit: allow(float, gate threshold for a lossy rate ratio; never feeds back into the analysis)
    let mut out_dir = dnc_bench::results_dir();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let int = |i: usize, name: &str| -> u64 {
            args.get(i + 1)
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| {
                    eprintln!("{name} needs an integer");
                    std::process::exit(dnc_bench::exit::USAGE);
                })
        };
        match args[i].as_str() {
            "--clients" => {
                cfg.clients = (int(i, "--clients") as usize).max(1);
                i += 2;
            }
            "--ops" => {
                cfg.ops_per_client = (int(i, "--ops") as usize).max(2);
                i += 2;
            }
            "--batch" => {
                cfg.batch = (int(i, "--batch") as usize).max(2);
                i += 2;
            }
            "--seed" => {
                cfg.seed = int(i, "--seed");
                i += 2;
            }
            "--check" => {
                check = Some(
                    args.get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| {
                            eprintln!("--check needs a speedup factor (e.g. 2.0)");
                            std::process::exit(dnc_bench::exit::USAGE);
                        }),
                );
                i += 2;
            }
            "--out-dir" => {
                out_dir = args
                    .get(i + 1)
                    .map(std::path::PathBuf::from)
                    .unwrap_or_else(|| {
                        eprintln!("--out-dir needs a path");
                        std::process::exit(dnc_bench::exit::USAGE);
                    });
                i += 2;
            }
            other => {
                eprintln!("unknown option {other}");
                eprintln!(
                    "usage: socket [--clients N] [--ops N] [--batch N] [--seed S] [--check X] [--out-dir DIR]"
                );
                std::process::exit(dnc_bench::exit::USAGE);
            }
        }
    }

    let report = run_socket(&cfg);
    print!("{}", render_report(&report));
    match write_socket_metrics_in(&out_dir, &report) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write metrics: {e}"),
    }
    if !report.sound() {
        std::process::exit(dnc_bench::exit::VIOLATION);
    }
    if let Some(want) = check {
        if report.speedup() < want {
            eprintln!(
                "check failed: group commit reached {:.2}x of per-op fsync (wanted >= {want:.2}x)",
                report.speedup()
            );
            std::process::exit(dnc_bench::exit::VIOLATION);
        }
    }
}
