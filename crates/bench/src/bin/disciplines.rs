//! Discipline comparison (our addition, spanning the paper's intro
//! survey): the same two-class traffic mix — urgent small flows and
//! relaxed bulk flows — served FIFO, static-priority, EDF, and GPS, on
//! one shared unit link. Reports each class's certified delay bound per
//! discipline, showing *why* the 1990s produced this zoo of schedulers
//! and where the paper's FIFO focus sits in it.

use dnc_bench::results_dir;
use dnc_core::{decomposed::Decomposed, DelayAnalysis};
use dnc_net::{Discipline, Flow, FlowId, Network, Server};
use dnc_num::{int, rat, Rat};
use std::io::Write as _;

fn build(discipline: Discipline) -> (Network, Vec<FlowId>, Vec<FlowId>) {
    use dnc_traffic::TrafficSpec;
    let mut net = Network::new();
    let s = net.add_server(Server {
        name: "link".into(),
        rate: Rat::ONE,
        discipline,
    });
    let mut urgent = Vec::new();
    let mut bulk = Vec::new();
    for k in 0..2 {
        let f = net
            .add_flow(Flow {
                name: format!("urgent{k}"),
                spec: TrafficSpec::token_bucket(int(1), rat(1, 16)),
                route: vec![s],
                priority: 0,
            })
            .unwrap();
        if discipline == Discipline::Edf {
            net.set_local_deadline(f, s, int(3));
        }
        if discipline == Discipline::Gps {
            net.reserve(f, s, rat(1, 4));
        }
        urgent.push(f);
    }
    for k in 0..2 {
        let f = net
            .add_flow(Flow {
                name: format!("bulk{k}"),
                spec: TrafficSpec::token_bucket(int(8), rat(1, 4)),
                route: vec![s],
                priority: 4,
            })
            .unwrap();
        if discipline == Discipline::Edf {
            net.set_local_deadline(f, s, int(40));
        }
        if discipline == Discipline::Gps {
            net.reserve(f, s, rat(1, 4));
        }
        bulk.push(f);
    }
    (net, urgent, bulk)
}

fn main() {
    println!(
        "{:<16} {:>14} {:>14}",
        "discipline", "urgent bound", "bulk bound"
    );
    let mut csv = String::from("discipline,urgent_bound,bulk_bound\n");
    for (label, d) in [
        ("fifo", Discipline::Fifo),
        ("static-priority", Discipline::StaticPriority),
        ("edf", Discipline::Edf),
        ("gps", Discipline::Gps),
    ] {
        let (net, urgent, bulk) = build(d);
        match Decomposed::paper().analyze(&net) {
            Ok(r) => {
                let u = r.bound(urgent[0]);
                let b = r.bound(bulk[0]);
                println!("{label:<16} {:>14.4} {:>14.4}", u.to_f64(), b.to_f64());
                csv.push_str(&format!("{label},{:.6},{:.6}\n", u.to_f64(), b.to_f64()));
            }
            Err(e) => println!("{label:<16} {e}"),
        }
    }
    let path = results_dir().join("disciplines.csv");
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    std::fs::File::create(&path)
        .unwrap()
        .write_all(csv.as_bytes())
        .unwrap();
    println!("wrote {}", path.display());
}
