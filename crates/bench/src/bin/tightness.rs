//! Tightness profile of the two-server theorem (our addition): on the
//! paper's Figure-1 subsystem, compare
//!
//! * the exact fluid worst case of the greedy sample path (Lemmas 1–4),
//! * the Theorem-1′ integrated bound,
//! * the decomposed bound `d1 + d2`,
//!
//! over a grid of bursts and loads. The ratio `exact / bound` measures
//! how much of each bound is real; the gap between the two bound columns
//! is the integration gain.

use dnc_bench::results_dir;
use dnc_core::exact::TwoServerScenario;
use dnc_core::integrated::pair_delay_bound;
use dnc_core::OutputCap;
use dnc_curves::Curve;
use dnc_num::Rat;
use dnc_telemetry::export::{Cell, Series};
use dnc_telemetry::schema;
use std::io::Write as _;

fn main() {
    dnc_telemetry::reset();
    let sigmas: [i64; 3] = [1, 4, 8];
    let loads: [(i128, i128); 4] = [(1, 8), (1, 4), (3, 8), (7, 16)];

    println!(
        "{:>4} {:>6} {:>10} {:>12} {:>12} {:>10} {:>10}",
        "σ", "ρ", "exact", "integrated", "decomposed", "tight_I", "tight_D"
    );
    let mut csv =
        String::from("sigma,rho,exact,integrated,decomposed,tightness_int,tightness_dec\n");
    // Long-format mirror of the CSV: one row per (σ, ρ, method).
    let mut series = Series::new(
        "tightness",
        vec![
            schema::BURST,
            schema::SUSTAINED_RATE,
            schema::LABEL,
            schema::bound_column(),
            schema::TIGHTNESS,
        ],
    );
    for &s in &sigmas {
        for &(rn, rd) in &loads {
            let rho = Rat::new(rn, rd);
            let sigma = Rat::from(s);
            // Symmetric subsystem: equal bursts on all three flow sets.
            let mk = || Curve::token_bucket_peak(sigma, rho, Rat::ONE);
            let (f12, f1, f2) = (mk(), mk(), mk());
            let pb = pair_delay_bound(&f12, &f1, &f2, Rat::ONE, Rat::ONE, OutputCap::Shift)
                .expect("stable");
            let exact = TwoServerScenario {
                a12: f12,
                a1: f1,
                a2: f2,
                c1: Rat::ONE,
                c2: Rat::ONE,
            }
            .max_s12_delay(192);
            let dec = pb.d1 + pb.d2;
            let tight_i = (exact / pb.through).to_f64();
            let tight_d = (exact / dec).to_f64();
            println!(
                "{:>4} {:>6.3} {:>10.4} {:>12.4} {:>12.4} {:>10.3} {:>10.3}",
                s,
                rho.to_f64(),
                exact.to_f64(),
                pb.through.to_f64(),
                dec.to_f64(),
                tight_i,
                tight_d
            );
            csv.push_str(&format!(
                "{},{:.4},{:.6},{:.6},{:.6},{:.4},{:.4}\n",
                s,
                rho.to_f64(),
                exact.to_f64(),
                pb.through.to_f64(),
                dec.to_f64(),
                tight_i,
                tight_d
            ));
            for (label, delay, tight) in [
                ("exact", exact, 1.0),
                ("integrated", pb.through, tight_i),
                ("decomposed", dec, tight_d),
            ] {
                series.push_row(vec![
                    Cell::int(s as u64),
                    Cell::Num(rho.to_f64()),
                    Cell::Text(label.to_string()),
                    Cell::Num(delay.to_f64()),
                    Cell::Num(tight),
                ]);
            }
            assert!(exact <= pb.through && pb.through <= dec);
        }
    }
    let path = results_dir().join("tightness.csv");
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    std::fs::File::create(&path)
        .unwrap()
        .write_all(csv.as_bytes())
        .unwrap();
    println!("wrote {}", path.display());
    let mpath = dnc_bench::write_metrics_doc("tightness", vec![series]).expect("write metrics");
    println!("wrote {}", mpath.display());
}
