//! Beyond the paper: compare Algorithm Integrated with the θ-optimized
//! FIFO service-curve family (the direction the field took after 1999,
//! culminating in LUDB). Shows where the paper's integrated method stands
//! against later pure service-curve machinery.

use dnc_bench::{render_table, results_dir, sweep, u_grid, write_csv, Algo};

fn main() {
    let algos = [Algo::FifoFamily, Algo::Integrated];
    let ns = [2usize, 4, 8];
    let pts = sweep(&ns, &u_grid(), &algos, num_workers());
    print!("{}", render_table(&pts, &algos));
    let path = results_dir().join("modern.csv");
    write_csv(&path, &pts, &algos).expect("write modern.csv");
    println!("wrote {}", path.display());
}

fn num_workers() -> usize {
    std::thread::available_parallelism().map_or(4, |n| n.get())
}
