//! Churn-certification throughput: drive the admission engine through
//! one deterministic request sequence under three certification modes
//! (from-scratch sequential, from-scratch parallel, incremental fast
//! path) and report admissions/sec for each. Every mode must answer
//! bit-identically — speed without exactness is a violation.
//!
//! Usage: `throughput [--n N] [--ops N] [--seed S] [--workers W] [--check]
//! [--out-dir DIR]`
//! `--check` additionally requires the incremental mode to reach at
//! least the from-scratch sequential admissions/sec.
//! Exits 1 on any cross-mode mismatch (or a failed `--check`); also
//! writes `<out-dir>/metrics-throughput.json` (`dnc-metrics/v1`,
//! default `results/`).

use dnc_bench::throughput::{
    render_report, run_throughput, write_throughput_metrics_in, ThroughputConfig,
};

fn main() {
    let mut cfg = ThroughputConfig::default();
    let mut check = false;
    let mut out_dir = dnc_bench::results_dir();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let int = |i: usize, name: &str| -> u64 {
            args.get(i + 1)
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| {
                    eprintln!("{name} needs an integer");
                    std::process::exit(dnc_bench::exit::USAGE);
                })
        };
        match args[i].as_str() {
            "--n" => {
                cfg.n = (int(i, "--n") as usize).max(2);
                i += 2;
            }
            "--ops" => {
                cfg.ops = int(i, "--ops") as usize;
                i += 2;
            }
            "--seed" => {
                cfg.seed = int(i, "--seed");
                i += 2;
            }
            "--workers" => {
                cfg.workers = (int(i, "--workers") as usize).max(1);
                i += 2;
            }
            "--check" => {
                check = true;
                i += 1;
            }
            "--out-dir" => {
                out_dir = args
                    .get(i + 1)
                    .map(std::path::PathBuf::from)
                    .unwrap_or_else(|| {
                        eprintln!("--out-dir needs a path");
                        std::process::exit(dnc_bench::exit::USAGE);
                    });
                i += 2;
            }
            other => {
                eprintln!("unknown option {other}");
                eprintln!("usage: throughput [--n N] [--ops N] [--seed S] [--workers W] [--check] [--out-dir DIR]");
                std::process::exit(dnc_bench::exit::USAGE);
            }
        }
    }

    let report = run_throughput(&cfg);
    print!("{}", render_report(&report));
    match write_throughput_metrics_in(&out_dir, &report) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write metrics: {e}"),
    }
    if !report.sound() {
        std::process::exit(dnc_bench::exit::VIOLATION);
    }
    if check && report.speedup() < 1.0 {
        eprintln!(
            "check failed: incremental fast path slower than from-scratch sequential ({:.2}x)",
            report.speedup()
        );
        std::process::exit(dnc_bench::exit::VIOLATION);
    }
}
