//! Regenerate **Figure 4**: Decomposed vs Service Curve end-to-end delay
//! of Connection 0 on the tandem network, plus the relative improvement
//! `R_{SC,D}`, for n ∈ {2, 4, 6, 8} over the work-load grid.
//!
//! Expected shape (paper): the service-curve method is far worse than the
//! decomposed method for FIFO, with the gap growing in load.

use dnc_bench::{render_table, results_dir, sweep, sweep_series, u_grid, write_csv, Algo};

fn main() {
    dnc_telemetry::reset();
    let algos = [Algo::ServiceCurve, Algo::Decomposed];
    let ns = [2usize, 4, 6, 8];
    let pts = sweep(&ns, &u_grid(), &algos, num_workers());
    print!("{}", render_table(&pts, &algos));
    let path = results_dir().join("fig4.csv");
    write_csv(&path, &pts, &algos).expect("write fig4.csv");
    println!("wrote {}", path.display());
    let svg = dnc_bench::chart::figure_chart("Figure 4: Decomposed vs Service Curve", &pts, &algos)
        .to_svg();
    let svg_path = results_dir().join("fig4.svg");
    std::fs::write(&svg_path, svg).expect("write fig4.svg");
    println!("wrote {}", svg_path.display());
    let mpath =
        dnc_bench::write_metrics_doc("fig4", sweep_series(&pts, &algos)).expect("write metrics");
    println!("wrote {}", mpath.display());
}

fn num_workers() -> usize {
    std::thread::available_parallelism().map_or(4, |n| n.get())
}
