//! Disk-fault torture sweep: enumerate every storage failpoint of the
//! durable admission engine (journal append/fsync, snapshot publish,
//! journal rotation), inject each fault kind at each site, and verify
//! fail-stop recovery — no acked op lost, no phantom op recovered, and
//! post-compaction recovery replays only the journal tail.
//!
//! Usage: `torture [--scenarios N] [--ops N] [--seed S]
//! [--snapshot-every E] [--stride K] [--out-dir DIR]`
//! Exits 1 on any violation; a clean sweep also writes
//! `<out-dir>/metrics-torture.json` (`dnc-metrics/v1`, default
//! `results/`).

use dnc_bench::torture::{render_report, run_torture, write_torture_metrics_in, TortureConfig};

fn main() {
    let mut cfg = TortureConfig::default();
    let mut out_dir = dnc_bench::results_dir();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let int = |i: usize, name: &str| -> u64 {
            args.get(i + 1)
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| {
                    eprintln!("{name} needs an integer");
                    std::process::exit(dnc_bench::exit::USAGE);
                })
        };
        match args[i].as_str() {
            "--scenarios" => {
                cfg.scenarios = int(i, "--scenarios") as usize;
                i += 2;
            }
            "--ops" => {
                cfg.ops = int(i, "--ops") as usize;
                i += 2;
            }
            "--seed" => {
                cfg.seed = int(i, "--seed");
                i += 2;
            }
            "--snapshot-every" => {
                cfg.snapshot_every = int(i, "--snapshot-every").max(1);
                i += 2;
            }
            "--stride" => {
                cfg.stride = (int(i, "--stride") as usize).max(1);
                i += 2;
            }
            "--out-dir" => {
                out_dir = args
                    .get(i + 1)
                    .map(std::path::PathBuf::from)
                    .unwrap_or_else(|| {
                        eprintln!("--out-dir needs a path");
                        std::process::exit(dnc_bench::exit::USAGE);
                    });
                i += 2;
            }
            other => {
                eprintln!("unknown option {other}");
                eprintln!(
                    "usage: torture [--scenarios N] [--ops N] [--seed S] [--snapshot-every E] [--stride K] [--out-dir DIR]"
                );
                std::process::exit(dnc_bench::exit::USAGE);
            }
        }
    }

    let report = run_torture(&cfg);
    print!("{}", render_report(&report));
    match write_torture_metrics_in(&out_dir, &report) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write metrics: {e}"),
    }
    if !report.sound() {
        std::process::exit(dnc_bench::exit::VIOLATION);
    }
}
