//! Validation run: adversarial (greedy) and randomized simulations of the
//! tandem network against all three analytic bounds. Every observed delay
//! must stay below every bound; the output also shows how much headroom
//! each method leaves (tightness).

use dnc_bench::{paper_tandem, results_dir, Algo};
use dnc_num::Rat;
use dnc_sim::{all_greedy, batch, SimConfig};
use dnc_traffic::SourceModel;
use std::io::Write;

fn main() {
    let ns = [2usize, 4, 8];
    let us = [
        Rat::new(1, 4),
        Rat::new(1, 2),
        Rat::new(3, 4),
        Rat::new(9, 10),
    ];
    let algos = [Algo::ServiceCurve, Algo::Decomposed, Algo::Integrated];
    let cfg = SimConfig {
        ticks: 16384,
        ..SimConfig::default()
    };

    let mut rows: Vec<String> = Vec::new();
    let mut violations = 0usize;
    println!(
        "{:>3} {:>5} {:>12} {:>12} {:>12} {:>12}",
        "n", "U", "sim_max", "svc_curve", "decomposed", "integrated"
    );
    for &n in &ns {
        for &u in &us {
            let t = paper_tandem(n, u);
            // Adversarial greedy plus a few randomized workloads.
            let greedy = dnc_sim::simulate(&t.net, &all_greedy(&t.net), &cfg);
            let onoff = vec![
                SourceModel::OnOff {
                    on: 8,
                    off: 8,
                    phase: 3
                };
                t.net.flows().len()
            ];
            let rand_reports =
                batch::collect_reports(batch::seed_sweep(&t.net, &onoff, &cfg, &[1, 2, 3], 3))
                    .unwrap_or_else(|e| {
                        eprintln!("seed sweep failed: {e}");
                        std::process::exit(dnc_bench::exit::VIOLATION);
                    });
            let observed = greedy.flows[t.conn0.0]
                .max_delay
                .max(batch::worst_delay(&rand_reports, t.conn0.0));

            let bounds: Vec<Option<Rat>> = algos
                .iter()
                .map(|a| a.analyze(&t.net).ok().map(|r| r.bound(t.conn0)))
                .collect();
            let obs = Rat::from(observed as i64);
            for b in bounds.iter().flatten() {
                if obs > *b {
                    violations += 1;
                }
            }
            let fmt = |b: &Option<Rat>| match b {
                Some(v) => format!("{:.3}", v.to_f64()),
                None => "inf".to_string(),
            };
            println!(
                "{:>3} {:>5.2} {:>12} {:>12} {:>12} {:>12}",
                n,
                u.to_f64(),
                observed,
                fmt(&bounds[0]),
                fmt(&bounds[1]),
                fmt(&bounds[2])
            );
            rows.push(format!(
                "{},{:.3},{},{},{},{}",
                n,
                u.to_f64(),
                observed,
                fmt(&bounds[0]),
                fmt(&bounds[1]),
                fmt(&bounds[2])
            ));
        }
    }

    let path = results_dir().join("validate.csv");
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    let mut f = std::fs::File::create(&path).unwrap();
    writeln!(f, "n,u,sim_max,service_curve,decomposed,integrated").unwrap();
    for r in rows {
        writeln!(f, "{r}").unwrap();
    }
    println!("wrote {}", path.display());

    if violations > 0 {
        eprintln!("BOUND VIOLATIONS: {violations}");
        std::process::exit(dnc_bench::exit::VIOLATION);
    }
    println!("all observed delays within all bounds");
}
