//! Zero-dependency static status dashboard for the perf trajectory.
//!
//! `cargo xtask bench --dashboard <dir>` renders everything offline
//! from the parsed `BENCH_*.json` trajectories: one hand-rolled
//! `index.html` (no scripts, no external assets) with a regression
//! status banner, a latest-run summary table per trajectory, and one
//! SVG trend chart per metric reusing [`crate::chart`]. Each chart is
//! both written as a standalone `.svg` (for CI artifacts) and inlined
//! into the page, so the directory is self-contained either way.
//!
//! Rendering is a pure function of the trajectory records and gate
//! reports — no clock reads, BTreeMap iteration order throughout — so
//! identical inputs produce byte-identical output (golden-tested).

use crate::chart::{Chart, Series};
use crate::trajectory::{render_gate_table, BenchRecord, Direction, GateReport};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// One trajectory's panel on the dashboard.
#[derive(Clone, Copy, Debug)]
pub struct Panel<'a> {
    /// Trajectory name (`throughput`, `churn`).
    pub name: &'a str,
    /// Parsed records, oldest first.
    pub records: &'a [BenchRecord],
    /// The gate's verdicts over those records.
    pub gate: &'a GateReport,
}

fn html_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

/// File-name-safe slug of a metric name.
fn metric_slug(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect()
}

fn value_text(v: f64) -> String {
    if v == v.trunc() && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.3}")
    }
}

/// Trend chart of one metric over the trajectory (x = run index).
fn metric_chart(panel: &Panel, metric: &str) -> Chart {
    let points: Vec<(f64, f64)> = panel
        .records
        .iter()
        .enumerate()
        .filter_map(|(i, r)| r.metrics.get(metric).map(|&v| (i as f64, v)))
        .collect();
    Chart {
        title: format!("{} · {metric}", panel.name),
        x_label: "run index".to_string(),
        y_label: metric.to_string(),
        series: vec![Series {
            label: metric.to_string(),
            points,
        }],
    }
}

fn push_panel(html: &mut String, dir: &Path, panel: &Panel) -> std::io::Result<()> {
    let _ = writeln!(html, "<section>");
    let _ = writeln!(html, "<h2>{}</h2>", html_escape(panel.name));
    let Some(latest) = panel.records.last() else {
        let _ = writeln!(html, "<p>no records yet</p>\n</section>");
        return Ok(());
    };
    let _ = writeln!(
        html,
        "<p class=\"stamp\">{} run(s) · latest {} · {} · {}</p>",
        panel.records.len(),
        html_escape(&latest.timestamp),
        html_escape(&latest.git_sha),
        html_escape(&latest.toolchain),
    );
    let knobs: Vec<String> = latest
        .knobs
        .iter()
        .map(|(k, v)| format!("{}={}", html_escape(k), html_escape(v)))
        .collect();
    let _ = writeln!(html, "<p class=\"stamp\">knobs: {}</p>", knobs.join(" "));

    // Latest-run summary: every metric of the latest record, with the
    // gate's verdict where one exists (none on a first run or for
    // metrics that just appeared).
    let _ = writeln!(
        html,
        "<table><tr><th>metric</th><th>latest</th><th>baseline</th>\
         <th>delta</th><th>status</th></tr>"
    );
    for (name, &value) in &latest.metrics {
        let verdict = panel.gate.verdicts.iter().find(|v| v.metric == *name);
        let (baseline, delta, status, class) = match verdict {
            Some(v) => (
                value_text(v.baseline),
                format!("{:+.1}%", v.delta_pct),
                if v.regressed {
                    "REGRESSED"
                } else if v.direction == Direction::Informational {
                    "info"
                } else {
                    "ok"
                },
                if v.regressed { "bad" } else { "ok" },
            ),
            None => ("—".to_string(), "—".to_string(), "new", "new"),
        };
        let _ = writeln!(
            html,
            "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td>\
             <td class=\"{class}\">{status}</td></tr>",
            html_escape(name),
            value_text(value),
            baseline,
            delta,
        );
    }
    let _ = writeln!(html, "</table>");
    let _ = writeln!(
        html,
        "<pre>{}</pre>",
        html_escape(&render_gate_table(panel.name, panel.gate))
    );

    let _ = writeln!(html, "<div class=\"charts\">");
    for name in latest.metrics.keys() {
        let svg = metric_chart(panel, name).to_svg();
        let file = format!("{}-{}.svg", panel.name, metric_slug(name));
        std::fs::write(dir.join(&file), &svg)?;
        let _ = writeln!(html, "<figure id=\"{file}\">{svg}</figure>");
    }
    let _ = writeln!(html, "</div>\n</section>");
    Ok(())
}

/// Render the dashboard into `dir` (created if missing): `index.html`
/// plus one `<panel>-<metric>.svg` per tracked metric. Returns the
/// index path.
pub fn render_dashboard(dir: &Path, panels: &[Panel]) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let regressions: usize = panels.iter().map(|p| p.gate.regressions().len()).sum();
    let runs: usize = panels.iter().map(|p| p.records.len()).sum();

    let mut html = String::new();
    html.push_str(
        "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n\
         <title>dnc perf trajectory</title>\n<style>\n\
         body { font-family: sans-serif; margin: 2em auto; max-width: 70em; }\n\
         .banner { padding: 0.8em 1em; border-radius: 6px; font-weight: bold; }\n\
         .banner.ok { background: #e6f4e6; color: #1d6b1d; }\n\
         .banner.bad { background: #fbe3e3; color: #9c1f1f; }\n\
         .stamp { color: #555; font-size: 0.9em; }\n\
         table { border-collapse: collapse; margin: 1em 0; }\n\
         th, td { border: 1px solid #ccc; padding: 0.3em 0.7em; text-align: right; }\n\
         th:first-child, td:first-child { text-align: left; }\n\
         td.bad { color: #9c1f1f; font-weight: bold; }\n\
         td.ok { color: #1d6b1d; }\n\
         td.new { color: #555; }\n\
         figure { display: inline-block; margin: 0.5em; }\n\
         </style>\n</head>\n<body>\n<h1>dnc perf trajectory</h1>\n",
    );
    if regressions == 0 {
        let _ = writeln!(
            html,
            "<div class=\"banner ok\">OK — no gated metric out of band \
             ({runs} record(s) tracked)</div>"
        );
    } else {
        let _ = writeln!(
            html,
            "<div class=\"banner bad\">REGRESSED — {regressions} metric(s) \
             out of band ({runs} record(s) tracked)</div>"
        );
    }
    for panel in panels {
        push_panel(&mut html, dir, panel)?;
    }
    html.push_str("</body>\n</html>\n");
    let index = dir.join("index.html");
    std::fs::write(&index, html)?;
    Ok(index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trajectory::{evaluate_gate, GateConfig};
    use std::collections::BTreeMap;

    fn record(wall: f64) -> BenchRecord {
        BenchRecord {
            timestamp: "2026-08-08T00:00:00Z".to_string(),
            git_sha: "abc123".to_string(),
            toolchain: "rustc test".to_string(),
            knobs: BTreeMap::from([("seed".to_string(), "1".to_string())]),
            metrics: BTreeMap::from([("t.wall_us".to_string(), wall)]),
            counters: BTreeMap::new(),
        }
    }

    #[test]
    fn dashboard_renders_banner_table_and_svgs() {
        let records: Vec<BenchRecord> = [100.0, 104.0, 300.0].iter().map(|&v| record(v)).collect();
        let gate = evaluate_gate(&records, &GateConfig::default());
        assert!(gate.regressed());
        let dir = std::env::temp_dir().join(format!("dnc_dashboard_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let index = render_dashboard(
            &dir,
            &[Panel {
                name: "throughput",
                records: &records,
                gate: &gate,
            }],
        )
        .unwrap();
        let html = std::fs::read_to_string(&index).unwrap();
        assert!(html.contains("banner bad"), "regression banner");
        assert!(html.contains("t.wall_us"));
        assert!(html.contains("<svg"), "charts inlined");
        assert!(dir.join("throughput-t-wall-us.svg").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
