//! A minimal dependency-free SVG line-chart renderer, so the `fig*`
//! binaries regenerate actual figures (one polyline per series, log-like
//! or linear y, axes, ticks, legend) alongside their CSVs.

use dnc_telemetry::schema::ColumnMeta;
use std::fmt::Write as _;

/// One plotted series.
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y)` points in data coordinates.
    pub points: Vec<(f64, f64)>,
}

/// Chart description.
#[derive(Clone, Debug)]
pub struct Chart {
    /// Title rendered above the plot.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The series to draw.
    pub series: Vec<Series>,
}

const W: f64 = 760.0;
const H: f64 = 480.0;
const ML: f64 = 64.0; // margins
const MR: f64 = 180.0;
const MT: f64 = 44.0;
const MB: f64 = 52.0;
const PALETTE: [&str; 8] = [
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b", "#17becf", "#7f7f7f",
];

impl Chart {
    /// Render to a standalone SVG document.
    pub fn to_svg(&self) -> String {
        let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut y_min, mut y_max) = (0.0f64, f64::NEG_INFINITY);
        for s in &self.series {
            for &(x, y) in &s.points {
                x_min = x_min.min(x);
                x_max = x_max.max(x);
                y_max = y_max.max(y);
                y_min = y_min.min(y);
            }
        }
        if !x_min.is_finite() {
            x_min = 0.0;
            x_max = 1.0;
            y_max = 1.0;
        }
        if (x_max - x_min).abs() < 1e-12 {
            x_max = x_min + 1.0;
        }
        if (y_max - y_min).abs() < 1e-12 {
            y_max = y_min + 1.0;
        }
        let px = |x: f64| ML + (x - x_min) / (x_max - x_min) * (W - ML - MR);
        let py = |y: f64| H - MB - (y - y_min) / (y_max - y_min) * (H - MT - MB);

        let mut s = String::new();
        let _ = writeln!(
            s,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{W}" height="{H}" viewBox="0 0 {W} {H}" font-family="sans-serif">"#
        );
        let _ = writeln!(s, r#"<rect width="{W}" height="{H}" fill="white"/>"#);
        let _ = writeln!(
            s,
            r#"<text x="{}" y="24" font-size="16" text-anchor="middle">{}</text>"#,
            ML + (W - ML - MR) / 2.0,
            xml_escape(&self.title)
        );

        // Axes.
        let _ = writeln!(
            s,
            r#"<line x1="{ML}" y1="{MT}" x2="{ML}" y2="{}" stroke="black"/>"#,
            H - MB
        );
        let _ = writeln!(
            s,
            r#"<line x1="{ML}" y1="{}" x2="{}" y2="{}" stroke="black"/>"#,
            H - MB,
            W - MR,
            H - MB
        );
        // Ticks (5 per axis) + grid.
        for i in 0..=5 {
            let fx = x_min + (x_max - x_min) * i as f64 / 5.0;
            let fy = y_min + (y_max - y_min) * i as f64 / 5.0;
            let (tx, ty) = (px(fx), py(fy));
            let _ = writeln!(
                s,
                r##"<line x1="{tx}" y1="{MT}" x2="{tx}" y2="{}" stroke="#eeeeee"/>"##,
                H - MB
            );
            let _ = writeln!(
                s,
                r##"<line x1="{ML}" y1="{ty}" x2="{}" y2="{ty}" stroke="#eeeeee"/>"##,
                W - MR
            );
            let _ = writeln!(
                s,
                r#"<text x="{tx}" y="{}" font-size="11" text-anchor="middle">{:.2}</text>"#,
                H - MB + 16.0,
                fx
            );
            let _ = writeln!(
                s,
                r#"<text x="{}" y="{}" font-size="11" text-anchor="end">{:.1}</text>"#,
                ML - 6.0,
                ty + 4.0,
                fy
            );
        }
        // Axis labels.
        let _ = writeln!(
            s,
            r#"<text x="{}" y="{}" font-size="13" text-anchor="middle">{}</text>"#,
            ML + (W - ML - MR) / 2.0,
            H - 12.0,
            xml_escape(&self.x_label)
        );
        let _ = writeln!(
            s,
            r#"<text x="16" y="{}" font-size="13" text-anchor="middle" transform="rotate(-90 16 {})">{}</text>"#,
            MT + (H - MT - MB) / 2.0,
            MT + (H - MT - MB) / 2.0,
            xml_escape(&self.y_label)
        );

        // Series + legend.
        for (i, series) in self.series.iter().enumerate() {
            let color = PALETTE[i % PALETTE.len()];
            let pts: Vec<String> = series
                .points
                .iter()
                .map(|&(x, y)| format!("{:.2},{:.2}", px(x), py(y)))
                .collect();
            let _ = writeln!(
                s,
                r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="1.8"/>"#,
                pts.join(" ")
            );
            let ly = MT + 8.0 + i as f64 * 18.0;
            let _ = writeln!(
                s,
                r#"<line x1="{}" y1="{ly}" x2="{}" y2="{ly}" stroke="{color}" stroke-width="3"/>"#,
                W - MR + 10.0,
                W - MR + 34.0
            );
            let _ = writeln!(
                s,
                r#"<text x="{}" y="{}" font-size="12">{}</text>"#,
                W - MR + 40.0,
                ly + 4.0,
                xml_escape(&series.label)
            );
        }
        let _ = writeln!(s, "</svg>");
        s
    }
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Render a schema column as an axis label: the label itself, with the
/// unit appended in brackets unless the label already mentions it.
pub fn axis_label(column: &ColumnMeta) -> String {
    if column.unit.is_empty() || column.label.contains(column.unit) {
        column.label.to_string()
    } else {
        format!("{} [{}]", column.label, column.unit)
    }
}

/// Build the standard figure chart from sweep points: one series per
/// `(algorithm, n)` combination.
pub fn figure_chart(title: &str, points: &[crate::SweepPoint], algos: &[crate::Algo]) -> Chart {
    let mut ns: Vec<usize> = points.iter().map(|p| p.n).collect();
    ns.sort_unstable();
    ns.dedup();
    let mut series = Vec::new();
    for (ai, a) in algos.iter().enumerate() {
        for &n in &ns {
            let pts: Vec<(f64, f64)> = points
                .iter()
                .filter(|p| p.n == n)
                .filter_map(|p| p.bounds[ai].map(|b| (p.u.to_f64(), b.to_f64())))
                .collect();
            if !pts.is_empty() {
                series.push(Series {
                    label: format!("{} (n={n})", a.label()),
                    points: pts,
                });
            }
        }
    }
    Chart {
        title: title.to_string(),
        // Axis labels come from the metrics schema so figures, JSON, and
        // summary tables agree on terminology.
        x_label: axis_label(&dnc_telemetry::schema::WORK_LOAD),
        y_label: axis_label(&dnc_telemetry::schema::DELAY_BOUND),
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_valid_svg_skeleton() {
        let chart = Chart {
            title: "t & t".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            series: vec![Series {
                label: "<s>".into(),
                points: vec![(0.0, 1.0), (1.0, 2.0), (2.0, 1.5)],
            }],
        };
        let svg = chart.to_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.contains("polyline"));
        assert!(svg.contains("t &amp; t"), "title escaped");
        assert!(svg.contains("&lt;s&gt;"), "legend escaped");
    }

    #[test]
    fn empty_series_does_not_panic() {
        let chart = Chart {
            title: "empty".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            series: vec![],
        };
        let svg = chart.to_svg();
        assert!(svg.contains("</svg>"));
    }

    #[test]
    fn figure_chart_from_sweep() {
        use dnc_num::rat;
        let pts = crate::sweep(&[2], &[rat(1, 4), rat(1, 2)], &[crate::Algo::Decomposed], 1);
        let c = figure_chart("fig", &pts, &[crate::Algo::Decomposed]);
        assert_eq!(c.series.len(), 1);
        assert_eq!(c.series[0].points.len(), 2);
        assert!(c.series[0].label.contains("n=2"));
    }

    #[test]
    fn axis_labels_come_from_schema() {
        use dnc_telemetry::schema;
        let pts = crate::sweep(&[2], &[dnc_num::rat(1, 2)], &[crate::Algo::Decomposed], 1);
        let c = figure_chart("fig", &pts, &[crate::Algo::Decomposed]);
        assert_eq!(c.x_label, schema::WORK_LOAD.label);
        // The delay-bound label already names its unit; no bracket suffix.
        assert_eq!(c.y_label, schema::DELAY_BOUND.label);
        // A unit not mentioned in the label is appended in brackets.
        assert_eq!(axis_label(&schema::WALL_TIME), "wall time [µs]");
    }
}
