//! Chaos soundness harness: randomized fault scenarios against the
//! resilience layer.
//!
//! Each scenario draws a paper tandem, a deterministic [`FaultPlan`]
//! (capacity-degradation windows, outages, link jitter, adversarial
//! cross-traffic bursts), and a conforming workload; the simulator then
//! replays the plan while the analysis side constructs the strongest
//! *degraded claim* the plan still supports:
//!
//! * every server's rate is scaled by [`FaultPlan::min_scale`] over the
//!   run horizon — service curves are monotone in the rate, so a
//!   constant-min-scale analysis bounds every sample path the plan
//!   allows;
//! * cross-traffic at a server becomes a σ-only token bucket with
//!   σ = [`FaultPlan::total_cross_cells`] (it dominates the actual
//!   injection, which is a finite set of bursts);
//! * a server driven to scale 0 (an outage) voids the claim — no
//!   finite-capacity statement covers it, and the scenario only checks
//!   that the whole pipeline degrades without panicking.
//!
//! The degraded network runs through the guarded
//! [`ResilientRunner`] chain; whenever the chain *answers* (any tier),
//! the claimed per-flow bounds must dominate every simulated delay.
//! A simulated delay above a claimed bound is a **soundness violation**
//! — the one thing this harness exists to flag.

use crate::{paper_tandem, write_metrics_doc};
use dnc_core::resilient::{ResilientRunner, Tier};
use dnc_net::{Flow, Network, Server, ServerId};
use dnc_num::Rat;
use dnc_sim::{simulate_with_faults, Fault, FaultPlan, SimConfig};
use dnc_telemetry::export::{Cell, Series};
use dnc_telemetry::schema::{self, ColumnMeta};
use dnc_traffic::{SourceModel, TrafficSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

/// Knobs of a chaos run.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Number of randomized scenarios.
    pub scenarios: usize,
    /// Master seed: the whole run is a pure function of it.
    pub seed: u64,
    /// Simulated ticks per scenario (also the fault-plan horizon).
    pub ticks: u64,
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig {
            scenarios: 32,
            seed: 1,
            ticks: 2048,
        }
    }
}

/// What the degraded-claim analysis produced for one scenario.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Claim {
    /// The guarded chain answered at `tier`; its bounds were checked
    /// against the simulation.
    Bounded(Tier),
    /// No finite-capacity claim exists (outage to zero, overload after
    /// degradation, or budget exhaustion); nothing to check.
    None(String),
}

/// One scenario's outcome.
#[derive(Clone, Debug)]
pub struct ScenarioOutcome {
    /// Scenario index within the run.
    pub id: usize,
    /// Tandem size.
    pub n: usize,
    /// Nominal work load `U` of the tandem.
    pub u: Rat,
    /// Number of faults in the plan (0 = nominal scenario).
    pub fault_count: usize,
    /// Workload label (`greedy`, `onoff`, `bernoulli`).
    pub workload: &'static str,
    /// The degraded claim, if any.
    pub claim: Claim,
    /// Worst simulated end-to-end delay over all flows, in ticks.
    pub worst_observed: u64,
    /// Smallest claimed slack `bound − observed` over all flows
    /// (negative ⇒ violation), `None` without a claim.
    pub min_slack: Option<Rat>,
    /// Soundness violations: flows whose simulated delay exceeded the
    /// claimed bound.
    pub violations: Vec<String>,
}

impl ScenarioOutcome {
    /// Whether the scenario injected no faults at all.
    pub fn nominal(&self) -> bool {
        self.fault_count == 0
    }
}

/// A full chaos run.
#[derive(Clone, Debug)]
pub struct ChaosReport {
    /// Configuration the run used.
    pub cfg: ChaosConfig,
    /// One outcome per scenario.
    pub outcomes: Vec<ScenarioOutcome>,
}

impl ChaosReport {
    /// Total soundness violations across all scenarios.
    pub fn violation_count(&self) -> usize {
        self.outcomes.iter().map(|o| o.violations.len()).sum()
    }

    /// Scenarios whose claim was checked (the chain answered).
    pub fn checked_count(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o.claim, Claim::Bounded(_)))
            .count()
    }
}

/// Draw a random fault plan for `net` over `[0, ticks)`. Returns the
/// nominal (empty) plan for roughly a quarter of the draws so every run
/// re-checks the undegraded bounds too.
pub fn generate_plan(rng: &mut StdRng, net: &Network, ticks: u64) -> FaultPlan {
    if rng.gen_ratio(1, 4) {
        return FaultPlan::none();
    }
    let servers = net.servers().len();
    let count = rng.gen_range(1usize..=3);
    let mut faults = Vec::with_capacity(count);
    for _ in 0..count {
        let server = ServerId(rng.gen_range(0..servers));
        match rng.gen_range(0u32..6) {
            // Degrade windows are the most informative fault (a claim
            // usually survives them), so they get the biggest share.
            0..=2 => {
                let from = rng.gen_range(0..ticks / 2);
                let until = from + rng.gen_range(ticks / 8..ticks / 2);
                // Keep the scale off zero; zero is Outage's job.
                let scale = Rat::new(rng.gen_range(5i128..10), 10);
                faults.push(Fault::Degrade {
                    server,
                    from,
                    until,
                    scale,
                });
            }
            3 => {
                let period = 1u64 << rng.gen_range(3u32..8);
                let scale = Rat::new(rng.gen_range(5i128..10), 10);
                faults.push(Fault::Jitter {
                    server,
                    period,
                    scale,
                });
            }
            4 => {
                let at = rng.gen_range(0..ticks / 2);
                let cells = rng.gen_range(4u64..48);
                faults.push(Fault::CrossBurst { server, at, cells });
            }
            _ => {
                let from = rng.gen_range(0..ticks / 2);
                let until = from + rng.gen_range(16..ticks / 4);
                faults.push(Fault::Outage {
                    server,
                    from,
                    until,
                });
            }
        }
    }
    FaultPlan { faults }
}

/// Build the degraded network whose analysis, if it answers, is claimed
/// valid for every sample path of `plan`: rates scaled by the per-server
/// minimum, cross-traffic added as single-hop σ-only token buckets. The
/// original flows keep their ids (cross flows are appended after them).
///
/// # Errors
/// Returns `Err` when some server's minimum scale is zero — an outage
/// voids any finite-capacity claim.
pub fn degraded_claim_network(
    net: &Network,
    plan: &FaultPlan,
    horizon: u64,
) -> Result<Network, String> {
    let mut out = Network::new();
    for (i, s) in net.servers().iter().enumerate() {
        let scale = plan.min_scale(ServerId(i), horizon);
        if scale.is_zero() {
            return Err(format!(
                "server {:?} fully outaged: no finite-capacity claim",
                s.name
            ));
        }
        out.add_server(Server {
            name: s.name.clone(),
            rate: s.rate * scale,
            discipline: s.discipline,
        });
    }
    for f in net.flows() {
        out.add_flow(f.clone()).map_err(|e| e.to_string())?;
    }
    for i in 0..net.servers().len() {
        let total = plan.total_cross_cells(ServerId(i), horizon);
        if total > 0 {
            // The engine injects cross cells at the head of the priority
            // order, so the claim models them at priority 0 too.
            out.add_flow(Flow {
                name: format!("chaos-cross-s{i}"),
                spec: TrafficSpec::token_bucket(Rat::from(total as i64), Rat::ZERO),
                route: vec![ServerId(i)],
                priority: 0,
            })
            .map_err(|e| e.to_string())?;
        }
    }
    Ok(out)
}

fn draw_workload(rng: &mut StdRng, flows: usize) -> (&'static str, Vec<SourceModel>) {
    match rng.gen_range(0u32..3) {
        0 => ("greedy", vec![SourceModel::Greedy; flows]),
        1 => (
            "onoff",
            vec![
                SourceModel::OnOff {
                    on: 6,
                    off: 6,
                    phase: 2
                };
                flows
            ],
        ),
        _ => (
            "bernoulli",
            vec![SourceModel::Bernoulli { num: 2, den: 5 }; flows],
        ),
    }
}

/// Run one scenario: draw a network, plan, and workload from `rng`,
/// simulate under faults, and check the degraded claim.
pub fn run_scenario(id: usize, rng: &mut StdRng, ticks: u64) -> ScenarioOutcome {
    let n = rng.gen_range(2usize..=5);
    let u = Rat::new(rng.gen_range(2i128..=14), 20);
    let t = paper_tandem(n, u);
    let plan = generate_plan(rng, &t.net, ticks);
    let (workload, models) = draw_workload(rng, t.net.flows().len());

    let cfg = SimConfig {
        ticks,
        seed: rng.gen_range(0u64..u64::MAX),
        ..SimConfig::default()
    };
    let sim = simulate_with_faults(&t.net, &models, &cfg, plan.clone());
    let worst_observed = (0..t.net.flows().len())
        .map(|i| sim.flows[i].max_delay)
        .max()
        .unwrap_or(0);

    let (claim, min_slack, violations) = match degraded_claim_network(&t.net, &plan, ticks) {
        Err(reason) => (Claim::None(reason), None, Vec::new()),
        Ok(degraded) => {
            let report = ResilientRunner::default().analyze(&degraded);
            match report.bounds() {
                None => (
                    Claim::None(format!(
                        "chain answered nothing: {}",
                        report.chain_summary()
                    )),
                    None,
                    Vec::new(),
                ),
                Some(bounds) => {
                    let mut min_slack: Option<Rat> = None;
                    let mut violations = Vec::new();
                    for (i, f) in t.net.flows().iter().enumerate() {
                        let bound = bounds.flows[i].e2e;
                        let observed = sim.max_delay(i);
                        let slack = bound - observed;
                        if min_slack.is_none_or(|m| slack < m) {
                            min_slack = Some(slack);
                        }
                        if observed > bound {
                            violations.push(format!(
                                "scenario {id}: flow {:?} simulated {} > claimed {} (tier {})",
                                f.name,
                                sim.flows[i].max_delay,
                                bound,
                                report.tier()
                            ));
                        }
                    }
                    (Claim::Bounded(report.tier()), min_slack, violations)
                }
            }
        }
    };

    dnc_telemetry::counter("chaos.scenarios", 1);
    if !violations.is_empty() {
        dnc_telemetry::counter("chaos.violations", violations.len() as u64);
    }
    if matches!(claim, Claim::None(_)) {
        dnc_telemetry::counter("chaos.no_claim", 1);
    }

    ScenarioOutcome {
        id,
        n,
        u,
        fault_count: plan.faults.len(),
        workload,
        claim,
        worst_observed,
        min_slack,
        violations,
    }
}

/// Per-scenario generator: scenario `id` of master seed `seed` draws
/// from its own stream, so any scenario replays bit-exactly without
/// running the `id − 1` scenarios before it (the Weyl increment keeps
/// neighbouring ids from colliding in seed space).
pub fn scenario_rng(seed: u64, id: usize) -> StdRng {
    StdRng::seed_from_u64(seed ^ (id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Run the whole harness. Deterministic in `cfg`.
pub fn run_chaos(cfg: &ChaosConfig) -> ChaosReport {
    let _span = dnc_telemetry::span("chaos.run");
    let outcomes = (0..cfg.scenarios)
        .map(|id| {
            let mut rng = scenario_rng(cfg.seed, id);
            run_scenario(id, &mut rng, cfg.ticks)
        })
        .collect();
    ChaosReport {
        cfg: cfg.clone(),
        outcomes,
    }
}

/// Replay one scenario of the run `cfg` describes: identical draws to
/// `run_chaos(cfg).outcomes[id]`, without running the others.
pub fn replay_scenario(cfg: &ChaosConfig, id: usize) -> ScenarioOutcome {
    let mut rng = scenario_rng(cfg.seed, id);
    run_scenario(id, &mut rng, cfg.ticks)
}

/// Scenario axis for the metrics series.
const SCENARIO: ColumnMeta = ColumnMeta {
    label: "scenario",
    unit: "",
};

/// Fault-count column for the metrics series.
const FAULTS: ColumnMeta = ColumnMeta {
    label: "faults",
    unit: "",
};

/// Claimed-slack column: `min(bound − observed)` over flows.
const MIN_SLACK: ColumnMeta = ColumnMeta {
    label: "min claimed slack",
    unit: "ticks",
};

/// The run as `dnc-metrics/v1` series: one row per scenario.
pub fn chaos_series(report: &ChaosReport) -> Vec<Series> {
    let mut s = Series::new(
        "chaos",
        vec![
            SCENARIO,
            schema::NETWORK_SIZE,
            schema::WORK_LOAD,
            FAULTS,
            schema::LABEL,
            schema::SIM_MAX_DELAY,
            MIN_SLACK,
        ],
    );
    for o in &report.outcomes {
        let claim_label = match &o.claim {
            Claim::Bounded(tier) => format!("{}/{tier}", o.workload),
            Claim::None(_) => format!("{}/no-claim", o.workload),
        };
        s.push_row(vec![
            Cell::int(o.id as u64),
            Cell::int(o.n as u64),
            Cell::Num(o.u.to_f64()),
            Cell::int(o.fault_count as u64),
            Cell::Text(claim_label),
            Cell::int(o.worst_observed),
            o.min_slack.map_or(Cell::Null, |r| Cell::Num(r.to_f64())),
        ]);
    }
    vec![s]
}

/// Write `results/metrics-chaos.json` for a finished run; returns the
/// path written.
pub fn write_chaos_metrics(report: &ChaosReport) -> std::io::Result<std::path::PathBuf> {
    write_metrics_doc("chaos", chaos_series(report))
}

/// Write `<dir>/metrics-chaos.json`; returns the path written.
pub fn write_chaos_metrics_in(
    dir: &std::path::Path,
    report: &ChaosReport,
) -> std::io::Result<std::path::PathBuf> {
    crate::write_metrics_doc_in(dir, "chaos", chaos_series(report))
}

/// Column header shared by the full report and single-scenario replay.
fn render_header(s: &mut String) {
    let _ = writeln!(
        s,
        "{:>4} {:>3} {:>5} {:>7} {:>10} {:>22} {:>9} {:>11}",
        "id", "n", "U", "faults", "workload", "claim", "sim_max", "min_slack"
    );
}

/// One fixed-width row of the report table.
fn render_row(s: &mut String, o: &ScenarioOutcome) {
    let (claim, slack) = match &o.claim {
        Claim::Bounded(tier) => (
            format!("answered ({tier})"),
            o.min_slack
                .map_or("-".to_string(), |r| format!("{:.1}", r.to_f64())),
        ),
        Claim::None(_) => ("no claim".to_string(), "-".to_string()),
    };
    let _ = writeln!(
        s,
        "{:>4} {:>3} {:>5.2} {:>7} {:>10} {:>22} {:>9} {:>11}",
        o.id,
        o.n,
        o.u.to_f64(),
        o.fault_count,
        o.workload,
        claim,
        o.worst_observed,
        slack
    );
}

/// Render the run as a fixed-width text report.
pub fn render_report(report: &ChaosReport) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "chaos: {} scenarios, seed {}, {} ticks each",
        report.cfg.scenarios, report.cfg.seed, report.cfg.ticks
    );
    render_header(&mut s);
    for o in &report.outcomes {
        render_row(&mut s, o);
    }
    let checked = report.checked_count();
    let _ = writeln!(
        s,
        "{} of {} scenarios carried a checkable claim",
        checked, report.cfg.scenarios
    );
    for o in &report.outcomes {
        for v in &o.violations {
            let _ = writeln!(s, "VIOLATION: {v}");
        }
    }
    match report.violation_count() {
        0 => {
            let _ = writeln!(s, "no soundness violations");
        }
        k => {
            let _ = writeln!(s, "SOUNDNESS VIOLATIONS: {k}");
        }
    }
    s
}

/// Render a single replayed scenario, including the no-claim reason the
/// table elides — the detail a failing sweep sends you here for.
pub fn render_scenario(cfg: &ChaosConfig, o: &ScenarioOutcome) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "chaos replay: scenario {} of seed {}, {} ticks",
        o.id, cfg.seed, cfg.ticks
    );
    render_header(&mut s);
    render_row(&mut s, o);
    if let Claim::None(reason) = &o.claim {
        let _ = writeln!(s, "no claim: {reason}");
    }
    for v in &o.violations {
        let _ = writeln!(s, "VIOLATION: {v}");
    }
    if o.violations.is_empty() {
        let _ = writeln!(s, "no soundness violations");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnc_num::{int, rat};

    #[test]
    fn run_is_deterministic_in_seed() {
        let cfg = ChaosConfig {
            scenarios: 4,
            seed: 7,
            ticks: 512,
        };
        let a = run_chaos(&cfg);
        let b = run_chaos(&cfg);
        assert_eq!(a.outcomes.len(), 4);
        for (x, y) in a.outcomes.iter().zip(b.outcomes.iter()) {
            assert_eq!(x.n, y.n);
            assert_eq!(x.u, y.u);
            assert_eq!(x.fault_count, y.fault_count);
            assert_eq!(x.worst_observed, y.worst_observed);
            assert_eq!(x.claim, y.claim);
        }
    }

    #[test]
    fn replay_matches_the_full_run() {
        let cfg = ChaosConfig {
            scenarios: 6,
            seed: 11,
            ticks: 512,
        };
        let full = run_chaos(&cfg);
        for want in &full.outcomes {
            let got = replay_scenario(&cfg, want.id);
            assert_eq!(got.n, want.n);
            assert_eq!(got.u, want.u);
            assert_eq!(got.fault_count, want.fault_count);
            assert_eq!(got.workload, want.workload);
            assert_eq!(got.claim, want.claim);
            assert_eq!(got.worst_observed, want.worst_observed);
            assert_eq!(got.min_slack, want.min_slack);
            assert_eq!(got.violations, want.violations);
            let text = render_scenario(&cfg, &got);
            assert!(
                text.contains(&format!("scenario {} of seed 11", want.id)),
                "{text}"
            );
        }
    }

    #[test]
    fn nominal_scenarios_never_violate() {
        // The acceptance gate: across a real-sized run, every nominal
        // (fault-free) scenario must carry a claim and keep it sound.
        let report = run_chaos(&ChaosConfig {
            scenarios: 16,
            seed: 1,
            ticks: 1024,
        });
        let nominal: Vec<_> = report.outcomes.iter().filter(|o| o.nominal()).collect();
        assert!(!nominal.is_empty(), "seed 1 drew no nominal scenarios");
        for o in nominal {
            assert!(
                matches!(o.claim, Claim::Bounded(_)),
                "nominal scenario {} lost its claim: {:?}",
                o.id,
                o.claim
            );
            assert!(o.violations.is_empty(), "{:?}", o.violations);
        }
    }

    #[test]
    fn faulty_scenarios_stay_sound() {
        let report = run_chaos(&ChaosConfig {
            scenarios: 12,
            seed: 3,
            ticks: 1024,
        });
        assert_eq!(report.violation_count(), 0, "{}", render_report(&report));
        // The sweep must exercise both claim paths somewhere.
        assert!(report.checked_count() > 0, "no scenario was checkable");
    }

    #[test]
    fn outage_voids_the_claim() {
        let t = paper_tandem(2, rat(1, 2));
        let plan = FaultPlan {
            faults: vec![Fault::Outage {
                server: ServerId(0),
                from: 10,
                until: 20,
            }],
        };
        assert!(degraded_claim_network(&t.net, &plan, 1024).is_err());
    }

    #[test]
    fn degraded_network_scales_rates_and_adds_cross_flows() {
        let t = paper_tandem(2, rat(1, 2));
        let plan = FaultPlan {
            faults: vec![
                Fault::Degrade {
                    server: ServerId(0),
                    from: 0,
                    until: 100,
                    scale: rat(3, 4),
                },
                Fault::CrossBurst {
                    server: ServerId(1),
                    at: 5,
                    cells: 12,
                },
            ],
        };
        let d = degraded_claim_network(&t.net, &plan, 1024).unwrap();
        assert_eq!(
            d.server(ServerId(0)).rate,
            t.net.server(ServerId(0)).rate * rat(3, 4)
        );
        assert_eq!(d.server(ServerId(1)).rate, t.net.server(ServerId(1)).rate);
        assert_eq!(d.flows().len(), t.net.flows().len() + 1);
        let cross = d.flows().last().unwrap();
        assert_eq!(cross.spec.burst(), int(12));
        assert!(cross.spec.sustained_rate().is_zero());
    }

    #[test]
    fn series_validate_against_schema() {
        let report = run_chaos(&ChaosConfig {
            scenarios: 3,
            seed: 5,
            ticks: 256,
        });
        let mut doc = dnc_telemetry::export::MetricsDoc::new(
            "chaos-test",
            dnc_telemetry::Snapshot::default(),
        );
        doc.series = chaos_series(&report);
        let json = dnc_telemetry::export::metrics_json(&doc);
        dnc_telemetry::schema::validate_metrics(&json).unwrap();
        let text = render_report(&report);
        assert!(text.contains("3 scenarios"), "{text}");
    }
}
