//! Socket acks/sec harness: group commit vs per-op fsync over the real
//! TCP front end.
//!
//! Eight (configurable) concurrent clients pipeline the same
//! admit/release workload through `dnc_service::server` twice — once
//! with `batch = 1` (every committed op pays its own journal fsync) and
//! once with the configured group-commit batch — and the harness
//! reports end-to-end acknowledged operations per second for each mode.
//!
//! Like the throughput harness, speed is only meaningful if the answers
//! are right: after each mode the journal is replayed into a fresh
//! engine and its state digest must equal the served engine's, every
//! reply must be a positive acknowledgment, and the journal must hold
//! exactly one op per acknowledgment. Divergences land in
//! [`SocketReport::mismatches`].
//!
//! The workload is deliberately certification-light (a single-server
//! network, one tiny bucket per admit, alternating admit/release so the
//! live set stays bounded): the harness isolates the *commit path* —
//! fsync amortization — not the analysis engine, which the throughput
//! harness already covers.

use crate::trajectory::time_micros;
use dnc_net::{Network, Server};
use dnc_service::server::{self, ServerConfig};
use dnc_service::{ChurnEngine, EngineConfig, Journal, Op, Request, Response};
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write as _};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

/// Knobs of a socket bench run.
#[derive(Clone, Debug)]
pub struct SocketConfig {
    /// Concurrent pipelining clients.
    pub clients: usize,
    /// Requests each client sends (alternating admit/release).
    pub ops_per_client: usize,
    /// Group-commit batch of the `grouped` mode (`per-op` pins 1).
    pub batch: usize,
    /// Run seed (names only — the workload is otherwise fixed).
    pub seed: u64,
}

impl Default for SocketConfig {
    fn default() -> SocketConfig {
        SocketConfig {
            clients: 8,
            ops_per_client: 12,
            batch: 8,
            seed: 1,
        }
    }
}

/// One commit mode's measurement.
#[derive(Clone, Debug)]
pub struct SocketOutcome {
    /// `per-op` (batch 1) or `grouped` (batch = cfg.batch).
    pub label: &'static str,
    /// Acknowledged committed operations across all clients.
    pub acked: u64,
    /// Concurrent window: the slowest client's request→last-ack wall.
    pub wall_us: u64,
    /// `acked` per second of that window.
    pub acks_per_sec: f64,
    /// Journal records written (group commits; == `acked` when batch=1).
    pub group_commits: u64,
}

/// A full socket bench run: both modes plus soundness divergences.
#[derive(Clone, Debug)]
pub struct SocketReport {
    /// Configuration the run used.
    pub cfg: SocketConfig,
    /// `per-op` first, then `grouped`.
    pub modes: Vec<SocketOutcome>,
    /// Wrong replies, journal/state divergences (empty = sound).
    pub mismatches: Vec<String>,
}

impl SocketReport {
    /// Look a mode up by label.
    pub fn mode(&self, label: &str) -> Option<&SocketOutcome> {
        self.modes.iter().find(|m| m.label == label)
    }

    /// True when every reply and both journals checked out.
    pub fn sound(&self) -> bool {
        self.mismatches.is_empty()
    }

    /// Grouped acks/sec over per-op acks/sec (> 1.0 = batching wins).
    pub fn speedup(&self) -> f64 {
        match (self.mode("grouped"), self.mode("per-op")) {
            (Some(g), Some(p)) if p.acks_per_sec > 0.0 => g.acks_per_sec / p.acks_per_sec,
            _ => 0.0,
        }
    }
}

/// Single-server base: admission cost is a few curve operations, so the
/// journal fsync dominates each commit.
fn tiny_net() -> Network {
    let mut net = Network::new();
    net.add_server(Server::unit_fifo("hop0"));
    net
}

/// The line a client sends for its `k`-th request: alternating
/// admit/release of a per-client connection name, so the live set never
/// exceeds the client count and certification cost stays flat.
fn request_line(seed: u64, client: usize, k: usize) -> String {
    let name = format!("s{seed}c{client}o{}", k / 2);
    if k.is_multiple_of(2) {
        format!("admit {name} deadline 1000 prio 0 peak - route 0 buckets 1 1/4096")
    } else {
        format!("release {name}")
    }
}

fn decode(line: &str) -> Result<Request, String> {
    match Op::decode(line) {
        Ok(Op::Admit(a)) => Ok(Request::Admit(a.into())),
        Ok(Op::Release { name }) => Ok(Request::Release { name }),
        Err(e) => Err(format!("ERR {e}")),
    }
}

fn render(r: &Response) -> String {
    match r {
        Response::Admitted { name, .. } => format!("ADMIT {name}"),
        Response::Rejected { name, reason } => format!("REJECT {name}: {reason}"),
        Response::Released { name } => format!("RELEASE {name}"),
        Response::ReleaseFailed { name, reason } => format!("RELFAIL {name}: {reason}"),
        Response::Queried { entries } => format!("QUERY {}", entries.len()),
        Response::Shed { name, reason, .. } => format!("SHED {name}: {reason}"),
    }
}

/// One pipelining client: write every request line, then read exactly
/// one reply per request. Returns (wall_us, positive acks, problems).
fn client_session(
    addr: std::net::SocketAddr,
    seed: u64,
    client: usize,
    ops: usize,
) -> (u64, u64, Vec<String>) {
    let mut problems = Vec::new();
    let Ok(stream) = TcpStream::connect(addr) else {
        return (0, 0, vec![format!("client {client}: connect failed")]);
    };
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(e) => return (0, 0, vec![format!("client {client}: clone: {e}")]),
    };
    let mut reader = BufReader::new(stream);
    let mut acked = 0u64;
    let ((), wall_us) = time_micros(|| {
        let mut script = String::new();
        for k in 0..ops {
            let _ = writeln!(script, "{}", request_line(seed, client, k));
        }
        if writer.write_all(script.as_bytes()).is_err() || writer.flush().is_err() {
            problems.push(format!("client {client}: request write failed"));
            return;
        }
        let mut line = String::new();
        for k in 0..ops {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) => {
                    problems.push(format!("client {client}: EOF at reply {k}"));
                    return;
                }
                Ok(_) => {
                    let reply = line.trim();
                    if reply.starts_with("ADMIT ") || reply.starts_with("RELEASE ") {
                        acked += 1;
                    } else {
                        problems.push(format!("client {client} reply {k}: {reply:?}"));
                    }
                }
                Err(e) => {
                    problems.push(format!("client {client}: read: {e}"));
                    return;
                }
            }
        }
    });
    (wall_us, acked, problems)
}

/// Serve one mode's full session and measure it.
fn run_mode(
    label: &'static str,
    batch: usize,
    cfg: &SocketConfig,
    wal: PathBuf,
) -> (SocketOutcome, Vec<String>) {
    let mut mismatches = Vec::new();
    let _ = std::fs::remove_file(&wal);
    let (engine, _) = ChurnEngine::open(tiny_net(), Vec::new(), EngineConfig::default(), &wal)
        .expect("fresh journal on a tiny base opens");
    let listener = TcpListener::bind("127.0.0.1:0").expect("loopback listener binds");
    let addr = listener
        .local_addr()
        .expect("bound listener has an address");
    let server_cfg = ServerConfig {
        batch,
        max_conns: cfg.clients + 2,
        // Pipelined bursts must queue, not shed: shed replies would be
        // (correct) negative answers and a soundness mismatch below.
        queue_capacity: (cfg.clients * cfg.ops_per_client + 8).max(64),
        drain_timeout: Duration::from_secs(30),
        ..ServerConfig::default()
    };
    let server = std::thread::spawn(move || {
        server::run(
            listener,
            engine,
            server_cfg,
            Arc::new(decode),
            Arc::new(render),
            Arc::new(AtomicBool::new(false)),
        )
    });

    let clients: Vec<_> = (0..cfg.clients)
        .map(|c| {
            let seed = cfg.seed;
            let ops = cfg.ops_per_client;
            std::thread::spawn(move || client_session(addr, seed, c, ops))
        })
        .collect();
    let mut acked = 0u64;
    let mut wall_us = 0u64;
    for c in clients {
        let (w, a, problems) = c.join().expect("client thread completes");
        acked += a;
        wall_us = wall_us.max(w);
        mismatches.extend(problems);
    }

    // Drain the server, then check the journal against what was acked.
    if let Ok(stream) = TcpStream::connect(addr) {
        let mut w = &stream;
        let _ = writeln!(w, "shutdown");
        let mut bye = String::new();
        let _ = BufReader::new(&stream).read_line(&mut bye);
    }
    let (served, report) = match server.join().expect("server thread completes") {
        Ok(ok) => ok,
        Err(e) => {
            mismatches.push(format!("{label}: server failed: {e}"));
            return (
                SocketOutcome {
                    label,
                    acked,
                    wall_us,
                    acks_per_sec: 0.0,
                    group_commits: 0,
                },
                mismatches,
            );
        }
    };
    if !report.drained_clean {
        mismatches.push(format!("{label}: drain timed out with stragglers"));
    }
    let (_, replay) = Journal::resume(&wal).expect("served journal replays");
    if replay.ops.len() as u64 != acked {
        mismatches.push(format!(
            "{label}: journal holds {} op(s) but {} were acknowledged",
            replay.ops.len(),
            acked
        ));
    }
    let (recovered, _) = ChurnEngine::open(tiny_net(), Vec::new(), EngineConfig::default(), &wal)
        .expect("served journal recovers");
    if recovered.state_digest() != served.state_digest() {
        mismatches.push(format!(
            "{label}: recovered state digest {:#x} != served {:#x}",
            recovered.state_digest(),
            served.state_digest()
        ));
    }
    let _ = std::fs::remove_file(&wal);

    let secs = wall_us.max(1) as f64 / 1_000_000.0;
    (
        SocketOutcome {
            label,
            acked,
            wall_us,
            acks_per_sec: acked as f64 / secs,
            group_commits: report.stats.group_commits,
        },
        mismatches,
    )
}

/// Run both commit modes over the same workload and cross-check them.
pub fn run_socket(cfg: &SocketConfig) -> SocketReport {
    let _span = dnc_telemetry::span("socket.run");
    let dir = std::env::temp_dir();
    let mut modes = Vec::new();
    let mut mismatches = Vec::new();
    for (label, batch) in [("per-op", 1), ("grouped", cfg.batch.max(2))] {
        let wal = dir.join(format!(
            "dnc_socket_bench_{}_{label}.wal",
            std::process::id()
        ));
        let (outcome, problems) = run_mode(label, batch, cfg, wal);
        mismatches.extend(problems);
        modes.push(outcome);
    }
    // Same workload ⇒ both modes must acknowledge the same op count.
    if let (Some(p), Some(g)) = (modes.first(), modes.get(1)) {
        if p.acked != g.acked {
            mismatches.push(format!(
                "acked counts diverge: per-op {} vs grouped {}",
                p.acked, g.acked
            ));
        }
    }
    SocketReport {
        cfg: cfg.clone(),
        modes,
        mismatches,
    }
}

/// The run as `dnc-metrics/v1` series: one row per commit mode.
pub fn socket_series(report: &SocketReport) -> Vec<dnc_telemetry::export::Series> {
    use dnc_telemetry::export::{Cell, Series};
    use dnc_telemetry::schema::ColumnMeta;
    const MODE: ColumnMeta = ColumnMeta {
        label: "mode",
        unit: "",
    };
    const CLIENTS: ColumnMeta = ColumnMeta {
        label: "clients",
        unit: "",
    };
    const ACKED: ColumnMeta = ColumnMeta {
        label: "acknowledged ops",
        unit: "",
    };
    const GROUPS: ColumnMeta = ColumnMeta {
        label: "group commits",
        unit: "",
    };
    const WALL: ColumnMeta = ColumnMeta {
        label: "slowest client wall",
        unit: "us",
    };
    const RATE: ColumnMeta = ColumnMeta {
        label: "acks per second",
        unit: "1/s",
    };
    const MISMATCHES: ColumnMeta = ColumnMeta {
        label: "soundness mismatches",
        unit: "",
    };
    let mut s = Series::new(
        "socket",
        vec![MODE, CLIENTS, ACKED, GROUPS, WALL, RATE, MISMATCHES],
    );
    for m in &report.modes {
        s.push_row(vec![
            Cell::Text(m.label.to_string()),
            Cell::int(report.cfg.clients as u64),
            Cell::int(m.acked),
            Cell::int(m.group_commits),
            Cell::int(m.wall_us),
            Cell::Num(m.acks_per_sec),
            Cell::int(report.mismatches.len() as u64),
        ]);
    }
    vec![s]
}

/// Write `<dir>/metrics-socket.json`; returns the path written.
pub fn write_socket_metrics_in(
    dir: &std::path::Path,
    report: &SocketReport,
) -> std::io::Result<std::path::PathBuf> {
    crate::write_metrics_doc_in(dir, "socket", socket_series(report))
}

/// Render the run as a fixed-width text report.
pub fn render_report(report: &SocketReport) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "socket: {} client(s) x {} op(s), grouped batch {}, seed {}",
        report.cfg.clients, report.cfg.ops_per_client, report.cfg.batch, report.cfg.seed
    );
    let _ = writeln!(
        s,
        "{:<10} {:>7} {:>14} {:>12} {:>12}",
        "mode", "acked", "group commits", "wall_ms", "acks/sec"
    );
    for m in &report.modes {
        let _ = writeln!(
            s,
            "{:<10} {:>7} {:>14} {:>12.2} {:>12.1}",
            m.label,
            m.acked,
            m.group_commits,
            m.wall_us as f64 / 1000.0,
            m.acks_per_sec
        );
    }
    for m in &report.mismatches {
        let _ = writeln!(s, "MISMATCH: {m}");
    }
    if report.sound() {
        let _ = writeln!(
            s,
            "both modes sound; group-commit speedup over per-op fsync: {:.2}x",
            report.speedup()
        );
    } else {
        let _ = writeln!(s, "MISMATCHES: {}", report.mismatches.len());
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_modes_sound_and_batching_reduces_journal_records() {
        let report = run_socket(&SocketConfig {
            clients: 4,
            ops_per_client: 6,
            batch: 8,
            seed: 11,
        });
        assert!(report.sound(), "{}", render_report(&report));
        let per_op = report.mode("per-op").unwrap();
        let grouped = report.mode("grouped").unwrap();
        assert_eq!(per_op.acked, 24);
        assert_eq!(grouped.acked, 24);
        // batch=1 ⇒ one record per ack; batching must consolidate.
        assert_eq!(per_op.group_commits, per_op.acked);
        assert!(
            grouped.group_commits < grouped.acked,
            "grouped wrote {} records for {} acks",
            grouped.group_commits,
            grouped.acked
        );
    }

    #[test]
    fn series_validate_against_schema() {
        let report = run_socket(&SocketConfig {
            clients: 2,
            ops_per_client: 4,
            batch: 4,
            seed: 7,
        });
        let mut doc = dnc_telemetry::export::MetricsDoc::new(
            "socket-test",
            dnc_telemetry::Snapshot::default(),
        );
        doc.series = socket_series(&report);
        let json = dnc_telemetry::export::metrics_json(&doc);
        dnc_telemetry::schema::validate_metrics(&json).unwrap();
        assert!(render_report(&report).contains("per-op"));
    }
}
