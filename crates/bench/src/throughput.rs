//! Throughput harness: admissions/sec of the churn engine across three
//! certification modes over one deterministic request sequence.
//!
//! The modes differ **only** in how the engine certifies — never in what
//! it answers:
//!
//! * `scratch-seq` — every certification from scratch, sequential,
//!   with a cold private cache: the honest baseline.
//! * `parallel` — from scratch, pairing groups fanned out over
//!   `workers` scoped threads, certifying against the run's shared
//!   memo cache.
//! * `incremental` — the full fast path: the same shared memo cache,
//!   parallel fan-out, and incremental re-certification off the
//!   previous accepted analysis.
//!
//! The `parallel` and `incremental` stages thread **one**
//! [`AnalysisCache`] between them (the workload replays the same
//! request list, so the cache genuinely hits); `scratch-seq` keeps a
//! cold cache so the baseline stays honest. The run's `cache.hit` /
//! `cache.miss` telemetry — and the derived `cache.hit_rate` bench
//! metric — therefore reflect real cross-stage reuse instead of the
//! perpetual zero that per-stage private caches used to report.
//!
//! Every mode replays the *same* pre-drawn request list against the
//! same base network, and the harness fingerprints every response
//! (names, exact `Rat` bounds, deadlines) plus the final engine state
//! digest. Any cross-mode difference is a soundness violation, reported
//! in [`ThroughputReport::mismatches`] — speed is only meaningful if
//! the answers are bit-identical.

use crate::chaos::scenario_rng;
use crate::{paper_tandem, write_metrics_doc};
use dnc_core::cache::AnalysisCache;
use dnc_num::Rat;
use dnc_service::{AdmitRequest, ChurnEngine, EngineConfig, Request, Response};
use rand::rngs::StdRng;
use rand::Rng;
use std::fmt::Write as _;
use std::sync::Arc;

/// Knobs of a throughput run.
#[derive(Clone, Debug)]
pub struct ThroughputConfig {
    /// Tandem size the engines run against.
    pub n: usize,
    /// Base work load `U` of the tandem.
    pub u: Rat,
    /// Requests in the churn sequence.
    pub ops: usize,
    /// Master seed: the request list is a pure function of it.
    pub seed: u64,
    /// Fan-out width for the `parallel` and `incremental` modes.
    pub workers: usize,
}

impl Default for ThroughputConfig {
    fn default() -> ThroughputConfig {
        ThroughputConfig {
            n: 10,
            u: Rat::new(6, 20),
            ops: 48,
            seed: 1,
            workers: 4,
        }
    }
}

/// One certification mode's measurement.
#[derive(Clone, Debug)]
pub struct ModeOutcome {
    /// Mode label (`scratch-seq`, `parallel`, `incremental`).
    pub label: &'static str,
    /// Committed operations (admits + releases).
    pub commits: u64,
    /// Rejections rolled back.
    pub rollbacks: u64,
    /// Wall time for the whole sequence, in microseconds.
    pub wall_us: u64,
    /// Committed admissions+releases per second of wall time.
    pub admissions_per_sec: f64,
}

/// A full throughput run: one outcome per mode plus every cross-mode
/// divergence found (empty = all modes answered identically).
#[derive(Clone, Debug)]
pub struct ThroughputReport {
    /// Configuration the run used.
    pub cfg: ThroughputConfig,
    /// One outcome per mode, baseline first.
    pub modes: Vec<ModeOutcome>,
    /// Responses or final states that differed from the baseline mode.
    pub mismatches: Vec<String>,
    /// Entries left in the cache the fast stages shared — nonzero
    /// whenever the workload actually reused memoized analyses.
    pub cache_entries: usize,
}

impl ThroughputReport {
    /// Look a mode up by label.
    pub fn mode(&self, label: &str) -> Option<&ModeOutcome> {
        self.modes.iter().find(|m| m.label == label)
    }

    /// True when every mode produced bit-identical responses and final
    /// engine state.
    pub fn sound(&self) -> bool {
        self.mismatches.is_empty()
    }

    /// Admissions/sec of the fast path relative to the from-scratch
    /// sequential baseline (> 1.0 means the fast path is faster).
    pub fn speedup(&self) -> f64 {
        match (self.mode("incremental"), self.mode("scratch-seq")) {
            (Some(inc), Some(base)) if base.admissions_per_sec > 0.0 => {
                inc.admissions_per_sec / base.admissions_per_sec
            }
            _ => 0.0,
        }
    }
}

/// Draw the request sequence: a churn mix of admits (downstream tandem
/// spans, small buckets, moderately tight deadlines) and releases of
/// previously drawn names. The list is drawn once and replayed by every
/// mode, so generation cannot couple to engine behavior.
fn draw_requests(cfg: &ThroughputConfig) -> Vec<Request> {
    let mut rng: StdRng = scenario_rng(cfg.seed, 0);
    let mut reqs = Vec::with_capacity(cfg.ops);
    let mut assumed_live: Vec<String> = Vec::new();
    let mut next = 0usize;
    for _ in 0..cfg.ops {
        if assumed_live.is_empty() || rng.gen_ratio(3, 5) {
            next += 1;
            let name = format!("t{next}");
            // Short spans, as real connections have: the incremental
            // mode's dirty closure then stays a small suffix of the
            // tandem, which is exactly the workload it exists for.
            let start = rng.gen_range(0..cfg.n);
            let len = rng.gen_range(1..=(cfg.n - start).min(3));
            reqs.push(Request::Admit(AdmitRequest {
                name: name.clone(),
                route: (start..start + len).map(dnc_net::ServerId).collect(),
                buckets: vec![(
                    Rat::from(rng.gen_range(1i64..=4)),
                    Rat::new(rng.gen_range(1i128..=3), 40),
                )],
                peak: None,
                priority: 1,
                deadline: Rat::from(rng.gen_range(4i64..=120)),
            }));
            assumed_live.push(name);
        } else {
            let k = rng.gen_range(0..assumed_live.len());
            reqs.push(Request::Release {
                name: assumed_live.remove(k),
            });
        }
    }
    reqs
}

/// A response's identity for cross-mode comparison: names, exact
/// rational bounds and deadlines — everything a client would act on.
fn fingerprint(resp: &Response) -> String {
    match resp {
        Response::Admitted {
            name,
            flow,
            bound,
            deadline,
            ..
        } => format!("admitted {name} {flow} bound {bound} deadline {deadline}"),
        Response::Rejected { name, .. } => format!("rejected {name}"),
        Response::Released { name } => format!("released {name}"),
        Response::ReleaseFailed { name, .. } => format!("release-failed {name}"),
        Response::Shed { name, .. } => format!("shed {name}"),
        Response::Queried { entries } => format!("queried {}", entries.len()),
    }
}

/// Drive one engine through the request list and measure it.
fn run_mode(
    label: &'static str,
    engine_cfg: EngineConfig,
    cfg: &ThroughputConfig,
    reqs: &[Request],
) -> (ModeOutcome, Vec<String>, u64) {
    let base = paper_tandem(cfg.n, cfg.u).net;
    let mut engine =
        ChurnEngine::new(base, Vec::new(), engine_cfg).expect("base tandem is structurally valid");
    let mut prints = Vec::with_capacity(reqs.len());
    let ((), wall_us) = crate::trajectory::time_micros(|| {
        for req in reqs {
            match engine.process(req.clone()) {
                Ok(resp) => prints.push(fingerprint(&resp)),
                Err(e) => prints.push(format!("engine-error {e}")),
            }
        }
    });
    let stats = engine.stats();
    let secs = (wall_us.max(1)) as f64 / 1_000_000.0;
    (
        ModeOutcome {
            label,
            commits: stats.commits,
            rollbacks: stats.rollbacks,
            wall_us,
            admissions_per_sec: stats.commits as f64 / secs,
        },
        prints,
        engine.state_digest(),
    )
}

/// Run the three modes over one request list and cross-check them.
pub fn run_throughput(cfg: &ThroughputConfig) -> ThroughputReport {
    let _span = dnc_telemetry::span("throughput.run");
    let reqs = draw_requests(cfg);
    // One cache threaded through the two fast stages; the baseline
    // stage gets none (a cold private cache) so its numbers stay an
    // honest from-scratch measurement.
    let shared = Arc::new(AnalysisCache::new());
    let plan: [(&'static str, EngineConfig); 3] = [
        (
            "scratch-seq",
            EngineConfig {
                workers: 1,
                incremental: false,
                ..EngineConfig::default()
            },
        ),
        (
            "parallel",
            EngineConfig {
                workers: cfg.workers,
                incremental: false,
                cache: Some(Arc::clone(&shared)),
                ..EngineConfig::default()
            },
        ),
        (
            "incremental",
            EngineConfig {
                workers: cfg.workers,
                incremental: true,
                cache: Some(Arc::clone(&shared)),
                ..EngineConfig::default()
            },
        ),
    ];
    let mut modes = Vec::new();
    let mut mismatches = Vec::new();
    let mut baseline: Option<(Vec<String>, u64)> = None;
    for (label, engine_cfg) in plan {
        let (outcome, prints, digest) = run_mode(label, engine_cfg, cfg, &reqs);
        match &baseline {
            None => baseline = Some((prints, digest)),
            Some((want_prints, want_digest)) => {
                for (step, (got, want)) in prints.iter().zip(want_prints).enumerate() {
                    if got != want {
                        mismatches
                            .push(format!("{label} step {step}: {got:?} != baseline {want:?}"));
                    }
                }
                if digest != *want_digest {
                    mismatches.push(format!(
                        "{label}: final state digest {digest:#x} != baseline {want_digest:#x}"
                    ));
                }
            }
        }
        modes.push(outcome);
    }
    ThroughputReport {
        cfg: cfg.clone(),
        modes,
        mismatches,
        cache_entries: shared.len(),
    }
}

/// The run as `dnc-metrics/v1` series: one row per mode.
pub fn throughput_series(report: &ThroughputReport) -> Vec<dnc_telemetry::export::Series> {
    use dnc_telemetry::export::{Cell, Series};
    use dnc_telemetry::schema::{self, ColumnMeta};
    const MODE: ColumnMeta = ColumnMeta {
        label: "mode",
        unit: "",
    };
    const COMMITS: ColumnMeta = ColumnMeta {
        label: "commits",
        unit: "",
    };
    const ROLLBACKS: ColumnMeta = ColumnMeta {
        label: "rollbacks",
        unit: "",
    };
    const WALL: ColumnMeta = ColumnMeta {
        label: "wall time",
        unit: "us",
    };
    const RATE: ColumnMeta = ColumnMeta {
        label: "admissions per second",
        unit: "1/s",
    };
    const MISMATCHES: ColumnMeta = ColumnMeta {
        label: "cross-mode mismatches",
        unit: "",
    };
    let mut s = Series::new(
        "throughput",
        vec![
            MODE,
            schema::NETWORK_SIZE,
            schema::WORK_LOAD,
            COMMITS,
            ROLLBACKS,
            WALL,
            RATE,
            MISMATCHES,
        ],
    );
    for m in &report.modes {
        s.push_row(vec![
            Cell::Text(m.label.to_string()),
            Cell::int(report.cfg.n as u64),
            Cell::Num(report.cfg.u.to_f64()),
            Cell::int(m.commits),
            Cell::int(m.rollbacks),
            Cell::int(m.wall_us),
            Cell::Num(m.admissions_per_sec),
            Cell::int(report.mismatches.len() as u64),
        ]);
    }
    vec![s]
}

/// Write `results/metrics-throughput.json`; returns the path written.
pub fn write_throughput_metrics(report: &ThroughputReport) -> std::io::Result<std::path::PathBuf> {
    write_metrics_doc("throughput", throughput_series(report))
}

/// Write `<dir>/metrics-throughput.json`; returns the path written.
pub fn write_throughput_metrics_in(
    dir: &std::path::Path,
    report: &ThroughputReport,
) -> std::io::Result<std::path::PathBuf> {
    crate::write_metrics_doc_in(dir, "throughput", throughput_series(report))
}

/// Render the run as a fixed-width text report.
pub fn render_report(report: &ThroughputReport) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "throughput: tandem n={} U={:.2}, {} ops, seed {}, {} workers",
        report.cfg.n,
        report.cfg.u.to_f64(),
        report.cfg.ops,
        report.cfg.seed,
        report.cfg.workers
    );
    let _ = writeln!(
        s,
        "{:<12} {:>8} {:>10} {:>12} {:>14}",
        "mode", "commits", "rollbacks", "wall_ms", "admits/sec"
    );
    for m in &report.modes {
        let _ = writeln!(
            s,
            "{:<12} {:>8} {:>10} {:>12.2} {:>14.1}",
            m.label,
            m.commits,
            m.rollbacks,
            m.wall_us as f64 / 1000.0,
            m.admissions_per_sec
        );
    }
    for m in &report.mismatches {
        let _ = writeln!(s, "MISMATCH: {m}");
    }
    if report.sound() {
        let _ = writeln!(
            s,
            "all modes bit-identical; incremental speedup over scratch-seq: {:.2}x",
            report.speedup()
        );
    } else {
        let _ = writeln!(s, "MISMATCHES: {}", report.mismatches.len());
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ThroughputConfig {
        ThroughputConfig {
            n: 3,
            ops: 14,
            seed: 5,
            workers: 2,
            ..ThroughputConfig::default()
        }
    }

    #[test]
    fn all_modes_agree_and_commit() {
        let report = run_throughput(&small());
        assert!(report.sound(), "{}", render_report(&report));
        assert_eq!(report.modes.len(), 3);
        for m in &report.modes {
            assert!(m.commits > 0, "{} committed nothing", m.label);
        }
        assert!(
            report.cache_entries > 0,
            "the shared cache memoized nothing across the fast stages"
        );
        let (a, b, c) = (
            report.modes[0].commits,
            report.modes[1].commits,
            report.modes[2].commits,
        );
        assert!(a == b && b == c, "commit counts diverge: {a} {b} {c}");
    }

    #[test]
    fn request_list_is_deterministic() {
        let cfg = small();
        let a = draw_requests(&cfg);
        let b = draw_requests(&cfg);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(format!("{x:?}"), format!("{y:?}"));
        }
    }

    #[test]
    fn series_validate_against_schema() {
        let report = run_throughput(&ThroughputConfig {
            n: 2,
            ops: 8,
            seed: 3,
            workers: 2,
            ..ThroughputConfig::default()
        });
        let mut doc = dnc_telemetry::export::MetricsDoc::new(
            "throughput-test",
            dnc_telemetry::Snapshot::default(),
        );
        doc.series = throughput_series(&report);
        let json = dnc_telemetry::export::metrics_json(&doc);
        dnc_telemetry::schema::validate_metrics(&json).unwrap();
        let text = render_report(&report);
        assert!(text.contains("scratch-seq"), "{text}");
    }
}
