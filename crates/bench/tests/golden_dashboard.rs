//! Golden-file test pinning the static dashboard output.
//!
//! The trajectory records are hand-built (no real timings, no clock
//! reads), so `render_dashboard` is byte-deterministic. If this test
//! fails because the page layout changed on purpose, regenerate the
//! fixtures by running with `UPDATE_GOLDEN=1` and review the diff —
//! the dashboard is a published artifact (CI uploads it), so drift
//! should be deliberate.

use dnc_bench::dashboard::{render_dashboard, Panel};
use dnc_bench::trajectory::{evaluate_gate, BenchRecord, GateConfig};
use std::collections::BTreeMap;
use std::path::PathBuf;

fn record(sha: &str, wall_us: f64, admissions: f64) -> BenchRecord {
    BenchRecord {
        timestamp: "2026-08-08T00:00:00Z".to_string(),
        git_sha: sha.to_string(),
        toolchain: "rustc 1.0.0-golden".to_string(),
        knobs: BTreeMap::from([
            ("profile".to_string(), "quick".to_string()),
            ("seed".to_string(), "42".to_string()),
        ]),
        metrics: BTreeMap::from([
            ("throughput.incremental.wall_us".to_string(), wall_us),
            (
                "throughput.incremental.admissions_per_sec".to_string(),
                admissions,
            ),
            ("throughput.mismatches".to_string(), 0.0),
        ]),
        counters: BTreeMap::from([("core.local_delay.calls".to_string(), 8)]),
    }
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_against_golden(name: &str, rendered: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, rendered).expect("write golden fixture");
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()));
    assert_eq!(
        rendered, want,
        "{name} drifted from the checked-in fixture; if intentional, \
         rerun with UPDATE_GOLDEN=1 and review the diff"
    );
}

#[test]
fn dashboard_matches_golden() {
    // Three runs: two flat, then wall time triples and throughput
    // craters — both directions of the gate trip, so the fixture pins
    // the regression banner, the REGRESSED table rows, and the charts.
    let records = vec![
        record("aaaaaaaaaaaa", 100.0, 5000.0),
        record("bbbbbbbbbbbb", 104.0, 4900.0),
        record("cccccccccccc", 300.0, 1200.0),
    ];
    let gate = evaluate_gate(&records, &GateConfig::default());
    assert!(
        gate.regressed(),
        "fixture must exercise the regression path"
    );

    let dir = std::env::temp_dir().join(format!("dnc_golden_dash_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let index = render_dashboard(
        &dir,
        &[Panel {
            name: "throughput",
            records: &records,
            gate: &gate,
        }],
    )
    .expect("render dashboard");

    let html = std::fs::read_to_string(&index).expect("read index.html");
    check_against_golden("dashboard-index.html", &html);

    let svg = std::fs::read_to_string(dir.join("throughput-throughput-incremental-wall-us.svg"))
        .expect("per-metric svg written next to index.html");
    check_against_golden("dashboard-wall-us.svg", &svg);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn empty_dashboard_is_still_valid_html() {
    let gate = evaluate_gate(&[], &GateConfig::default());
    let dir = std::env::temp_dir().join(format!("dnc_golden_dash_empty_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let index = render_dashboard(
        &dir,
        &[Panel {
            name: "churn",
            records: &[],
            gate: &gate,
        }],
    )
    .expect("render empty dashboard");
    let html = std::fs::read_to_string(&index).expect("read index.html");
    assert!(
        html.contains("banner ok"),
        "no records means no regressions"
    );
    assert!(html.contains("no records yet"));
    let _ = std::fs::remove_dir_all(&dir);
}
