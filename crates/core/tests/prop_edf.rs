//! Property test: the exact EDF schedulability predicate agrees with a
//! dense-grid evaluation of its defining condition
//! `∀t: Σ_{D_i ≤ t} α_i(t − D_i) ≤ C·t`.

use dnc_core::edf::edf_schedulable;
use dnc_curves::Curve;
use dnc_num::{rat, Rat};
use proptest::prelude::*;

fn arb_item() -> impl Strategy<Value = (Curve, Rat)> {
    (
        (0i128..12, 1i128..4), // σ
        (1i128..4, 8i128..16), // ρ
        (1i128..40, 1i128..4), // D
    )
        .prop_map(|((sn, sd), (rn, rd), (dn, dd))| {
            (
                Curve::token_bucket(Rat::new(sn, sd), Rat::new(rn, rd)),
                Rat::new(dn, dd),
            )
        })
}

/// Direct evaluation of the demand condition on a dense grid (plus the
/// deadlines themselves, where jumps occur).
fn grid_check(items: &[(Curve, Rat)], c: Rat, horizon: i128, steps: i128) -> bool {
    let mut ts: Vec<Rat> = (0..=steps).map(|k| Rat::new(horizon * k, steps)).collect();
    for &(_, d) in items {
        ts.push(d);
        ts.push(d + rat(1, 1000));
    }
    for t in ts {
        let mut demand = Rat::ZERO;
        for (a, d) in items {
            if *d <= t {
                demand += a.eval(t - *d);
            }
        }
        if demand > c * t {
            return false;
        }
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn predicate_matches_grid(items in proptest::collection::vec(arb_item(), 1..4)) {
        let c = Rat::ONE;
        let exact = edf_schedulable(&items, c);
        // Horizon: past every deadline and every curve tail, far enough
        // that tail slopes dominate.
        let horizon = 120i128;
        let grid = grid_check(&items, c, horizon, 480);
        if exact {
            // Exact says feasible: the grid must find no violation.
            prop_assert!(grid, "predicate said feasible but the grid found a violation");
        } else {
            // Exact says infeasible. Either the grid sees it too, or the
            // violation is a long-run rate issue beyond the horizon.
            let total_rate: Rat = items.iter().map(|(a, _)| a.final_slope()).sum();
            prop_assert!(
                !grid || total_rate > c,
                "predicate said infeasible but a dense grid (and stable rates) disagrees"
            );
        }
    }

    #[test]
    fn scaling_deadlines_up_preserves_feasibility(
        items in proptest::collection::vec(arb_item(), 1..4),
        scale_num in 1i128..4,
    ) {
        let c = Rat::ONE;
        prop_assume!(edf_schedulable(&items, c));
        let scaled: Vec<(Curve, Rat)> = items
            .iter()
            .map(|(a, d)| (a.clone(), *d * (Rat::ONE + Rat::new(scale_num, 2))))
            .collect();
        prop_assert!(
            edf_schedulable(&scaled, c),
            "loosening every deadline cannot break feasibility"
        );
    }

    #[test]
    fn adding_traffic_preserves_infeasibility(
        items in proptest::collection::vec(arb_item(), 1..4),
        extra in arb_item(),
    ) {
        let c = Rat::ONE;
        prop_assume!(!edf_schedulable(&items, c));
        let mut more = items.clone();
        more.push(extra);
        prop_assert!(
            !edf_schedulable(&more, c),
            "adding a flow cannot make an infeasible set feasible"
        );
    }
}
