//! Edge-case tests for the analysis crate: degenerate networks, error
//! paths, report plumbing, and admission corner cases.

use dnc_core::admission::{all_deadlines_met, max_admissible_utilization, try_admit, Deadline};
use dnc_core::integrated::{pair_delay_bound, Integrated};
use dnc_core::{
    decomposed::Decomposed, service_curve::ServiceCurve, AnalysisError, DelayAnalysis, OutputCap,
};
use dnc_curves::Curve;
use dnc_net::builders::{chain, tandem, TandemOptions};
use dnc_net::{Flow, Network, Server};
use dnc_num::{int, rat, Rat};
use dnc_traffic::TrafficSpec;

#[test]
fn empty_network_analyzes_to_empty_report() {
    let net = Network::new();
    for alg in [
        &Decomposed::paper() as &dyn DelayAnalysis,
        &ServiceCurve::paper(),
        &Integrated::paper(),
    ] {
        let r = alg.analyze(&net).unwrap();
        assert!(r.flows.is_empty(), "{}", alg.name());
        assert_eq!(r.max_bound(), Rat::ZERO);
    }
}

#[test]
fn single_flow_single_server_all_algorithms_agree() {
    // One uncapped bucket alone on a unit server: everyone says σ.
    let (net, flows, _) = chain(1, &[TrafficSpec::token_bucket(int(3), rat(1, 4))]);
    for alg in [
        &Decomposed::paper() as &dyn DelayAnalysis,
        &ServiceCurve::paper(),
        &Integrated::paper(),
    ] {
        assert_eq!(
            alg.analyze(&net).unwrap().bound(flows[0]),
            int(3),
            "{}",
            alg.name()
        );
    }
}

#[test]
fn zero_traffic_flow_has_zero_delay() {
    let (net, flows, _) = chain(2, &[TrafficSpec::token_bucket(int(0), Rat::ZERO)]);
    let r = Decomposed::paper().analyze(&net).unwrap();
    assert_eq!(r.bound(flows[0]), int(0));
}

#[test]
fn pair_bound_zero_rates_panic() {
    let f = Curve::token_bucket(int(1), rat(1, 8));
    let z = Curve::zero();
    let r = std::panic::catch_unwind(|| {
        pair_delay_bound(&f, &z, &z, Rat::ZERO, Rat::ONE, OutputCap::Shift)
    });
    assert!(r.is_err());
}

#[test]
fn pair_bound_unstable_server_two() {
    // S12 + S2 rates exceed C2: error, not a bogus bound.
    let f12 = Curve::token_bucket(int(1), rat(3, 4));
    let f2 = Curve::token_bucket(int(1), rat(1, 2));
    let z = Curve::zero();
    assert!(pair_delay_bound(&f12, &z, &f2, Rat::ONE, Rat::ONE, OutputCap::Shift).is_err());
}

#[test]
fn analysis_error_display() {
    let t = tandem(2, int(1), rat(1, 4), TandemOptions::default()); // overload
    let e = Decomposed::paper().analyze(&t.net).unwrap_err();
    let msg = e.to_string();
    assert!(msg.contains("overloaded"), "{msg}");
    assert!(matches!(e, AnalysisError::Network(_)));
}

#[test]
fn report_relative_improvement_zero_base() {
    let (net, flows, _) = chain(1, &[TrafficSpec::token_bucket(int(0), Rat::ZERO)]);
    let a = Decomposed::paper().analyze(&net).unwrap();
    let b = Integrated::paper().analyze(&net).unwrap();
    // D_X = 0: metric defined as 0, no division by zero.
    assert_eq!(a.relative_improvement(&b, flows[0]), Rat::ZERO);
}

#[test]
fn report_display_contains_stages() {
    let t = tandem(3, int(1), rat(1, 8), TandemOptions::default());
    let r = Decomposed::paper().analyze(&t.net).unwrap();
    let text = r.to_string();
    assert!(text.contains("[decomposed]"));
    assert!(text.contains("conn0"));
    assert!(text.contains("L0"));
}

#[test]
fn deadline_checks_empty_list() {
    let t = tandem(2, int(1), rat(1, 8), TandemOptions::default());
    assert!(all_deadlines_met(&t.net, &[], &Decomposed::paper()).unwrap());
}

#[test]
fn try_admit_flow_with_bad_route_is_rejection() {
    let t = tandem(2, int(1), rat(1, 8), TandemOptions::default());
    let candidate = Flow {
        name: "ghost".into(),
        spec: TrafficSpec::paper_source(int(1), rat(1, 8)),
        route: vec![dnc_net::ServerId(99)],
        priority: 0,
    };
    let r = try_admit(&t.net, candidate, int(10), &[], &Integrated::paper()).unwrap();
    assert!(r.is_none(), "unknown route = clean rejection");
}

#[test]
fn max_admissible_none_when_deadline_impossible() {
    let u = max_admissible_utilization(8, int(1), rat(1, 100), &Decomposed::paper(), 10);
    assert!(u.is_none());
}

#[test]
fn max_admissible_full_grid_when_deadline_huge() {
    let u = max_admissible_utilization(2, int(1), int(10_000), &Decomposed::paper(), 10);
    assert_eq!(u, Some(rat(9, 10)));
}

#[test]
fn deadline_ordering_is_rational_exact() {
    // A bound of exactly 16/7 must pass a deadline of 16/7 and fail
    // 15/7 — no epsilon fuzz.
    let mut net = Network::new();
    let s = net.add_server(Server::unit_fifo("s"));
    let mut ids = Vec::new();
    for _ in 0..3 {
        ids.push(
            net.add_flow(Flow {
                name: "f".into(),
                spec: TrafficSpec::paper_source(int(1), rat(1, 8)),
                route: vec![s],
                priority: 0,
            })
            .unwrap(),
        );
    }
    let alg = Decomposed::paper();
    assert_eq!(alg.analyze(&net).unwrap().bound(ids[0]), rat(16, 7));
    let pass = [Deadline {
        flow: ids[0],
        deadline: rat(16, 7),
    }];
    let fail = [Deadline {
        flow: ids[0],
        deadline: rat(15, 7),
    }];
    assert!(all_deadlines_met(&net, &pass, &alg).unwrap());
    assert!(!all_deadlines_met(&net, &fail, &alg).unwrap());
}

#[test]
fn integrated_on_disconnected_components() {
    // Two disjoint chains in one network: bounds equal the isolated runs.
    let mut net = Network::new();
    let a0 = net.add_server(Server::unit_fifo("a0"));
    let a1 = net.add_server(Server::unit_fifo("a1"));
    let b0 = net.add_server(Server::unit_fifo("b0"));
    let spec = TrafficSpec::paper_source(int(2), rat(1, 8));
    let fa = net
        .add_flow(Flow {
            name: "fa".into(),
            spec: spec.clone(),
            route: vec![a0, a1],
            priority: 0,
        })
        .unwrap();
    let fb = net
        .add_flow(Flow {
            name: "fb".into(),
            spec: spec.clone(),
            route: vec![b0],
            priority: 0,
        })
        .unwrap();
    let joint = Integrated::paper().analyze(&net).unwrap();

    let (iso_a, ia, _) = chain(2, std::slice::from_ref(&spec));
    let (iso_b, ib, _) = chain(1, &[spec]);
    assert_eq!(
        joint.bound(fa),
        Integrated::paper().analyze(&iso_a).unwrap().bound(ia[0])
    );
    assert_eq!(
        joint.bound(fb),
        Integrated::paper().analyze(&iso_b).unwrap().bound(ib[0])
    );
}

#[test]
fn stage_sums_equal_e2e() {
    let t = tandem(5, int(1), rat(3, 16), TandemOptions::default());
    for alg in [
        &Decomposed::paper() as &dyn DelayAnalysis,
        &Integrated::paper(),
    ] {
        let r = alg.analyze(&t.net).unwrap();
        for f in &r.flows {
            let sum: Rat = f.stages.iter().map(|(_, d)| *d).sum();
            assert_eq!(sum, f.e2e, "{} / {}", alg.name(), f.name);
        }
    }
}
