//! The paper's Section-2 lemmas applied to **concrete** arrival functions
//! — exact fluid ground truth for validating the bounds.
//!
//! * Lemma 1: a work-conserving constant-rate server's output function is
//!   `W = G ⊗ λ_C` (Reich's formula) — [`output_function`].
//! * Lemma 2/3: arrival/departure times of the `x`-th bit are `G⁻¹(x)` and
//!   `W⁻¹(x)` — realized with [`dnc_curves::Curve::pseudo_inverse`] and
//!   [`inverse_strict`].
//! * Lemma 4: the end-to-end delay through two FIFO servers is
//!   `max_t { W₂⁻¹(G₂(t)) − G₁⁻¹(W₁(t)) }` — realized by
//!   [`TwoServerScenario::max_s12_delay`].
//!
//! These computations need the *actual* cumulative arrival functions
//! (which an admission controller never has — that is the paper's whole
//! point), so they live here purely as test oracles: any delay they
//! report must be ≤ every bound the algorithms report.

use dnc_curves::{minplus, Curve};
use dnc_num::Rat;

pub use dnc_curves::transform::{compose, inverse_strict};

/// Lemma 1: exact output function of a rate-`c` work-conserving server fed
/// by cumulative arrivals `g` (`g(0) = 0`, nondecreasing).
pub fn output_function(g: &Curve, c: Rat) -> Curve {
    assert!(c.is_positive(), "output_function: rate must be positive");
    assert!(
        g.at_zero().is_zero(),
        "cumulative arrivals must start at zero"
    );
    minplus::conv(g, &Curve::rate(c))
}

/// Maximum FIFO delay of any bit at a single server with concrete
/// (nondecreasing) cumulative arrivals `g` and rate `c`, via Lemma 3
/// (`delay(t) = W⁻¹(G(t)) − t`), sampled at all breakpoints plus a uniform
/// grid of `extra` points. Sampling can only *under*-estimate the true
/// maximum, which is the safe direction for a ground-truth oracle.
pub fn single_server_max_delay(g: &Curve, c: Rat, extra: usize) -> Rat {
    let w = output_function(g, c);
    let horizon = g.tail_start().max(w.tail_start()) + Rat::ONE;
    let mut best = Rat::ZERO;
    for t in sample_points(&[g, &w], horizon, extra) {
        if let Some(dep) = w.pseudo_inverse(g.eval(t)) {
            best = best.max(dep - t);
        }
    }
    best
}

/// A concrete two-server run: cumulative arrival functions for the three
/// flow sets of the paper's Figure 1 subsystem.
#[derive(Clone, Debug)]
pub struct TwoServerScenario {
    /// Cumulative arrivals of the S12 aggregate at server 1.
    pub a12: Curve,
    /// Cumulative arrivals of the S1 aggregate at server 1.
    pub a1: Curve,
    /// Cumulative arrivals of the S2 aggregate at server 2.
    pub a2: Curve,
    /// Server rates.
    pub c1: Rat,
    /// Rate of server 2.
    pub c2: Rat,
}

impl TwoServerScenario {
    /// Exact worst delay over all S12 bits in this run (Lemma 4), sampled
    /// at curve breakpoints plus `extra` uniform points.
    ///
    /// Requires strictly-increasing aggregate arrivals at server 1 (use a
    /// positive sustained rate; greedy token-bucket sample paths satisfy
    /// this).
    pub fn max_s12_delay(&self, extra: usize) -> Rat {
        let g1 = self.a12.add(&self.a1);
        let w1 = output_function(&g1, self.c1);
        // H1(t) = G1⁻¹(W1(t)): arrival time of the bit departing at t.
        let g1_inv = inverse_strict(&g1);
        let h1 = compose(&g1_inv, &w1);
        // R12(t) = A12(H1(t)): S12 portion of server 1 departures.
        let r12 = compose(&self.a12, &h1);
        let g2 = r12.add(&self.a2);
        let w2 = output_function(&g2, self.c2);

        let horizon = [&g1, &w1, &g2, &w2]
            .iter()
            .map(|c| c.tail_start())
            .max()
            .unwrap() // audit: allow(unwrap, max over a non-empty fixed set of curves)
            + Rat::ONE;
        let mut best = Rat::ZERO;
        for t in sample_points(&[&g1, &w1, &g2, &w2, &self.a12], horizon, extra) {
            // Bit of S12 arriving at server 1 at time t:
            // leaves server 1 at u = W1⁻¹(G1(t)),
            // leaves server 2 at w = W2⁻¹(G2(u)).
            let Some(u) = w1.pseudo_inverse(g1.eval(t)) else {
                continue;
            };
            let Some(wdep) = w2.pseudo_inverse(g2.eval(u)) else {
                continue;
            };
            best = best.max(wdep - t);
        }
        best
    }
}

/// One flow of a [`ChainScenario`]: a concrete cumulative arrival
/// function and the contiguous hop range it traverses.
#[derive(Clone, Debug)]
pub struct ChainFlow {
    /// Cumulative arrivals at the entry hop (strictly increasing,
    /// `A(0) = 0`).
    pub arrival: Curve,
    /// First hop traversed (index into the chain).
    pub entry: usize,
    /// Last hop traversed (inclusive; `exit >= entry`).
    pub exit: usize,
}

/// A concrete run of an `m`-server FIFO chain — the full multi-hop
/// generalization of [`TwoServerScenario`], built from the same lemmas:
/// Reich outputs per server (Lemma 1), FIFO index bookkeeping through
/// `H_k = G_k⁻¹ ∘ W_k` (Lemmas 2–3), and per-flow splits of each output
/// by composition.
#[derive(Clone, Debug)]
pub struct ChainScenario {
    /// Server rates along the chain.
    pub rates: Vec<Rat>,
    /// The flows (fluid aggregates are formed per hop automatically).
    pub flows: Vec<ChainFlow>,
}

impl ChainScenario {
    /// Exact worst end-to-end delay of any bit of `flow` across its whole
    /// hop range (sampled at all breakpoints plus `extra` uniform
    /// points — sampling can only under-estimate, the safe direction for
    /// an oracle).
    ///
    /// # Panics
    /// Panics on empty chains, out-of-range hop indices, or non-strictly
    /// increasing aggregates (use sources with positive sustained rates).
    pub fn max_delay(&self, flow: usize, extra: usize) -> Rat {
        let m = self.rates.len();
        assert!(m > 0, "empty chain");
        for f in &self.flows {
            assert!(f.entry <= f.exit && f.exit < m, "bad hop range");
        }
        let target = &self.flows[flow]; // audit: allow(index, arrivals_at is (hops + 1) x flows; k and i range over those dimensions)

        // arrivals_at[k][i] = flow i's cumulative arrival function at hop
        // k (None when the flow does not traverse hop k).
        let mut arrivals_at: Vec<Vec<Option<Curve>>> = vec![vec![None; self.flows.len()]; m];
        for (i, f) in self.flows.iter().enumerate() {
            arrivals_at[f.entry][i] = Some(f.arrival.clone()); // audit: allow(index, arrivals_at is (hops + 1) x flows; k and i range over those dimensions)
        }

        let mut g_per_hop: Vec<Curve> = Vec::with_capacity(m);
        let mut w_per_hop: Vec<Curve> = Vec::with_capacity(m);
        for k in 0..m {
            let present: Vec<Curve> = arrivals_at[k].iter().flatten().cloned().collect(); // audit: allow(index, arrivals_at is (hops + 1) x flows; k and i range over those dimensions)
            assert!(!present.is_empty(), "hop {k} carries no traffic");
            let g = present
                .iter()
                .skip(1)
                .fold(present[0].clone(), |a, b| a.add(b)); // audit: allow(index, arrivals_at is (hops + 1) x flows; k and i range over those dimensions)
            let w = output_function(&g, self.rates[k]); // audit: allow(index, arrivals_at is (hops + 1) x flows; k and i range over those dimensions)
                                                        // Split the output per continuing flow: R_i = A_i@k ∘ H_k.
            if k + 1 < m {
                let h = compose(&inverse_strict(&g), &w);
                for (i, f) in self.flows.iter().enumerate() {
                    if f.entry <= k && k < f.exit {
                        let a = arrivals_at[k][i].clone().expect("flow present at hop"); // audit: allow(all, arrivals_at is (hops + 1) x flows; k and i range over those dimensions)
                        arrivals_at[k + 1][i] = Some(compose(&a, &h)); // audit: allow(index, arrivals_at is (hops + 1) x flows; k and i range over those dimensions)
                    }
                }
            }
            g_per_hop.push(g);
            w_per_hop.push(w);
        }

        // Follow the target flow's bits: arriving at its entry hop at t,
        // the departure from hop k is u_{k+1} = W_k⁻¹(G_k(u_k)).
        let horizon = g_per_hop
            .iter()
            .chain(w_per_hop.iter())
            .map(|c| c.tail_start())
            .max()
            .unwrap() // audit: allow(unwrap, max over a non-empty fixed set of curves)
            + Rat::ONE;
        let mut all: Vec<&Curve> = Vec::new();
        all.extend(g_per_hop.iter());
        all.extend(w_per_hop.iter());
        let mut best = Rat::ZERO;
        'outer: for t in sample_points(&all, horizon, extra) {
            let mut at = t;
            for k in target.entry..=target.exit {
                // audit: allow(index, arrivals_at is (hops + 1) x flows; k and i range over those dimensions)
                let Some(u) = w_per_hop[k].pseudo_inverse(g_per_hop[k].eval(at)) else {
                    continue 'outer;
                };
                at = u;
            }
            best = best.max(at - t);
        }
        best
    }
}

/// Breakpoints of all `curves` up to `horizon`, plus `extra` uniform
/// samples.
fn sample_points(curves: &[&Curve], horizon: Rat, extra: usize) -> Vec<Rat> {
    let mut ts: Vec<Rat> = curves
        .iter()
        .flat_map(|c| c.breakpoint_xs())
        .filter(|t| *t <= horizon)
        .collect();
    let n = extra.max(1) as i128;
    for k in 0..=n {
        ts.push(horizon * Rat::new(k, n));
    }
    ts.sort();
    ts.dedup();
    ts
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnc_curves::bounds;
    use dnc_num::{int, rat};

    /// Greedy sample path of the paper source: A(t) = min{ t, σ + ρt }.
    fn greedy(sigma: i64, rho: Rat) -> Curve {
        Curve::token_bucket_peak(int(sigma), rho, int(1))
    }

    #[test]
    fn output_of_underloaded_server_is_input() {
        // Arrivals never exceed rate 1: output = input.
        let g = Curve::rate(rat(1, 2));
        assert_eq!(output_function(&g, int(1)), g);
    }

    #[test]
    fn output_function_smooths_burst() {
        // A(t) = min{2t, 4 + t/2} into rate 1: output = min(A, t).
        let g = Curve::rate(int(2)).min(&Curve::token_bucket(int(4), rat(1, 2)));
        let w = output_function(&g, int(1));
        assert_eq!(w.eval(int(1)), int(1));
        assert_eq!(w.eval(int(2)), int(2));
        // Busy until A crosses t: 4 + t/2 = t -> t = 8.
        assert_eq!(w.eval(int(8)), int(8));
        assert_eq!(w.eval(int(10)), g.eval(int(10)));
    }

    #[test]
    fn inverse_strict_round_trip() {
        let f = Curve::from_points(vec![(int(0), int(0)), (int(2), int(6))], rat(1, 2));
        let inv = inverse_strict(&f);
        for t in [int(0), int(1), int(2), int(5), rat(7, 2)] {
            assert_eq!(inv.eval(f.eval(t)), t);
        }
    }

    #[test]
    fn compose_affine() {
        let outer = Curve::affine(int(1), int(2));
        let inner = Curve::rate_latency(int(3), int(1));
        let c = compose(&outer, &inner);
        // outer(inner(t)) = 1 + 2·3·(t−1)⁺.
        assert_eq!(c.eval(int(0)), int(1));
        assert_eq!(c.eval(int(1)), int(1));
        assert_eq!(c.eval(int(3)), int(13));
        assert_eq!(c.final_slope(), int(6));
    }

    #[test]
    fn single_server_delay_matches_hdev_for_greedy() {
        // For a greedy source, the realized max delay equals the bound
        // h(α, λ_C) because the sample path attains the constraint.
        let alpha = greedy(3, rat(1, 4)).add(&greedy(2, rat(1, 4)));
        let d_exact = single_server_max_delay(&alpha, int(1), 32);
        let d_bound = bounds::hdev(&alpha, &Curve::rate(int(1))).unwrap();
        assert_eq!(d_exact, d_bound);
    }

    #[test]
    fn two_server_exact_below_integrated_bound() {
        use crate::integrated::pair_delay_bound;
        use crate::OutputCap;
        let a12 = greedy(2, rat(1, 8));
        let a1 = greedy(1, rat(1, 8));
        let a2 = greedy(3, rat(1, 8));
        let sc = TwoServerScenario {
            a12: a12.clone(),
            a1: a1.clone(),
            a2: a2.clone(),
            c1: int(1),
            c2: int(1),
        };
        let exact = sc.max_s12_delay(64);
        // The greedy sample paths conform to their own curves, so the
        // bound computed from those curves must dominate.
        let pb = pair_delay_bound(&a12, &a1, &a2, int(1), int(1), OutputCap::Shift).unwrap();
        assert!(
            exact <= pb.through,
            "exact {exact} exceeds integrated bound {}",
            pb.through
        );
        assert!(exact.is_positive());
    }

    #[test]
    fn chain_scenario_two_hops_matches_two_server() {
        // The chain oracle specialized to 2 hops must agree with the
        // dedicated two-server oracle.
        let a12 = greedy(3, rat(1, 8));
        let a1 = greedy(2, rat(1, 8));
        let a2 = greedy(4, rat(1, 8));
        let two = TwoServerScenario {
            a12: a12.clone(),
            a1: a1.clone(),
            a2: a2.clone(),
            c1: int(1),
            c2: int(1),
        };
        let chain = ChainScenario {
            rates: vec![int(1), int(1)],
            flows: vec![
                ChainFlow {
                    arrival: a12,
                    entry: 0,
                    exit: 1,
                },
                ChainFlow {
                    arrival: a1,
                    entry: 0,
                    exit: 0,
                },
                ChainFlow {
                    arrival: a2,
                    entry: 1,
                    exit: 1,
                },
            ],
        };
        assert_eq!(two.max_s12_delay(64), chain.max_delay(0, 64));
    }

    #[test]
    fn chain_oracle_below_integrated_on_tandem() {
        use crate::integrated::Integrated;
        use crate::DelayAnalysis;
        use dnc_net::builders::{tandem, TandemOptions};

        // Fluid greedy run of the paper's 4-switch tandem: every source
        // realizes its constraint curve exactly.
        let rho = rat(3, 16);
        let t = tandem(4, int(1), rho, TandemOptions::default());
        let flows: Vec<ChainFlow> = t
            .net
            .flows()
            .iter()
            .map(|f| {
                let entry = f.route[0].0;
                let exit = f.route.last().unwrap().0;
                ChainFlow {
                    arrival: f.spec.arrival_curve(),
                    entry,
                    exit,
                }
            })
            .collect();
        let chain = ChainScenario {
            rates: vec![int(1); 4],
            flows,
        };
        let fluid = chain.max_delay(t.conn0.0, 96);
        let bound = Integrated::paper().analyze(&t.net).unwrap().bound(t.conn0);
        assert!(
            fluid <= bound,
            "fluid oracle {fluid} exceeds integrated bound {bound}"
        );
        assert!(fluid.is_positive());
        // The oracle must also see multi-hop queueing: more than any
        // single hop's local delay.
        let first_hop = single_server_max_delay(
            &chain.flows[t.conn0.0]
                .arrival
                .add(&chain.flows[t.upper[0].0].arrival)
                .add(&chain.flows[t.lower[0].0].arrival),
            int(1),
            64,
        );
        assert!(fluid > first_hop);
    }

    #[test]
    fn two_server_greedy_nontrivial_delay() {
        // Sanity: the greedy scenario actually produces queueing at both
        // servers (delay strictly above the single-server delay of srv 1).
        let sc = TwoServerScenario {
            a12: greedy(4, rat(1, 8)),
            a1: greedy(2, rat(1, 8)),
            a2: greedy(4, rat(1, 8)),
            c1: int(1),
            c2: int(1),
        };
        let both = sc.max_s12_delay(64);
        let first_only = single_server_max_delay(&sc.a12.add(&sc.a1), int(1), 64);
        assert!(both > first_only);
    }
}
