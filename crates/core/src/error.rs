//! Error type shared by the analysis algorithms.

use dnc_curves::CurveError;
use dnc_net::{NetworkError, ServerId};
use std::fmt;

/// Why an analysis failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalysisError {
    /// Structural problem with the network (cycle, overload, bad route).
    Network(NetworkError),
    /// A curve operation diverged (usually a local instability).
    Curve {
        /// Server at which the operation failed, when known.
        server: Option<ServerId>,
        /// The underlying curve error.
        source: CurveError,
    },
    /// An algorithm-specific precondition failed.
    Unsupported(String),
    /// The run's resource budget was exhausted before an answer was
    /// reached (deadline, iteration/operation cap, or cancellation).
    Budget(String),
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::Network(e) => write!(f, "network error: {e}"),
            AnalysisError::Curve { server, source } => match server {
                Some(s) => write!(f, "curve error at server {s}: {source}"),
                None => write!(f, "curve error: {source}"),
            },
            AnalysisError::Unsupported(m) => write!(f, "unsupported: {m}"),
            AnalysisError::Budget(m) => write!(f, "budget exhausted: {m}"),
        }
    }
}

impl std::error::Error for AnalysisError {}

impl From<NetworkError> for AnalysisError {
    fn from(e: NetworkError) -> Self {
        AnalysisError::Network(e)
    }
}

impl AnalysisError {
    /// Wrap a curve error with the server it occurred at.
    pub fn at(server: ServerId, source: CurveError) -> AnalysisError {
        AnalysisError::Curve {
            server: Some(server),
            source,
        }
    }
}

impl From<CurveError> for AnalysisError {
    fn from(source: CurveError) -> Self {
        AnalysisError::Curve {
            server: None,
            source,
        }
    }
}
