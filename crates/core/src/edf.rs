//! Earliest-deadline-first local analysis — another of the disciplines
//! the paper's introduction surveys ("simple earliest-deadline-first
//! (EDF) schedulers" are, like FIFO, non-guaranteed-rate: no per-flow
//! service curve exists, which is why the paper's decomposition-style
//! machinery is the natural tool).
//!
//! Classical result (Liebeherr–Wrege–Ferrari; Georgiadis et al.): a
//! fluid EDF server of rate `C` with flows constrained by `α_i` and
//! assigned local deadlines `D_i` meets **all** deadlines iff the demand
//! never outruns the service:
//!
//! ```text
//! ∀ t ≥ 0:   Σ_{i : D_i ≤ t}  α_i(t − D_i)   ≤   C · t .
//! ```
//!
//! When the test passes, every flow's local delay is bounded by its own
//! `D_i`; when it fails the configuration is rejected (no bound is
//! fabricated). The check is exact for PWL arrival curves: between
//! consecutive (sorted) deadlines the demand is a continuous PWL curve,
//! so each interval reduces to a vertical-deviation computation.

use crate::AnalysisError;
use dnc_curves::Curve;
use dnc_net::{FlowId, Network, ServerId};
use dnc_num::Rat;

/// Exact fluid-EDF schedulability test: `items` are `(arrival curve,
/// local deadline)` pairs — each arrival curve nondecreasing (concave for
/// the usual leaky-bucket envelopes) — and `c` the server rate.
pub fn edf_schedulable(items: &[(Curve, Rat)], c: Rat) -> bool {
    assert!(c.is_positive(), "edf_schedulable: rate must be positive");
    if items.is_empty() {
        return true;
    }
    // Long-run stability is necessary regardless of deadlines.
    let total_rate: Rat = items.iter().map(|(a, _)| a.final_slope()).sum();
    if total_rate > c {
        return false;
    }
    let mut deadlines: Vec<Rat> = items.iter().map(|&(_, d)| d).collect();
    deadlines.sort();
    deadlines.dedup();

    // Check interval by interval: on [D_(k), D_(k+1)) the active demand is
    // Σ_{D_i ≤ D_(k)} α_i(t − D_i), a continuous PWL curve of t.
    for (k, &start) in deadlines.iter().enumerate() {
        let active: Vec<Curve> = items
            .iter()
            .filter(|&&(_, d)| d <= start)
            .map(|(a, d)| a.shift_right_hold(*d))
            .collect();
        let demand = Curve::sum(active.iter());
        let service = Curve::rate(c);
        let end = deadlines.get(k + 1).copied();
        // Max of (demand − C·t) over [start, end): candidates are the
        // interval ends and demand breakpoints inside.
        let diff = demand.sub(&service);
        let mut cands = vec![start];
        for &(x, _) in diff.points() {
            if x > start && end.is_none_or(|e| x < e) {
                cands.push(x);
            }
        }
        if let Some(e) = end {
            cands.push(e);
        } else {
            // Unbounded final interval: the tail slope decides beyond the
            // last breakpoint.
            let last = diff.tail_start().max(start) + Rat::ONE;
            cands.push(last);
            if diff.final_slope().is_positive() {
                return false;
            }
        }
        for t in cands {
            if diff.eval(t).is_positive() {
                return false;
            }
        }
    }
    true
}

/// Per-flow local delays at an EDF server: each flow's assigned local
/// deadline when the configuration is schedulable, an error otherwise.
/// `curves` carries each flow's (nondecreasing) constraint at this server.
pub fn local_delays(
    net: &Network,
    server: ServerId,
    curves: &[(FlowId, Curve)],
) -> Result<Vec<(FlowId, Rat)>, AnalysisError> {
    let c = net.server(server).rate;
    let items: Vec<(Curve, Rat)> = curves
        .iter()
        .map(|(f, curve)| {
            net.local_deadline(*f, server)
                .map(|d| (curve.clone(), d))
                .ok_or_else(|| {
                    AnalysisError::Unsupported(format!(
                        "flow {f} has no EDF local deadline at {server}"
                    ))
                })
        })
        .collect::<Result<_, _>>()?;
    if !edf_schedulable(&items, c) {
        return Err(AnalysisError::Unsupported(format!(
            "EDF deadlines infeasible at server {server} (demand exceeds C·t)"
        )));
    }
    Ok(curves
        .iter()
        .map(|(f, _)| (*f, net.local_deadline(*f, server).expect("checked"))) // audit: allow(expect, local_deadline verified Some for every flow in the items pass above)
        .collect())
}

/// The largest uniform scale factor `s` (on a `1/grid` lattice, searched
/// up to `max`) such that scaling **all** deadlines by `s` keeps the
/// server schedulable — a measure of how much slack an EDF configuration
/// has (< 1 means infeasible as given). Arrival curves as in
/// [`edf_schedulable`] (nondecreasing).
pub fn deadline_slack(items: &[(Curve, Rat)], c: Rat, grid: i128, max: i128) -> Option<Rat> {
    let mut best = None;
    for k in 1..=max * grid {
        let s = Rat::new(k, grid);
        let scaled: Vec<(Curve, Rat)> = items.iter().map(|(a, d)| (a.clone(), *d * s)).collect();
        if edf_schedulable(&scaled, c) {
            best = Some(s);
            break; // smallest feasible scale = the slack measure
        }
    }
    best
}

/// An equal-subdivision local-deadline assignment: split each flow's
/// end-to-end deadline evenly across its hops (the simplest of the
/// paper-era "local allocation of end-to-end QoS" policies).
pub fn assign_even_deadlines(net: &mut Network, e2e: &[(FlowId, Rat)]) {
    for &(f, d) in e2e {
        let route = net.flow(f).route.clone();
        let share = d / Rat::from(route.len() as i64);
        for s in route {
            net.set_local_deadline(f, s, share);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{decomposed::Decomposed, DelayAnalysis};
    use dnc_net::{Discipline, Flow, Network, Server};
    use dnc_num::{int, rat};
    use dnc_traffic::TrafficSpec;

    fn tb(s: i64, num: i128, den: i128) -> Curve {
        Curve::token_bucket(int(s), Rat::new(num, den))
    }

    #[test]
    fn single_flow_feasibility_threshold() {
        // α = 2 + t/2 on a unit server: demand(t) = α(t − D) must stay
        // below t. At t = D: 2 ≤ D. So D = 2 feasible, D < 2 not.
        let a = tb(2, 1, 2);
        assert!(edf_schedulable(&[(a.clone(), int(2))], int(1)));
        assert!(!edf_schedulable(&[(a.clone(), rat(19, 10))], int(1)));
        // Deeper check: with D = 2, demand(t) = 2 + (t−2)/2 ≤ t for t ≥ 2 ✓.
        assert!(edf_schedulable(&[(a, int(3))], int(1)));
    }

    #[test]
    fn two_flow_interference() {
        // Two bursts of 2 at rate 1/4 each: D1 = 2 alone is fine, but
        // both at D = 2 demand 4 at t = 2 > 2.
        let a = tb(2, 1, 4);
        assert!(edf_schedulable(&[(a.clone(), int(2))], int(1)));
        assert!(!edf_schedulable(
            &[(a.clone(), int(2)), (a.clone(), int(2))],
            int(1)
        ));
        // Stagger the second deadline far enough: at t = D2 the demand is
        // 2 + (D2−2)/4 + 2 ≤ D2 -> D2 ≥ 14/3.
        assert!(edf_schedulable(
            &[(a.clone(), int(2)), (a.clone(), rat(14, 3))],
            int(1)
        ));
        assert!(!edf_schedulable(
            &[(a.clone(), int(2)), (a, rat(13, 3))],
            int(1)
        ));
    }

    #[test]
    fn unstable_rates_always_infeasible() {
        let a = tb(1, 3, 4);
        assert!(!edf_schedulable(
            &[(a.clone(), int(100)), (a, int(200))],
            int(1)
        ));
    }

    #[test]
    fn empty_is_trivially_schedulable() {
        assert!(edf_schedulable(&[], int(1)));
    }

    #[test]
    fn deadline_slack_finds_threshold() {
        let a = tb(2, 1, 4);
        let items = vec![(a.clone(), int(1)), (a, int(2))];
        // Infeasible as given (cf. two_flow_interference); slack > 1.
        assert!(!edf_schedulable(&items, int(1)));
        let s = deadline_slack(&items, int(1), 8, 16).expect("feasible at some scale");
        assert!(s > Rat::ONE);
        // The found scale is feasible, one grid step below is not.
        let scaled: Vec<_> = items.iter().map(|(a, d)| (a.clone(), *d * s)).collect();
        assert!(edf_schedulable(&scaled, int(1)));
        let below: Vec<_> = items
            .iter()
            .map(|(a, d)| (a.clone(), *d * (s - rat(1, 8))))
            .collect();
        assert!(!edf_schedulable(&below, int(1)));
    }

    #[test]
    fn decomposed_analysis_on_edf_server() {
        let mut net = Network::new();
        let s = net.add_server(Server {
            name: "edf".into(),
            rate: Rat::ONE,
            discipline: Discipline::Edf,
        });
        let urgent = net
            .add_flow(Flow {
                name: "urgent".into(),
                spec: TrafficSpec::token_bucket(int(1), rat(1, 8)),
                route: vec![s],
                priority: 0,
            })
            .unwrap();
        let relaxed = net
            .add_flow(Flow {
                name: "relaxed".into(),
                spec: TrafficSpec::token_bucket(int(4), rat(1, 4)),
                route: vec![s],
                priority: 0,
            })
            .unwrap();
        net.set_local_deadline(urgent, s, int(2));
        net.set_local_deadline(relaxed, s, int(12));
        let r = Decomposed::paper().analyze(&net).unwrap();
        assert_eq!(r.bound(urgent), int(2));
        assert_eq!(r.bound(relaxed), int(12));
        // Under FIFO the urgent flow would inherit the full shared bound
        // (total burst = 5 > 2): EDF protects it.
        let fifo_equiv = {
            let mut n2 = Network::new();
            let s2 = n2.add_server(Server::unit_fifo("fifo"));
            let u = n2
                .add_flow(Flow {
                    name: "urgent".into(),
                    spec: TrafficSpec::token_bucket(int(1), rat(1, 8)),
                    route: vec![s2],
                    priority: 0,
                })
                .unwrap();
            n2.add_flow(Flow {
                name: "relaxed".into(),
                spec: TrafficSpec::token_bucket(int(4), rat(1, 4)),
                route: vec![s2],
                priority: 0,
            })
            .unwrap();
            Decomposed::paper().analyze(&n2).unwrap().bound(u)
        };
        assert!(r.bound(urgent) < fifo_equiv);
    }

    #[test]
    fn infeasible_edf_is_an_error_not_a_bound() {
        let mut net = Network::new();
        let s = net.add_server(Server {
            name: "edf".into(),
            rate: Rat::ONE,
            discipline: Discipline::Edf,
        });
        for _ in 0..2 {
            let f = net
                .add_flow(Flow {
                    name: "f".into(),
                    spec: TrafficSpec::token_bucket(int(2), rat(1, 4)),
                    route: vec![s],
                    priority: 0,
                })
                .unwrap();
            net.set_local_deadline(f, s, int(2));
        }
        assert!(matches!(
            Decomposed::paper().analyze(&net),
            Err(AnalysisError::Unsupported(_))
        ));
    }

    #[test]
    fn missing_deadline_rejected_at_validation() {
        let mut net = Network::new();
        let s = net.add_server(Server {
            name: "edf".into(),
            rate: Rat::ONE,
            discipline: Discipline::Edf,
        });
        net.add_flow(Flow {
            name: "f".into(),
            spec: TrafficSpec::token_bucket(int(1), rat(1, 8)),
            route: vec![s],
            priority: 0,
        })
        .unwrap();
        assert!(net.validate().is_err());
    }

    #[test]
    fn even_assignment_splits_e2e() {
        let mut net = Network::new();
        let a = net.add_server(Server {
            name: "e1".into(),
            rate: Rat::ONE,
            discipline: Discipline::Edf,
        });
        let b = net.add_server(Server {
            name: "e2".into(),
            rate: Rat::ONE,
            discipline: Discipline::Edf,
        });
        let f = net
            .add_flow(Flow {
                name: "f".into(),
                spec: TrafficSpec::token_bucket(int(1), rat(1, 8)),
                route: vec![a, b],
                priority: 0,
            })
            .unwrap();
        assign_even_deadlines(&mut net, &[(f, int(10))]);
        assert_eq!(net.local_deadline(f, a), Some(int(5)));
        assert_eq!(net.local_deadline(f, b), Some(int(5)));
        let r = Decomposed::paper().analyze(&net).unwrap();
        assert_eq!(r.bound(f), int(10));
    }
}
