//! Guarded analysis with graceful degradation.
//!
//! Production analyses cannot take the paper's nominal assumptions on
//! faith: an adversarial topology can blow up the curve algebra
//! (Bouillard's accuracy-vs-tractability trade-off), a cyclic network can
//! sit past the time-stopping stability region, and a single diverging
//! run must not take down a batch. The [`ResilientRunner`] therefore runs
//! a **fallback chain** under one shared [`Guard`] budget:
//!
//! 1. **Integrated** — the paper's algorithm, tightest bounds;
//! 2. **Decomposed** — Cruz decomposition (for cyclic networks: its
//!    time-stopping fixed point), cheaper and more robust;
//! 3. **Unbounded** — the explicit honest answer: *no valid bound was
//!    produced within budget*. Never a silently wrong number.
//!
//! Every attempt runs with the guard's thread-local curve limits
//! installed and is isolated with `catch_unwind`, so both cooperative
//! budget errors and `BudgetBreach` panics (and any genuine algorithm
//! panic) degrade to the next tier instead of propagating. The
//! [`ResilientReport`] records which tier answered and what happened to
//! every tier tried.

use crate::cache::AnalysisCache;
use crate::cyclic::TimeStopping;
use crate::decomposed::Decomposed;
use crate::guard::{ArmedGuard, Guard};
use crate::integrated::{GroupTrace, Integrated};
use crate::{AnalysisError, AnalysisReport, DelayAnalysis, OutputCap};
use dnc_curves::limits;
use dnc_net::{Network, ServerId};
use std::cell::RefCell;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

/// Degradation tier that produced (or failed to produce) an answer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Tier {
    /// The paper's Algorithm Integrated (tightest).
    Integrated,
    /// Cruz decomposition — plain on feedforward networks, time-stopping
    /// fixed point on cyclic ones.
    Decomposed,
    /// No valid bound within budget: the explicit honest answer.
    Unbounded,
}

impl fmt::Display for Tier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tier::Integrated => write!(f, "integrated"),
            Tier::Decomposed => write!(f, "decomposed"),
            Tier::Unbounded => write!(f, "unbounded"),
        }
    }
}

/// What happened to one tier of the fallback chain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// The tier produced valid bounds.
    Answered,
    /// The budget ran out (deadline, op/segment/iteration cap, or
    /// cancellation) before the tier finished.
    Budget(String),
    /// The tier failed with a structured analysis error (divergence,
    /// instability, overload, …).
    Failed(String),
    /// The tier panicked (a genuine bug, not a budget breach) and was
    /// isolated by `catch_unwind`.
    Panicked(String),
    /// The tier does not apply to this network (e.g. Integrated on a
    /// cyclic network).
    Inapplicable(String),
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Outcome::Answered => write!(f, "answered"),
            Outcome::Budget(m) => write!(f, "budget exhausted: {m}"),
            Outcome::Failed(m) => write!(f, "failed: {m}"),
            Outcome::Panicked(m) => write!(f, "panicked: {m}"),
            Outcome::Inapplicable(m) => write!(f, "inapplicable: {m}"),
        }
    }
}

/// One attempted tier: which algorithm ran, how it ended, how long it
/// took (microseconds, saturating).
#[derive(Clone, Debug)]
pub struct Attempt {
    /// The degradation tier.
    pub tier: Tier,
    /// The concrete algorithm that ran at this tier.
    pub algorithm: &'static str,
    /// How the attempt ended.
    pub outcome: Outcome,
    /// Wall time spent in this attempt, in microseconds.
    pub wall_us: u64,
}

/// The structured result of a guarded, degradable analysis run.
#[derive(Clone, Debug)]
pub struct ResilientReport {
    tier: Tier,
    bounds: Option<AnalysisReport>,
    attempts: Vec<Attempt>,
}

impl ResilientReport {
    /// The tier that answered ([`Tier::Unbounded`] when none did).
    pub fn tier(&self) -> Tier {
        self.tier
    }

    /// The bounds, `Some` exactly when [`ResilientReport::tier`] is not
    /// [`Tier::Unbounded`].
    pub fn bounds(&self) -> Option<&AnalysisReport> {
        self.bounds.as_ref()
    }

    /// Everything that was tried, in chain order.
    pub fn attempts(&self) -> &[Attempt] {
        &self.attempts
    }

    /// A one-line human summary of the chain, e.g.
    /// `integrated: budget exhausted: … → decomposed: answered`.
    pub fn chain_summary(&self) -> String {
        self.attempts
            .iter()
            .map(|a| format!("{}: {}", a.tier, a.outcome))
            .collect::<Vec<_>>()
            .join(" → ")
    }
}

/// Optional fast-path inputs for [`ResilientRunner::analyze_fast`]:
/// shared memo tables, and (when re-certifying after a small mutation) the
/// previous run's [`GroupTrace`] plus the servers whose inputs changed.
#[derive(Clone, Copy, Debug)]
pub struct FastPath<'a> {
    /// Memo tables shared across runs (pair bounds, local delays,
    /// propagated envelopes).
    pub cache: &'a AnalysisCache,
    /// `Some((trace, seed))` to attempt an incremental splice: `trace` is
    /// the previous accepted analysis of this network, `seed` the servers
    /// whose inputs changed since (e.g. the mutated flow's route).
    pub prev: Option<(&'a GroupTrace, &'a [ServerId])>,
}

/// The result of [`ResilientRunner::analyze_fast`]: the resilient report
/// plus the artifacts the next incremental run needs.
#[derive(Clone, Debug)]
pub struct FastReport {
    /// The guarded, degradable analysis result.
    pub report: ResilientReport,
    /// The per-group trace of the answering Integrated run (`None` when a
    /// decomposition tier answered — incremental splicing must restart
    /// from a full Integrated pass).
    pub trace: Option<GroupTrace>,
    /// `Some((dirty, total))` when the incremental tier answered: how
    /// many pairing groups were re-analyzed out of how many.
    pub dirty_units: Option<(usize, usize)>,
}

/// Runs the Integrated → Decomposed → Unbounded fallback chain under a
/// shared [`Guard`].
#[derive(Clone, Debug)]
pub struct ResilientRunner {
    /// The budget shared by the whole chain.
    pub guard: Guard,
    /// Output re-characterization model for the decomposition tiers.
    pub cap: OutputCap,
    /// Iteration budget for the time-stopping fixed point on cyclic
    /// networks (further clamped by the guard's `iter_cap`).
    pub max_iters: usize,
    /// Scoped-thread fan-out width for the parallel analyses (1 =
    /// sequential; results are bit-identical at any width).
    pub workers: usize,
}

impl Default for ResilientRunner {
    fn default() -> Self {
        ResilientRunner {
            guard: Guard::interactive(),
            cap: OutputCap::Shift,
            max_iters: TimeStopping::default().max_iters,
            workers: 1,
        }
    }
}

impl ResilientRunner {
    /// A runner with the given guard and paper-default curve models.
    pub fn new(guard: Guard) -> ResilientRunner {
        ResilientRunner {
            guard,
            ..ResilientRunner::default()
        }
    }

    /// Run the fallback chain. Never panics and never returns an invalid
    /// bound: the result either carries bounds from the recorded tier or
    /// is an explicit [`Tier::Unbounded`].
    pub fn analyze(&self, net: &Network) -> ResilientReport {
        self.analyze_fast(net, None).report
    }

    /// [`ResilientRunner::analyze`] with the fast path enabled: memoized
    /// curve operations via `fast.cache`, and — when `fast.prev` carries
    /// the previous run's trace — an extra **incremental** tier that
    /// re-analyzes only the pairing groups affected by the seed servers
    /// and splices the previous bounds for the rest. The incremental tier
    /// degrades to a full Integrated pass (and onward down the chain)
    /// whenever the pairing partition changed, so it never alters *what*
    /// is answered, only how fast.
    pub fn analyze_fast(&self, net: &Network, fast: Option<FastPath<'_>>) -> FastReport {
        let _span = dnc_telemetry::span("algo.resilient");
        let armed = self.guard.arm();
        let feedforward = net.topological_order().is_ok();
        let mut attempts: Vec<Attempt> = Vec::new();
        let cache = fast.as_ref().map(|f| f.cache);
        let integrated = Integrated::paper().with_workers(self.workers);

        // Tier 1a: incremental splice off the previous trace (only when
        // the caller supplied one and the network is still feedforward).
        if feedforward {
            if let Some((prev, seed)) = fast.as_ref().and_then(|f| f.prev) {
                let extras: RefCell<Option<(GroupTrace, usize, usize)>> = RefCell::new(None);
                let ((outcome, wall_us), bounds) = run_attempt(&armed, || {
                    match integrated.analyze_incremental(net, prev, seed, cache)? {
                        Some(out) => {
                            *extras.borrow_mut() =
                                Some((out.trace, out.dirty_units, out.total_units));
                            Ok((out.report, None))
                        }
                        None => Err(AnalysisError::Unsupported(
                            "pairing partition changed; incremental splice inapplicable".into(),
                        )),
                    }
                });
                // A changed partition is not a failure of this network,
                // just of the shortcut — record it as inapplicable.
                let outcome = match outcome {
                    Outcome::Failed(m) if m.contains("incremental splice inapplicable") => {
                        Outcome::Inapplicable(m)
                    }
                    o => o,
                };
                let answered = matches!(outcome, Outcome::Answered);
                attempts.push(Attempt {
                    tier: Tier::Integrated,
                    algorithm: "integrated-incremental",
                    outcome,
                    wall_us,
                });
                if answered {
                    if let Some(b) = bounds {
                        let (trace, dirty, total) = extras
                            .into_inner()
                            .expect("answered incremental has a trace"); // audit: allow(expect, extras is written before every Ok return above)
                        dnc_telemetry::counter("core.resilient.incremental_answers", 1);
                        return FastReport {
                            report: ResilientReport {
                                tier: Tier::Integrated,
                                bounds: Some(b),
                                attempts,
                            },
                            trace: Some(trace),
                            dirty_units: Some((dirty, total)),
                        };
                    }
                }
            }
        }

        // Tier 1: Integrated (feedforward only).
        if feedforward {
            let extras: RefCell<Option<GroupTrace>> = RefCell::new(None);
            let ((outcome, wall_us), bounds) = run_attempt(&armed, || {
                let (report, trace) = integrated.analyze_traced(net, cache)?;
                *extras.borrow_mut() = Some(trace);
                Ok((report, None))
            });
            let answered = matches!(outcome, Outcome::Answered);
            attempts.push(Attempt {
                tier: Tier::Integrated,
                algorithm: "integrated",
                outcome,
                wall_us,
            });
            if answered {
                if let Some(b) = bounds {
                    dnc_telemetry::counter("core.resilient.integrated_answers", 1);
                    return FastReport {
                        report: ResilientReport {
                            tier: Tier::Integrated,
                            bounds: Some(b),
                            attempts,
                        },
                        trace: extras.into_inner(),
                        dirty_units: None,
                    };
                }
            }
        } else {
            attempts.push(Attempt {
                tier: Tier::Integrated,
                algorithm: "integrated",
                outcome: Outcome::Inapplicable("cyclic network (not feedforward)".into()),
                wall_us: 0,
            });
        }

        // Tier 2: Decomposed — plain on feedforward, time-stopping on
        // cyclic networks.
        let (algorithm, result): (&'static str, _) = if feedforward {
            let decomposed = Decomposed { cap: self.cap };
            (
                "decomposed",
                run_attempt(&armed, || decomposed.analyze(net).map(|r| (r, None))),
            )
        } else {
            let ts = TimeStopping {
                cap: self.cap,
                max_iters: self.max_iters,
                workers: self.workers,
                ..TimeStopping::default()
            };
            (
                "time-stopping",
                run_attempt(&armed, || {
                    let rep = ts.analyze_guarded(net, &armed)?;
                    let iters = rep.iterations;
                    match rep.into_bounds() {
                        Some(b) => Ok((b, Some(iters))),
                        None => Err(AnalysisError::Unsupported(format!(
                            "time-stopping did not converge after {iters} iterations"
                        ))),
                    }
                }),
            )
        };
        let ((outcome, wall_us), bounds) = result;
        let answered = matches!(outcome, Outcome::Answered);
        attempts.push(Attempt {
            tier: Tier::Decomposed,
            algorithm,
            outcome,
            wall_us,
        });
        if answered {
            if let Some(b) = bounds {
                dnc_telemetry::counter("core.resilient.decomposed_answers", 1);
                return FastReport {
                    report: ResilientReport {
                        tier: Tier::Decomposed,
                        bounds: Some(b),
                        attempts,
                    },
                    trace: None,
                    dirty_units: None,
                };
            }
        }

        // Tier 3: the explicit honest answer.
        dnc_telemetry::counter("core.resilient.unbounded_answers", 1);
        FastReport {
            report: ResilientReport {
                tier: Tier::Unbounded,
                bounds: None,
                attempts,
            },
            trace: None,
            dirty_units: None,
        }
    }
}

/// Run one attempt with the guard's curve limits installed and full
/// panic isolation. The closure returns the bounds plus optional
/// iteration metadata (unused in the outcome, reserved for telemetry).
#[allow(clippy::type_complexity)]
fn run_attempt<F>(armed: &ArmedGuard, f: F) -> ((Outcome, u64), Option<AnalysisReport>)
where
    F: FnOnce() -> Result<(AnalysisReport, Option<usize>), AnalysisError>,
{
    // audit: allow(det-wall-clock, attempt wall-time goes to telemetry only; the certified bound is unaffected)
    let started = Instant::now();
    let result = {
        let _limits = limits::install(armed.limits());
        catch_unwind(AssertUnwindSafe(f))
    };
    let wall_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
    let outcome = match result {
        Ok(Ok((bounds, _iters))) => return ((Outcome::Answered, wall_us), Some(bounds)),
        Ok(Err(AnalysisError::Budget(m))) => Outcome::Budget(m),
        Ok(Err(e)) => Outcome::Failed(e.to_string()),
        Err(payload) => match limits::breach_of(payload.as_ref()) {
            Some(breach) => Outcome::Budget(breach.to_string()),
            None => Outcome::Panicked(panic_message(payload.as_ref())),
        },
    };
    ((outcome, wall_us), None)
}

/// Best-effort extraction of a human-readable message from a panic
/// payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnc_net::builders;
    use dnc_net::{Flow, Network, Server};
    use dnc_num::{int, rat};
    use dnc_traffic::TrafficSpec;
    use std::time::Duration;

    fn tandem_net() -> Network {
        builders::tandem(4, int(1), rat(3, 16), builders::TandemOptions::default()).net
    }

    /// The 5-ring past the time-stopping amplification threshold (same
    /// parameters as cyclic.rs's divergence test).
    fn heavy_ring() -> Network {
        let mut net = Network::new();
        let s: Vec<_> = (0..5)
            .map(|i| net.add_server(Server::unit_fifo(format!("r{i}"))))
            .collect();
        for k in 0..5 {
            let route: Vec<_> = (0..5).map(|j| s[(k + j) % 5]).collect();
            net.add_flow(Flow {
                name: format!("f{k}"),
                spec: TrafficSpec::token_bucket(int(2), rat(3, 20)),
                route,
                priority: 0,
            })
            .unwrap();
        }
        net
    }

    #[test]
    fn feedforward_answers_at_integrated_tier() {
        let net = tandem_net();
        let r = ResilientRunner::default().analyze(&net);
        assert_eq!(r.tier(), Tier::Integrated);
        let bounds = r.bounds().expect("integrated tier has bounds");
        let direct = Integrated::paper().analyze(&net).unwrap();
        for (a, b) in bounds.flows.iter().zip(direct.flows.iter()) {
            assert_eq!(a.e2e, b.e2e);
        }
        assert_eq!(r.attempts().len(), 1);
        assert_eq!(r.attempts()[0].outcome, Outcome::Answered);
    }

    #[test]
    fn tiny_op_budget_falls_back_to_decomposed() {
        // Integrated burns curve ops on pair bounds; an op budget that
        // exhausts it mid-run must degrade, and each tier gets a fresh
        // op counter, so the cheaper Decomposed pass can still finish.
        let net = tandem_net();
        let direct = Decomposed::paper().analyze(&net).unwrap();
        let mut found_fallback = false;
        for cap in [4u64, 8, 16, 32, 64] {
            let runner = ResilientRunner::new(Guard::default().with_op_cap(cap));
            let r = runner.analyze(&net);
            assert_ne!(
                r.tier(),
                Tier::Integrated,
                "op cap {cap} unexpectedly let Integrated finish"
            );
            if r.tier() == Tier::Decomposed {
                let bounds = r.bounds().expect("decomposed tier has bounds");
                for (a, b) in bounds.flows.iter().zip(direct.flows.iter()) {
                    assert_eq!(a.e2e, b.e2e, "fallback must equal Decomposed::analyze");
                }
                assert!(matches!(
                    r.attempts()[0].outcome,
                    Outcome::Budget(_) | Outcome::Failed(_)
                ));
                found_fallback = true;
                break;
            }
        }
        assert!(
            found_fallback,
            "some op cap must exhaust Integrated but let Decomposed answer"
        );
    }

    #[test]
    fn heavy_ring_degrades_to_explicit_unbounded() {
        let net = heavy_ring();
        let deadline = Duration::from_secs(10);
        let started = Instant::now();
        let runner = ResilientRunner {
            guard: Guard::default().with_deadline(deadline).with_iter_cap(40),
            ..ResilientRunner::default()
        };
        let r = runner.analyze(&net);
        assert!(started.elapsed() < deadline, "must finish within deadline");
        assert_eq!(r.tier(), Tier::Unbounded);
        assert!(r.bounds().is_none(), "no silent invalid bound");
        assert!(matches!(r.attempts()[0].outcome, Outcome::Inapplicable(_)));
        assert!(matches!(
            r.attempts()[1].outcome,
            Outcome::Failed(_) | Outcome::Budget(_)
        ));
        assert!(!r.chain_summary().is_empty());
    }

    #[test]
    fn light_ring_answers_at_decomposed_tier() {
        let spec = TrafficSpec::paper_source(int(2), rat(1, 8));
        let (net, _, _) = builders::ring(4, 2, &spec);
        let r = ResilientRunner::default().analyze(&net);
        assert_eq!(r.tier(), Tier::Decomposed);
        let bounds = r.bounds().expect("converged ring has bounds");
        let direct = TimeStopping::default().analyze(&net).unwrap();
        let direct = direct.bounds().unwrap();
        for (a, b) in bounds.flows.iter().zip(direct.flows.iter()) {
            assert_eq!(a.e2e, b.e2e);
        }
        assert!(matches!(r.attempts()[0].outcome, Outcome::Inapplicable(_)));
    }

    #[test]
    fn cancellation_degrades_before_finishing() {
        let tok = dnc_curves::limits::CancelToken::new();
        tok.cancel(); // cancelled before we even start
        let runner = ResilientRunner::new(Guard::default().with_cancel(tok));
        let r = runner.analyze(&tandem_net());
        assert_eq!(r.tier(), Tier::Unbounded);
        for a in r.attempts() {
            assert!(
                matches!(a.outcome, Outcome::Budget(_)),
                "expected budget outcome, got {}",
                a.outcome
            );
        }
    }

    #[test]
    fn all_tiers_failing_preserves_order_and_reasons() {
        // Pre-cancelled token: every tier is tried, every tier breaches,
        // and the report must keep the whole story — tier order intact,
        // one attempt per tier, each with its own failure reason.
        let tok = dnc_curves::limits::CancelToken::new();
        tok.cancel();
        let runner = ResilientRunner::new(Guard::default().with_cancel(tok));
        let r = runner.analyze(&tandem_net());
        assert_eq!(r.tier(), Tier::Unbounded);
        assert!(r.bounds().is_none());
        let tiers: Vec<Tier> = r.attempts().iter().map(|a| a.tier).collect();
        assert_eq!(tiers, [Tier::Integrated, Tier::Decomposed]);
        for a in r.attempts() {
            let Outcome::Budget(reason) = &a.outcome else {
                panic!("expected budget breach at {}, got {}", a.tier, a.outcome);
            };
            assert!(!reason.is_empty(), "per-tier reason must be preserved");
        }
        // The chain summary lists the tiers in chain order with their
        // individual reasons, joined by " → ".
        let summary = r.chain_summary();
        let head = summary
            .find("integrated: budget exhausted")
            .unwrap_or(usize::MAX);
        let tail = summary
            .find("decomposed: budget exhausted")
            .unwrap_or(usize::MAX);
        assert!(
            head < tail && tail != usize::MAX,
            "summary must order integrated before decomposed: {summary}"
        );
        assert_eq!(summary.matches(" → ").count(), 1, "{summary}");
    }

    #[test]
    fn fast_path_incremental_answers_and_matches_full() {
        let t = builders::tandem(4, int(1), rat(3, 16), builders::TandemOptions::default());
        let mut net = t.net;
        let runner = ResilientRunner {
            workers: 2,
            ..ResilientRunner::default()
        };
        let cache = AnalysisCache::new();
        let first = runner.analyze_fast(
            &net,
            Some(FastPath {
                cache: &cache,
                prev: None,
            }),
        );
        assert_eq!(first.report.tier(), Tier::Integrated);
        let trace = first.trace.expect("integrated answer carries a trace");

        net.add_flow(Flow {
            name: "extra".into(),
            spec: TrafficSpec::token_bucket(int(1), rat(1, 16)),
            route: vec![t.middle[1]],
            priority: 0,
        })
        .unwrap();
        let seed = [t.middle[1]];
        let second = runner.analyze_fast(
            &net,
            Some(FastPath {
                cache: &cache,
                prev: Some((&trace, &seed)),
            }),
        );
        assert_eq!(second.report.tier(), Tier::Integrated);
        assert_eq!(
            second.report.attempts()[0].algorithm,
            "integrated-incremental"
        );
        assert_eq!(second.report.attempts()[0].outcome, Outcome::Answered);
        let (dirty, total) = second.dirty_units.expect("incremental reports dirty count");
        assert!(0 < dirty && dirty <= total, "dirty {dirty} / total {total}");
        assert!(
            second.trace.is_some(),
            "incremental answer refreshes the trace"
        );

        let full = Integrated::paper().analyze(&net).unwrap();
        let bounds = second.report.bounds().expect("incremental tier has bounds");
        for (a, b) in bounds.flows.iter().zip(full.flows.iter()) {
            assert_eq!(a.e2e, b.e2e, "splice must equal the from-scratch bound");
        }
    }

    #[test]
    fn overloaded_network_fails_cleanly() {
        // Overload is a structured failure at every tier, never a panic.
        let mut net = Network::new();
        let s = net.add_server(Server::unit_fifo("s0"));
        net.add_flow(Flow {
            name: "f0".into(),
            spec: TrafficSpec::token_bucket(int(1), int(2)),
            route: vec![s],
            priority: 0,
        })
        .unwrap();
        let r = ResilientRunner::default().analyze(&net);
        assert_eq!(r.tier(), Tier::Unbounded);
        assert!(r
            .attempts()
            .iter()
            .all(|a| matches!(a.outcome, Outcome::Failed(_))));
    }
}
