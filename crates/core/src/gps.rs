//! Guaranteed-rate (GPS / idealized fair-queueing) analysis — the class
//! of disciplines the paper *contrasts* FIFO with: "for guaranteed-rate
//! scheduling algorithms, such as fair queueing, delay computation based
//! on Cruz' service curve model performs very well."
//!
//! Under fluid GPS with reservations `r_f` (`Σ r_f ≤ C`), every
//! backlogged flow is served at rate at least `r_f`. A *packetized*
//! implementation (PGPS/WFQ, or this workspace's slotted simulator) can
//! fall one cell behind the fluid schedule, so each flow owns the
//! **strict per-flow service curve**
//!
//! ```text
//! β_f(t) = [ r_f · t − 1 ]⁺  =  rate-latency(r_f, 1/r_f)
//! ```
//!
//! (the cell-size analogue of Parekh–Gallager's `L/r` terms). No
//! residual-curve pessimism, no aggregate coupling. Consequently:
//!
//! * the local delay is `h(α_f, β_f)` per flow;
//! * the end-to-end service curve convolves to
//!   `rate-latency(min_k r_{f,k}, Σ_k 1/r_{f,k})`, so the service-curve
//!   method pays the **burst** once (only the per-hop packetization
//!   latencies accumulate) — the exact opposite of its FIFO behaviour
//!   (Figure 4);
//! * Algorithm Integrated has nothing left to integrate: per-flow curves
//!   already decouple the servers.

use crate::AnalysisError;
use dnc_curves::{bounds, Curve};
use dnc_net::{FlowId, Network, ServerId};
use dnc_num::Rat;

/// Per-flow local delays at a GPS server: `h(α_f, β_f)` with the
/// packetized per-flow curve `β_f = rate-latency(r_f, 1/r_f)`, for each
/// incident flow with its (nondecreasing arrival) constraint at this
/// server.
pub fn local_delays(
    net: &Network,
    server: ServerId,
    curves: &[(FlowId, Curve)],
) -> Result<Vec<(FlowId, Rat)>, AnalysisError> {
    curves
        .iter()
        .map(|(f, c)| {
            bounds::hdev(c, &service_curve(net, *f, server))
                .map(|d| (*f, d))
                .map_err(|e| AnalysisError::at(server, e))
        })
        .collect()
}

/// The per-flow service curve a (packetized) GPS server guarantees:
/// `rate-latency(r_f, 1/r_f)` — convex and nondecreasing.
pub fn service_curve(net: &Network, flow: FlowId, server: ServerId) -> Curve {
    let r = net.reserved_rate(flow, server);
    Curve::rate_latency(r, r.recip())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{decomposed::Decomposed, service_curve::ServiceCurve, DelayAnalysis};
    use dnc_net::{Discipline, Flow, Network, Server};
    use dnc_num::{int, rat};
    use dnc_traffic::TrafficSpec;

    fn gps_chain(n: usize, specs: &[(TrafficSpec, Rat)]) -> (Network, Vec<FlowId>) {
        let mut net = Network::new();
        let servers: Vec<_> = (0..n)
            .map(|i| {
                net.add_server(Server {
                    name: format!("g{i}"),
                    rate: Rat::ONE,
                    discipline: Discipline::Gps,
                })
            })
            .collect();
        let flows: Vec<FlowId> = specs
            .iter()
            .enumerate()
            .map(|(i, (spec, _))| {
                net.add_flow(Flow {
                    name: format!("f{i}"),
                    spec: spec.clone(),
                    route: servers.clone(),
                    priority: 0,
                })
                .unwrap()
            })
            .collect();
        for (f, (_, r)) in flows.iter().zip(specs.iter()) {
            for &s in &servers {
                net.reserve(*f, s, *r);
            }
        }
        (net, flows)
    }

    #[test]
    fn local_delay_is_burst_over_reservation() {
        // σ = 4 uncapped at reserved rate 1/2: fluid part 8 plus the
        // one-cell packetization latency 1/r = 2.
        let (net, flows) = gps_chain(
            1,
            &[
                (TrafficSpec::token_bucket(int(4), rat(1, 4)), rat(1, 2)),
                (TrafficSpec::token_bucket(int(2), rat(1, 4)), rat(1, 2)),
            ],
        );
        let r = Decomposed::paper().analyze(&net).unwrap();
        assert_eq!(r.bound(flows[0]), int(10));
        assert_eq!(r.bound(flows[1]), int(6));
    }

    #[test]
    fn service_curve_pays_burst_once_on_gps() {
        // The paper's premise: on a guaranteed-rate chain the service
        // curve method beats decomposition (which re-pays the burst at
        // every hop).
        let (net, flows) = gps_chain(
            4,
            &[
                (TrafficSpec::token_bucket(int(4), rat(1, 8)), rat(1, 2)),
                (TrafficSpec::token_bucket(int(4), rat(1, 8)), rat(1, 2)),
            ],
        );
        let sc = ServiceCurve::paper().analyze(&net).unwrap();
        let dec = Decomposed::paper().analyze(&net).unwrap();
        // Service curve: burst/rate once (8) plus four packetization
        // latencies (4 · 2). Decomposed: re-pays the growing burst at
        // every hop.
        assert_eq!(sc.bound(flows[0]), int(16));
        assert!(dec.bound(flows[0]) > sc.bound(flows[0]) * Rat::TWO);
    }

    #[test]
    fn default_reservation_is_sustained_rate() {
        let mut net = Network::new();
        let s = net.add_server(Server {
            name: "g".into(),
            rate: Rat::ONE,
            discipline: Discipline::Gps,
        });
        let f = net
            .add_flow(Flow {
                name: "f".into(),
                spec: TrafficSpec::token_bucket(int(1), rat(1, 4)),
                route: vec![s],
                priority: 0,
            })
            .unwrap();
        assert_eq!(net.reserved_rate(f, s), rat(1, 4));
        // Delay with the default reservation: σ/ρ + 1/ρ = 4 + 4.
        let r = Decomposed::paper().analyze(&net).unwrap();
        assert_eq!(r.bound(f), int(8));
    }

    #[test]
    fn over_reservation_rejected() {
        let (mut net, flows) = gps_chain(
            1,
            &[(TrafficSpec::token_bucket(int(1), rat(1, 4)), rat(3, 4))],
        );
        assert!(net.validate().is_ok());
        net.reserve(flows[0], dnc_net::ServerId(0), rat(5, 4));
        assert!(net.validate().is_err());
    }
}
