//! Connection admission control — the application the paper's analysis
//! exists for: a bounded-delay service admits a connection only if the
//! analysis can certify every affected deadline.
//!
//! A tighter analysis admits more connections at the same deadlines; the
//! paper's *effectiveness* claim translates directly into
//! [`max_admissible_utilization`] being larger for Algorithm Integrated
//! than for Algorithm Decomposed (and much larger than for Algorithm
//! Service Curve).

use crate::{AnalysisError, AnalysisReport, DelayAnalysis};
use dnc_net::builders::{tandem, TandemOptions};
use dnc_net::{Flow, FlowId, Network};
use dnc_num::Rat;

/// A deadline attached to a connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Deadline {
    /// The connection.
    pub flow: FlowId,
    /// Its end-to-end delay requirement, in ticks.
    pub deadline: Rat,
}

/// The full evidence from certifying a deadline set: the analysis
/// report and every deadline it failed to meet.
#[derive(Clone, Debug)]
pub struct Certification {
    /// The report the verdict is based on.
    pub report: AnalysisReport,
    /// Deadlines whose certified bound exceeds the requirement (empty
    /// on success).
    pub violations: Vec<Deadline>,
}

impl Certification {
    /// True when every deadline was certified.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Certify every listed deadline on `net`, returning the report plus
/// the violated subset.
pub fn certify(
    net: &Network,
    deadlines: &[Deadline],
    analysis: &dyn DelayAnalysis,
) -> Result<Certification, AnalysisError> {
    let report = analysis.analyze(net)?;
    let violations = deadlines
        .iter()
        .filter(|d| report.bound(d.flow) > d.deadline)
        .copied()
        .collect();
    Ok(Certification { report, violations })
}

/// Check whether every listed deadline is certified by `analysis` on
/// `net`. Unlike [`certify`] this stops at the first violated deadline
/// instead of collecting the full violation vector.
pub fn all_deadlines_met(
    net: &Network,
    deadlines: &[Deadline],
    analysis: &dyn DelayAnalysis,
) -> Result<bool, AnalysisError> {
    let report = analysis.analyze(net)?;
    Ok(deadlines.iter().all(|d| report.bound(d.flow) <= d.deadline))
}

/// A successful admission: the mutated network, the new flow's id, and
/// the report that certified every deadline — callers print bounds from
/// [`Admission::report`] instead of re-running the analysis.
#[derive(Clone, Debug)]
pub struct Admission {
    /// The network with the candidate admitted.
    pub net: Network,
    /// The admitted flow's id in [`Admission::net`].
    pub flow: FlowId,
    /// The certifying analysis report.
    pub report: AnalysisReport,
}

/// The admission-control test: may `candidate` join `net` without breaking
/// any existing deadline or its own? Returns the admitted network, flow
/// id, and certifying report on success.
///
/// An analysis failure caused by the candidate (e.g. it overloads a
/// server) is a rejection, not an error.
pub fn try_admit(
    net: &Network,
    candidate: Flow,
    candidate_deadline: Rat,
    existing: &[Deadline],
    analysis: &dyn DelayAnalysis,
) -> Result<Option<Admission>, AnalysisError> {
    try_admit_into(
        net.clone(),
        candidate,
        candidate_deadline,
        existing,
        analysis,
    )
}

/// [`try_admit`] over an **owned** network: callers that already hold a
/// scratch copy (e.g. a churn engine's staged clone) avoid a second
/// whole-network clone on every admission test. On success the trial
/// network is returned inside the [`Admission`]; on rejection it is
/// dropped (the caller's source of truth was never mutated).
pub fn try_admit_into(
    mut trial: Network,
    candidate: Flow,
    candidate_deadline: Rat,
    existing: &[Deadline],
    analysis: &dyn DelayAnalysis,
) -> Result<Option<Admission>, AnalysisError> {
    let id = match trial.add_flow(candidate) {
        Ok(id) => id,
        Err(_) => return Ok(None),
    };
    let report = match analysis.analyze(&trial) {
        Ok(r) => r,
        Err(AnalysisError::Network(_)) | Err(AnalysisError::Curve { .. }) => return Ok(None),
        Err(e) => return Err(e),
    };
    let ok = report.bound(id) <= candidate_deadline
        && existing.iter().all(|d| report.bound(d.flow) <= d.deadline);
    Ok(ok.then_some(Admission {
        net: trial,
        flow: id,
        report,
    }))
}

/// The release counterpart: remove `flow` from `net` and re-certify the
/// `remaining` deadlines (given in the **post-removal** id space — flow
/// ids above the removed one shift down by one, see
/// [`Network::remove_flow`]). Returns the shrunk network and the
/// certifying report, or `None` when the remaining set no longer
/// certifies (releases can reshuffle priorities/reservations, so this
/// is checked, not assumed).
///
/// # Errors
/// An unknown flow id is a [`NetworkError`](dnc_net::NetworkError)
/// passed through as [`AnalysisError::Network`]; analysis failures on
/// the shrunk network propagate.
pub fn try_release(
    net: &Network,
    flow: FlowId,
    remaining: &[Deadline],
    analysis: &dyn DelayAnalysis,
) -> Result<Option<(Network, AnalysisReport)>, AnalysisError> {
    let mut trial = net.clone();
    trial.remove_flow(flow).map_err(AnalysisError::Network)?;
    let cert = certify(&trial, remaining, analysis)?;
    Ok(cert.ok().then_some((trial, cert.report)))
}

/// The largest tandem work load `U = k/resolution` (interior-link
/// utilization) at which `analysis` still certifies `deadline` for
/// Connection 0 on the `n`-switch tandem with bucket size `sigma`.
/// Returns `None` when even the lightest grid point fails.
pub fn max_admissible_utilization(
    n: usize,
    sigma: Rat,
    deadline: Rat,
    analysis: &dyn DelayAnalysis,
    resolution: u32,
) -> Option<Rat> {
    assert!(resolution >= 2);
    let mut best: Option<Rat> = None;
    for k in 1..resolution {
        let u = Rat::new(k as i128, resolution as i128);
        let rho = u / Rat::from(4); // interior links carry 4 connections
        let t = tandem(n, sigma, rho, TandemOptions::default());
        match analysis.analyze(&t.net) {
            Ok(report) if report.bound(t.conn0) <= deadline => best = Some(u),
            _ => break, // bounds are monotone in load; stop at first failure
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomposed::Decomposed;
    use crate::integrated::Integrated;
    use crate::service_curve::ServiceCurve;
    use dnc_net::builders;
    use dnc_num::{int, rat};
    use dnc_traffic::TrafficSpec;

    #[test]
    fn deadline_check_basic() {
        let t = builders::tandem(2, int(1), rat(1, 16), TandemOptions::default());
        let loose = [Deadline {
            flow: t.conn0,
            deadline: int(100),
        }];
        let tight = [Deadline {
            flow: t.conn0,
            deadline: rat(1, 100),
        }];
        let alg = Decomposed::paper();
        assert!(all_deadlines_met(&t.net, &loose, &alg).unwrap());
        assert!(!all_deadlines_met(&t.net, &tight, &alg).unwrap());
    }

    #[test]
    fn try_admit_accepts_and_rejects() {
        let t = builders::tandem(2, int(1), rat(1, 16), TandemOptions::default());
        let alg = Integrated::paper();
        let mk = |rho: Rat| Flow {
            name: "new".into(),
            spec: TrafficSpec::paper_source(int(1), rho),
            route: t.middle.clone(),
            priority: 0,
        };
        // A light extra flow with a loose deadline is admitted, and the
        // certifying report comes back with it.
        let admitted = try_admit(&t.net, mk(rat(1, 16)), int(100), &[], &alg)
            .unwrap()
            .expect("light flow is admitted");
        assert_eq!(admitted.net.flows().len(), t.net.flows().len() + 1);
        let direct = alg.analyze(&admitted.net).unwrap();
        assert_eq!(
            admitted.report.bound(admitted.flow),
            direct.bound(admitted.flow),
            "returned report must be the certifying analysis, not a rerun"
        );
        // A flow that overloads the interior links is rejected cleanly.
        let rejected = try_admit(&t.net, mk(int(1)), int(100), &[], &alg).unwrap();
        assert!(rejected.is_none());
    }

    #[test]
    fn release_restores_the_original_bounds() {
        let t = builders::tandem(2, int(1), rat(1, 16), TandemOptions::default());
        let alg = Integrated::paper();
        let before = alg.analyze(&t.net).unwrap().bound(t.conn0);
        let candidate = Flow {
            name: "new".into(),
            spec: TrafficSpec::paper_source(int(1), rat(1, 16)),
            route: t.middle.clone(),
            priority: 0,
        };
        let admitted = try_admit(&t.net, candidate, int(100), &[], &alg)
            .unwrap()
            .expect("admitted");
        // conn0's id is unchanged by the release (it precedes the new flow).
        let remaining = [Deadline {
            flow: t.conn0,
            deadline: before,
        }];
        let (shrunk, report) = try_release(&admitted.net, admitted.flow, &remaining, &alg)
            .unwrap()
            .expect("release certifies the original deadline");
        assert_eq!(shrunk.flows().len(), t.net.flows().len());
        assert_eq!(report.bound(t.conn0), before);
        // Releasing a ghost id is an error, not a silent no-op.
        assert!(try_release(&shrunk, FlowId(99), &[], &alg).is_err());
    }

    #[test]
    fn admission_respects_existing_deadlines() {
        let t = builders::tandem(2, int(1), rat(1, 16), TandemOptions::default());
        let alg = Integrated::paper();
        let base = alg.analyze(&t.net).unwrap().bound(t.conn0);
        // Deadline exactly at the current bound: any added contention on
        // the path breaks it.
        let existing = [Deadline {
            flow: t.conn0,
            deadline: base,
        }];
        let candidate = Flow {
            name: "new".into(),
            spec: TrafficSpec::paper_source(int(1), rat(1, 16)),
            route: vec![t.middle[0]],
            priority: 0,
        };
        let r = try_admit(&t.net, candidate, int(100), &existing, &alg).unwrap();
        assert!(r.is_none(), "must protect the existing deadline");
    }

    #[test]
    fn integrated_admits_no_less_than_decomposed() {
        let deadline = int(12);
        let dec = max_admissible_utilization(4, int(1), deadline, &Decomposed::paper(), 16);
        let int_ = max_admissible_utilization(4, int(1), deadline, &Integrated::paper(), 16);
        let sc = max_admissible_utilization(4, int(1), deadline, &ServiceCurve::paper(), 16);
        let dec = dec.expect("decomposed admits something");
        let int_ = int_.expect("integrated admits something");
        assert!(int_ >= dec, "integrated {int_} < decomposed {dec}");
        if let Some(sc) = sc {
            assert!(sc <= dec, "service curve should be the most conservative");
        }
    }
}
