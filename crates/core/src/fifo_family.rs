//! A **modern baseline** that post-dates the paper: the θ-parameterized
//! family of per-flow FIFO service curves
//!
//! ```text
//! β_θ(t) = [ C·t − α_cross(t − θ) ]⁺ · 1_{t > θ} ,   θ ≥ 0,
//! ```
//!
//! every member of which is a valid service curve for a flow at a FIFO
//! server with `α_cross`-constrained competing traffic (Cruz 1998; Le
//! Boudec & Thiran, *Network Calculus*, Prop. 6.2.1). Choosing `θ = 0`
//! recovers the blind-multiplexing residual curve used by the paper's
//! Algorithm Service Curve; larger `θ` trades latency for rate and is the
//! basis of the LUDB method (Lenzini, Mingozzi, Stea 2008).
//!
//! This module implements the family with a per-server coordinate-descent
//! search over `θ`, as a *post-1999 comparison point* for the paper's
//! Algorithm Integrated: it shows how far pure service-curve machinery
//! eventually got on FIFO networks (see EXPERIMENTS.md). By construction
//! the result is never worse than Algorithm Service Curve (θ = 0 is in
//! the search space).
//!
//! Implementation notes: `β_θ` has a jump at `θ` and may dip while cross
//! traffic outruns the link; we under-approximate soundly by (i) capping
//! the jump with a steep ramp of slope `K ≫ C` and (ii) monotonizing with
//! [`Curve::future_min`] (any lower bound of a service curve is a service
//! curve). End-to-end bounds use the general-shape horizontal deviation
//! [`dnc_curves::bounds::hdev_general`].

use crate::propagate::Propagation;
use crate::{fifo, AnalysisError, AnalysisReport, DelayAnalysis, FlowReport, OutputCap};
use dnc_curves::cache::{CacheKey, CurveCache};
use dnc_curves::intern::{self, CurveId};
use dnc_curves::{bounds, minplus, Curve};
use dnc_net::{Discipline, FlowId, Network};
use dnc_num::Rat;
use std::sync::OnceLock;

/// Memo for [`family_curve`]: the coordinate descent rebuilds the same
/// `(rate, α_cross, θ)` members over and over (only one hop's θ moves
/// per step), so the construction — two curve subtractions, a min with
/// crossing insertion, and a `future_min` monotonization — is the hot
/// allocation path of the whole analysis. Keyed by interned curve id +
/// the two rationals; values are interned ids (pure function of the
/// key, so the global table is sound and bit-identity is preserved).
static FAMILY_MEMO: OnceLock<CurveCache<CurveId>> = OnceLock::new();

/// Build the (monotonized, ramp-capped) family member `β_θ` from a
/// nondecreasing cross-traffic constraint; the `future_min` pass makes the
/// returned service curve nondecreasing.
pub fn family_curve(rate: Rat, alpha_cross: &Curve, theta: Rat) -> Curve {
    assert!(rate.is_positive(), "family_curve: rate must be positive");
    assert!(!theta.is_negative(), "family_curve: θ must be non-negative");
    if intern::kernel_enabled() {
        let key = CacheKey::new("core.family_curve")
            .curve(alpha_cross)
            .rat(rate)
            .rat(theta);
        let memo = FAMILY_MEMO.get_or_init(CurveCache::default);
        let out = memo.get_or_insert_with(key, || {
            intern::intern(&family_curve_core(rate, alpha_cross, theta))
        });
        return (*intern::resolve(out)).clone();
    }
    family_curve_core(rate, alpha_cross, theta)
}

/// The uncached [`family_curve`] construction.
fn family_curve_core(rate: Rat, alpha_cross: &Curve, theta: Rat) -> Curve {
    let base = Curve::rate(rate).sub(&alpha_cross.shift_right_hold(theta));
    // Steep ramp enforcing the `1_{t > θ}` indicator; K > C makes the cap
    // inactive wherever the true curve is below the ramp, so θ = 0
    // reproduces the blind-multiplexing curve exactly.
    let k = (rate + alpha_cross.final_slope() + Rat::ONE) * Rat::from(1i64 << 20);
    let capped = base.min(&Curve::rate_latency(k, theta)).pos();
    capped.future_min()
}

/// The FIFO service-curve family analysis.
#[derive(Clone, Copy, Debug)]
pub struct FifoFamily {
    /// Output model for characterizing cross traffic at interior servers.
    pub cap: OutputCap,
    /// Coordinate-descent passes over the per-server θ values.
    pub passes: usize,
    /// Candidate multipliers per server are derived from the local
    /// aggregate delay scale; this many geometric steps are tried.
    pub grid: usize,
}

impl Default for FifoFamily {
    fn default() -> Self {
        FifoFamily {
            cap: OutputCap::Shift,
            passes: 2,
            grid: 5,
        }
    }
}

impl DelayAnalysis for FifoFamily {
    fn name(&self) -> &'static str {
        "fifo-family"
    }

    fn analyze(&self, net: &Network) -> Result<AnalysisReport, AnalysisError> {
        net.validate()?;
        for s in net.servers() {
            if s.discipline != Discipline::Fifo {
                return Err(AnalysisError::Unsupported(format!(
                    "fifo-family analysis requires FIFO servers (server {:?})",
                    s.name
                )));
            }
        }
        let order = net.topological_order()?;

        // Decomposed-style propagation for cross-traffic characterization
        // (identical to Algorithm Service Curve's first pass) plus the
        // local delay at each server as the θ scale.
        let mut prop = Propagation::new(net, self.cap);
        let mut hop_curves: Vec<Vec<Curve>> = net
            .flows()
            .iter()
            .map(|f| Vec::with_capacity(f.route.len()))
            .collect();
        let mut local_delay: Vec<Rat> = vec![Rat::ZERO; net.servers().len()];
        for server in &order {
            let incident = net.flows_through(*server);
            if incident.is_empty() {
                continue;
            }
            let curves: Vec<_> = incident
                .iter()
                .map(|&f| prop.curve_at(f, *server).clone())
                .collect();
            let g = fifo::aggregate_curve(curves.iter());
            let d = fifo::local_delay(&g, net.server(*server).rate, *server)?;
            local_delay[server.0] = d; // audit: allow(index, per-server/per-flow tables sized to the network; indices are ServerId/FlowId/hop_index of it)
            for (&f, c) in incident.iter().zip(curves.iter()) {
                hop_curves[f.0].push(c.clone()); // audit: allow(index, per-server/per-flow tables sized to the network; indices are ServerId/FlowId/hop_index of it)
                prop.advance(f, *server, d);
            }
        }

        let mut flows_out = Vec::with_capacity(net.flows().len());
        for (i, f) in net.flows().iter().enumerate() {
            let id = FlowId(i);
            let alpha = f.spec.arrival_curve();

            // Per-hop cross constraints and rates.
            let mut rates: Vec<Rat> = Vec::new();
            let mut crosses: Vec<Option<Curve>> = Vec::new();
            let mut scales: Vec<Rat> = Vec::new();
            for &server in &f.route {
                rates.push(net.server(server).rate);
                scales.push(local_delay[server.0]); // audit: allow(index, per-server/per-flow tables sized to the network; indices are ServerId/FlowId/hop_index of it)
                let cross_ids: Vec<FlowId> = net
                    .flows_through(server)
                    .into_iter()
                    .filter(|&g| g != id)
                    .collect();
                if cross_ids.is_empty() {
                    crosses.push(None);
                } else {
                    let cs: Vec<Curve> = cross_ids
                        .iter()
                        .map(|&g| {
                            let h = net.hop_index(g, server).expect("cross flow on server"); // audit: allow(expect, g is a cross flow at server, so hop_index is Some)
                            hop_curves[g.0][h].clone() // audit: allow(index, per-server/per-flow tables sized to the network; indices are ServerId/FlowId/hop_index of it)
                        })
                        .collect();
                    crosses.push(Some(fifo::aggregate_curve(cs.iter())));
                }
            }

            // Coordinate descent over per-hop θ.
            let hops = f.route.len();
            let mut thetas: Vec<Rat> = vec![Rat::ZERO; hops];
            let eval = |thetas: &[Rat]| -> Result<Rat, AnalysisError> {
                let betas: Vec<Curve> = (0..hops)
                    // audit: allow(index, per-server/per-flow tables sized to the network; indices are ServerId/FlowId/hop_index of it)
                    .map(|k| match &crosses[k] {
                        Some(c) => family_curve(rates[k], c, thetas[k]), // audit: allow(index, per-server/per-flow tables sized to the network; indices are ServerId/FlowId/hop_index of it)
                        None => Curve::rate(rates[k]), // audit: allow(index, per-server/per-flow tables sized to the network; indices are ServerId/FlowId/hop_index of it)
                    })
                    .collect();
                let beta_net = minplus::conv_all(betas.iter());
                bounds::hdev_general(&alpha, &beta_net)
                    .map_err(|e| AnalysisError::at(f.route[0], e)) // audit: allow(index, per-server/per-flow tables sized to the network; indices are ServerId/FlowId/hop_index of it)
            };
            let mut best = eval(&thetas)?;
            for _ in 0..self.passes {
                for k in 0..hops {
                    // audit: allow(index, per-server/per-flow tables sized to the network; indices are ServerId/FlowId/hop_index of it)
                    if crosses[k].is_none() {
                        continue;
                    }
                    let scale = scales[k].max(Rat::ONE); // audit: allow(index, per-server/per-flow tables sized to the network; indices are ServerId/FlowId/hop_index of it)
                    for step in 1..=self.grid {
                        // Geometric grid: scale · 2^{step - grid/2 - 1}.
                        let exp = step as i32 - (self.grid as i32 / 2) - 1;
                        let cand = scale * Rat::TWO.powi(exp);
                        let old = thetas[k]; // audit: allow(index, per-server/per-flow tables sized to the network; indices are ServerId/FlowId/hop_index of it)
                        thetas[k] = cand; // audit: allow(index, per-server/per-flow tables sized to the network; indices are ServerId/FlowId/hop_index of it)
                        match eval(&thetas) {
                            Ok(d) if d < best => best = d,
                            _ => thetas[k] = old, // audit: allow(index, per-server/per-flow tables sized to the network; indices are ServerId/FlowId/hop_index of it)
                        }
                    }
                }
            }

            flows_out.push(FlowReport {
                flow: id,
                name: f.name.clone(),
                e2e: best,
                stages: vec![("fifo-family network curve".into(), best)],
            });
        }

        Ok(AnalysisReport {
            algorithm: self.name(),
            flows: flows_out,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service_curve::ServiceCurve;
    use dnc_net::builders;
    use dnc_num::{int, rat};

    #[test]
    fn family_theta_zero_is_blind_mux() {
        let cross = Curve::token_bucket(int(2), rat(1, 2));
        let blind = crate::service_curve::residual_curve(int(1), &cross);
        assert_eq!(family_curve(int(1), &cross, Rat::ZERO), blind);
    }

    #[test]
    fn family_curve_is_zero_before_theta() {
        let cross = Curve::token_bucket_peak(int(1), rat(1, 4), int(1));
        let beta = family_curve(int(1), &cross, int(3));
        assert_eq!(beta.eval(int(3)), int(0));
        assert!(beta.eval(int(10)).is_positive());
        assert!(beta.is_nondecreasing());
    }

    #[test]
    fn family_curve_below_unconstrained_rate() {
        let cross = Curve::token_bucket(int(3), rat(1, 4));
        let beta = family_curve(int(1), &cross, int(2));
        for k in 0..30 {
            let t = rat(k, 2);
            assert!(beta.eval(t) <= t, "service above the raw link at {t}");
        }
    }

    #[test]
    fn never_worse_than_service_curve_algorithm() {
        for u_num in [2i128, 3] {
            let t = builders::tandem(
                4,
                int(1),
                Rat::new(u_num, 16),
                builders::TandemOptions::default(),
            );
            let sc = ServiceCurve::paper().analyze(&t.net).unwrap();
            let ff = FifoFamily::default().analyze(&t.net).unwrap();
            for (a, b) in ff.flows.iter().zip(sc.flows.iter()) {
                assert!(
                    a.e2e <= b.e2e,
                    "flow {}: family {} > blind {}",
                    a.name,
                    a.e2e,
                    b.e2e
                );
            }
            // And strictly better somewhere for the long connection.
            assert!(ff.bound(t.conn0) < sc.bound(t.conn0));
        }
    }

    #[test]
    fn rejects_static_priority() {
        use dnc_net::Discipline;
        let t = builders::tandem(
            2,
            int(1),
            rat(1, 16),
            builders::TandemOptions {
                discipline: Discipline::StaticPriority,
                ..builders::TandemOptions::default()
            },
        );
        assert!(matches!(
            FifoFamily::default().analyze(&t.net),
            Err(AnalysisError::Unsupported(_))
        ));
    }
}
