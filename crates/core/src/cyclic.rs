//! Delay analysis for networks **with cycles** — the paper's announced
//! future work ("we are currently working on extending the approach
//! proposed in this paper to general networks", building on the authors'
//! companion work on feedback effects in ATM networks).
//!
//! Algorithm Integrated itself is restricted to cycle-free networks
//! because circular dependencies among connections feed local delays back
//! into themselves. The classical way around (Cruz's *time-stopping*
//! method) is implemented here for the decomposition analysis: treat the
//! per-(flow, hop) traffic characterizations as unknowns, start from the
//! optimistic guess (source constraints everywhere), and iterate the
//! monotone operator
//!
//! ```text
//! delays  =  local-analysis(characterizations)
//! characterizations  =  propagate(source constraints, delays)
//! ```
//!
//! Each iteration can only grow the characterizations and delays, so the
//! sequence either converges to the **least fixed point** — which bounds
//! the real network by the time-stopping argument — or grows without
//! bound (the method's stability region is exceeded; reported as
//! non-convergence, *not* as a valid bound).

use crate::cache::{cached_local_delay, cap_word, AnalysisCache};
use crate::propagate::Propagation;
use crate::{fifo, sp, AnalysisError, AnalysisReport, FlowReport, OutputCap};
use dnc_curves::cache::CacheKey;
use dnc_curves::CurveError;
use dnc_net::{Discipline, FlowId, Network, ServerId};
use dnc_num::Rat;

/// One server's recomputed `(flow, hop index, local delay)` triples.
type ServerUpdates = Vec<(FlowId, usize, Rat)>;

/// Result of a time-stopping run.
///
/// The per-connection delay table is only a valid bound when the
/// iteration **converged**; the [`CyclicReport::bounds`] accessor
/// enforces that at the type level — the raw (possibly still-growing)
/// iterate is available separately as a diagnostic.
#[derive(Clone, Debug)]
pub struct CyclicReport {
    /// Last iterate (a valid bound only if `converged`; see `bounds()`).
    report: AnalysisReport,
    /// Whether a fixed point was reached.
    pub converged: bool,
    /// Iterations performed.
    pub iterations: usize,
}

impl CyclicReport {
    /// The per-connection delay bounds — `Some` **iff** the fixed-point
    /// iteration converged. A non-converged iterate is not a bound of
    /// anything and is deliberately unreachable through this accessor.
    pub fn bounds(&self) -> Option<&AnalysisReport> {
        self.converged.then_some(&self.report)
    }

    /// Consuming variant of [`CyclicReport::bounds`].
    pub fn into_bounds(self) -> Option<AnalysisReport> {
        self.converged.then_some(self.report)
    }

    /// The raw last iterate regardless of convergence — diagnostic only
    /// (shows *how far* the delays had grown when the budget ran out),
    /// never a valid delay bound unless [`CyclicReport::converged`].
    pub fn last_iterate(&self) -> &AnalysisReport {
        &self.report
    }
}

/// Time-stopping decomposition analysis for general (possibly cyclic)
/// networks.
#[derive(Clone, Copy, Debug)]
pub struct TimeStopping {
    /// Output re-characterization model.
    pub cap: OutputCap,
    /// Iteration budget before declaring divergence.
    pub max_iters: usize,
    /// Delay estimates are rounded **up** to multiples of
    /// `1/grid_denominator` each pass. Rounding up keeps every iterate a
    /// valid over-estimate (the operator is monotone in the delays) while
    /// keeping exact-rational denominators bounded across iterations and
    /// making the fixed point a lattice point the iteration can actually
    /// reach.
    pub grid_denominator: i128,
    /// Scoped worker threads fanning the per-server loop of each pass out
    /// (`1` = fully sequential). Each server's update reads only the
    /// previous iterate, so the merge is order-independent and reports
    /// are **bit-identical** for every value (DESIGN.md §13).
    pub workers: usize,
}

impl Default for TimeStopping {
    fn default() -> Self {
        TimeStopping {
            cap: OutputCap::Shift,
            max_iters: 64,
            grid_denominator: 4096,
            workers: 1,
        }
    }
}

impl TimeStopping {
    /// Same analysis fanned out over `workers` scoped threads.
    pub fn with_workers(mut self, workers: usize) -> TimeStopping {
        self.workers = workers;
        self
    }
    /// Run the fixed-point iteration.
    ///
    /// Unlike the feedforward algorithms this does **not** require a
    /// topological order; it does require every server to be strictly
    /// under-loaded (necessary for any deterministic bound).
    pub fn analyze(&self, net: &Network) -> Result<CyclicReport, AnalysisError> {
        self.analyze_inner(net, None)
    }

    /// Like [`TimeStopping::analyze`], but budgeted: the guard's deadline
    /// and cancellation token are checked cooperatively between passes
    /// (returning [`AnalysisError::Budget`], no unwinding), and the
    /// guard's iteration cap clamps `max_iters`.
    pub fn analyze_guarded(
        &self,
        net: &Network,
        guard: &crate::guard::ArmedGuard,
    ) -> Result<CyclicReport, AnalysisError> {
        self.analyze_inner(net, Some(guard))
    }

    fn analyze_inner(
        &self,
        net: &Network,
        guard: Option<&crate::guard::ArmedGuard>,
    ) -> Result<CyclicReport, AnalysisError> {
        let _span = dnc_telemetry::span("algo.time_stopping");
        // Structural checks without the feedforward requirement.
        for i in 0..net.servers().len() {
            let id = ServerId(i);
            if net.load(id) >= net.server(id).rate {
                return Err(AnalysisError::Network(dnc_net::NetworkError::Overloaded {
                    server: id,
                    name: net.server(id).name.clone(),
                    load: net.load(id).to_string(),
                    rate: net.server(id).rate.to_string(),
                }));
            }
        }

        // delays[flow][hop]: current estimate of the local delay a flow
        // suffers at each hop of its route.
        let mut delays: Vec<Vec<Rat>> = net
            .flows()
            .iter()
            .map(|f| vec![Rat::ZERO; f.route.len()])
            .collect();

        let max_iters = match guard {
            Some(g) => g.effective_iters(self.max_iters),
            None => self.max_iters,
        };
        // Per-run memo table: entry envelopes and local delays repeat
        // verbatim between passes wherever the upstream delay prefix has
        // already converged, which is most of the network on late passes.
        let cache = AnalysisCache::new();
        let mut iterations = 0;
        let mut converged = false;
        while iterations < max_iters {
            if let Some(g) = guard {
                g.check()?;
            }
            iterations += 1;
            let new_delays = {
                let _iter = dnc_telemetry::span("core.time_stopping.pass");
                self.one_pass(net, &delays, &cache)?
            };
            // Per-iteration residual: the largest per-hop delay growth this
            // pass (zero exactly at the fixed point).
            dnc_telemetry::observe_rat("core.time_stopping.residual", || {
                new_delays
                    .iter()
                    .zip(delays.iter())
                    .flat_map(|(n, o)| n.iter().zip(o.iter()).map(|(a, b)| *a - *b))
                    .max()
                    .unwrap_or(Rat::ZERO)
            });
            if new_delays == delays {
                converged = true;
                break;
            }
            delays = new_delays;
        }
        dnc_telemetry::counter("core.time_stopping.iterations", iterations as u64);

        let flows = net
            .flows()
            .iter()
            .enumerate()
            .map(|(i, f)| FlowReport {
                flow: FlowId(i),
                name: f.name.clone(),
                e2e: delays[i].iter().copied().sum(), // audit: allow(index, delay tables are sized per flow and route length; i/k/h index the same network)
                stages: f
                    .route
                    .iter()
                    .zip(delays[i].iter()) // audit: allow(index, delay tables are sized per flow and route length; i/k/h index the same network)
                    .map(|(&s, &d)| (net.server(s).name.clone(), d))
                    .collect(),
            })
            .collect();
        Ok(CyclicReport {
            report: AnalysisReport {
                algorithm: "time-stopping",
                flows,
            },
            converged,
            iterations,
        })
    }

    /// One application of the monotone operator: given per-hop delay
    /// estimates, recompute every local delay from the induced
    /// characterizations. Each server's update reads only the previous
    /// iterate, so servers may compute concurrently
    /// ([`TimeStopping::workers`]) and the ordered merge writes each
    /// `(flow, hop)` slot exactly once — results are bit-identical for
    /// any worker count.
    fn one_pass(
        &self,
        net: &Network,
        delays: &[Vec<Rat>],
        cache: &AnalysisCache,
    ) -> Result<Vec<Vec<Rat>>, AnalysisError> {
        // Characterize flow `i` at hop `h` by shifting its source curve
        // through the *current* upstream delay estimates. Memoized on the
        // (source curve, delay prefix, rate prefix, cap) chain: across
        // passes the prefix is unchanged wherever upstream has converged.
        let curve_at = |i: usize, h: usize| {
            let f = &net.flows()[i]; // audit: allow(index, delay tables are sized per flow and route length; i/k/h index the same network)
            let spec = f.spec.arrival_curve();
            let key = CacheKey::new("core.ts_entry")
                .curve(&spec)
                .rat_seq(delays[i].iter().copied().take(h)) // audit: allow(index, delay tables are sized per flow and route length; i/k/h index the same network)
                .rat_seq(f.route.iter().take(h).map(|&srv| net.server(srv).rate))
                .word(cap_word(self.cap))
                .word(h as u64);
            cache.entry_curve(key, || {
                let mut c = spec.clone();
                for (k, &srv) in f.route.iter().enumerate().take(h) {
                    let rate = net.server(srv).rate;
                    // audit: allow(index, delay tables are sized per flow and route length; i/k/h index the same network)
                    c = fifo::propagate_output(&c, delays[i][k], rate, self.cap);
                }
                c
            })
        };

        // Pure per-server update: (flow, hop, new delay) triples.
        let compute_server = |s: usize| -> Result<Vec<(FlowId, usize, Rat)>, AnalysisError> {
            let server = ServerId(s);
            let incident = net.flows_through(server);
            if incident.is_empty() {
                return Ok(Vec::new());
            }
            let srv = net.server(server);
            let curves: Vec<(FlowId, dnc_curves::Curve)> = incident
                .iter()
                .map(|&f| {
                    let h = net.hop_index(f, server).expect("incident"); // audit: allow(expect, f is drawn from the flows incident to server, so hop_index is Some)
                    (f, curve_at(f.0, h))
                })
                .collect();
            let per_flow: Vec<(FlowId, Rat)> = match srv.discipline {
                Discipline::Fifo => {
                    let g = fifo::aggregate_curve(curves.iter().map(|(_, c)| c));
                    let d = match cached_local_delay(Some(cache), &g, srv.rate, server) {
                        Ok(d) => d,
                        Err(AnalysisError::Curve {
                            source: CurveError::Unstable { .. },
                            ..
                        }) => {
                            // Burst grew past the stability region: make
                            // the non-convergence explicit by keeping the
                            // iteration growing.
                            return Err(AnalysisError::Unsupported(
                                "time-stopping diverged (local instability)".into(),
                            ));
                        }
                        Err(e) => return Err(e),
                    };
                    incident.iter().map(|&f| (f, d)).collect()
                }
                Discipline::StaticPriority => sp::local_delays(net, server, &curves)?,
                Discipline::Gps => crate::gps::local_delays(net, server, &curves)?,
                Discipline::Edf => crate::edf::local_delays(net, server, &curves)?,
            };
            Ok(per_flow
                .into_iter()
                .map(|(f, d)| {
                    let h = net.hop_index(f, server).expect("incident"); // audit: allow(expect, f is drawn from the flows incident to server, so hop_index is Some)
                    (f, h, d.ceil_to_denom(self.grid_denominator))
                })
                .collect())
        };

        let n = net.servers().len();
        let updates: Vec<Result<ServerUpdates, AnalysisError>> = if self.workers > 1 && n > 1 {
            crate::par::fan_out(n, self.workers, &compute_server)
        } else {
            // Sequential path short-circuits at the first error, like
            // the historical per-server loop.
            let mut v = Vec::with_capacity(n);
            for s in 0..n {
                let r = compute_server(s);
                let failed = r.is_err();
                v.push(r);
                if failed {
                    break;
                }
            }
            v
        };
        let mut out: Vec<Vec<Rat>> = delays.to_vec();
        for r in updates {
            for (f, h, d) in r? {
                out[f.0][h] = d; // audit: allow(index, delay tables are sized per flow and route length; i/k/h index the same network)
            }
        }
        Ok(out)
    }
}

/// Convenience: run time-stopping and, when the network happens to be
/// feedforward, cross-check against plain decomposition (they must
/// agree at the fixed point).
pub fn analyze_general(net: &Network, cap: OutputCap) -> Result<CyclicReport, AnalysisError> {
    TimeStopping {
        cap,
        ..TimeStopping::default()
    }
    .analyze(net)
}

// Propagation is unused here (the iteration re-derives curves from
// scratch each pass), but keep the import graph honest.
#[allow(unused_imports)]
use Propagation as _;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomposed::Decomposed;
    use crate::DelayAnalysis;
    use dnc_net::builders;
    use dnc_net::{Flow, Server};
    use dnc_num::{int, rat};
    use dnc_traffic::TrafficSpec;

    /// A 3-server ring: flow k enters at server k and traverses two
    /// consecutive servers (wrapping), creating a dependency cycle.
    fn ring(rho: Rat, sigma: Rat) -> Network {
        let mut net = Network::new();
        let s: Vec<_> = (0..3)
            .map(|i| net.add_server(Server::unit_fifo(format!("r{i}"))))
            .collect();
        for k in 0..3 {
            net.add_flow(Flow {
                name: format!("f{k}"),
                spec: TrafficSpec::paper_source(sigma, rho),
                route: vec![s[k], s[(k + 1) % 3]],
                priority: 0,
            })
            .unwrap();
        }
        net
    }

    #[test]
    fn ring_is_cyclic() {
        let net = ring(rat(1, 8), int(1));
        assert!(net.topological_order().is_err());
        assert!(Decomposed::paper().analyze(&net).is_err());
    }

    #[test]
    fn time_stopping_converges_on_light_ring() {
        let net = ring(rat(1, 8), int(1));
        let r = TimeStopping::default().analyze(&net).unwrap();
        assert!(r.converged, "light ring must converge");
        assert!(r.iterations > 1, "feedback needs at least two passes");
        let bounds = r.bounds().expect("converged report exposes bounds");
        for f in &bounds.flows {
            assert!(f.e2e.is_positive());
            assert_eq!(f.stages.len(), 2);
        }
        // Symmetry: all three flows see the same bound.
        let b0 = bounds.flows[0].e2e;
        assert!(bounds.flows.iter().all(|f| f.e2e == b0));
    }

    #[test]
    fn matches_decomposed_on_feedforward() {
        let t = builders::tandem(4, int(1), rat(3, 16), builders::TandemOptions::default());
        let fixed = TimeStopping::default().analyze(&t.net).unwrap();
        assert!(fixed.converged);
        let dec = Decomposed::paper().analyze(&t.net).unwrap();
        for (a, b) in fixed.bounds().unwrap().flows.iter().zip(dec.flows.iter()) {
            // The grid rounding makes the fixed point a slight (sound)
            // over-estimate of the exact decomposition.
            assert!(a.e2e >= b.e2e, "flow {}: below decomposed", a.name);
            assert!(
                a.e2e - b.e2e <= rat(1, 64),
                "flow {}: {} vs {}",
                a.name,
                a.e2e,
                b.e2e
            );
        }
    }

    #[test]
    fn long_feedback_ring_reports_divergence() {
        // Five full-circumference flows on a 5-ring: each flow's burst is
        // re-inflated by the sum of all delays around the ring, so the
        // fixed point satisfies d ≈ 5σ + ρ·10·d and runs away once
        // ρ·n(n−1)/2 ≥ 1 — here ρ = 3/20 gives amplification 1.5 at a
        // perfectly stable utilization of 0.75.
        let mut net = Network::new();
        let s: Vec<_> = (0..5)
            .map(|i| net.add_server(Server::unit_fifo(format!("r{i}"))))
            .collect();
        for k in 0..5 {
            let route: Vec<_> = (0..5).map(|j| s[(k + j) % 5]).collect();
            net.add_flow(Flow {
                name: format!("f{k}"),
                spec: TrafficSpec::token_bucket(int(2), rat(3, 20)),
                route,
                priority: 0,
            })
            .unwrap();
        }
        assert!(net.max_utilization() < Rat::ONE);
        let r = TimeStopping {
            max_iters: 40,
            ..TimeStopping::default()
        }
        .analyze(&net);
        match r {
            Ok(rep) => {
                assert!(!rep.converged, "long-feedback ring must not converge");
                assert!(rep.bounds().is_none(), "non-converged bounds must be gated");
                assert!(!rep.last_iterate().flows.is_empty());
            }
            Err(AnalysisError::Unsupported(_)) => {} // diverged explicitly
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn long_feedback_ring_converges_when_light() {
        // Same topology below the amplification threshold
        // (ρ·10 = 0.5 < 1): converges.
        let mut net = Network::new();
        let s: Vec<_> = (0..5)
            .map(|i| net.add_server(Server::unit_fifo(format!("r{i}"))))
            .collect();
        for k in 0..5 {
            let route: Vec<_> = (0..5).map(|j| s[(k + j) % 5]).collect();
            net.add_flow(Flow {
                name: format!("f{k}"),
                spec: TrafficSpec::token_bucket(int(2), rat(1, 20)),
                route,
                priority: 0,
            })
            .unwrap();
        }
        let r = TimeStopping::default().analyze(&net).unwrap();
        assert!(r.converged, "light long-feedback ring must converge");
    }

    #[test]
    fn overloaded_ring_rejected() {
        let net = ring(rat(1, 2) + rat(1, 100), int(1));
        assert!(matches!(
            TimeStopping::default().analyze(&net),
            Err(AnalysisError::Network(_))
        ));
    }

    #[test]
    fn workers_yield_bit_identical_fixed_points() {
        let net = ring(rat(1, 8), int(1));
        let seq = TimeStopping::default().analyze(&net).unwrap();
        for workers in [2usize, 8] {
            let par = TimeStopping::default()
                .with_workers(workers)
                .analyze(&net)
                .unwrap();
            assert_eq!(par.converged, seq.converged);
            assert_eq!(par.iterations, seq.iterations, "workers={workers}");
            assert_eq!(
                par.bounds().unwrap(),
                seq.bounds().unwrap(),
                "workers={workers} must match sequential exactly"
            );
        }
    }

    #[test]
    fn bounds_monotone_in_burst() {
        let a = TimeStopping::default()
            .analyze(&ring(rat(1, 8), int(1)))
            .unwrap();
        let b = TimeStopping::default()
            .analyze(&ring(rat(1, 8), int(3)))
            .unwrap();
        assert!(b.bounds().unwrap().flows[0].e2e > a.bounds().unwrap().flows[0].e2e);
    }
}
