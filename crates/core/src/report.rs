//! Analysis results: per-connection end-to-end bounds with a per-stage
//! breakdown.

use dnc_net::FlowId;
use dnc_num::Rat;
use std::fmt;

/// One connection's result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlowReport {
    /// The connection.
    pub flow: FlowId,
    /// Connection name (copied from the network for readability).
    pub name: String,
    /// End-to-end worst-case delay bound, in ticks.
    pub e2e: Rat,
    /// Per-stage local bounds `(stage label, delay)` summing to `e2e`.
    /// Stages are servers for Decomposed, subnetworks for Integrated, and
    /// a single "network service curve" stage for Service Curve.
    pub stages: Vec<(String, Rat)>,
}

/// The full result of one analysis run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AnalysisReport {
    /// Algorithm that produced the report.
    pub algorithm: &'static str,
    /// Per-connection results, indexed by flow id order.
    pub flows: Vec<FlowReport>,
}

impl AnalysisReport {
    /// The end-to-end bound of `flow`.
    ///
    /// # Panics
    /// Panics if the flow is not in the report.
    pub fn bound(&self, flow: FlowId) -> Rat {
        self.flows
            .iter()
            .find(|f| f.flow == flow)
            .unwrap_or_else(|| panic!("flow {flow} missing from report")) // audit: allow(panic, documented panic: callers ask only for flows present in this report)
            .e2e
    }

    /// The largest end-to-end bound over all connections.
    pub fn max_bound(&self) -> Rat {
        self.flows.iter().map(|f| f.e2e).max().unwrap_or(Rat::ZERO)
    }

    /// Relative improvement of `other` over `self` for `flow`, the paper's
    /// metric `R_{X,Y} = (D_X − D_Y) / D_X` with `X = self`, `Y = other`.
    pub fn relative_improvement(&self, other: &AnalysisReport, flow: FlowId) -> Rat {
        let dx = self.bound(flow);
        let dy = other.bound(flow);
        if dx.is_zero() {
            Rat::ZERO
        } else {
            (dx - dy) / dx
        }
    }

    /// Render as CSV: one row per connection with the exact rational bound
    /// and its decimal approximation (`flow,name,bound,bound_f64`). Names
    /// containing commas, quotes, or newlines are quoted per RFC 4180.
    pub fn to_csv(&self) -> String {
        let escape = |name: &str| -> String {
            if name.contains([',', '"', '\n']) {
                format!("\"{}\"", name.replace('"', "\"\""))
            } else {
                name.to_string()
            }
        };
        let mut out = String::from("flow,name,bound,bound_f64\n");
        for f in &self.flows {
            out.push_str(&format!(
                "{},{},{},{:.6}\n",
                f.flow.0,
                escape(&f.name),
                f.e2e,
                f.e2e.to_f64()
            ));
        }
        out
    }
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[{}]", self.algorithm)?;
        for fr in &self.flows {
            writeln!(
                f,
                "  {:<12} e2e = {} ({:.4})",
                fr.name,
                fr.e2e,
                fr.e2e.to_f64()
            )?;
            for (label, d) in &fr.stages {
                writeln!(f, "      {:<16} {}", label, d)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnc_num::int;

    fn report(bounds: &[(usize, i64)]) -> AnalysisReport {
        AnalysisReport {
            algorithm: "test",
            flows: bounds
                .iter()
                .map(|&(id, b)| FlowReport {
                    flow: FlowId(id),
                    name: format!("f{id}"),
                    e2e: int(b),
                    stages: vec![],
                })
                .collect(),
        }
    }

    #[test]
    fn bound_lookup_and_max() {
        let r = report(&[(0, 5), (1, 9), (2, 3)]);
        assert_eq!(r.bound(FlowId(1)), int(9));
        assert_eq!(r.max_bound(), int(9));
    }

    #[test]
    fn relative_improvement_metric() {
        let x = report(&[(0, 10)]);
        let y = report(&[(0, 6)]);
        assert_eq!(x.relative_improvement(&y, FlowId(0)), dnc_num::rat(2, 5));
    }

    #[test]
    #[should_panic(expected = "missing from report")]
    fn missing_flow_panics() {
        report(&[(0, 1)]).bound(FlowId(9));
    }

    #[test]
    fn csv_rendering() {
        let csv = report(&[(0, 5), (1, 9)]).to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "flow,name,bound,bound_f64");
        assert_eq!(lines[1], "0,f0,5,5.000000");
        assert_eq!(lines[2], "1,f1,9,9.000000");
    }

    #[test]
    fn csv_escapes_awkward_names() {
        let r = AnalysisReport {
            algorithm: "test",
            flows: vec![FlowReport {
                flow: FlowId(0),
                name: "video, site \"A\"".into(),
                e2e: int(2),
                stages: vec![],
            }],
        };
        let csv = r.to_csv();
        assert!(csv.contains("\"video, site \"\"A\"\"\""), "{csv}");
    }
}
