#![warn(missing_docs)]

//! # dnc-core — end-to-end delay analysis for feedforward FIFO networks
//!
//! This crate implements the three delay-analysis algorithms compared in
//! *New Delay Analysis in High Speed Networks* (Li, Bettati, Zhao — ICPP
//! 1999), plus the machinery they share:
//!
//! * [`decomposed`] — **Algorithm Decomposed** (Cruz): per-server local
//!   worst-case delays summed along each route, with per-connection output
//!   characterization `b'(I) = b(I + d_local)` propagated hop by hop.
//! * [`service_curve`] — **Algorithm Service Curve** (induced variant): a
//!   per-connection FIFO service curve `β(t) = [C·t − α_cross(t)]⁺` at each
//!   server, min-plus convolved into a network service curve; the delay is
//!   the horizontal deviation from the source arrival curve.
//! * [`integrated`] — **Algorithm Integrated** (the paper's contribution):
//!   partition the network into subnetworks of at most two servers
//!   (`dnc_net::pairing`), bound each pair jointly with the two-server
//!   theorem ([`integrated::pair_delay_bound`]), and run the decomposition
//!   recipe over pairs.
//! * [`exact`] — the paper's Section-2 Lemmas 1–4 applied to *concrete*
//!   arrival functions: exact fluid FIFO outputs via Reich's formula
//!   (`W = G ⊗ λ_C`), used as ground truth in validation tests.
//! * [`sp`] — static-priority local analysis (the paper's announced
//!   extension, following its companion work on SP ATM networks).
//! * [`closed_form`] — hand-derived closed forms for the tandem topology,
//!   cross-checking the generic curve pipeline.
//! * [`admission`] — connection admission control built on any of the
//!   analyses (the paper's motivating application).
//!
//! All three algorithms implement [`DelayAnalysis`] and produce an
//! [`AnalysisReport`] with exact rational per-connection bounds.

mod error;
mod fifo;
mod par;
mod propagate;
mod report;

pub mod admission;
pub mod cache;
pub mod closed_form;
pub mod cyclic;
pub mod decomposed;
pub mod edf;
pub mod exact;
pub mod fifo_family;
pub mod gps;
pub mod guard;
pub mod integrated;
pub mod resilient;
pub mod sensitivity;
pub mod service_curve;
pub mod sp;

pub use error::AnalysisError;
pub use fifo::{aggregate_curve, local_delay, propagate_output, OutputCap};
pub use report::{AnalysisReport, FlowReport};

use dnc_net::Network;

/// A complete end-to-end delay analysis algorithm.
pub trait DelayAnalysis {
    /// Short human-readable algorithm name (used in reports and CSV).
    fn name(&self) -> &'static str;

    /// Analyze the whole network, producing per-connection delay bounds.
    fn analyze(&self, net: &Network) -> Result<AnalysisReport, AnalysisError>;
}
