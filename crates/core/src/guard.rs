//! Resource budgets for analysis runs.
//!
//! A [`Guard`] describes how much an analysis is allowed to spend — wall
//! clock, curve operations, curve width, fixed-point iterations — plus a
//! cooperative [`CancelToken`]. It is *declarative*: nothing is enforced
//! until the guard is [armed](Guard::arm), which pins the wall-clock
//! deadline to an absolute [`Instant`] so a fallback chain of several
//! attempts shares one deadline instead of restarting the clock per tier.
//!
//! Enforcement has two halves:
//!
//! * the curve algebra's thread-local [`dnc_curves::limits`] (installed
//!   from [`ArmedGuard::limits`]) trips *inside* conv/deconv/hdev via a
//!   `BudgetBreach` panic payload that the resilient runner catches;
//! * iteration loops (time-stopping) call [`ArmedGuard::check`] between
//!   passes and get a structured [`AnalysisError::Budget`] back — no
//!   unwinding on the cooperative path.

use crate::AnalysisError;
use dnc_curves::limits::{CancelToken, Limits};
use std::time::{Duration, Instant};

/// A declarative resource budget for one analysis run (or one fallback
/// chain of runs). All limits default to "unlimited".
#[derive(Clone, Debug, Default)]
pub struct Guard {
    /// Wall-clock budget for the whole run.
    pub deadline: Option<Duration>,
    /// Total curve operations (conv/deconv/hdev calls) allowed.
    pub op_cap: Option<u64>,
    /// Widest operand (total breakpoints) a single curve operation may
    /// touch — the memory proxy.
    pub segment_cap: Option<usize>,
    /// Fixed-point iteration cap (time-stopping passes).
    pub iter_cap: Option<usize>,
    /// Cooperative cancellation token.
    pub cancel: Option<CancelToken>,
}

impl Guard {
    /// An unlimited guard.
    pub fn unlimited() -> Guard {
        Guard::default()
    }

    /// Defaults suitable for an interactive run: 2 s wall clock, one
    /// million curve ops, 100k-segment operands, 256 iterations.
    pub fn interactive() -> Guard {
        Guard {
            deadline: Some(Duration::from_secs(2)),
            op_cap: Some(1_000_000),
            segment_cap: Some(100_000),
            iter_cap: Some(256),
            cancel: None,
        }
    }

    /// Set the wall-clock budget.
    pub fn with_deadline(mut self, d: Duration) -> Guard {
        self.deadline = Some(d);
        self
    }

    /// Set the curve-operation cap.
    pub fn with_op_cap(mut self, ops: u64) -> Guard {
        self.op_cap = Some(ops);
        self
    }

    /// Set the per-operation segment cap.
    pub fn with_segment_cap(mut self, segments: usize) -> Guard {
        self.segment_cap = Some(segments);
        self
    }

    /// Set the fixed-point iteration cap.
    pub fn with_iter_cap(mut self, iters: usize) -> Guard {
        self.iter_cap = Some(iters);
        self
    }

    /// Attach a cancellation token.
    pub fn with_cancel(mut self, token: CancelToken) -> Guard {
        self.cancel = Some(token);
        self
    }

    /// Pin the deadline to "now + budget" and return the enforceable
    /// guard. Every attempt run under the same `ArmedGuard` shares the
    /// deadline.
    pub fn arm(&self) -> ArmedGuard {
        ArmedGuard {
            // audit: allow(det-wall-clock, arming the sanctioned wall-clock deadline; it gates degradation, not bound arithmetic)
            deadline: self.deadline.map(|d| Instant::now() + d),
            op_cap: self.op_cap,
            segment_cap: self.segment_cap,
            iter_cap: self.iter_cap,
            cancel: self.cancel.clone(),
        }
    }
}

/// A [`Guard`] with its wall-clock deadline pinned to an absolute
/// instant. Created by [`Guard::arm`].
#[derive(Clone, Debug)]
pub struct ArmedGuard {
    /// Absolute wall-clock deadline.
    pub deadline: Option<Instant>,
    /// Total curve-operation cap (per attempt: the op counter resets with
    /// each [`ArmedGuard::limits`] install).
    pub op_cap: Option<u64>,
    /// Per-operation segment cap.
    pub segment_cap: Option<usize>,
    /// Fixed-point iteration cap.
    pub iter_cap: Option<usize>,
    /// Cooperative cancellation token.
    pub cancel: Option<CancelToken>,
}

impl ArmedGuard {
    /// The thread-local limits to install around a curve-heavy section.
    pub fn limits(&self) -> Limits {
        Limits {
            deadline: self.deadline,
            segment_cap: self.segment_cap,
            op_cap: self.op_cap,
            cancel: self.cancel.clone(),
        }
    }

    /// Cooperative budget check for iteration loops: deadline and
    /// cancellation, as a structured error rather than a panic.
    pub fn check(&self) -> Result<(), AnalysisError> {
        if let Some(tok) = &self.cancel {
            if tok.is_cancelled() {
                return Err(AnalysisError::Budget("cancelled".into()));
            }
        }
        if let Some(deadline) = self.deadline {
            // audit: allow(det-wall-clock, the documented wall-clock budget check; on breach the run degrades instead of emitting a bound)
            if Instant::now() >= deadline {
                return Err(AnalysisError::Budget("wall-clock deadline exceeded".into()));
            }
        }
        Ok(())
    }

    /// The effective iteration budget given an algorithm's own default.
    pub fn effective_iters(&self, algo_default: usize) -> usize {
        match self.iter_cap {
            Some(cap) => cap.min(algo_default),
            None => algo_default,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_guard_always_passes() {
        let g = Guard::unlimited().arm();
        assert!(g.check().is_ok());
        assert_eq!(g.effective_iters(64), 64);
    }

    #[test]
    fn expired_deadline_fails_check() {
        let g = Guard::default().with_deadline(Duration::ZERO).arm();
        assert!(matches!(g.check(), Err(AnalysisError::Budget(_))));
    }

    #[test]
    fn cancellation_fails_check() {
        let tok = CancelToken::new();
        let g = Guard::default().with_cancel(tok.clone()).arm();
        assert!(g.check().is_ok());
        tok.cancel();
        assert!(matches!(g.check(), Err(AnalysisError::Budget(_))));
    }

    #[test]
    fn iter_cap_clamps_algorithm_default() {
        let g = Guard::default().with_iter_cap(10).arm();
        assert_eq!(g.effective_iters(64), 10);
        assert_eq!(g.effective_iters(4), 4);
    }

    #[test]
    fn limits_carry_caps() {
        let g = Guard::interactive().arm();
        let lim = g.limits();
        assert!(lim.deadline.is_some());
        assert_eq!(lim.op_cap, Some(1_000_000));
        assert_eq!(lim.segment_cap, Some(100_000));
    }
}
