//! Bound sensitivity — how much each connection's end-to-end bound moves
//! when a source parameter moves: the capacity-planning companion of the
//! admission test ("which knob do I turn to win back my deadline?").
//!
//! Because all bounds are exact rationals and piecewise linear in the
//! inputs, one-sided finite differences with an exact step give the exact
//! one-sided derivative once the step is inside the active linear piece;
//! we report the difference quotient at a caller-chosen step, which is
//! already what an operator acts on ("adding 1 cell of burst costs X
//! ticks of bound").

use crate::{AnalysisError, DelayAnalysis};
use dnc_net::{Flow, FlowId, Network};
use dnc_num::Rat;
use dnc_traffic::{TokenBucket, TrafficSpec};

/// Which source parameter is perturbed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Param {
    /// Bucket depth σ of the flow's first token bucket.
    Sigma,
    /// Token rate ρ of the flow's first token bucket.
    Rho,
}

/// One sensitivity figure.
#[derive(Clone, Debug)]
pub struct Sensitivity {
    /// The perturbed flow.
    pub perturbed: FlowId,
    /// The parameter moved.
    pub param: Param,
    /// The observed flow whose bound moved.
    pub observed: FlowId,
    /// `[bound(x + step) − bound(x)] / step`, in ticks per unit.
    pub gradient: Rat,
}

/// Rebuild `net` with `flow`'s first bucket parameter increased by `step`.
fn perturb(net: &Network, flow: FlowId, param: Param, step: Rat) -> Result<Network, AnalysisError> {
    let mut out = Network::new();
    for s in net.servers() {
        out.add_server(s.clone());
    }
    for (i, f) in net.flows().iter().enumerate() {
        let spec = if FlowId(i) == flow {
            let mut buckets: Vec<TokenBucket> = f.spec.buckets().to_vec();
            // audit: allow(index, TrafficSpec guarantees at least one bucket)
            let b0 = buckets[0];
            // audit: allow(index, TrafficSpec guarantees at least one bucket)
            buckets[0] = match param {
                Param::Sigma => TokenBucket::new(b0.sigma + step, b0.rho),
                Param::Rho => TokenBucket::new(b0.sigma, b0.rho + step),
            };
            TrafficSpec::new(buckets, f.spec.peak())
        } else {
            f.spec.clone()
        };
        out.add_flow(Flow {
            name: f.name.clone(),
            spec,
            route: f.route.clone(),
            priority: f.priority,
        })
        .map_err(AnalysisError::Network)?;
    }
    // Preserve GPS reservations and EDF deadlines.
    for (i, f) in net.flows().iter().enumerate() {
        for &s in &f.route {
            if net.server(s).discipline == dnc_net::Discipline::Gps {
                out.reserve(FlowId(i), s, net.reserved_rate(FlowId(i), s));
            }
            if let Some(d) = net.local_deadline(FlowId(i), s) {
                out.set_local_deadline(FlowId(i), s, d);
            }
        }
    }
    Ok(out)
}

/// Sensitivity of every connection's bound to a `step`-sized increase of
/// `flow`'s parameter, under `analysis`. Returns one entry per observed
/// flow (including `flow` itself).
pub fn bound_sensitivities(
    net: &Network,
    flow: FlowId,
    param: Param,
    step: Rat,
    analysis: &dyn DelayAnalysis,
) -> Result<Vec<Sensitivity>, AnalysisError> {
    assert!(step.is_positive(), "sensitivity step must be positive");
    let base = analysis.analyze(net)?;
    let bumped_net = perturb(net, flow, param, step)?;
    let bumped = analysis.analyze(&bumped_net)?;
    Ok(base
        .flows
        .iter()
        .zip(bumped.flows.iter())
        .map(|(a, b)| Sensitivity {
            perturbed: flow,
            param,
            observed: a.flow,
            gradient: (b.e2e - a.e2e) / step,
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomposed::Decomposed;
    use crate::integrated::Integrated;
    use dnc_net::builders::{chain, tandem, TandemOptions};
    use dnc_num::{int, rat};

    #[test]
    fn burst_sensitivity_is_nonnegative_everywhere() {
        let t = tandem(3, int(1), rat(3, 16), TandemOptions::default());
        for alg in [
            &Decomposed::paper() as &dyn DelayAnalysis,
            &Integrated::paper(),
        ] {
            let s = bound_sensitivities(&t.net, t.conn0, Param::Sigma, rat(1, 4), alg).unwrap();
            for entry in &s {
                assert!(
                    !entry.gradient.is_negative(),
                    "{}: more burst cannot shrink a bound ({} for {})",
                    alg.name(),
                    entry.gradient,
                    entry.observed
                );
            }
            // The perturbed flow itself is affected.
            let own = s.iter().find(|e| e.observed == t.conn0).unwrap();
            assert!(own.gradient.is_positive());
        }
    }

    #[test]
    fn uncapped_single_server_gradient_is_exact() {
        // One uncapped bucket alone on a unit server: bound = σ, so
        // dBound/dσ = 1 and dBound/dρ = 0 (stable region).
        let (net, flows, _) = chain(1, &[TrafficSpec::token_bucket(int(3), rat(1, 4))]);
        let alg = Decomposed::paper();
        let ds = bound_sensitivities(&net, flows[0], Param::Sigma, rat(1, 2), &alg).unwrap();
        assert_eq!(ds[0].gradient, int(1));
        let dr = bound_sensitivities(&net, flows[0], Param::Rho, rat(1, 8), &alg).unwrap();
        assert_eq!(dr[0].gradient, int(0));
    }

    #[test]
    fn cross_flow_sensitivity_captures_coupling() {
        // On a shared FIFO link, inflating one flow's burst raises the
        // OTHER flow's bound by exactly the same amount (aggregate bound).
        let (net, flows, _) = chain(
            1,
            &[
                TrafficSpec::token_bucket(int(2), rat(1, 8)),
                TrafficSpec::token_bucket(int(2), rat(1, 8)),
            ],
        );
        let s = bound_sensitivities(&net, flows[0], Param::Sigma, int(1), &Decomposed::paper())
            .unwrap();
        let other = s.iter().find(|e| e.observed == flows[1]).unwrap();
        assert_eq!(other.gradient, int(1));
    }

    #[test]
    fn gps_isolation_shows_zero_cross_sensitivity() {
        use dnc_net::{Discipline, Flow, Network, Server};
        let mut net = Network::new();
        let g = net.add_server(Server {
            name: "gps".into(),
            rate: Rat::ONE,
            discipline: Discipline::Gps,
        });
        let mut flows = Vec::new();
        for k in 0..2 {
            let f = net
                .add_flow(Flow {
                    name: format!("f{k}"),
                    spec: TrafficSpec::token_bucket(int(2), rat(1, 4)),
                    route: vec![g],
                    priority: 0,
                })
                .unwrap();
            net.reserve(f, g, rat(1, 2));
            flows.push(f);
        }
        let s = bound_sensitivities(&net, flows[0], Param::Sigma, int(1), &Decomposed::paper())
            .unwrap();
        let own = s.iter().find(|e| e.observed == flows[0]).unwrap();
        let other = s.iter().find(|e| e.observed == flows[1]).unwrap();
        assert!(own.gradient.is_positive());
        assert_eq!(other.gradient, int(0), "GPS isolates neighbours");
    }

    #[test]
    fn overload_perturbation_is_an_error() {
        let t = tandem(2, int(1), rat(63, 256), TandemOptions::default());
        // Interior utilization is 252/256; bumping conn0's ρ by 1/32
        // (8/256) pushes it past 1.
        assert!(bound_sensitivities(
            &t.net,
            t.conn0,
            Param::Rho,
            rat(1, 32),
            &Decomposed::paper()
        )
        .is_err());
    }
}
