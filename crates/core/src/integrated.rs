//! **Algorithm Integrated** — the paper's contribution: analyze pairs of
//! consecutive FIFO servers *jointly*, so that the delay dependency
//! between them ("a packet maximally delayed at server 1 enters server 2
//! inside traffic that server 1 has already smoothed") is captured
//! instead of paying every burst at every hop.
//!
//! # The two-server bound (Theorem 1′)
//!
//! The paper's Theorem 1 is stated in an OCR-corrupted form and proved in
//! an unavailable technical report, so this crate implements a bound
//! re-derived from scratch in the same spirit (see DESIGN.md §5). Setting:
//! FIFO work-conserving servers 1 and 2 with rates `C₁, C₂`; flow sets
//! `S12` (through both), `S1` (server 1 only), `S2` (enters at server 2);
//! entry constraints `F12`, `F1`, `F2`; `Ḡ₁ = F12 + F1`;
//! `D₁ = h(Ḡ₁, λ_{C₁})` the server-1 local bound.
//!
//! Take any S12 bit: it arrives at server 1 at `h`, leaves it at
//! `u = h + δ₁` (with `δ₁ ≤ D₁`), and leaves server 2 at `w`. Let `q ≤ u`
//! start the server-2 busy period containing `u`; server 2 is busy on
//! `[q, w]`, so with `Δ = u − q`:
//!
//! ```text
//! w − u = [G₂(u) − G₂(q)]/C₂ − Δ
//! G₂(u) − G₂(q) ≤ min( C₁·Δ , F12(Δ + D₁) ) + F2(Δ)
//! ```
//!
//! The `C₁·Δ` branch is the server-1 **rate cap** (S12 traffic enters
//! server 2 no faster than server 1 can emit it); the volume branch holds
//! because every S12 bit departing server 1 in `(q, u]` arrived there in
//! `(q − D₁, h] ⊆` a window of length `Δ + D₁ − δ₁ ≤ Δ + D₁`. Hence
//!
//! ```text
//! d_S12 ≤ D₁ + max_{Δ ≥ 0} { [ min(C₁Δ, F12(Δ + D₁)) + F2(Δ) ]/C₂ − Δ }.
//! ```
//!
//! Dropping the `C₁Δ` branch recovers exactly the decomposed bound
//! `D₁ + D₂`, so **Integrated ≤ Decomposed holds by construction**; the
//! strict gain comes from the rate cap, which removes S12's (inflated)
//! burst from the server-2 backlog — the "pay bursts only once"
//! phenomenon. The maximization is a vertical-deviation computation on
//! exact PWL curves, so the bound is exact and cheap (the paper's
//! *efficiency* requirement for on-line admission control).
//!
//! # The fast path
//!
//! The analysis is organized as a list of **units** (pairing groups
//! specialized by discipline) whose per-unit work is split into a pure
//! *compute* step (reads the shared propagation state, returns
//! [`StageEntry`] records) and a deterministic *apply* step (pushes
//! stages and advances propagation in a fixed order). That split is what
//! enables, without ever changing a bound (DESIGN.md §13):
//!
//! * **parallel fan-out** ([`Integrated::workers`]) — independent units
//!   of the same dependency depth compute on scoped threads, results
//!   merge in unit order, so reports are bit-identical to sequential;
//! * **memoization** ([`Integrated::analyze_with`] with an
//!   [`AnalysisCache`]) — pair bounds and local delays are pure
//!   functions of their operand curves, keyed structurally;
//! * **incremental re-certification**
//!   ([`Integrated::analyze_incremental`]) — replay the recorded
//!   [`GroupTrace`] for units outside the mutated flow's downstream
//!   closure, recompute only the dirty ones.

use crate::cache::{cached_local_delay, cap_word, AnalysisCache};
use crate::propagate::Propagation;
use crate::{fifo, AnalysisError, AnalysisReport, DelayAnalysis, FlowReport, OutputCap};
use dnc_curves::cache::CacheKey;
use dnc_curves::{bounds, Curve, CurveError};
use dnc_net::pairing::{classify_pair_flows, partition, Group, PairingStrategy};
use dnc_net::{Discipline, FlowId, Network, ServerId};
use dnc_num::Rat;
use std::collections::BTreeSet;

/// The three delay figures of one analyzed pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PairBound {
    /// Local bound at server 1 (applies to S1 flows).
    pub d1: Rat,
    /// Local bound at server 2 (applies to S2 flows).
    pub d2: Rat,
    /// Joint bound through both servers (applies to S12 flows);
    /// guaranteed `≤ d1 + d2`.
    pub through: Rat,
}

/// Compute the two-server bound from aggregate entry constraints, for
/// unit-class (FIFO) servers of rates `c1` and `c2`.
///
/// All aggregate constraints are nondecreasing (concave) arrival curves:
///
/// * `f12` — aggregate constraint of flows traversing server 1 then 2;
/// * `f1` — aggregate of flows leaving after server 1;
/// * `f2` — aggregate of flows entering at server 2;
/// * `c1`, `c2` — server rates;
/// * `cap` — output model used for the S12 constraint at server 2 when
///   computing the (decomposed-style) `d2`.
pub fn pair_delay_bound(
    f12: &Curve,
    f1: &Curve,
    f2: &Curve,
    c1: Rat,
    c2: Rat,
    cap: OutputCap,
) -> Result<PairBound, CurveError> {
    assert!(
        c1.is_positive() && c2.is_positive(),
        "rates must be positive"
    );
    pair_delay_bound_curves(f12, f1, f2, c1, &Curve::rate(c1), &Curve::rate(c2), cap)
}

/// The service-curve generalization of the two-server theorem — the
/// paper's announced static-priority extension.
///
/// The tagged class of traffic (a priority level, or everything at a
/// FIFO server) receives **strict** service curves `beta1` at server 1
/// and `beta2` at server 2 (for FIFO these are the full rates `λ_C`; for
/// static priority the residual curves `[C·t − α_higher(t)]⁺`, which are
/// strict). The derivation of DESIGN.md §5 goes through verbatim with two
/// substitutions:
///
/// * `D₁ = h(F12 + F1, β₁)` — the class's local bound at server 1;
/// * the server-2 busy-period argument uses `β₂` instead of `C₂·t`:
///   `w − u ≤ β₂⁻¹( min(C₁Δ, F12(Δ+D₁)) + F2(Δ) ) − Δ`, whose supremum
///   over `Δ` is exactly the horizontal deviation
///   `h( min(λ_{C₁}, F12(·+D₁)) + F2 , β₂ )`.
///
/// The rate cap keeps the **full** server-1 rate `c1_total` (nothing can
/// leave server 1 faster, whatever the discipline). Order within the
/// class must be FIFO (true per priority level of an SP server). Arrival
/// aggregates are nondecreasing arrival curves; `β₁`, `β₂` are
/// nondecreasing service curves.
pub fn pair_delay_bound_curves(
    f12: &Curve,
    f1: &Curve,
    f2: &Curve,
    c1_total: Rat,
    beta1: &Curve,
    beta2: &Curve,
    cap: OutputCap,
) -> Result<PairBound, CurveError> {
    let _span = dnc_telemetry::span("core.pair_bound");
    dnc_telemetry::counter("core.pair_bound.calls", 1);
    assert!(c1_total.is_positive(), "server-1 rate must be positive");
    let g1 = f12.add(f1);
    let d1 = bounds::hdev(&g1, beta1)?;

    // Decomposed-style local bound at server 2 (needed for S2 flows and as
    // a sanity envelope for the joint bound).
    let f12_at_2 = fifo::propagate_output(f12, d1, c1_total, cap);
    let g2 = f2.add(&f12_at_2);
    let d2 = bounds::hdev(&g2, beta2)?;

    // Joint bound: D1 + sup_{Δ≥0} [ β₂⁻¹(min(C1·Δ, F12(Δ+D1)) + F2(Δ)) − Δ ].
    let m = Curve::rate(c1_total).min(&f12.shift_left(d1));
    let inner = bounds::hdev(&m.add(f2), beta2)?;
    let through = (d1 + inner).min(d1 + d2);

    Ok(PairBound { d1, d2, through })
}

/// Algorithm Integrated.
#[derive(Clone, Copy, Debug)]
pub struct Integrated {
    /// Output re-characterization model (paper: [`OutputCap::Shift`]).
    pub cap: OutputCap,
    /// How servers are grouped into subnetworks (paper: pairs along the
    /// chain; [`PairingStrategy::Singletons`] degenerates to Decomposed).
    pub strategy: PairingStrategy,
    /// Scoped worker threads fanning independent pairing groups out
    /// (`1` = fully sequential). Results are merged in a fixed order, so
    /// reports are **bit-identical** for every value (DESIGN.md §13).
    pub workers: usize,
}

impl Default for Integrated {
    fn default() -> Self {
        Integrated {
            cap: OutputCap::Shift,
            strategy: PairingStrategy::GreedyChain,
            workers: 1,
        }
    }
}

impl Integrated {
    /// The paper's configuration.
    pub fn paper() -> Integrated {
        Integrated::default()
    }

    /// Same analysis fanned out over `workers` scoped threads.
    pub fn with_workers(mut self, workers: usize) -> Integrated {
        self.workers = workers;
        self
    }
}

/// One schedulable work item: a pairing group specialized by server
/// discipline. A mixed-discipline [`Group::Pair`] expands into two
/// sequential singles (correct, no joint gain), matching the historical
/// fallback.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Unit {
    Single(ServerId),
    FifoPair(ServerId, ServerId),
    SpPair(ServerId, ServerId),
}

impl Unit {
    fn servers(self) -> (ServerId, Option<ServerId>) {
        match self {
            Unit::Single(s) => (s, None),
            Unit::FifoPair(a, b) | Unit::SpPair(a, b) => (a, Some(b)),
        }
    }
}

/// How one computed delay advances the propagation state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Advance {
    One(ServerId),
    Pair(ServerId, ServerId),
}

/// One (flow, stage) outcome of analyzing a unit — everything the apply
/// step needs to update the report stages and the propagation tables.
#[derive(Clone, Debug, PartialEq, Eq)]
struct StageEntry {
    flow: FlowId,
    label: String,
    delay: Rat,
    advance: Advance,
}

/// The replayable outcome of one full Integrated analysis: the unit list
/// and, per unit, the stage entries it produced.
/// [`Integrated::analyze_incremental`] replays the entries of clean
/// units verbatim and recomputes only dirty ones.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GroupTrace {
    units: Vec<Unit>,
    entries: Vec<Vec<StageEntry>>,
}

impl GroupTrace {
    /// Number of units (pairing groups after discipline specialization).
    pub fn unit_count(&self) -> usize {
        self.units.len()
    }

    /// Rewrite the trace for a network about to lose `victim`: the
    /// victim's own entries are dropped and flow ids above it shift down
    /// by one, mirroring [`Network::remove_flow`]'s id compaction.
    pub fn remap_release(&mut self, victim: FlowId) {
        for entries in &mut self.entries {
            entries.retain(|e| e.flow != victim);
            for e in entries.iter_mut() {
                if e.flow.0 > victim.0 {
                    e.flow = FlowId(e.flow.0 - 1);
                }
            }
        }
    }
}

/// A successful incremental re-analysis
/// (see [`Integrated::analyze_incremental`]).
#[derive(Clone, Debug)]
pub struct IncrementalOutcome {
    /// The spliced report — Rat-exact equal to a from-scratch analysis.
    pub report: AnalysisReport,
    /// The refreshed trace for the next churn operation.
    pub trace: GroupTrace,
    /// Units inside the dirty closure (recomputed).
    pub dirty_units: usize,
    /// Total units in the partition.
    pub total_units: usize,
}

/// `unit_of[server] → unit index` plus the forward dependency edges
/// between units (deduplicated successors, from consecutive route hops).
/// `None` when an edge points backwards — the partition guarantees a
/// contracted-topological order so this cannot happen, but callers fall
/// back to the sequential path instead of trusting it blindly.
fn unit_graph(net: &Network, units: &[Unit]) -> Option<(Vec<usize>, Vec<BTreeSet<usize>>)> {
    let mut unit_of = vec![usize::MAX; net.servers().len()];
    for (i, u) in units.iter().enumerate() {
        let (a, b) = u.servers();
        unit_of[a.0] = i; // audit: allow(index, unit_of is sized to the server count; ServerId comes from the same network)
        if let Some(b) = b {
            unit_of[b.0] = i; // audit: allow(index, unit_of is sized to the server count; ServerId comes from the same network)
        }
    }
    let mut succs: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); units.len()];
    for f in net.flows() {
        for w in f.route.windows(2) {
            let (iu, iv) = (unit_of[w[0].0], unit_of[w[1].0]); // audit: allow(index, unit_of is sized to the server count; routes only name servers of this network)
            if iu == usize::MAX || iv == usize::MAX || iu == iv {
                continue;
            }
            if iu > iv {
                return None; // not in contracted-topological order
            }
            succs[iu].insert(iv); // audit: allow(index, iu is a unit index assigned above)
        }
    }
    Some((unit_of, succs))
}

/// Group unit indices into dependency waves: a unit's wave (depth) is one
/// past the deepest unit feeding it, so units within a wave share no
/// data dependency and may compute concurrently. Waves are emitted in
/// depth order with ascending unit indices inside each wave.
fn schedule_waves(net: &Network, units: &[Unit]) -> Option<Vec<Vec<usize>>> {
    let (_, succs) = unit_graph(net, units)?;
    let mut depth = vec![0usize; units.len()];
    for u in 0..units.len() {
        // audit: allow(index, u and v are unit indices below units.len())
        for &v in &succs[u] {
            // audit: allow(index, u and v are unit indices below units.len())
            depth[v] = depth[v].max(depth[u] + 1);
        }
    }
    let levels = depth.iter().max().map_or(0, |d| d + 1);
    let mut waves: Vec<Vec<usize>> = vec![Vec::new(); levels];
    for (u, &d) in depth.iter().enumerate() {
        waves[d].push(u); // audit: allow(index, d < levels by construction)
    }
    Some(waves)
}

/// Mark every unit whose inputs the mutated flow can reach: seed with the
/// units containing the flow's route servers, then close forward over the
/// dependency edges (one in-order pass suffices — edges only point
/// forward). Everything unmarked provably sees byte-identical inputs
/// (DESIGN.md §13).
fn dirty_flags(net: &Network, units: &[Unit], seed: &[ServerId]) -> Option<Vec<bool>> {
    let (unit_of, succs) = unit_graph(net, units)?;
    let mut dirty = vec![false; units.len()];
    for s in seed {
        let iu = *unit_of.get(s.0)?;
        if iu != usize::MAX {
            dirty[iu] = true; // audit: allow(index, iu is a unit index assigned by unit_graph)
        }
    }
    for u in 0..units.len() {
        // audit: allow(index, u is a unit index below units.len())
        if dirty[u] {
            // audit: allow(index, u is a unit index below units.len())
            for &v in &succs[u] {
                // audit: allow(index, successors are unit indices below units.len())
                dirty[v] = true;
            }
        }
    }
    Some(dirty)
}

/// Replay/record apply step: push report stages and advance propagation,
/// in the entry order the compute step fixed.
fn apply(prop: &mut Propagation<'_>, stages: &mut [Vec<(String, Rat)>], entries: &[StageEntry]) {
    for e in entries {
        stages[e.flow.0].push((e.label.clone(), e.delay)); // audit: allow(index, stages is sized to the flow count; entries only name flows of the same network)
        match e.advance {
            Advance::One(s) => prop.advance(e.flow, s, e.delay),
            Advance::Pair(a, b) => prop.advance_pair(e.flow, a, b, e.delay),
        }
    }
}

impl DelayAnalysis for Integrated {
    fn name(&self) -> &'static str {
        "integrated"
    }

    fn analyze(&self, net: &Network) -> Result<AnalysisReport, AnalysisError> {
        self.analyze_with(net, None)
    }
}

impl Integrated {
    /// [`DelayAnalysis::analyze`] with an optional [`AnalysisCache`]:
    /// pair bounds and local delays are memoized by their structural
    /// keys, so the report is Rat-exact identical with or without the
    /// cache, across runs, and across networks sharing the cache.
    pub fn analyze_with(
        &self,
        net: &Network,
        cache: Option<&AnalysisCache>,
    ) -> Result<AnalysisReport, AnalysisError> {
        self.analyze_traced(net, cache).map(|(report, _)| report)
    }

    /// Like [`Integrated::analyze_with`], additionally returning the
    /// [`GroupTrace`] that [`Integrated::analyze_incremental`] replays.
    pub fn analyze_traced(
        &self,
        net: &Network,
        cache: Option<&AnalysisCache>,
    ) -> Result<(AnalysisReport, GroupTrace), AnalysisError> {
        let _span = dnc_telemetry::span("algo.integrated");
        net.validate()?;
        let units = self.units_of(net)?;
        self.run(net, cache, &units, None)
    }

    /// Re-certify after a churn mutation by recomputing only the units
    /// inside the mutated flow's dirty closure (`seed`: the flow's route
    /// servers) and replaying `prev`'s recorded entries for the rest.
    ///
    /// Returns `Ok(None)` when the mutation changed the pairing
    /// partition itself — the caller must fall back to
    /// [`Integrated::analyze_traced`]. On success the report is Rat-exact
    /// equal to a from-scratch analysis (asserted under
    /// `debug-invariants`; argued in DESIGN.md §13).
    pub fn analyze_incremental(
        &self,
        net: &Network,
        prev: &GroupTrace,
        seed: &[ServerId],
        cache: Option<&AnalysisCache>,
    ) -> Result<Option<IncrementalOutcome>, AnalysisError> {
        let _span = dnc_telemetry::span("algo.integrated.incremental");
        net.validate()?;
        let units = self.units_of(net)?;
        if units != prev.units || prev.entries.len() != units.len() {
            return Ok(None); // partition changed: splice targets are gone
        }
        let Some(dirty) = dirty_flags(net, &units, seed) else {
            return Ok(None);
        };
        let dirty_units = dirty.iter().filter(|&&d| d).count();
        let (report, trace) = self.run(net, cache, &units, Some((prev, &dirty)))?;

        #[cfg(feature = "debug-invariants")]
        {
            let (full, _) = self.run(net, None, &units, None)?;
            assert_eq!(
                report, full,
                "incremental splice diverged from the from-scratch analysis"
            );
        }

        Ok(Some(IncrementalOutcome {
            report,
            trace,
            dirty_units,
            total_units: units.len(),
        }))
    }

    /// The partition specialized into schedulable units.
    fn units_of(&self, net: &Network) -> Result<Vec<Unit>, AnalysisError> {
        let part = partition(net, self.strategy)?;
        let mut units = Vec::with_capacity(part.groups.len());
        for group in &part.groups {
            match *group {
                Group::Single(s) => units.push(Unit::Single(s)),
                Group::Pair(a, b) => {
                    let (da, db) = (net.server(a).discipline, net.server(b).discipline);
                    match (da, db) {
                        (Discipline::Fifo, Discipline::Fifo) => units.push(Unit::FifoPair(a, b)),
                        (Discipline::StaticPriority, Discipline::StaticPriority) => {
                            units.push(Unit::SpPair(a, b))
                        }
                        // Mixed-discipline pairs fall back to sequential
                        // single-server analysis (still correct, no joint
                        // gain).
                        _ => {
                            units.push(Unit::Single(a));
                            units.push(Unit::Single(b));
                        }
                    }
                }
            }
        }
        Ok(units)
    }

    /// The analysis driver: compute every unit (sequentially in unit
    /// order, or wave-parallel when `workers > 1`), apply entries in unit
    /// order, assemble the report and the trace. `replay` carries the
    /// previous trace plus per-unit dirty flags for the incremental path;
    /// clean units replay their recorded entries instead of computing.
    fn run(
        &self,
        net: &Network,
        cache: Option<&AnalysisCache>,
        units: &[Unit],
        replay: Option<(&GroupTrace, &[bool])>,
    ) -> Result<(AnalysisReport, GroupTrace), AnalysisError> {
        let mut prop = Propagation::new(net, self.cap);
        let mut stages: Vec<Vec<(String, Rat)>> = vec![Vec::new(); net.flows().len()];
        let mut trace_entries: Vec<Vec<StageEntry>> = vec![Vec::new(); units.len()];

        let compute =
            |i: usize, prop: &Propagation<'_>| -> Result<Vec<StageEntry>, AnalysisError> {
                if let Some((prev, dirty)) = replay {
                    // audit: allow(index, dirty and entries are sized to units — checked by analyze_incremental)
                    if !dirty[i] {
                        // audit: allow(index, dirty and entries are sized to units — checked by analyze_incremental)
                        return Ok(prev.entries[i].clone());
                    }
                }
                // audit: allow(index, i is a unit index below units.len())
                match units[i] {
                    Unit::Single(s) => self.compute_single(net, s, prop, cache),
                    Unit::FifoPair(a, b) => self.compute_pair(net, a, b, prop, cache),
                    Unit::SpPair(a, b) => self.compute_pair_sp(net, a, b, prop, cache),
                }
            };

        let waves = if self.workers > 1 {
            schedule_waves(net, units)
        } else {
            None
        };
        match waves {
            Some(waves) => {
                for wave in &waves {
                    // Spawning threads for a single-unit wave is pure
                    // overhead (chain-shaped unit graphs are all such
                    // waves) — fan out only when the wave has real width.
                    let results = if wave.len() > 1 {
                        let per_unit = |k: usize| compute(wave[k], &prop); // audit: allow(index, fan_out only calls k < wave.len())
                        crate::par::fan_out(wave.len(), self.workers, &per_unit)
                    } else {
                        wave.iter().map(|&i| compute(i, &prop)).collect()
                    };
                    for (entries, &i) in results.into_iter().zip(wave.iter()) {
                        let entries = entries?;
                        apply(&mut prop, &mut stages, &entries);
                        trace_entries[i] = entries; // audit: allow(index, i is a unit index below units.len())
                    }
                }
            }
            None => {
                for (i, slot) in trace_entries.iter_mut().enumerate() {
                    let entries = compute(i, &prop)?;
                    apply(&mut prop, &mut stages, &entries);
                    *slot = entries;
                }
            }
        }

        let report = AnalysisReport {
            algorithm: self.name(),
            flows: net
                .flows()
                .iter()
                .enumerate()
                .map(|(i, f)| FlowReport {
                    flow: FlowId(i),
                    name: f.name.clone(),
                    e2e: stages[i].iter().map(|(_, d)| *d).sum(), // audit: allow(index, stages is sized to the flow count; f is a FlowId of the same network)
                    stages: std::mem::take(&mut stages[i]), // audit: allow(index, stages is sized to the flow count; f is a FlowId of the same network)
                })
                .collect(),
        };
        let trace = GroupTrace {
            units: units.to_vec(),
            entries: trace_entries,
        };
        Ok((report, trace))
    }

    fn compute_single(
        &self,
        net: &Network,
        server: ServerId,
        prop: &Propagation<'_>,
        cache: Option<&AnalysisCache>,
    ) -> Result<Vec<StageEntry>, AnalysisError> {
        let incident = net.flows_through(server);
        if incident.is_empty() {
            return Ok(Vec::new());
        }
        let srv = net.server(server);
        let delays: Vec<(FlowId, Rat)> = match srv.discipline {
            Discipline::Fifo => {
                let curves: Vec<_> = incident
                    .iter()
                    .map(|&f| prop.curve_at(f, server).clone())
                    .collect();
                let g = fifo::aggregate_curve(curves.iter());
                let d = cached_local_delay(cache, &g, srv.rate, server)?;
                incident.iter().map(|&f| (f, d)).collect()
            }
            Discipline::StaticPriority => {
                let curves: Vec<_> = incident
                    .iter()
                    .map(|&f| (f, prop.curve_at(f, server).clone()))
                    .collect();
                crate::sp::local_delays(net, server, &curves)?
            }
            Discipline::Gps => {
                let curves: Vec<_> = incident
                    .iter()
                    .map(|&f| (f, prop.curve_at(f, server).clone()))
                    .collect();
                crate::gps::local_delays(net, server, &curves)?
            }
            Discipline::Edf => {
                let curves: Vec<_> = incident
                    .iter()
                    .map(|&f| (f, prop.curve_at(f, server).clone()))
                    .collect();
                crate::edf::local_delays(net, server, &curves)?
            }
        };
        Ok(delays
            .into_iter()
            .map(|(f, d)| StageEntry {
                flow: f,
                label: srv.name.clone(),
                delay: d,
                advance: Advance::One(server),
            })
            .collect())
    }

    /// Joint analysis of a static-priority pair, level by level (lower
    /// priority number = more urgent; levels are FIFO internally, which
    /// is what [`pair_delay_bound_curves`] requires). Each level gets the
    /// residual strict service curves `[C·t − α_higher(t)]⁺` at both
    /// servers, with the higher-priority constraint at server 2 taken as
    /// its server-1 constraint delayed by that level's own server-1
    /// bound. Reads only entry curves seeded by upstream units, so it is
    /// a pure compute step: the level recursion feeds on its own
    /// aggregates, never on this unit's applied advances.
    fn compute_pair_sp(
        &self,
        net: &Network,
        a: ServerId,
        b: ServerId,
        prop: &Propagation<'_>,
        cache: Option<&AnalysisCache>,
    ) -> Result<Vec<StageEntry>, AnalysisError> {
        use std::collections::BTreeMap;
        let (s12, s1, s2) = classify_pair_flows(net, a, b);
        let c1 = net.server(a).rate;
        let c2 = net.server(b).rate;
        let label = format!("{}+{}", net.server(a).name, net.server(b).name);
        let mut out = Vec::new();

        // Group every involved flow by priority level.
        let mut levels: BTreeMap<u8, (Vec<_>, Vec<_>, Vec<_>)> = BTreeMap::new();
        for &f in &s12 {
            levels.entry(net.flow(f).priority).or_default().0.push(f);
        }
        for &f in &s1 {
            levels.entry(net.flow(f).priority).or_default().1.push(f);
        }
        for &f in &s2 {
            levels.entry(net.flow(f).priority).or_default().2.push(f);
        }

        // Higher-priority interference accumulated while walking levels in
        // urgency order.
        let mut higher1: Vec<Curve> = Vec::new(); // at server 1 (S12 ∪ S1)
        let mut higher2: Vec<Curve> = Vec::new(); // at server 2 (S12' ∪ S2)
        for (_prio, (l12, l1, l2)) in levels {
            let f12 = fifo::aggregate_curve(
                l12.iter()
                    .map(|&f| prop.curve_at(f, a).clone())
                    .collect::<Vec<_>>()
                    .iter(),
            );
            let f1 = fifo::aggregate_curve(
                l1.iter()
                    .map(|&f| prop.curve_at(f, a).clone())
                    .collect::<Vec<_>>()
                    .iter(),
            );
            let f2 = fifo::aggregate_curve(
                l2.iter()
                    .map(|&f| prop.curve_at(f, b).clone())
                    .collect::<Vec<_>>()
                    .iter(),
            );
            let residual = |rate: Rat, interference: &[Curve]| -> Curve {
                if interference.is_empty() {
                    Curve::rate(rate)
                } else {
                    Curve::rate(rate)
                        .sub(&fifo::aggregate_curve(interference.iter()))
                        .pos()
                }
            };
            let beta1 = residual(c1, &higher1);
            let beta2 = residual(c2, &higher2);
            let pb = match cache {
                Some(cch) => cch.pair_bound(
                    CacheKey::new("core.pair_bound_sp")
                        .curve(&f12)
                        .curve(&f1)
                        .curve(&f2)
                        .curve(&beta1)
                        .curve(&beta2)
                        .rat(c1)
                        .word(cap_word(self.cap)),
                    || pair_delay_bound_curves(&f12, &f1, &f2, c1, &beta1, &beta2, self.cap),
                ),
                None => pair_delay_bound_curves(&f12, &f1, &f2, c1, &beta1, &beta2, self.cap),
            }
            .map_err(|e| AnalysisError::at(a, e))?;

            for &f in &l12 {
                out.push(StageEntry {
                    flow: f,
                    label: label.clone(),
                    delay: pb.through,
                    advance: Advance::Pair(a, b),
                });
            }
            for &f in &l1 {
                out.push(StageEntry {
                    flow: f,
                    label: net.server(a).name.clone(),
                    delay: pb.d1,
                    advance: Advance::One(a),
                });
            }
            for &f in &l2 {
                out.push(StageEntry {
                    flow: f,
                    label: net.server(b).name.clone(),
                    delay: pb.d2,
                    advance: Advance::One(b),
                });
            }

            // This level now interferes with everything less urgent.
            higher1.push(f12.add(&f1));
            higher2.push(f2.add(&fifo::propagate_output(&f12, pb.d1, c1, self.cap)));
        }
        Ok(out)
    }

    fn compute_pair(
        &self,
        net: &Network,
        a: ServerId,
        b: ServerId,
        prop: &Propagation<'_>,
        cache: Option<&AnalysisCache>,
    ) -> Result<Vec<StageEntry>, AnalysisError> {
        let (s12, s1, s2) = classify_pair_flows(net, a, b);
        let f12 = fifo::aggregate_curve(
            s12.iter()
                .map(|&f| prop.curve_at(f, a).clone())
                .collect::<Vec<_>>()
                .iter(),
        );
        let f1 = fifo::aggregate_curve(
            s1.iter()
                .map(|&f| prop.curve_at(f, a).clone())
                .collect::<Vec<_>>()
                .iter(),
        );
        let f2 = fifo::aggregate_curve(
            s2.iter()
                .map(|&f| prop.curve_at(f, b).clone())
                .collect::<Vec<_>>()
                .iter(),
        );
        let c1 = net.server(a).rate;
        let c2 = net.server(b).rate;
        let pb = match cache {
            Some(cch) => cch.pair_bound(
                CacheKey::new("core.pair_bound")
                    .curve(&f12)
                    .curve(&f1)
                    .curve(&f2)
                    .rat(c1)
                    .rat(c2)
                    .word(cap_word(self.cap)),
                || pair_delay_bound(&f12, &f1, &f2, c1, c2, self.cap),
            ),
            None => pair_delay_bound(&f12, &f1, &f2, c1, c2, self.cap),
        }
        .map_err(|e| AnalysisError::at(a, e))?;

        let label = format!("{}+{}", net.server(a).name, net.server(b).name);
        let mut out = Vec::new();
        for &f in &s12 {
            out.push(StageEntry {
                flow: f,
                label: label.clone(),
                delay: pb.through,
                advance: Advance::Pair(a, b),
            });
        }
        for &f in &s1 {
            out.push(StageEntry {
                flow: f,
                label: net.server(a).name.clone(),
                delay: pb.d1,
                advance: Advance::One(a),
            });
        }
        for &f in &s2 {
            out.push(StageEntry {
                flow: f,
                label: net.server(b).name.clone(),
                delay: pb.d2,
                advance: Advance::One(b),
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomposed::Decomposed;
    use dnc_net::builders;
    use dnc_num::{int, rat};
    use dnc_traffic::TrafficSpec;

    #[test]
    fn pair_bound_hand_computed() {
        // C1 = C2 = 1, F12 = 2 + t/4, F1 = 1 + t/4, F2 = 3 + t/4.
        // D1 = 3. Joint inner max at Δ = 11/3 gives 47/12,
        // so through = 3 + 47/12 = 83/12. Decomposed d2 = 23/4.
        let f12 = Curve::token_bucket(int(2), rat(1, 4));
        let f1 = Curve::token_bucket(int(1), rat(1, 4));
        let f2 = Curve::token_bucket(int(3), rat(1, 4));
        let pb = pair_delay_bound(&f12, &f1, &f2, int(1), int(1), OutputCap::Shift).unwrap();
        assert_eq!(pb.d1, int(3));
        assert_eq!(pb.d2, rat(23, 4));
        assert_eq!(pb.through, rat(83, 12));
        assert!(pb.through < pb.d1 + pb.d2);
    }

    #[test]
    fn pair_bound_never_exceeds_decomposed_sum() {
        // Over a grid of parameters the joint bound stays within d1 + d2.
        for s12 in 1..4i64 {
            for s2 in 1..4i64 {
                for rho_num in 1..4i64 {
                    let rho = Rat::new(rho_num as i128, 10);
                    let f12 = Curve::token_bucket(int(s12), rho);
                    let f1 = Curve::token_bucket(int(1), rho);
                    let f2 = Curve::token_bucket(int(s2), rho);
                    let pb =
                        pair_delay_bound(&f12, &f1, &f2, int(1), int(1), OutputCap::Shift).unwrap();
                    assert!(pb.through <= pb.d1 + pb.d2);
                    assert!(pb.through >= pb.d1);
                }
            }
        }
    }

    #[test]
    fn pair_bound_empty_cross_sets() {
        // Lone S12 aggregate through two unit servers: D1 = σ, and the
        // rate cap kills any extra queueing at server 2 (C1 = C2).
        let f12 = Curve::token_bucket(int(4), rat(1, 2));
        let zero = Curve::zero();
        let pb = pair_delay_bound(&f12, &zero, &zero, int(1), int(1), OutputCap::Shift).unwrap();
        assert_eq!(pb.d1, int(4));
        assert_eq!(pb.through, int(4), "no second burst to pay");
    }

    #[test]
    fn slower_second_server_queues_again() {
        // C2 < C1: even smoothed S12 traffic backs up at server 2.
        let f12 = Curve::token_bucket(int(4), rat(1, 4));
        let zero = Curve::zero();
        let pb = pair_delay_bound(&f12, &zero, &zero, int(1), rat(1, 2), OutputCap::Shift).unwrap();
        assert!(pb.through > pb.d1);
        assert!(pb.through <= pb.d1 + pb.d2);
    }

    #[test]
    fn integrated_beats_decomposed_on_tandem() {
        for n in [2usize, 4, 8] {
            for u_16 in [4i128, 8, 12] {
                let rho = Rat::new(u_16, 64); // ρ = U/4, U = u_16/16
                let t = builders::tandem(n, int(1), rho, builders::TandemOptions::default());
                let di = Integrated::paper().analyze(&t.net).unwrap();
                let dd = Decomposed::paper().analyze(&t.net).unwrap();
                assert!(
                    di.bound(t.conn0) <= dd.bound(t.conn0),
                    "n={n} U={}/16: integrated {} > decomposed {}",
                    u_16,
                    di.bound(t.conn0),
                    dd.bound(t.conn0)
                );
                // Strict improvement at interior pairs for n >= 2.
                assert!(
                    di.bound(t.conn0) < dd.bound(t.conn0),
                    "expected strict improvement (n={n}, U={}/16)",
                    u_16
                );
            }
        }
    }

    #[test]
    fn singleton_strategy_equals_decomposed() {
        let t = builders::tandem(4, int(1), rat(1, 8), builders::TandemOptions::default());
        let int_single = Integrated {
            strategy: PairingStrategy::Singletons,
            ..Integrated::default()
        }
        .analyze(&t.net)
        .unwrap();
        let dd = Decomposed::paper().analyze(&t.net).unwrap();
        for (a, b) in int_single.flows.iter().zip(dd.flows.iter()) {
            assert_eq!(a.e2e, b.e2e, "flow {}", a.name);
        }
    }

    #[test]
    fn all_flows_get_bounds() {
        let t = builders::tandem(5, int(1), rat(3, 16), builders::TandemOptions::default());
        let r = Integrated::paper().analyze(&t.net).unwrap();
        assert_eq!(r.flows.len(), t.net.flows().len());
        for f in &r.flows {
            assert!(f.e2e.is_positive());
            assert!(!f.stages.is_empty());
        }
    }

    #[test]
    fn sp_pair_matches_fifo_when_single_level() {
        // With every flow on one priority level, the SP pair analysis is
        // the FIFO pair analysis.
        let f12 = Curve::token_bucket(int(2), rat(1, 4));
        let f1 = Curve::token_bucket(int(1), rat(1, 4));
        let f2 = Curve::token_bucket(int(3), rat(1, 4));
        let fifo = pair_delay_bound(&f12, &f1, &f2, int(1), int(1), OutputCap::Shift).unwrap();
        let via_curves = pair_delay_bound_curves(
            &f12,
            &f1,
            &f2,
            int(1),
            &Curve::rate(int(1)),
            &Curve::rate(int(1)),
            OutputCap::Shift,
        )
        .unwrap();
        assert_eq!(fifo, via_curves);
    }

    #[test]
    fn sp_pair_with_residual_curves() {
        // Tagged level behind higher-priority interference 1 + t/4 at
        // both servers: residual β = (3/4)(t − 4/3)⁺.
        let f12 = Curve::token_bucket(int(2), rat(1, 8));
        let zero = Curve::zero();
        let beta = Curve::rate(int(1))
            .sub(&Curve::token_bucket(int(1), rat(1, 4)))
            .pos();
        let pb =
            pair_delay_bound_curves(&f12, &zero, &zero, int(1), &beta, &beta, OutputCap::Shift)
                .unwrap();
        // D1 = h(2 + t/8, (3/4)(t − 4/3)⁺) = 4/3 + (2 + ρ·…) — exact value
        // checked against the standard burst/R + T with the burst evaluated
        // at the deviation point; sandwich properties must hold regardless.
        assert!(pb.d1 > int(2), "residual service must hurt");
        assert!(pb.through >= pb.d1);
        assert!(pb.through <= pb.d1 + pb.d2);
        // The joint bound must beat the naive sum: the rate cap still
        // applies at full C1 = 1.
        assert!(pb.through < pb.d1 + pb.d2);
    }

    #[test]
    fn integrated_beats_decomposed_on_sp_tandem() {
        use dnc_net::Discipline;
        for rho_num in [1i128, 2, 3] {
            let t = builders::tandem(
                4,
                int(1),
                Rat::new(rho_num, 16),
                builders::TandemOptions {
                    discipline: Discipline::StaticPriority,
                    ..builders::TandemOptions::default()
                },
            );
            let di = Integrated::paper().analyze(&t.net).unwrap();
            let dd = Decomposed::paper().analyze(&t.net).unwrap();
            for (a, b) in di.flows.iter().zip(dd.flows.iter()) {
                assert!(
                    a.e2e <= b.e2e,
                    "SP ρ={rho_num}/16 flow {}: integrated {} > decomposed {}",
                    a.name,
                    a.e2e,
                    b.e2e
                );
            }
            // Connection 0 (priority 1, behind the cross flows) must gain
            // strictly from pairing.
            assert!(di.bound(t.conn0) < dd.bound(t.conn0));
        }
    }

    #[test]
    fn two_server_subsystem_all_sets() {
        let sp = |s: i64, d: i128| TrafficSpec::token_bucket(int(s), Rat::new(1, d));
        let (net, _, _, f12, f1, f2) =
            builders::two_server(int(1), int(1), &[sp(2, 4)], &[sp(1, 4)], &[sp(3, 4)]);
        let r = Integrated::paper().analyze(&net).unwrap();
        // Matches pair_bound_hand_computed.
        assert_eq!(r.bound(f12[0]), rat(83, 12));
        assert_eq!(r.bound(f1[0]), int(3));
        assert_eq!(r.bound(f2[0]), rat(23, 4));
    }

    #[test]
    fn workers_yield_bit_identical_reports() {
        use dnc_net::Discipline;
        for discipline in [Discipline::Fifo, Discipline::StaticPriority] {
            let t = builders::tandem(
                6,
                int(1),
                rat(3, 32),
                builders::TandemOptions {
                    discipline,
                    ..builders::TandemOptions::default()
                },
            );
            let sequential = Integrated::paper().analyze(&t.net).unwrap();
            for workers in [2usize, 8] {
                let parallel = Integrated::paper()
                    .with_workers(workers)
                    .analyze(&t.net)
                    .unwrap();
                assert_eq!(
                    sequential, parallel,
                    "workers={workers} ({discipline:?}) must match sequential exactly"
                );
            }
        }
    }

    #[test]
    fn cached_equals_uncached_and_hits_across_runs() {
        let t = builders::tandem(6, int(1), rat(1, 16), builders::TandemOptions::default());
        let cache = AnalysisCache::new();
        let plain = Integrated::paper().analyze(&t.net).unwrap();
        let cold = Integrated::paper()
            .analyze_with(&t.net, Some(&cache))
            .unwrap();
        assert!(!cache.is_empty(), "first run must populate the cache");
        let warm = Integrated::paper()
            .analyze_with(&t.net, Some(&cache))
            .unwrap();
        assert_eq!(plain, cold);
        assert_eq!(plain, warm, "cache hits must be Rat-exact");
    }

    #[test]
    fn incremental_matches_full_after_admit_and_release() {
        let t = builders::tandem(5, int(1), rat(1, 16), builders::TandemOptions::default());
        let alg = Integrated::paper();
        let cache = AnalysisCache::new();
        let (_, trace) = alg.analyze_traced(&t.net, Some(&cache)).unwrap();

        // Admit a new flow over the middle servers.
        let mut grown = t.net.clone();
        let candidate = dnc_net::Flow {
            name: "extra".into(),
            spec: TrafficSpec::token_bucket(int(1), rat(1, 32)),
            route: t.middle.clone(),
            priority: 0,
        };
        let seed = candidate.route.clone();
        grown.add_flow(candidate).unwrap();
        let full = alg.analyze_traced(&grown, Some(&cache)).unwrap();
        let inc = alg
            .analyze_incremental(&grown, &trace, &seed, Some(&cache))
            .unwrap()
            .expect("tandem admit keeps the partition");
        assert_eq!(inc.report, full.0, "spliced report must be Rat-exact");
        assert_eq!(inc.trace, full.1, "refreshed trace must be replayable");
        assert!(inc.dirty_units <= inc.total_units);

        // Release it again: remap the trace and splice back.
        let victim = FlowId(grown.flows().len() - 1);
        let mut shrunk = grown.clone();
        shrunk.remove_flow(victim).unwrap();
        let mut remapped = inc.trace.clone();
        remapped.remap_release(victim);
        let full_back = alg.analyze_traced(&shrunk, Some(&cache)).unwrap();
        let inc_back = alg
            .analyze_incremental(&shrunk, &remapped, &seed, Some(&cache))
            .unwrap()
            .expect("tandem release keeps the partition");
        assert_eq!(inc_back.report, full_back.0);
        assert_eq!(inc_back.trace, full_back.1);
    }
}
