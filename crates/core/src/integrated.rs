//! **Algorithm Integrated** — the paper's contribution: analyze pairs of
//! consecutive FIFO servers *jointly*, so that the delay dependency
//! between them ("a packet maximally delayed at server 1 enters server 2
//! inside traffic that server 1 has already smoothed") is captured
//! instead of paying every burst at every hop.
//!
//! # The two-server bound (Theorem 1′)
//!
//! The paper's Theorem 1 is stated in an OCR-corrupted form and proved in
//! an unavailable technical report, so this crate implements a bound
//! re-derived from scratch in the same spirit (see DESIGN.md §5). Setting:
//! FIFO work-conserving servers 1 and 2 with rates `C₁, C₂`; flow sets
//! `S12` (through both), `S1` (server 1 only), `S2` (enters at server 2);
//! entry constraints `F12`, `F1`, `F2`; `Ḡ₁ = F12 + F1`;
//! `D₁ = h(Ḡ₁, λ_{C₁})` the server-1 local bound.
//!
//! Take any S12 bit: it arrives at server 1 at `h`, leaves it at
//! `u = h + δ₁` (with `δ₁ ≤ D₁`), and leaves server 2 at `w`. Let `q ≤ u`
//! start the server-2 busy period containing `u`; server 2 is busy on
//! `[q, w]`, so with `Δ = u − q`:
//!
//! ```text
//! w − u = [G₂(u) − G₂(q)]/C₂ − Δ
//! G₂(u) − G₂(q) ≤ min( C₁·Δ , F12(Δ + D₁) ) + F2(Δ)
//! ```
//!
//! The `C₁·Δ` branch is the server-1 **rate cap** (S12 traffic enters
//! server 2 no faster than server 1 can emit it); the volume branch holds
//! because every S12 bit departing server 1 in `(q, u]` arrived there in
//! `(q − D₁, h] ⊆` a window of length `Δ + D₁ − δ₁ ≤ Δ + D₁`. Hence
//!
//! ```text
//! d_S12 ≤ D₁ + max_{Δ ≥ 0} { [ min(C₁Δ, F12(Δ + D₁)) + F2(Δ) ]/C₂ − Δ }.
//! ```
//!
//! Dropping the `C₁Δ` branch recovers exactly the decomposed bound
//! `D₁ + D₂`, so **Integrated ≤ Decomposed holds by construction**; the
//! strict gain comes from the rate cap, which removes S12's (inflated)
//! burst from the server-2 backlog — the "pay bursts only once"
//! phenomenon. The maximization is a vertical-deviation computation on
//! exact PWL curves, so the bound is exact and cheap (the paper's
//! *efficiency* requirement for on-line admission control).

use crate::propagate::Propagation;
use crate::{fifo, AnalysisError, AnalysisReport, DelayAnalysis, FlowReport, OutputCap};
use dnc_curves::{bounds, Curve, CurveError};
use dnc_net::pairing::{classify_pair_flows, partition, Group, PairingStrategy};
use dnc_net::{Discipline, FlowId, Network, ServerId};
use dnc_num::Rat;

/// The three delay figures of one analyzed pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PairBound {
    /// Local bound at server 1 (applies to S1 flows).
    pub d1: Rat,
    /// Local bound at server 2 (applies to S2 flows).
    pub d2: Rat,
    /// Joint bound through both servers (applies to S12 flows);
    /// guaranteed `≤ d1 + d2`.
    pub through: Rat,
}

/// Compute the two-server bound from aggregate entry constraints, for
/// unit-class (FIFO) servers of rates `c1` and `c2`.
///
/// All aggregate constraints are nondecreasing (concave) arrival curves:
///
/// * `f12` — aggregate constraint of flows traversing server 1 then 2;
/// * `f1` — aggregate of flows leaving after server 1;
/// * `f2` — aggregate of flows entering at server 2;
/// * `c1`, `c2` — server rates;
/// * `cap` — output model used for the S12 constraint at server 2 when
///   computing the (decomposed-style) `d2`.
pub fn pair_delay_bound(
    f12: &Curve,
    f1: &Curve,
    f2: &Curve,
    c1: Rat,
    c2: Rat,
    cap: OutputCap,
) -> Result<PairBound, CurveError> {
    assert!(
        c1.is_positive() && c2.is_positive(),
        "rates must be positive"
    );
    pair_delay_bound_curves(f12, f1, f2, c1, &Curve::rate(c1), &Curve::rate(c2), cap)
}

/// The service-curve generalization of the two-server theorem — the
/// paper's announced static-priority extension.
///
/// The tagged class of traffic (a priority level, or everything at a
/// FIFO server) receives **strict** service curves `beta1` at server 1
/// and `beta2` at server 2 (for FIFO these are the full rates `λ_C`; for
/// static priority the residual curves `[C·t − α_higher(t)]⁺`, which are
/// strict). The derivation of DESIGN.md §5 goes through verbatim with two
/// substitutions:
///
/// * `D₁ = h(F12 + F1, β₁)` — the class's local bound at server 1;
/// * the server-2 busy-period argument uses `β₂` instead of `C₂·t`:
///   `w − u ≤ β₂⁻¹( min(C₁Δ, F12(Δ+D₁)) + F2(Δ) ) − Δ`, whose supremum
///   over `Δ` is exactly the horizontal deviation
///   `h( min(λ_{C₁}, F12(·+D₁)) + F2 , β₂ )`.
///
/// The rate cap keeps the **full** server-1 rate `c1_total` (nothing can
/// leave server 1 faster, whatever the discipline). Order within the
/// class must be FIFO (true per priority level of an SP server). Arrival
/// aggregates are nondecreasing arrival curves; `β₁`, `β₂` are
/// nondecreasing service curves.
pub fn pair_delay_bound_curves(
    f12: &Curve,
    f1: &Curve,
    f2: &Curve,
    c1_total: Rat,
    beta1: &Curve,
    beta2: &Curve,
    cap: OutputCap,
) -> Result<PairBound, CurveError> {
    let _span = dnc_telemetry::span("core.pair_bound");
    dnc_telemetry::counter("core.pair_bound.calls", 1);
    assert!(c1_total.is_positive(), "server-1 rate must be positive");
    let g1 = f12.add(f1);
    let d1 = bounds::hdev(&g1, beta1)?;

    // Decomposed-style local bound at server 2 (needed for S2 flows and as
    // a sanity envelope for the joint bound).
    let f12_at_2 = fifo::propagate_output(f12, d1, c1_total, cap);
    let g2 = f2.add(&f12_at_2);
    let d2 = bounds::hdev(&g2, beta2)?;

    // Joint bound: D1 + sup_{Δ≥0} [ β₂⁻¹(min(C1·Δ, F12(Δ+D1)) + F2(Δ)) − Δ ].
    let m = Curve::rate(c1_total).min(&f12.shift_left(d1));
    let inner = bounds::hdev(&m.add(f2), beta2)?;
    let through = (d1 + inner).min(d1 + d2);

    Ok(PairBound { d1, d2, through })
}

/// Algorithm Integrated.
#[derive(Clone, Copy, Debug)]
pub struct Integrated {
    /// Output re-characterization model (paper: [`OutputCap::Shift`]).
    pub cap: OutputCap,
    /// How servers are grouped into subnetworks (paper: pairs along the
    /// chain; [`PairingStrategy::Singletons`] degenerates to Decomposed).
    pub strategy: PairingStrategy,
}

impl Default for Integrated {
    fn default() -> Self {
        Integrated {
            cap: OutputCap::Shift,
            strategy: PairingStrategy::GreedyChain,
        }
    }
}

impl Integrated {
    /// The paper's configuration.
    pub fn paper() -> Integrated {
        Integrated::default()
    }
}

impl DelayAnalysis for Integrated {
    fn name(&self) -> &'static str {
        "integrated"
    }

    fn analyze(&self, net: &Network) -> Result<AnalysisReport, AnalysisError> {
        let _span = dnc_telemetry::span("algo.integrated");
        net.validate()?;
        let part = partition(net, self.strategy)?;
        let mut prop = Propagation::new(net, self.cap);
        let mut stages: Vec<Vec<(String, Rat)>> = vec![Vec::new(); net.flows().len()];

        for group in &part.groups {
            match *group {
                Group::Single(s) => {
                    self.analyze_single(net, s, &mut prop, &mut stages)?;
                }
                Group::Pair(a, b) => {
                    let (da, db) = (net.server(a).discipline, net.server(b).discipline);
                    match (da, db) {
                        (Discipline::Fifo, Discipline::Fifo) => {
                            self.analyze_pair(net, a, b, &mut prop, &mut stages)?;
                        }
                        (Discipline::StaticPriority, Discipline::StaticPriority) => {
                            self.analyze_pair_sp(net, a, b, &mut prop, &mut stages)?;
                        }
                        // Mixed-discipline pairs fall back to sequential
                        // single-server analysis (still correct, no joint
                        // gain).
                        _ => {
                            self.analyze_single(net, a, &mut prop, &mut stages)?;
                            self.analyze_single(net, b, &mut prop, &mut stages)?;
                        }
                    }
                }
            }
        }

        Ok(AnalysisReport {
            algorithm: self.name(),
            flows: net
                .flows()
                .iter()
                .enumerate()
                .map(|(i, f)| FlowReport {
                    flow: FlowId(i),
                    name: f.name.clone(),
                    e2e: stages[i].iter().map(|(_, d)| *d).sum(), // audit: allow(index, stages is sized to the flow count; f is a FlowId of the same network)
                    stages: std::mem::take(&mut stages[i]), // audit: allow(index, stages is sized to the flow count; f is a FlowId of the same network)
                })
                .collect(),
        })
    }
}

impl Integrated {
    fn analyze_single(
        &self,
        net: &Network,
        server: ServerId,
        prop: &mut Propagation<'_>,
        stages: &mut [Vec<(String, Rat)>],
    ) -> Result<(), AnalysisError> {
        let incident = net.flows_through(server);
        if incident.is_empty() {
            return Ok(());
        }
        let srv = net.server(server);
        let delays: Vec<(FlowId, Rat)> = match srv.discipline {
            Discipline::Fifo => {
                let curves: Vec<_> = incident
                    .iter()
                    .map(|&f| prop.curve_at(f, server).clone())
                    .collect();
                let g = fifo::aggregate_curve(curves.iter());
                let d = fifo::local_delay(&g, srv.rate, server)?;
                incident.iter().map(|&f| (f, d)).collect()
            }
            Discipline::StaticPriority => {
                let curves: Vec<_> = incident
                    .iter()
                    .map(|&f| (f, prop.curve_at(f, server).clone()))
                    .collect();
                crate::sp::local_delays(net, server, &curves)?
            }
            Discipline::Gps => {
                let curves: Vec<_> = incident
                    .iter()
                    .map(|&f| (f, prop.curve_at(f, server).clone()))
                    .collect();
                crate::gps::local_delays(net, server, &curves)?
            }
            Discipline::Edf => {
                let curves: Vec<_> = incident
                    .iter()
                    .map(|&f| (f, prop.curve_at(f, server).clone()))
                    .collect();
                crate::edf::local_delays(net, server, &curves)?
            }
        };
        for (f, d) in delays {
            stages[f.0].push((srv.name.clone(), d)); // audit: allow(index, stages is sized to the flow count; f is a FlowId of the same network)
            prop.advance(f, server, d);
        }
        Ok(())
    }

    /// Joint analysis of a static-priority pair, level by level (lower
    /// priority number = more urgent; levels are FIFO internally, which
    /// is what [`pair_delay_bound_curves`] requires). Each level gets the
    /// residual strict service curves `[C·t − α_higher(t)]⁺` at both
    /// servers, with the higher-priority constraint at server 2 taken as
    /// its server-1 constraint delayed by that level's own server-1
    /// bound.
    fn analyze_pair_sp(
        &self,
        net: &Network,
        a: ServerId,
        b: ServerId,
        prop: &mut Propagation<'_>,
        stages: &mut [Vec<(String, Rat)>],
    ) -> Result<(), AnalysisError> {
        use std::collections::BTreeMap;
        let (s12, s1, s2) = classify_pair_flows(net, a, b);
        let c1 = net.server(a).rate;
        let c2 = net.server(b).rate;
        let label = format!("{}+{}", net.server(a).name, net.server(b).name);

        // Group every involved flow by priority level.
        let mut levels: BTreeMap<u8, (Vec<_>, Vec<_>, Vec<_>)> = BTreeMap::new();
        for &f in &s12 {
            levels.entry(net.flow(f).priority).or_default().0.push(f);
        }
        for &f in &s1 {
            levels.entry(net.flow(f).priority).or_default().1.push(f);
        }
        for &f in &s2 {
            levels.entry(net.flow(f).priority).or_default().2.push(f);
        }

        // Higher-priority interference accumulated while walking levels in
        // urgency order.
        let mut higher1: Vec<Curve> = Vec::new(); // at server 1 (S12 ∪ S1)
        let mut higher2: Vec<Curve> = Vec::new(); // at server 2 (S12' ∪ S2)
        for (_prio, (l12, l1, l2)) in levels {
            let f12 = fifo::aggregate_curve(
                l12.iter()
                    .map(|&f| prop.curve_at(f, a).clone())
                    .collect::<Vec<_>>()
                    .iter(),
            );
            let f1 = fifo::aggregate_curve(
                l1.iter()
                    .map(|&f| prop.curve_at(f, a).clone())
                    .collect::<Vec<_>>()
                    .iter(),
            );
            let f2 = fifo::aggregate_curve(
                l2.iter()
                    .map(|&f| prop.curve_at(f, b).clone())
                    .collect::<Vec<_>>()
                    .iter(),
            );
            let residual = |rate: Rat, interference: &[Curve]| -> Curve {
                if interference.is_empty() {
                    Curve::rate(rate)
                } else {
                    Curve::rate(rate)
                        .sub(&fifo::aggregate_curve(interference.iter()))
                        .pos()
                }
            };
            let beta1 = residual(c1, &higher1);
            let beta2 = residual(c2, &higher2);
            let pb = pair_delay_bound_curves(&f12, &f1, &f2, c1, &beta1, &beta2, self.cap)
                .map_err(|e| AnalysisError::at(a, e))?;

            for &f in &l12 {
                stages[f.0].push((label.clone(), pb.through)); // audit: allow(index, stages is sized to the flow count; f is a FlowId of the same network)
                prop.advance_pair(f, a, b, pb.through);
            }
            for &f in &l1 {
                stages[f.0].push((net.server(a).name.clone(), pb.d1)); // audit: allow(index, stages is sized to the flow count; f is a FlowId of the same network)
                prop.advance(f, a, pb.d1);
            }
            for &f in &l2 {
                stages[f.0].push((net.server(b).name.clone(), pb.d2)); // audit: allow(index, stages is sized to the flow count; f is a FlowId of the same network)
                prop.advance(f, b, pb.d2);
            }

            // This level now interferes with everything less urgent.
            higher1.push(f12.add(&f1));
            higher2.push(f2.add(&fifo::propagate_output(&f12, pb.d1, c1, self.cap)));
        }
        Ok(())
    }

    fn analyze_pair(
        &self,
        net: &Network,
        a: ServerId,
        b: ServerId,
        prop: &mut Propagation<'_>,
        stages: &mut [Vec<(String, Rat)>],
    ) -> Result<(), AnalysisError> {
        let (s12, s1, s2) = classify_pair_flows(net, a, b);
        let f12 = fifo::aggregate_curve(
            s12.iter()
                .map(|&f| prop.curve_at(f, a).clone())
                .collect::<Vec<_>>()
                .iter(),
        );
        let f1 = fifo::aggregate_curve(
            s1.iter()
                .map(|&f| prop.curve_at(f, a).clone())
                .collect::<Vec<_>>()
                .iter(),
        );
        let f2 = fifo::aggregate_curve(
            s2.iter()
                .map(|&f| prop.curve_at(f, b).clone())
                .collect::<Vec<_>>()
                .iter(),
        );
        let c1 = net.server(a).rate;
        let c2 = net.server(b).rate;
        let pb = pair_delay_bound(&f12, &f1, &f2, c1, c2, self.cap)
            .map_err(|e| AnalysisError::at(a, e))?;

        let label = format!("{}+{}", net.server(a).name, net.server(b).name);
        for &f in &s12 {
            stages[f.0].push((label.clone(), pb.through)); // audit: allow(index, stages is sized to the flow count; f is a FlowId of the same network)
            prop.advance_pair(f, a, b, pb.through);
        }
        for &f in &s1 {
            stages[f.0].push((net.server(a).name.clone(), pb.d1)); // audit: allow(index, stages is sized to the flow count; f is a FlowId of the same network)
            prop.advance(f, a, pb.d1);
        }
        for &f in &s2 {
            stages[f.0].push((net.server(b).name.clone(), pb.d2)); // audit: allow(index, stages is sized to the flow count; f is a FlowId of the same network)
            prop.advance(f, b, pb.d2);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomposed::Decomposed;
    use dnc_net::builders;
    use dnc_num::{int, rat};
    use dnc_traffic::TrafficSpec;

    #[test]
    fn pair_bound_hand_computed() {
        // C1 = C2 = 1, F12 = 2 + t/4, F1 = 1 + t/4, F2 = 3 + t/4.
        // D1 = 3. Joint inner max at Δ = 11/3 gives 47/12,
        // so through = 3 + 47/12 = 83/12. Decomposed d2 = 23/4.
        let f12 = Curve::token_bucket(int(2), rat(1, 4));
        let f1 = Curve::token_bucket(int(1), rat(1, 4));
        let f2 = Curve::token_bucket(int(3), rat(1, 4));
        let pb = pair_delay_bound(&f12, &f1, &f2, int(1), int(1), OutputCap::Shift).unwrap();
        assert_eq!(pb.d1, int(3));
        assert_eq!(pb.d2, rat(23, 4));
        assert_eq!(pb.through, rat(83, 12));
        assert!(pb.through < pb.d1 + pb.d2);
    }

    #[test]
    fn pair_bound_never_exceeds_decomposed_sum() {
        // Over a grid of parameters the joint bound stays within d1 + d2.
        for s12 in 1..4i64 {
            for s2 in 1..4i64 {
                for rho_num in 1..4i64 {
                    let rho = Rat::new(rho_num as i128, 10);
                    let f12 = Curve::token_bucket(int(s12), rho);
                    let f1 = Curve::token_bucket(int(1), rho);
                    let f2 = Curve::token_bucket(int(s2), rho);
                    let pb =
                        pair_delay_bound(&f12, &f1, &f2, int(1), int(1), OutputCap::Shift).unwrap();
                    assert!(pb.through <= pb.d1 + pb.d2);
                    assert!(pb.through >= pb.d1);
                }
            }
        }
    }

    #[test]
    fn pair_bound_empty_cross_sets() {
        // Lone S12 aggregate through two unit servers: D1 = σ, and the
        // rate cap kills any extra queueing at server 2 (C1 = C2).
        let f12 = Curve::token_bucket(int(4), rat(1, 2));
        let zero = Curve::zero();
        let pb = pair_delay_bound(&f12, &zero, &zero, int(1), int(1), OutputCap::Shift).unwrap();
        assert_eq!(pb.d1, int(4));
        assert_eq!(pb.through, int(4), "no second burst to pay");
    }

    #[test]
    fn slower_second_server_queues_again() {
        // C2 < C1: even smoothed S12 traffic backs up at server 2.
        let f12 = Curve::token_bucket(int(4), rat(1, 4));
        let zero = Curve::zero();
        let pb = pair_delay_bound(&f12, &zero, &zero, int(1), rat(1, 2), OutputCap::Shift).unwrap();
        assert!(pb.through > pb.d1);
        assert!(pb.through <= pb.d1 + pb.d2);
    }

    #[test]
    fn integrated_beats_decomposed_on_tandem() {
        for n in [2usize, 4, 8] {
            for u_16 in [4i128, 8, 12] {
                let rho = Rat::new(u_16, 64); // ρ = U/4, U = u_16/16
                let t = builders::tandem(n, int(1), rho, builders::TandemOptions::default());
                let di = Integrated::paper().analyze(&t.net).unwrap();
                let dd = Decomposed::paper().analyze(&t.net).unwrap();
                assert!(
                    di.bound(t.conn0) <= dd.bound(t.conn0),
                    "n={n} U={}/16: integrated {} > decomposed {}",
                    u_16,
                    di.bound(t.conn0),
                    dd.bound(t.conn0)
                );
                // Strict improvement at interior pairs for n >= 2.
                assert!(
                    di.bound(t.conn0) < dd.bound(t.conn0),
                    "expected strict improvement (n={n}, U={}/16)",
                    u_16
                );
            }
        }
    }

    #[test]
    fn singleton_strategy_equals_decomposed() {
        let t = builders::tandem(4, int(1), rat(1, 8), builders::TandemOptions::default());
        let int_single = Integrated {
            cap: OutputCap::Shift,
            strategy: PairingStrategy::Singletons,
        }
        .analyze(&t.net)
        .unwrap();
        let dd = Decomposed::paper().analyze(&t.net).unwrap();
        for (a, b) in int_single.flows.iter().zip(dd.flows.iter()) {
            assert_eq!(a.e2e, b.e2e, "flow {}", a.name);
        }
    }

    #[test]
    fn all_flows_get_bounds() {
        let t = builders::tandem(5, int(1), rat(3, 16), builders::TandemOptions::default());
        let r = Integrated::paper().analyze(&t.net).unwrap();
        assert_eq!(r.flows.len(), t.net.flows().len());
        for f in &r.flows {
            assert!(f.e2e.is_positive());
            assert!(!f.stages.is_empty());
        }
    }

    #[test]
    fn sp_pair_matches_fifo_when_single_level() {
        // With every flow on one priority level, the SP pair analysis is
        // the FIFO pair analysis.
        let f12 = Curve::token_bucket(int(2), rat(1, 4));
        let f1 = Curve::token_bucket(int(1), rat(1, 4));
        let f2 = Curve::token_bucket(int(3), rat(1, 4));
        let fifo = pair_delay_bound(&f12, &f1, &f2, int(1), int(1), OutputCap::Shift).unwrap();
        let via_curves = pair_delay_bound_curves(
            &f12,
            &f1,
            &f2,
            int(1),
            &Curve::rate(int(1)),
            &Curve::rate(int(1)),
            OutputCap::Shift,
        )
        .unwrap();
        assert_eq!(fifo, via_curves);
    }

    #[test]
    fn sp_pair_with_residual_curves() {
        // Tagged level behind higher-priority interference 1 + t/4 at
        // both servers: residual β = (3/4)(t − 4/3)⁺.
        let f12 = Curve::token_bucket(int(2), rat(1, 8));
        let zero = Curve::zero();
        let beta = Curve::rate(int(1))
            .sub(&Curve::token_bucket(int(1), rat(1, 4)))
            .pos();
        let pb =
            pair_delay_bound_curves(&f12, &zero, &zero, int(1), &beta, &beta, OutputCap::Shift)
                .unwrap();
        // D1 = h(2 + t/8, (3/4)(t − 4/3)⁺) = 4/3 + (2 + ρ·…) — exact value
        // checked against the standard burst/R + T with the burst evaluated
        // at the deviation point; sandwich properties must hold regardless.
        assert!(pb.d1 > int(2), "residual service must hurt");
        assert!(pb.through >= pb.d1);
        assert!(pb.through <= pb.d1 + pb.d2);
        // The joint bound must beat the naive sum: the rate cap still
        // applies at full C1 = 1.
        assert!(pb.through < pb.d1 + pb.d2);
    }

    #[test]
    fn integrated_beats_decomposed_on_sp_tandem() {
        use dnc_net::Discipline;
        for rho_num in [1i128, 2, 3] {
            let t = builders::tandem(
                4,
                int(1),
                Rat::new(rho_num, 16),
                builders::TandemOptions {
                    discipline: Discipline::StaticPriority,
                    ..builders::TandemOptions::default()
                },
            );
            let di = Integrated::paper().analyze(&t.net).unwrap();
            let dd = Decomposed::paper().analyze(&t.net).unwrap();
            for (a, b) in di.flows.iter().zip(dd.flows.iter()) {
                assert!(
                    a.e2e <= b.e2e,
                    "SP ρ={rho_num}/16 flow {}: integrated {} > decomposed {}",
                    a.name,
                    a.e2e,
                    b.e2e
                );
            }
            // Connection 0 (priority 1, behind the cross flows) must gain
            // strictly from pairing.
            assert!(di.bound(t.conn0) < dd.bound(t.conn0));
        }
    }

    #[test]
    fn two_server_subsystem_all_sets() {
        let sp = |s: i64, d: i128| TrafficSpec::token_bucket(int(s), Rat::new(1, d));
        let (net, _, _, f12, f1, f2) =
            builders::two_server(int(1), int(1), &[sp(2, 4)], &[sp(1, 4)], &[sp(3, 4)]);
        let r = Integrated::paper().analyze(&net).unwrap();
        // Matches pair_bound_hand_computed.
        assert_eq!(r.bound(f12[0]), rat(83, 12));
        assert_eq!(r.bound(f1[0]), int(3));
        assert_eq!(r.bound(f2[0]), rat(23, 4));
    }
}
