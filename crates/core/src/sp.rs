//! Static-priority local delay analysis — the extension the paper's
//! conclusion announces ("we are currently extending the applicability of
//! this approach to the static-priority discipline"), following the
//! authors' companion RTSS'97 work on SP ATM networks.
//!
//! Fluid model: a priority level `p` at a rate-`C` server receives the
//! residual service curve `β_p(t) = [C·t − Σ_{q < p} α_q(t)]⁺` (lower
//! numbers more urgent, FIFO within a level), and the level's worst-case
//! delay is the horizontal deviation of its aggregate from `β_p`.

use crate::{fifo, AnalysisError};
use dnc_curves::{bounds, Curve};
use dnc_net::{FlowId, Network, ServerId};
use dnc_num::Rat;
use std::collections::BTreeMap;

/// Per-flow local delays at a static-priority server.
///
/// `curves` supplies each incident flow together with its (nondecreasing
/// arrival) constraint at this server. Flows on the same priority level
/// share a bound.
pub fn local_delays(
    net: &Network,
    server: ServerId,
    curves: &[(FlowId, Curve)],
) -> Result<Vec<(FlowId, Rat)>, AnalysisError> {
    let rate = net.server(server).rate;

    // Group constraints by priority level.
    let mut by_prio: BTreeMap<u8, Vec<(FlowId, &Curve)>> = BTreeMap::new();
    for (f, c) in curves {
        by_prio
            .entry(net.flow(*f).priority)
            .or_default()
            .push((*f, c));
    }

    let mut result = Vec::with_capacity(curves.len());
    let mut higher: Vec<Curve> = Vec::new();
    for (_prio, level) in by_prio {
        let level_curves: Vec<Curve> = level.iter().map(|(_, c)| (*c).clone()).collect();
        let level_aggregate = fifo::aggregate_curve(level_curves.iter());
        let beta = if higher.is_empty() {
            Curve::rate(rate)
        } else {
            let interference = fifo::aggregate_curve(higher.iter());
            Curve::rate(rate).sub(&interference).pos()
        };
        let d = bounds::hdev(&level_aggregate, &beta).map_err(|e| AnalysisError::at(server, e))?;
        for (f, _) in &level {
            result.push((*f, d));
        }
        higher.extend(level_curves);
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{decomposed::Decomposed, DelayAnalysis};
    use dnc_net::{Discipline, Flow, Network, Server};
    use dnc_num::{int, rat};
    use dnc_traffic::TrafficSpec;

    fn sp_server_net(specs_prios: &[(TrafficSpec, u8)]) -> (Network, Vec<FlowId>) {
        let mut net = Network::new();
        let s = net.add_server(Server {
            name: "sp".into(),
            rate: Rat::ONE,
            discipline: Discipline::StaticPriority,
        });
        let flows = specs_prios
            .iter()
            .enumerate()
            .map(|(i, (spec, prio))| {
                net.add_flow(Flow {
                    name: format!("f{i}"),
                    spec: spec.clone(),
                    route: vec![s],
                    priority: *prio,
                })
                .unwrap()
            })
            .collect();
        (net, flows)
    }

    #[test]
    fn top_priority_sees_full_rate() {
        let (net, flows) = sp_server_net(&[
            (TrafficSpec::token_bucket(int(2), rat(1, 4)), 0),
            (TrafficSpec::token_bucket(int(5), rat(1, 4)), 1),
        ]);
        let r = Decomposed::paper().analyze(&net).unwrap();
        // Priority 0: delay = its own burst only.
        assert_eq!(r.bound(flows[0]), int(2));
        // Priority 1 suffers the high-priority interference.
        assert!(r.bound(flows[1]) > int(5));
    }

    #[test]
    fn low_priority_delay_hand_computed() {
        // High: σ=2, ρ=1/4. Low: σ=1, ρ=1/4. β_low = [t − (2 + t/4)]⁺ =
        // (3/4)(t − 8/3)⁺. Delay = burst/rate + latency = 1/(3/4) + 8/3 = 4.
        let (net, flows) = sp_server_net(&[
            (TrafficSpec::token_bucket(int(2), rat(1, 4)), 0),
            (TrafficSpec::token_bucket(int(1), rat(1, 4)), 1),
        ]);
        let r = Decomposed::paper().analyze(&net).unwrap();
        assert_eq!(r.bound(flows[1]), int(4));
    }

    #[test]
    fn same_priority_is_fifo_like() {
        // Two flows at the same level: both get the aggregate-FIFO bound.
        let (net, flows) = sp_server_net(&[
            (TrafficSpec::token_bucket(int(2), rat(1, 4)), 0),
            (TrafficSpec::token_bucket(int(3), rat(1, 4)), 0),
        ]);
        let r = Decomposed::paper().analyze(&net).unwrap();
        assert_eq!(r.bound(flows[0]), int(5));
        assert_eq!(r.bound(flows[1]), int(5));
    }

    #[test]
    fn priority_beats_fifo_for_urgent_traffic() {
        // Same traffic through FIFO vs SP: the urgent flow's SP bound must
        // not exceed its FIFO bound.
        let specs = [
            (TrafficSpec::token_bucket(int(1), rat(1, 8)), 0u8),
            (TrafficSpec::token_bucket(int(6), rat(1, 8)), 1u8),
        ];
        let (sp_net, sp_flows) = sp_server_net(&specs);
        let mut fifo_net = Network::new();
        let s = fifo_net.add_server(Server::unit_fifo("fifo"));
        let fifo_flows: Vec<FlowId> = specs
            .iter()
            .map(|(spec, _)| {
                fifo_net
                    .add_flow(Flow {
                        name: "f".into(),
                        spec: spec.clone(),
                        route: vec![s],
                        priority: 0,
                    })
                    .unwrap()
            })
            .collect();
        let rsp = Decomposed::paper().analyze(&sp_net).unwrap();
        let rf = Decomposed::paper().analyze(&fifo_net).unwrap();
        assert!(rsp.bound(sp_flows[0]) <= rf.bound(fifo_flows[0]));
    }
}
