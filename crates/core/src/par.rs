//! Scoped-thread fan-out shared by the parallel analyses.

use dnc_curves::limits;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Run `job(0)..job(count-1)` over up to `workers` scoped threads and
/// return the results **in index order** (the bench `sweep` idiom:
/// atomic work counter + ordered slots), so callers merge
/// deterministically regardless of thread interleaving.
///
/// Each worker installs a snapshot of the coordinating thread's
/// [`limits`] so deadlines and cancellation apply identically on every
/// thread. Worker panics — including `BudgetBreach` payloads from the
/// limits checkpoints — are re-raised on the coordinating thread so a
/// guarded runner's `catch_unwind` still observes them.
pub(crate) fn fan_out<T, F>(count: usize, workers: usize, job: &F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    use std::panic::{catch_unwind, AssertUnwindSafe};

    // Worker panics are caught per job (std::thread::scope would replace
    // the payload with a generic "a scoped thread panicked" message,
    // losing the BudgetBreach) and re-raised below.
    enum Slot<T> {
        Done(T),
        Panicked(Box<dyn std::any::Any + Send>),
    }

    let mut slots: Vec<Option<Slot<T>>> = Vec::new();
    slots.resize_with(count, || None);
    let next = AtomicUsize::new(0);
    let aborted = AtomicBool::new(false);
    let slot = Mutex::new(&mut slots);
    let budget = limits::current();
    let outcome = crossbeam::scope(|scope| {
        for _ in 0..workers.max(1).min(count) {
            let budget = budget.clone();
            let (next, slot, aborted) = (&next, &slot, &aborted);
            scope.spawn(move |_| {
                let _guard = budget.map(limits::install);
                loop {
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    if k >= count || aborted.load(Ordering::Relaxed) {
                        break;
                    }
                    let r = match catch_unwind(AssertUnwindSafe(|| job(k))) {
                        Ok(v) => Slot::Done(v),
                        Err(payload) => {
                            aborted.store(true, Ordering::Relaxed);
                            Slot::Panicked(payload)
                        }
                    };
                    // audit: allow(index, slots has one slot per job index; k < count checked above)
                    slot.lock().unwrap_or_else(|p| p.into_inner())[k] = Some(r);
                }
            });
        }
    });
    if let Err(payload) = outcome {
        // Only reachable if the harness itself panicked (job panics are
        // caught above).
        std::panic::resume_unwind(payload);
    }
    let mut done = Vec::with_capacity(count);
    let mut first_panic: Option<Box<dyn std::any::Any + Send>> = None;
    for s in slots {
        match s {
            Some(Slot::Done(v)) => done.push(v),
            Some(Slot::Panicked(p)) => {
                // Keep the lowest-indexed payload for determinism.
                first_panic.get_or_insert(p);
            }
            // Empty slots only exist after an abort, handled below.
            None => {}
        }
    }
    if let Some(p) = first_panic {
        std::panic::resume_unwind(p);
    }
    assert_eq!(done.len(), count, "fan_out: every slot filled");
    done
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order() {
        for workers in [1usize, 2, 8] {
            let out = fan_out(17, workers, &|i| i * i);
            assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn worker_panics_reach_the_coordinator() {
        let r = std::panic::catch_unwind(|| {
            fan_out(4, 2, &|i| {
                if i == 2 {
                    std::panic::panic_any(limits::BudgetBreach::Cancelled);
                }
                i
            })
        });
        let payload = r.expect_err("panic must propagate");
        assert_eq!(
            limits::breach_of(payload.as_ref()),
            Some(&limits::BudgetBreach::Cancelled),
            "payload must survive the thread boundary"
        );
    }

    #[test]
    fn workers_inherit_the_installed_budget() {
        let tok = limits::CancelToken::new();
        tok.cancel();
        let _g = limits::install(limits::Limits {
            cancel: Some(tok),
            ..limits::Limits::default()
        });
        let r = std::panic::catch_unwind(|| {
            fan_out(2, 2, &|_| {
                // Workers re-install the coordinator's limits, so the
                // tripped token must be visible here.
                limits::checkpoint(1);
            })
        });
        assert!(
            limits::breach_of(r.expect_err("cancelled budget must trip").as_ref()).is_some(),
            "worker checkpoint must observe the coordinator's cancel token"
        );
    }
}
