//! Single-server FIFO primitives shared by every algorithm: aggregate
//! arrival curves, the local worst-case delay, and output propagation.

use crate::AnalysisError;
use dnc_curves::{bounds, Curve};
use dnc_net::ServerId;
use dnc_num::Rat;

/// How a flow's constraint is transformed when it leaves a server (or a
/// subnetwork) with delay bound `d`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum OutputCap {
    /// Cruz's shift only: `b'(I) = b(I + d)` — what the paper's analysis
    /// machinery uses.
    #[default]
    Shift,
    /// Shift, additionally capped by the server's output rate:
    /// `b'(I) = min{ b(I + d), C·I }`. A valid tightening (the server
    /// cannot emit faster than `C`); kept as an ablation option.
    ShiftRateCapped,
}

/// Sum the arrival curves of a set of flows; the zero curve for an empty
/// set. The aggregate is concave and nondecreasing when every input is.
pub fn aggregate_curve<'a, I: IntoIterator<Item = &'a Curve>>(curves: I) -> Curve {
    let mut it = curves.into_iter().peekable();
    if it.peek().is_none() {
        return Curve::zero();
    }
    Curve::sum(it)
}

/// Worst-case delay of *any* bit through a work-conserving FIFO server of
/// rate `rate` whose aggregate arrivals are constrained by `aggregate`:
/// the horizontal deviation `h(G, λ_C)`. `aggregate` must be a
/// nondecreasing arrival curve.
pub fn local_delay(aggregate: &Curve, rate: Rat, server: ServerId) -> Result<Rat, AnalysisError> {
    let _span = dnc_telemetry::span("core.local_delay");
    dnc_telemetry::counter("core.local_delay.calls", 1);
    bounds::hdev(aggregate, &Curve::rate(rate)).map_err(|e| AnalysisError::at(server, e))
}

/// Worst-case backlog of a work-conserving rate-`rate` server with
/// aggregate arrivals constrained by `aggregate` (a nondecreasing arrival
/// curve): the vertical deviation `v(G, λ_C)` (never negative).
pub fn local_backlog(aggregate: &Curve, rate: Rat, server: ServerId) -> Result<Rat, AnalysisError> {
    bounds::vdev(aggregate, &Curve::rate(rate))
        .map(|v| v.max(Rat::ZERO))
        .map_err(|e| AnalysisError::at(server, e))
}

/// A flow's constraint after leaving a stage with delay bound `d`.
/// Preserves concavity and the nondecreasing property of `curve`.
pub fn propagate_output(curve: &Curve, d: Rat, rate: Rat, cap: OutputCap) -> Curve {
    let _span = dnc_telemetry::span("core.propagate_output");
    dnc_telemetry::counter("core.propagate_output.calls", 1);
    let shifted = curve.shift_left(d);
    let out = match cap {
        OutputCap::Shift => shifted,
        OutputCap::ShiftRateCapped => shifted.min(&Curve::rate(rate)),
    };
    propagate_invariant(curve, d, cap, &out);
    out
}

/// `debug-invariants` postcondition of [`propagate_output`]: the output
/// constraint is Cruz's shift `b'(I) = b(I + d)` exactly (uncapped) or at
/// most it (rate-capped), checked at the kinks of both sides.
#[cfg(feature = "debug-invariants")]
fn propagate_invariant(curve: &Curve, d: Rat, cap: OutputCap, out: &Curve) {
    let mut xs: Vec<Rat> = out.breakpoint_xs();
    xs.extend(
        curve
            .breakpoint_xs()
            .into_iter()
            .filter(|&x| x >= d)
            .map(|x| x - d),
    );
    xs.push(out.tail_start().max(curve.tail_start()) + Rat::ONE);
    xs.sort();
    xs.dedup();
    for t in xs {
        let shifted = curve.eval(t + d);
        match cap {
            OutputCap::Shift => assert!(
                out.eval(t) == shifted,
                "invariant[propagate]: b'({t}) = {} differs from b({t}+{d}) = {}",
                out.eval(t),
                shifted
            ),
            OutputCap::ShiftRateCapped => assert!(
                out.eval(t) <= shifted,
                "invariant[propagate]: capped output above the Cruz shift at t={t}"
            ),
        }
    }
}

#[cfg(not(feature = "debug-invariants"))]
#[inline(always)]
fn propagate_invariant(_curve: &Curve, _d: Rat, _cap: OutputCap, _out: &Curve) {}

#[cfg(test)]
mod tests {
    use super::*;
    use dnc_num::{int, rat};

    #[test]
    fn aggregate_of_none_is_zero() {
        assert!(aggregate_curve([]).is_zero());
    }

    #[test]
    fn local_delay_hand_computed() {
        // Three capped buckets min{t, 1 + t/8} on a unit link: aggregate
        // climbs at slope 3 until t* = 8/7, so the backlog peak is
        // G(t*) − t* = 2t* = 16/7; the delay equals 16/7.
        let one = Curve::token_bucket_peak(int(1), rat(1, 8), int(1));
        let g = aggregate_curve([&one, &one, &one]);
        let d = local_delay(&g, int(1), ServerId(0)).unwrap();
        assert_eq!(d, rat(16, 7));
    }

    #[test]
    fn local_delay_uncapped_is_total_burst() {
        // Without peak caps the delay is the total burst over the rate.
        let g = aggregate_curve([
            &Curve::token_bucket(int(2), rat(1, 8)),
            &Curve::token_bucket(int(3), rat(1, 8)),
        ]);
        assert_eq!(local_delay(&g, int(1), ServerId(0)).unwrap(), int(5));
    }

    #[test]
    fn propagate_shift_matches_cruz() {
        // b(I) = 1 + I/4 delayed by d = 2: b'(I) = 3/2 + I/4.
        let b = Curve::token_bucket(int(1), rat(1, 4));
        let out = propagate_output(&b, int(2), int(1), OutputCap::Shift);
        assert_eq!(out, Curve::token_bucket(rat(3, 2), rat(1, 4)));
    }

    #[test]
    fn propagate_rate_cap_tightens() {
        let b = Curve::token_bucket(int(4), rat(1, 4));
        let plain = propagate_output(&b, int(2), int(1), OutputCap::Shift);
        let capped = propagate_output(&b, int(2), int(1), OutputCap::ShiftRateCapped);
        assert_eq!(capped.eval(int(0)), int(0));
        for t in 0..10 {
            assert!(capped.eval(int(t)) <= plain.eval(int(t)));
        }
    }
}
