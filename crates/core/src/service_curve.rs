//! **Algorithm Service Curve** — the induced service-curve method the
//! paper shows to be ill-suited for FIFO networks.
//!
//! For a *guaranteed-rate* scheduler, a per-connection service curve is
//! part of the discipline's contract and end-to-end analysis via min-plus
//! convolution is tight. A FIFO server makes no per-connection guarantee;
//! the best per-connection curve derivable from the discipline is the
//! *residual* (blind-multiplexing) curve
//!
//! ```text
//! β_{k,i}(t) = [ C_k · t − α_cross(t) ]⁺ ,
//! ```
//!
//! which charges connection `i` the full burst of all competing traffic at
//! the *residual* rate `C_k − ρ_cross` instead of the full link rate the
//! FIFO aggregate actually drains at. Convolving these curves along the
//! path and taking the horizontal deviation from the source constraint
//! yields the end-to-end bound. As the paper's Figure 4 shows, the
//! residual-rate latency terms blow up with load, making this method far
//! worse than plain decomposition for FIFO — which is precisely the
//! motivation for Algorithm Integrated.
//!
//! Cross-traffic constraints at interior servers are characterized the
//! same way the decomposed analysis characterizes them (local FIFO
//! delays plus the Cruz output shift) — the information a deployed
//! admission controller would actually have.

use crate::propagate::Propagation;
use crate::{fifo, AnalysisError, AnalysisReport, DelayAnalysis, FlowReport, OutputCap};
use dnc_curves::{bounds, minplus, Curve};
use dnc_net::{Discipline, FlowId, Network};
use dnc_num::Rat;

/// Algorithm Service Curve (induced FIFO service curves).
#[derive(Clone, Copy, Debug, Default)]
pub struct ServiceCurve {
    /// Output model used when characterizing cross traffic at interior
    /// servers (paper: [`OutputCap::Shift`]).
    pub cap: OutputCap,
}

impl ServiceCurve {
    /// The paper's configuration.
    pub fn paper() -> ServiceCurve {
        ServiceCurve {
            cap: OutputCap::Shift,
        }
    }
}

impl DelayAnalysis for ServiceCurve {
    fn name(&self) -> &'static str {
        "service-curve"
    }

    fn analyze(&self, net: &Network) -> Result<AnalysisReport, AnalysisError> {
        let _span = dnc_telemetry::span("algo.service_curve");
        net.validate()?;
        for s in net.servers() {
            if !matches!(s.discipline, Discipline::Fifo | Discipline::Gps) {
                return Err(AnalysisError::Unsupported(format!(
                    "service-curve analysis implemented for FIFO/GPS servers only (server {:?})",
                    s.name
                )));
            }
        }
        let order = net.topological_order()?;

        // First pass: decomposed-style propagation to obtain every flow's
        // constraint at every hop (needed to characterize cross traffic).
        let mut prop = Propagation::new(net, self.cap);
        let mut hop_curves: Vec<Vec<Curve>> = net
            .flows()
            .iter()
            .map(|f| Vec::with_capacity(f.route.len()))
            .collect();
        for server in &order {
            let incident = net.flows_through(*server);
            if incident.is_empty() {
                continue;
            }
            let curves: Vec<_> = incident
                .iter()
                .map(|&f| prop.curve_at(f, *server).clone())
                .collect();
            match net.server(*server).discipline {
                Discipline::Gps => {
                    let with_ids: Vec<_> = incident
                        .iter()
                        .zip(curves.iter())
                        .map(|(&f, c)| (f, c.clone()))
                        .collect();
                    for ((f, d), c) in crate::gps::local_delays(net, *server, &with_ids)?
                        .into_iter()
                        .zip(curves.iter())
                    {
                        hop_curves[f.0].push(c.clone()); // audit: allow(index, hop_curves sized to the flow count; indices are FlowId/hop_index of the same network)
                        prop.advance(f, *server, d);
                    }
                }
                _ => {
                    let g = fifo::aggregate_curve(curves.iter());
                    let d = fifo::local_delay(&g, net.server(*server).rate, *server)?;
                    for (&f, c) in incident.iter().zip(curves.iter()) {
                        hop_curves[f.0].push(c.clone()); // audit: allow(index, hop_curves sized to the flow count; indices are FlowId/hop_index of the same network)
                        prop.advance(f, *server, d);
                    }
                }
            }
        }
        // hop_curves[f] is ordered by the topological visit, which may not
        // match the route order; rebuild per-route indexing.
        // (Topological order visits each server once; a flow's hops appear
        // in route order because the route is a path in the DAG.)

        let mut flows_out = Vec::with_capacity(net.flows().len());
        for (i, f) in net.flows().iter().enumerate() {
            let id = FlowId(i);
            // Per-server residual curve for this flow.
            let mut betas: Vec<Curve> = Vec::with_capacity(f.route.len());
            for (hop, &server) in f.route.iter().enumerate() {
                let rate = net.server(server).rate;
                if net.server(server).discipline == Discipline::Gps {
                    // Guaranteed-rate server: the per-flow curve is part
                    // of the discipline's contract — exactly the setting
                    // the service-curve model was made for.
                    betas.push(crate::gps::service_curve(net, id, server));
                    continue;
                }
                let cross_ids: Vec<FlowId> = net
                    .flows_through(server)
                    .into_iter()
                    .filter(|&g| g != id)
                    .collect();
                let beta = if cross_ids.is_empty() {
                    Curve::rate(rate)
                } else {
                    let cross: Vec<Curve> = cross_ids
                        .iter()
                        .map(|&g| {
                            let h = net
                                .hop_index(g, server)
                                .expect("cross flow traverses server"); // audit: allow(expect, g is a cross flow at server, so hop_index is Some)
                            hop_curves[g.0][h].clone() // audit: allow(index, hop_curves sized to the flow count; indices are FlowId/hop_index of the same network)
                        })
                        .collect();
                    let alpha_cross = fifo::aggregate_curve(cross.iter());
                    Curve::rate(rate).sub(&alpha_cross).pos()
                };
                let _ = hop;
                betas.push(beta);
            }
            let beta_net = minplus::conv_all(betas.iter());
            let alpha = f.spec.arrival_curve();
            let e2e =
                bounds::hdev(&alpha, &beta_net).map_err(|e| AnalysisError::at(f.route[0], e))?; // audit: allow(index, hop_curves sized to the flow count; indices are FlowId/hop_index of the same network)
            flows_out.push(FlowReport {
                flow: id,
                name: f.name.clone(),
                e2e,
                stages: vec![("network service curve".into(), e2e)],
            });
        }

        Ok(AnalysisReport {
            algorithm: self.name(),
            flows: flows_out,
        })
    }
}

/// The residual service curve a single FIFO server induces for one
/// connection against the given (nondecreasing) cross-traffic constraint —
/// exposed for tests and for the benches' closed-form comparisons. The
/// `[·]⁺` clamp keeps the result nondecreasing for concave cross traffic.
pub fn residual_curve(rate: Rat, alpha_cross: &Curve) -> Curve {
    Curve::rate(rate).sub(alpha_cross).pos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnc_net::builders;
    use dnc_num::{int, rat};
    use dnc_traffic::TrafficSpec;

    #[test]
    fn residual_curve_shape() {
        // C = 1, cross = 2 + t/2: β = [t − 2 − t/2]⁺ = (1/2)(t − 4)⁺.
        let beta = residual_curve(int(1), &Curve::token_bucket(int(2), rat(1, 2)));
        assert_eq!(beta, Curve::rate_latency(rat(1, 2), int(4)));
    }

    #[test]
    fn lone_flow_has_zero_delay() {
        // No cross traffic, peak = rate: the residual curve is the full
        // link and a peak-capped source is never delayed.
        let (net, flows, _) = builders::chain(3, &[TrafficSpec::paper_source(int(1), rat(1, 4))]);
        let r = ServiceCurve::paper().analyze(&net).unwrap();
        assert_eq!(r.bound(flows[0]), int(0));
    }

    #[test]
    fn single_server_hand_computed() {
        // Flow of interest: uncapped (σ=1, ρ=1/8). Cross: (σ=2, ρ=1/4).
        // β = [t − 2 − t/4]⁺ = (3/4)(t − 8/3)⁺; delay = 1/(3/4) + 8/3 = 4.
        let (net, _, b, f12, _, _) = builders::two_server(
            int(1),
            int(1),
            &[TrafficSpec::token_bucket(int(1), rat(1, 8))],
            &[TrafficSpec::token_bucket(int(2), rat(1, 4))],
            &[],
        );
        // Restrict to server 1 only: build via two_server then analyze;
        // flow f12 traverses both servers; server 2 has no cross traffic,
        // so it contributes only the convolution with a full-rate curve.
        let _ = b;
        let r = ServiceCurve::paper().analyze(&net).unwrap();
        assert_eq!(r.bound(f12[0]), int(4));
    }

    #[test]
    fn worse_than_decomposed_at_high_load() {
        // The paper's Figure 4 shape: under high FIFO load the service
        // curve method's bound exceeds the decomposed bound.
        use crate::decomposed::Decomposed;
        let t = builders::tandem(4, int(1), rat(7, 32), builders::TandemOptions::default());
        let d = Decomposed::paper().analyze(&t.net).unwrap();
        let s = ServiceCurve::paper().analyze(&t.net).unwrap();
        assert!(
            s.bound(t.conn0) > d.bound(t.conn0),
            "service curve {} should exceed decomposed {} at U=7/8",
            s.bound(t.conn0),
            d.bound(t.conn0)
        );
    }
}
