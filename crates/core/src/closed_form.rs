//! Hand-derived closed forms for the paper's tandem topology, used to
//! cross-check the generic curve pipeline.
//!
//! The paper's Section 4.2 gives closed-form recursions for Algorithm
//! Decomposed on the tandem network; the published text is OCR-corrupted,
//! so the forms here are re-derived from first principles for the two
//! source models:
//!
//! * **Peak-capped sources** (the paper's `b(I) = min{I, σ+ρI}`): the
//!   first middle link carries three such connections on a unit link, so
//!   the aggregate climbs at slope 3 until each source's crossover
//!   `t* = σ/(1−ρ)` and the local delay is `E₁ = 2σ/(1−ρ)` — exactly the
//!   paper's first recursion term.
//! * **Uncapped token buckets**: every local FIFO delay is the aggregate
//!   burst over the rate, giving the clean recursion implemented by
//!   [`decomposed_tandem_uncapped`].

use dnc_num::Rat;

/// The paper's `E₁ = 2σ/(1−ρ)`: local delay of the first tandem link
/// (three peak-capped connections, unit link).
pub fn first_link_delay_capped(sigma: Rat, rho: Rat) -> Rat {
    assert!(rho < Rat::ONE);
    Rat::TWO * sigma / (Rat::ONE - rho)
}

/// Per-link local delays of Algorithm Decomposed on the `n`-switch tandem
/// with **uncapped** token-bucket sources `(σ, ρ)` and unit links.
///
/// Derivation: with uncapped buckets and total rate `4ρ < 1`, each local
/// FIFO delay equals the aggregate burst. Writing `S_j = Σ_{k≤j} E_k`:
///
/// * link 0 carries three fresh connections: `E₀ = 3σ`;
/// * link `j ≥ 1` carries Connection 0 (burst `σ + ρ·S_{j−1}`), fresh
///   `upper_j` and `lower_j` (`σ` each), and `lower_{j−1}` delayed once
///   (`σ + ρ·E_{j−1}`):
///   `E_j = 4σ + ρ·(S_{j−1} + E_{j−1})`.
pub fn decomposed_tandem_uncapped(n: usize, sigma: Rat, rho: Rat) -> Vec<Rat> {
    assert!(n >= 1);
    assert!(rho * Rat::from(4) < Rat::ONE, "need 4ρ < 1 for stability");
    let mut delays = Vec::with_capacity(n);
    let mut prefix = Rat::ZERO; // S_{j-1}
    for j in 0..n {
        let e = if j == 0 {
            sigma * Rat::from(3)
        } else {
            let prev = *delays.last().unwrap(); // audit: allow(unwrap, j > 0 branch: delays already holds j entries)
            sigma * Rat::from(4) + rho * (prefix + prev)
        };
        prefix += e;
        delays.push(e);
    }
    delays
}

/// End-to-end Decomposed bound for Connection 0 on the uncapped tandem:
/// the sum of [`decomposed_tandem_uncapped`].
pub fn decomposed_tandem_uncapped_e2e(n: usize, sigma: Rat, rho: Rat) -> Rat {
    decomposed_tandem_uncapped(n, sigma, rho).into_iter().sum()
}

/// Closed form of the Theorem-1′ pair bound for **uncapped** token
/// buckets on unit-rate servers: with `F12 = σ12 + ρ12·t`,
/// `F1 = σ1 + ρ1·t`, `F2 = σ2 + ρ2·t` and `C1 = C2 = 1`:
///
/// * `D1 = σ12 + σ1` (burst sum over rate, stability `ρ12 + ρ1 < 1`);
/// * the rate-cap crossing is at `Δ* = (σ12 + ρ12·D1) / (1 − ρ12)`;
/// * the inner maximum is `σ2 + ρ2·Δ*`;
/// * `through = D1 + σ2 + ρ2·Δ*`.
pub fn integrated_pair_uncapped(
    sigma12: Rat,
    rho12: Rat,
    sigma1: Rat,
    sigma2: Rat,
    rho2: Rat,
) -> Rat {
    assert!(rho12 < Rat::ONE);
    let d1 = sigma12 + sigma1;
    let delta_star = (sigma12 + rho12 * d1) / (Rat::ONE - rho12);
    d1 + sigma2 + rho2 * delta_star
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnc_num::{int, rat};

    #[test]
    fn integrated_pair_closed_form_matches_generic() {
        use crate::integrated::pair_delay_bound;
        use crate::OutputCap;
        use dnc_curves::Curve;
        for (s12, s1, s2) in [(2i64, 1i64, 3i64), (4, 0, 1), (1, 5, 2)] {
            for (r12_n, r1_n, r2_n) in [(1i128, 1i128, 1i128), (2, 1, 1), (1, 3, 2)] {
                let (rho12, rho1, rho2) =
                    (Rat::new(r12_n, 8), Rat::new(r1_n, 8), Rat::new(r2_n, 8));
                let f12 = Curve::token_bucket(int(s12), rho12);
                let f1 = Curve::token_bucket(int(s1), rho1);
                let f2 = Curve::token_bucket(int(s2), rho2);
                let pb =
                    pair_delay_bound(&f12, &f1, &f2, Rat::ONE, Rat::ONE, OutputCap::Shift).unwrap();
                let closed = integrated_pair_uncapped(int(s12), rho12, int(s1), int(s2), rho2);
                assert_eq!(
                    pb.through, closed,
                    "σ=({s12},{s1},{s2}) ρ=({rho12},{rho1},{rho2})"
                );
            }
        }
    }

    #[test]
    fn first_link_formula() {
        assert_eq!(first_link_delay_capped(int(1), rat(1, 8)), rat(16, 7));
        assert_eq!(first_link_delay_capped(int(2), rat(1, 2)), int(8));
    }

    #[test]
    fn uncapped_recursion_small_cases() {
        // σ=1, ρ=1/8: E0 = 3, E1 = 4 + (3 + 3)/8 = 19/4.
        let d = decomposed_tandem_uncapped(2, int(1), rat(1, 8));
        assert_eq!(d[0], int(3));
        assert_eq!(d[1], rat(19, 4));
        assert_eq!(
            decomposed_tandem_uncapped_e2e(2, int(1), rat(1, 8)),
            rat(31, 4)
        );
    }

    #[test]
    fn uncapped_recursion_grows() {
        let d = decomposed_tandem_uncapped(8, int(1), rat(3, 16));
        for w in d.windows(2) {
            assert!(w[1] > w[0], "local delays must grow along the chain");
        }
    }

    #[test]
    #[should_panic(expected = "4ρ < 1")]
    fn rejects_overload() {
        let _ = decomposed_tandem_uncapped(2, int(1), rat(1, 4));
    }
}
