//! Hop-by-hop constraint propagation shared by the algorithms.

use crate::fifo::{propagate_output, OutputCap};
use dnc_curves::Curve;
use dnc_net::{FlowId, Network, ServerId};
use dnc_num::Rat;

/// Tracks, for every flow, its traffic-constraint curve at the entrance of
/// each hop of its route, filled in as the analysis walks the network in
/// topological order.
pub(crate) struct Propagation<'a> {
    net: &'a Network,
    cap: OutputCap,
    /// `curves[flow][hop]` — constraint entering hop `hop` of the flow's
    /// route; hop 0 is the source spec, later hops are produced by
    /// [`Propagation::advance`].
    curves: Vec<Vec<Option<Curve>>>,
}

impl<'a> Propagation<'a> {
    pub(crate) fn new(net: &'a Network, cap: OutputCap) -> Propagation<'a> {
        let curves = net
            .flows()
            .iter()
            .map(|f| {
                let mut v: Vec<Option<Curve>> = vec![None; f.route.len()];
                v[0] = Some(f.spec.arrival_curve()); // audit: allow(index, curves[f] has one slot per route hop; hop comes from hop_index on the same route)
                v
            })
            .collect();
        Propagation { net, cap, curves }
    }

    /// The constraint of `flow` entering `server`.
    ///
    /// # Panics
    /// Panics if the flow does not traverse the server or if the upstream
    /// hops have not been processed yet (topological-order violation).
    pub(crate) fn curve_at(&self, flow: FlowId, server: ServerId) -> &Curve {
        let hop = self
            .net
            .hop_index(flow, server)
            .unwrap_or_else(|| panic!("{flow} does not traverse {server}")); // audit: allow(panic, documented panic: topological-order precondition of Propagation)
        self.curves[flow.0][hop] // audit: allow(index, curves[f] has one slot per route hop; hop comes from hop_index on the same route)
            .as_ref()
            // audit: allow(panic, documented panic: topological-order precondition of Propagation)
            .unwrap_or_else(|| panic!("{flow}@{server}: upstream not yet analyzed"))
    }

    /// Record that `flow` cleared `server` within `delay`, installing its
    /// constraint at the next hop (if any).
    pub(crate) fn advance(&mut self, flow: FlowId, server: ServerId, delay: Rat) {
        let hop = self
            .net
            .hop_index(flow, server)
            .unwrap_or_else(|| panic!("{flow} does not traverse {server}")); // audit: allow(panic, documented panic: topological-order precondition of Propagation)
        let rate = self.net.server(server).rate;
        let next = {
            let cur = self.curves[flow.0][hop] // audit: allow(index, curves[f] has one slot per route hop; hop comes from hop_index on the same route)
                .as_ref()
                .expect("advance past unanalyzed hop"); // audit: allow(expect, documented panic: topological-order precondition of Propagation)
            propagate_output(cur, delay, rate, self.cap)
        };
        // audit: allow(index, curves[f] has one slot per route hop; hop comes from hop_index on the same route)
        if hop + 1 < self.curves[flow.0].len() {
            self.curves[flow.0][hop + 1] = Some(next); // audit: allow(index, curves[f] has one slot per route hop; hop comes from hop_index on the same route)
        }
    }

    /// Like [`Propagation::advance`] but jumps **two** hops at once (a
    /// paired subnetwork): the constraint after the pair is the entry
    /// constraint shifted by the pair delay.
    pub(crate) fn advance_pair(
        &mut self,
        flow: FlowId,
        first: ServerId,
        second: ServerId,
        delay: Rat,
    ) {
        let hop = self
            .net
            .hop_index(flow, first)
            .unwrap_or_else(|| panic!("{flow} does not traverse {first}")); // audit: allow(panic, documented panic: topological-order precondition of Propagation)
        debug_assert_eq!(
            self.net.flow(flow).route.get(hop + 1),
            Some(&second),
            "advance_pair: servers not consecutive on the route"
        );
        let rate = self.net.server(second).rate;
        let next = {
            let cur = self.curves[flow.0][hop] // audit: allow(index, curves[f] has one slot per route hop; hop comes from hop_index on the same route)
                .as_ref()
                .expect("advance_pair past unanalyzed hop"); // audit: allow(expect, documented panic: topological-order precondition of Propagation)
            propagate_output(cur, delay, rate, self.cap)
        };
        // audit: allow(index, curves[f] has one slot per route hop; hop comes from hop_index on the same route)
        if hop + 2 < self.curves[flow.0].len() {
            self.curves[flow.0][hop + 2] = Some(next); // audit: allow(index, curves[f] has one slot per route hop; hop comes from hop_index on the same route)
        }
    }
}
