//! **Algorithm Decomposed** — the classical Cruz analysis the paper
//! compares against.
//!
//! The network is partitioned into isolated servers. Walking the servers
//! in topological order, the local worst-case delay of each server is
//! computed from the aggregate of the (propagated) per-connection
//! constraint functions, each connection's constraint is re-characterized
//! at the server's output (`b'(I) = b(I + d)`), and a connection's
//! end-to-end bound is the sum of the local bounds along its route. The
//! over-estimation the paper criticizes comes from assuming every packet
//! hits the worst case at *every* hop.

use crate::propagate::Propagation;
use crate::{
    edf, fifo, gps, sp, AnalysisError, AnalysisReport, DelayAnalysis, FlowReport, OutputCap,
};
use dnc_net::{Discipline, FlowId, Network};
use dnc_num::Rat;

/// Algorithm Decomposed, parameterized by the output-propagation model.
#[derive(Clone, Copy, Debug, Default)]
pub struct Decomposed {
    /// Output re-characterization model (paper: [`OutputCap::Shift`]).
    pub cap: OutputCap,
}

impl Decomposed {
    /// The paper's configuration.
    pub fn paper() -> Decomposed {
        Decomposed {
            cap: OutputCap::Shift,
        }
    }
}

impl DelayAnalysis for Decomposed {
    fn name(&self) -> &'static str {
        "decomposed"
    }

    fn analyze(&self, net: &Network) -> Result<AnalysisReport, AnalysisError> {
        let _span = dnc_telemetry::span("algo.decomposed");
        net.validate()?;
        let order = net.topological_order()?;
        let mut prop = Propagation::new(net, self.cap);
        let mut stages: Vec<Vec<(String, Rat)>> = vec![Vec::new(); net.flows().len()];

        for server in order {
            let incident = net.flows_through(server);
            if incident.is_empty() {
                continue;
            }
            let srv = net.server(server);
            // Per-flow local delay at this server.
            let delays: Vec<(FlowId, Rat)> = match srv.discipline {
                Discipline::Fifo => {
                    let curves: Vec<_> = incident
                        .iter()
                        .map(|&f| prop.curve_at(f, server).clone())
                        .collect();
                    let g = fifo::aggregate_curve(curves.iter());
                    let d = fifo::local_delay(&g, srv.rate, server)?;
                    incident.iter().map(|&f| (f, d)).collect()
                }
                Discipline::StaticPriority => {
                    let curves: Vec<_> = incident
                        .iter()
                        .map(|&f| (f, prop.curve_at(f, server).clone()))
                        .collect();
                    sp::local_delays(net, server, &curves)?
                }
                Discipline::Gps => {
                    let curves: Vec<_> = incident
                        .iter()
                        .map(|&f| (f, prop.curve_at(f, server).clone()))
                        .collect();
                    gps::local_delays(net, server, &curves)?
                }
                Discipline::Edf => {
                    let curves: Vec<_> = incident
                        .iter()
                        .map(|&f| (f, prop.curve_at(f, server).clone()))
                        .collect();
                    edf::local_delays(net, server, &curves)?
                }
            };
            for (f, d) in delays {
                stages[f.0].push((srv.name.clone(), d)); // audit: allow(index, tables sized to the flow/server count, indexed by FlowId/ServerId of the same network)
                prop.advance(f, server, d);
            }
        }

        Ok(AnalysisReport {
            algorithm: self.name(),
            flows: net
                .flows()
                .iter()
                .enumerate()
                .map(|(i, f)| FlowReport {
                    flow: FlowId(i),
                    name: f.name.clone(),
                    e2e: stages[i].iter().map(|(_, d)| *d).sum(), // audit: allow(index, tables sized to the flow/server count, indexed by FlowId/ServerId of the same network)
                    stages: std::mem::take(&mut stages[i]), // audit: allow(index, tables sized to the flow/server count, indexed by FlowId/ServerId of the same network)
                })
                .collect(),
        })
    }
}

/// Per-server worst-case **backlog** bounds (in cells), computed with the
/// same decomposition walk as the delay analysis — the buffer-sizing
/// companion of the delay bounds (how much memory each output port needs
/// so that no conforming workload ever drops a cell).
pub fn backlog_bounds(net: &Network, cap: OutputCap) -> Result<Vec<Rat>, AnalysisError> {
    net.validate()?;
    let order = net.topological_order()?;
    let mut prop = Propagation::new(net, cap);
    let mut backlog = vec![Rat::ZERO; net.servers().len()];
    for server in order {
        let incident = net.flows_through(server);
        if incident.is_empty() {
            continue;
        }
        let srv = net.server(server);
        let curves: Vec<_> = incident
            .iter()
            .map(|&f| prop.curve_at(f, server).clone())
            .collect();
        let g = fifo::aggregate_curve(curves.iter());
        backlog[server.0] = fifo::local_backlog(&g, srv.rate, server)?; // audit: allow(index, tables sized to the flow/server count, indexed by FlowId/ServerId of the same network)
                                                                        // Propagation still needs delay bounds (discipline-aware).
        let delays: Vec<(FlowId, Rat)> = match srv.discipline {
            Discipline::Fifo => {
                let d = fifo::local_delay(&g, srv.rate, server)?;
                incident.iter().map(|&f| (f, d)).collect()
            }
            Discipline::StaticPriority => {
                let with_ids: Vec<_> = incident
                    .iter()
                    .zip(curves.iter())
                    .map(|(&f, c)| (f, c.clone()))
                    .collect();
                sp::local_delays(net, server, &with_ids)?
            }
            Discipline::Gps => {
                let with_ids: Vec<_> = incident
                    .iter()
                    .zip(curves.iter())
                    .map(|(&f, c)| (f, c.clone()))
                    .collect();
                gps::local_delays(net, server, &with_ids)?
            }
            Discipline::Edf => {
                let with_ids: Vec<_> = incident
                    .iter()
                    .zip(curves.iter())
                    .map(|(&f, c)| (f, c.clone()))
                    .collect();
                edf::local_delays(net, server, &with_ids)?
            }
        };
        for (f, d) in delays {
            prop.advance(f, server, d);
        }
    }
    Ok(backlog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnc_net::builders;
    use dnc_num::{int, rat};
    use dnc_traffic::TrafficSpec;

    #[test]
    fn single_server_matches_hand_calc() {
        // Two uncapped buckets (σ=2, ρ=1/8) and (σ=3, ρ=1/8) on a unit
        // FIFO server: local delay = total burst = 5.
        let (net, flows, _) = builders::chain(
            1,
            &[
                TrafficSpec::token_bucket(int(2), rat(1, 8)),
                TrafficSpec::token_bucket(int(3), rat(1, 8)),
            ],
        );
        let r = Decomposed::paper().analyze(&net).unwrap();
        assert_eq!(r.bound(flows[0]), int(5));
        assert_eq!(r.bound(flows[1]), int(5));
    }

    #[test]
    fn two_hop_chain_inflates_bursts() {
        // One uncapped bucket (σ=4, ρ=1/4) through two unit servers.
        // Hop 1: d1 = 4. Output: σ' = 4 + 1 = 5. Hop 2: d2 = 5. E2E = 9.
        let (net, flows, _) = builders::chain(2, &[TrafficSpec::token_bucket(int(4), rat(1, 4))]);
        let r = Decomposed::paper().analyze(&net).unwrap();
        assert_eq!(r.bound(flows[0]), int(9));
        let stages = &r.flows[flows[0].0].stages;
        assert_eq!(stages[0].1, int(4));
        assert_eq!(stages[1].1, int(5));
    }

    #[test]
    fn paper_first_link_delay() {
        // The paper's first-switch local delay with peak-capped sources:
        // three connections min{I, σ + ρI} on a unit link give
        // E_1 = 2σ/(1−ρ).
        let sigma = int(1);
        let rho = rat(1, 8); // U = 1/2
        let t = builders::tandem(2, sigma, rho, builders::TandemOptions::default());
        let r = Decomposed::paper().analyze(&t.net).unwrap();
        let first_stage = &r.flows[t.conn0.0].stages[0];
        let expect = (sigma * int(2)) / (int(1) - rho);
        assert_eq!(first_stage.1, expect, "E_1 = 2σ/(1−ρ)");
    }

    #[test]
    fn bounds_grow_with_load() {
        let opts = builders::TandemOptions::default();
        let mut last = Rat::ZERO;
        for u_num in [1i64, 2, 3] {
            let t = builders::tandem(4, int(1), Rat::new(u_num as i128, 16), opts);
            let r = Decomposed::paper().analyze(&t.net).unwrap();
            let b = r.bound(t.conn0);
            assert!(b > last, "bound must grow with load");
            last = b;
        }
    }

    #[test]
    fn rate_cap_never_loosens() {
        let t = builders::tandem(6, int(1), rat(3, 16), builders::TandemOptions::default());
        let plain = Decomposed::paper().analyze(&t.net).unwrap();
        let capped = Decomposed {
            cap: OutputCap::ShiftRateCapped,
        }
        .analyze(&t.net)
        .unwrap();
        for (i, f) in plain.flows.iter().enumerate() {
            assert!(capped.flows[i].e2e <= f.e2e);
        }
    }

    #[test]
    fn backlog_bound_hand_computed() {
        // Two uncapped buckets (σ=2, ρ=1/8) and (σ=3, ρ=1/8) on a unit
        // server: peak backlog = total burst = 5 (slope 1/4 < 1 so the
        // supremum is at t = 0⁺).
        let (net, _, servers) = builders::chain(
            1,
            &[
                TrafficSpec::token_bucket(int(2), rat(1, 8)),
                TrafficSpec::token_bucket(int(3), rat(1, 8)),
            ],
        );
        let b = backlog_bounds(&net, OutputCap::Shift).unwrap();
        assert_eq!(b[servers[0].0], int(5));
    }

    #[test]
    fn backlog_grows_downstream() {
        // Burst inflation makes downstream buffers need more room.
        let t = builders::tandem(4, int(1), rat(3, 16), builders::TandemOptions::default());
        let b = backlog_bounds(&t.net, OutputCap::Shift).unwrap();
        assert!(b[t.middle[1].0] > b[t.middle[0].0]);
        assert!(b[t.middle[3].0] > b[t.middle[1].0]);
    }

    #[test]
    fn overloaded_network_rejected() {
        let t = builders::tandem(2, int(1), rat(1, 4), builders::TandemOptions::default());
        // Interior utilization = 4ρ = 1: overload.
        assert!(matches!(
            Decomposed::paper().analyze(&t.net),
            Err(AnalysisError::Network(_))
        ));
    }
}
