//! Cross-run memoization for the analysis layer.
//!
//! [`AnalysisCache`] bundles the memo tables the fast-path analyses
//! share: pair bounds, local delays, and propagated entry envelopes. It
//! is keyed **structurally** (full operand curves and parameters, via
//! [`dnc_curves::cache::CacheKey`]) so a hit is exactly the value the
//! recomputation would produce — see DESIGN.md §13 for the soundness
//! argument. One cache can serve many analyses: across the passes of a
//! time-stopping fixed point, across the successive admissions of a
//! churn workload, or across the algorithms compared by `dnc profile`.
//!
//! Every memoized computation is a *pure function of its key*: the key
//! contains no flow ids, server ids, or other network coordinates, only
//! curves and rates. That makes the cache immune to id renumbering
//! (e.g. `Network::remove_flow` shifting flow ids) and safe to share
//! between networks that merely overlap.

use crate::integrated::PairBound;
use crate::OutputCap;
use dnc_curves::cache::{CacheKey, CurveCache};
use dnc_curves::intern::{self, CurveId};
use dnc_curves::Curve;
use dnc_num::Rat;

/// Encode an [`OutputCap`] as a cache-key word.
pub(crate) fn cap_word(cap: OutputCap) -> u64 {
    match cap {
        OutputCap::Shift => 0,
        OutputCap::ShiftRateCapped => 1,
    }
}

/// Memo tables shared by the fast-path analyses. Cheap to create, safe
/// to share across threads, and sound to reuse across networks (keys
/// are structural — see the module docs).
#[derive(Debug, Default)]
pub struct AnalysisCache {
    /// Two-server pair bounds, keyed by the aggregate entry constraints,
    /// service curves/rates, and output cap.
    pub(crate) pair: CurveCache<PairBound>,
    /// Local FIFO delays, keyed by (aggregate curve, server rate).
    pub(crate) delay: CurveCache<Rat>,
    /// Propagated entry envelopes, keyed by (source curve, per-hop
    /// delays, per-hop rates, output cap). Stores interned
    /// [`CurveId`]s so a memoized envelope costs one table slot and
    /// hits clone from the shared arena instead of a private copy.
    pub(crate) curve: CurveCache<CurveId>,
}

impl AnalysisCache {
    /// A fresh, empty cache with default capacities.
    pub fn new() -> AnalysisCache {
        AnalysisCache::default()
    }

    /// Drop every memoized entry.
    pub fn clear(&self) {
        self.pair.clear();
        self.delay.clear();
        self.curve.clear();
    }

    /// Total memoized entries across all tables (telemetry/diagnostics).
    pub fn len(&self) -> usize {
        self.pair.len() + self.delay.len() + self.curve.len()
    }

    /// Whether no entries are memoized.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub(crate) fn pair_bound<E>(
        &self,
        key: CacheKey,
        compute: impl FnOnce() -> Result<PairBound, E>,
    ) -> Result<PairBound, E> {
        self.pair.get_or_try_insert_with(key, compute)
    }

    pub(crate) fn local_delay<E>(
        &self,
        key: CacheKey,
        compute: impl FnOnce() -> Result<Rat, E>,
    ) -> Result<Rat, E> {
        self.delay.get_or_try_insert_with(key, compute)
    }

    pub(crate) fn entry_curve(&self, key: CacheKey, compute: impl FnOnce() -> Curve) -> Curve {
        let id = self
            .curve
            .get_or_insert_with(key, || intern::intern(&compute()));
        (*intern::resolve(id)).clone()
    }
}

/// Local-delay memoization shared by the FIFO analyses: the delay is a
/// pure function of the aggregate curve and the server rate, so the key
/// omits the server id (which only flavors error context — errors are
/// never cached).
pub(crate) fn cached_local_delay(
    cache: Option<&AnalysisCache>,
    g: &Curve,
    rate: Rat,
    server: dnc_net::ServerId,
) -> Result<Rat, crate::AnalysisError> {
    match cache {
        Some(c) => c.local_delay(CacheKey::new("core.local_delay").curve(g).rat(rate), || {
            crate::fifo::local_delay(g, rate, server)
        }),
        None => crate::fifo::local_delay(g, rate, server),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnc_num::{int, rat};

    #[test]
    fn entry_curve_memoizes() {
        let cache = AnalysisCache::new();
        let spec = Curve::token_bucket(int(2), rat(1, 4));
        let key = || CacheKey::new("test_entry").curve(&spec).rat(int(3));
        let mut computed = 0;
        let a = cache.entry_curve(key(), || {
            computed += 1;
            spec.shift_left(int(3))
        });
        let b = cache.entry_curve(key(), || {
            computed += 1;
            Curve::zero()
        });
        assert_eq!(a, b, "hit returns the memoized curve");
        assert_eq!(computed, 1);
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
    }
}
