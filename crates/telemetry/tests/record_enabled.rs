//! Behavioural tests of the recording machinery; meaningful only with
//! the `enabled` feature (without it every probe is a no-op, covered by
//! `noop_disabled.rs`).
//!
//! The registry is process-global and the test harness runs in threads,
//! so each test uses uniquely named series and asserts only on those;
//! the one test that must `reset` takes the shared lock.

#![cfg(feature = "enabled")]

use dnc_num::Rat;
use dnc_telemetry::{counter, gauge_u64, observe_rat, reset, snapshot, span, take_trace};

static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[test]
fn span_nesting_records_both_levels() {
    {
        let _outer = span("test.record.outer");
        let _inner = span("test.record.inner");
    }
    let snap = snapshot();
    assert_eq!(snap.span_count("test.record.outer"), 1);
    assert_eq!(snap.span_count("test.record.inner"), 1);
}

#[test]
fn out_of_order_drop_closes_enclosed_spans() {
    let outer = span("test.order.outer");
    let inner = span("test.order.inner");
    // Dropping the outer guard first must close the inner span too...
    drop(outer);
    let snap = snapshot();
    assert_eq!(snap.span_count("test.order.outer"), 1);
    assert_eq!(snap.span_count("test.order.inner"), 1);
    // ...and the late inner drop must not double-count.
    drop(inner);
    let snap = snapshot();
    assert_eq!(snap.span_count("test.order.inner"), 1);
}

#[test]
fn counters_accumulate() {
    counter("test.counter.a", 2);
    counter("test.counter.a", 3);
    assert_eq!(snapshot().counter_value("test.counter.a"), 5);
}

#[test]
fn gauges_feed_histograms() {
    for v in [1u64, 2, 3, 4] {
        gauge_u64("test.gauge.segs", || v);
    }
    observe_rat("test.gauge.rat", || Rat::new(1, 2));
    let snap = snapshot();
    let h = &snap.histograms["test.gauge.segs"];
    assert_eq!(h.count, 4);
    assert_eq!(h.min, 1.0);
    assert_eq!(h.max, 4.0);
    assert_eq!(snap.histograms["test.gauge.rat"].max, 0.5);
}

#[test]
fn trace_events_nest_and_reset_clears() {
    let _serial = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    reset();
    {
        let _outer = span("test.trace.outer");
        let _inner = span("test.trace.inner");
    }
    let trace = take_trace();
    let outer = trace.iter().find(|e| e.name == "test.trace.outer");
    let inner = trace.iter().find(|e| e.name == "test.trace.inner");
    let (outer, inner) = match (outer, inner) {
        (Some(o), Some(i)) => (o, i),
        other => panic!("both spans should be traced, got {other:?}"),
    };
    assert!(inner.ts_us >= outer.ts_us, "inner starts within outer");
    assert!(
        inner.ts_us + inner.dur_us <= outer.ts_us + outer.dur_us + 1,
        "inner ends within outer (within 1µs rounding)"
    );
    assert_eq!(outer.tid, inner.tid);
    reset();
    assert!(take_trace().is_empty());
}

#[test]
fn snapshot_span_stats_are_consistent() {
    for _ in 0..3 {
        let _g = span("test.stats.loop");
    }
    let snap = snapshot();
    let s = &snap.spans["test.stats.loop"];
    assert_eq!(s.count, 3);
    assert!(s.max_ns <= s.total_ns);
    assert!(s.p50_ns <= s.p95_ns);
    assert!(s.p95_ns <= s.max_ns);
    assert!(s.mean_ns() * 3 <= s.total_ns + 3);
}

#[test]
fn enabled_reports_true_and_guard_is_live() {
    assert!(dnc_telemetry::enabled());
    assert!(std::mem::size_of::<dnc_telemetry::SpanGuard>() > 0);
}
