//! The telemetry-off contract: with the `enabled` feature absent, probes
//! compile, cost nothing representable, and record nothing. This is the
//! build the `#![no_panic]`-audited analysis crates ship with by default.

#![cfg(not(feature = "enabled"))]

use dnc_num::Rat;
use dnc_telemetry::{
    counter, gauge_u64, observe_rat, reset, snapshot, span, take_trace, SpanGuard,
};

#[test]
fn guards_are_zero_sized_and_probes_record_nothing() {
    assert!(!dnc_telemetry::enabled());
    assert_eq!(std::mem::size_of::<SpanGuard>(), 0);
    {
        let _outer = span("noop.outer");
        let _inner = span("noop.inner");
        counter("noop.counter", 7);
        gauge_u64("noop.gauge", || 42);
        observe_rat("noop.rat", || Rat::new(1, 3));
    }
    assert!(snapshot().is_empty());
    assert!(take_trace().is_empty());
    reset();
}

#[test]
fn gauge_closures_never_run_when_disabled() {
    let mut ran = false;
    gauge_u64("noop.lazy", || {
        ran = true;
        1
    });
    assert!(!ran, "the value closure must not execute in a no-op build");
}
