//! Golden-file test pinning the `dnc-metrics/v1` wire format.
//!
//! The document is hand-built (no real timings), so the serialisation is
//! byte-deterministic. If this test fails because the format changed on
//! purpose, that is a schema revision: bump `schema::SCHEMA`, update
//! `DESIGN.md` §10, and regenerate the fixture by running with
//! `UPDATE_GOLDEN=1`.

use dnc_telemetry::export::{metrics_json, trace_json, Cell, MetricsDoc, Series};
use dnc_telemetry::schema;
use dnc_telemetry::{HistogramStat, Snapshot, SpanStat, TraceEvent};
use std::path::PathBuf;

fn golden_doc() -> MetricsDoc {
    let mut snap = Snapshot::default();
    snap.spans.insert(
        "algo.decomposed".to_string(),
        SpanStat {
            count: 1,
            total_ns: 125_000,
            max_ns: 125_000,
            p50_ns: 125_000,
            p95_ns: 125_000,
        },
    );
    snap.spans.insert(
        "curve.conv".to_string(),
        SpanStat {
            count: 6,
            total_ns: 48_000,
            max_ns: 12_000,
            p50_ns: 7_500,
            p95_ns: 12_000,
        },
    );
    snap.counters
        .insert("core.local_delay.calls".to_string(), 8);
    snap.counters.insert("net.pairing.pairs".to_string(), 2);
    snap.histograms.insert(
        "curve.conv.segments_out".to_string(),
        HistogramStat {
            count: 6,
            min: 2.0,
            max: 9.0,
            mean: 4.5,
            p50: 4.0,
            p95: 9.0,
            p99: 9.0,
        },
    );
    let mut bounds = Series::new(
        "bounds",
        vec![schema::LABEL, schema::WORK_LOAD, schema::DELAY_BOUND],
    );
    bounds.push_row(vec![
        Cell::Text("decomposed".to_string()),
        Cell::Num(0.5),
        Cell::Num(37.5),
    ]);
    bounds.push_row(vec![
        Cell::Text("integrated".to_string()),
        Cell::Num(0.5),
        Cell::Num(24.125),
    ]);
    bounds.push_row(vec![
        Cell::Text("service-curve".to_string()),
        Cell::Num(0.95),
        Cell::Null,
    ]);
    let mut doc = MetricsDoc::new("golden", snap)
        .with_meta("scenario", "ring4")
        .with_meta("flows", "3");
    doc.series.push(bounds);
    doc
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_against_golden(name: &str, rendered: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, rendered).expect("write golden fixture");
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()));
    assert_eq!(
        rendered, want,
        "{name} drifted from the checked-in fixture; if intentional, \
         rerun with UPDATE_GOLDEN=1 and review the schema impact"
    );
}

#[test]
fn metrics_json_matches_golden_and_validates() {
    let json = metrics_json(&golden_doc());
    schema::validate_metrics(&json).expect("golden document must be schema-valid");
    check_against_golden("metrics-golden.json", &json);
}

#[test]
fn trace_json_matches_golden_and_validates() {
    let events = vec![
        TraceEvent {
            name: "algo.decomposed",
            ts_us: 0,
            dur_us: 125,
            tid: 1,
        },
        TraceEvent {
            name: "curve.conv",
            ts_us: 4,
            dur_us: 12,
            tid: 1,
        },
        TraceEvent {
            name: "curve.conv",
            ts_us: 31,
            dur_us: 8,
            tid: 2,
        },
    ];
    let json = trace_json(&events);
    schema::validate_trace(&json).expect("golden trace must be schema-valid");
    check_against_golden("trace-golden.json", &json);
}
