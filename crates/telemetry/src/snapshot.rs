//! Aggregated telemetry data: span statistics, counters, histograms, and
//! raw trace events. Always compiled (exporters operate on these types
//! even in builds that record nothing).
//!
//! This module is on the audit's `f64` whitelist: telemetry samples are
//! lossy by nature (wall-clock durations, reporting-side summaries) and
//! never feed back into the exact `Rat` analysis.

use std::collections::BTreeMap;

/// Aggregated wall-time statistics of one span name.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SpanStat {
    /// Completed activations.
    pub count: u64,
    /// Summed wall time, nanoseconds.
    pub total_ns: u64,
    /// Largest single activation, nanoseconds.
    pub max_ns: u64,
    /// Median activation, nanoseconds (nearest-rank over recorded
    /// samples; sampling saturates at [`MAX_SAMPLES`]).
    pub p50_ns: u64,
    /// 95th-percentile activation, nanoseconds.
    pub p95_ns: u64,
}

impl SpanStat {
    /// Mean activation in nanoseconds (0 when the span never ran).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// Summary of one histogram (gauge samples).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HistogramStat {
    /// Samples observed (including any dropped past [`MAX_SAMPLES`]).
    pub count: u64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Mean over all observed samples.
    pub mean: f64,
    /// Median (nearest-rank over recorded samples).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

/// One completed span activation, for the Chrome trace export.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span name.
    pub name: &'static str,
    /// Start, microseconds since the registry epoch.
    pub ts_us: u64,
    /// Duration, microseconds.
    pub dur_us: u64,
    /// Registry-assigned thread id (dense, starts at 1).
    pub tid: u64,
}

/// Everything the registry aggregated since the last [`crate::reset`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Span statistics by span name.
    pub spans: BTreeMap<String, SpanStat>,
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramStat>,
}

impl Snapshot {
    /// True when nothing was recorded (e.g. the `enabled` feature is off).
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Span count by name (0 when absent) — convenience for report code.
    pub fn span_count(&self, name: &str) -> u64 {
        self.spans.get(name).map_or(0, |s| s.count)
    }

    /// Summed span wall time in nanoseconds (0 when absent).
    pub fn span_total_ns(&self, name: &str) -> u64 {
        self.spans.get(name).map_or(0, |s| s.total_ns)
    }

    /// Counter value by name (0 when absent).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }
}

/// Per-series sample cap: beyond this many samples a histogram keeps
/// counting (count/sum/min/max stay exact) but stops storing samples, so
/// percentiles describe the first `MAX_SAMPLES` observations.
pub const MAX_SAMPLES: usize = 65_536;

/// Reservoir of raw samples with exact count/sum/min/max and
/// nearest-rank percentiles over the stored prefix.
///
/// Only the `enabled` recorder feeds it; without that feature it is
/// exercised by this module's tests alone.
#[cfg_attr(not(feature = "enabled"), allow(dead_code))]
#[derive(Clone, Debug, Default)]
pub(crate) struct Reservoir {
    samples: Vec<f64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

#[cfg_attr(not(feature = "enabled"), allow(dead_code))]
impl Reservoir {
    pub(crate) fn observe(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            if v < self.min {
                self.min = v;
            }
            if v > self.max {
                self.max = v;
            }
        }
        self.count += 1;
        self.sum += v;
        if self.samples.len() < MAX_SAMPLES {
            self.samples.push(v);
        }
    }

    /// Nearest-rank percentile (`q` in 0..=100) over the stored samples.
    pub(crate) fn percentile(&self, q: u32) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        // Nearest-rank: ceil(q/100 · n), 1-based; clamp into range.
        let n = sorted.len();
        let rank = (q as usize * n).div_ceil(100).clamp(1, n);
        sorted[rank - 1] // audit: allow(index, rank is clamped into 1..=len)
    }

    pub(crate) fn summary(&self) -> HistogramStat {
        if self.count == 0 {
            return HistogramStat::default();
        }
        HistogramStat {
            count: self.count,
            min: self.min,
            max: self.max,
            mean: self.sum / self.count as f64,
            p50: self.percentile(50),
            p95: self.percentile(95),
            p99: self.percentile(99),
        }
    }

    pub(crate) fn span_stat(&self) -> SpanStat {
        SpanStat {
            count: self.count,
            total_ns: self.sum as u64,
            max_ns: self.max as u64,
            p50_ns: self.percentile(50) as u64,
            p95_ns: self.percentile(95) as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reservoir_percentiles_nearest_rank() {
        let mut r = Reservoir::default();
        for v in 1..=100 {
            r.observe(v as f64);
        }
        assert_eq!(r.percentile(50), 50.0);
        assert_eq!(r.percentile(95), 95.0);
        assert_eq!(r.percentile(99), 99.0);
        assert_eq!(r.percentile(100), 100.0);
        assert_eq!(r.percentile(0), 1.0, "rank clamps to the first sample");
        let s = r.summary();
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.mean, 50.5);
    }

    #[test]
    fn reservoir_single_sample() {
        let mut r = Reservoir::default();
        r.observe(7.0);
        let s = r.summary();
        assert_eq!((s.min, s.max, s.p50, s.p95), (7.0, 7.0, 7.0, 7.0));
        assert_eq!(s.count, 1);
    }

    #[test]
    fn reservoir_saturates_but_keeps_counting() {
        let mut r = Reservoir::default();
        for _ in 0..(MAX_SAMPLES + 10) {
            r.observe(1.0);
        }
        r.observe(5.0);
        let s = r.summary();
        assert_eq!(s.count, MAX_SAMPLES as u64 + 11);
        assert_eq!(s.max, 5.0, "min/max stay exact past the cap");
        assert_eq!(s.p50, 1.0);
    }

    #[test]
    fn empty_summary_is_zeroed() {
        assert_eq!(Reservoir::default().summary(), HistogramStat::default());
    }

    #[test]
    fn snapshot_accessors() {
        let mut s = Snapshot::default();
        assert!(s.is_empty());
        s.counters.insert("x".into(), 3);
        assert_eq!(s.counter_value("x"), 3);
        assert_eq!(s.counter_value("y"), 0);
        assert_eq!(s.span_count("none"), 0);
        assert!(!s.is_empty());
    }
}
