//! A minimal JSON reader used by the schema validators.
//!
//! The workspace builds offline with no serde, so the validators
//! re-parse emitted documents with this hand-rolled recursive-descent
//! parser. It accepts strict JSON (RFC 8259) minus two conveniences we
//! never emit: no `\uXXXX` surrogate-pair handling beyond BMP scalars,
//! and numbers are read as `f64` (good enough for structural checks —
//! the exact values live in the `Rat`-typed analysis, not here).
//!
//! On the audit's `f64` whitelist: parsed numbers are for validation and
//! display only.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; key order is normalised (BTreeMap).
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The object entry at `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The entries, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }
}

/// A parse failure, with a byte offset and message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, want: u8) -> Result<(), ParseError> {
        match self.bump() {
            Some(b) if b == want => Ok(()),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err(&format!("expected `{}`", want as char)))
            }
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes.get(self.pos..self.pos + word.len()) == Some(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect_byte(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(map)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected `,` or `}` in object"));
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect_byte(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(out)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected `,` or `]` in array"));
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = self
                            .bytes
                            .get(self.pos..self.pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| self.err("bad \\u escape"))?;
                        self.pos += 4;
                        out.push(char::from_u32(hex).unwrap_or('\u{FFFD}'));
                    }
                    _ => return Err(self.err("bad escape character")),
                },
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(b) if b < 0x80 => out.push(b as char),
                Some(first) => {
                    // Multi-byte UTF-8: the input is a &str, so the
                    // sequence is valid; re-decode it from the source.
                    let len = match first {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let start = self.pos - 1;
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| self.err("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = start + len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = self
            .bytes
            .get(start..self.pos)
            .and_then(|t| std::str::from_utf8(t).ok())
            .unwrap_or("");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null"), Ok(Value::Null));
        assert_eq!(parse(" true "), Ok(Value::Bool(true)));
        assert_eq!(parse("false"), Ok(Value::Bool(false)));
        assert_eq!(parse("-2.5e1"), Ok(Value::Number(-25.0)));
        assert_eq!(parse("\"a\\nb\""), Ok(Value::Str("a\nb".into())));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": "x"}, null], "c": {}}"#).unwrap();
        let arr = v.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[1].get("b").and_then(Value::as_str), Some("x"));
        assert_eq!(
            v.get("c").and_then(Value::as_object).map(|m| m.len()),
            Some(0)
        );
    }

    #[test]
    fn decodes_escapes_and_unicode() {
        let v = parse(r#""tab\t quote\" ué é""#).unwrap();
        assert_eq!(v.as_str(), Some("tab\t quote\" ué é"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "\"open",
            "01x",
            "true false",
            "{'a':1}",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn error_carries_offset() {
        let e = parse("[1, ?]").unwrap_err();
        assert_eq!(e.offset, 4);
        assert!(e.to_string().contains("byte 4"));
    }
}
