//! Recording machinery behind the probe API.
//!
//! Two complete implementations live here, selected by the `enabled`
//! cargo feature. The real one keeps a thread-local stack of open spans
//! plus a process-global registry; the stub one compiles every probe to
//! an empty `#[inline(always)]` function returning a zero-sized guard.
//! Both expose exactly the same signatures so instrumented crates never
//! mention the feature themselves.
//!
//! On the audit's `f64` whitelist: durations and gauge samples are lossy
//! measurements and never feed back into the exact analysis.

#[cfg(feature = "enabled")]
mod imp {
    use crate::snapshot::{Reservoir, Snapshot, TraceEvent};
    use dnc_num::Rat;
    use std::cell::RefCell;
    use std::collections::BTreeMap;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Mutex, OnceLock};
    use std::time::Instant;

    /// Raw trace-event cap; past it events are counted but not stored.
    const MAX_TRACE_EVENTS: usize = 262_144;

    struct State {
        spans: BTreeMap<&'static str, Reservoir>,
        counters: BTreeMap<&'static str, u64>,
        histograms: BTreeMap<&'static str, Reservoir>,
        trace: Vec<TraceEvent>,
        trace_dropped: u64,
    }

    impl State {
        const fn new() -> Self {
            State {
                spans: BTreeMap::new(),
                counters: BTreeMap::new(),
                histograms: BTreeMap::new(),
                trace: Vec::new(),
                trace_dropped: 0,
            }
        }
    }

    static STATE: Mutex<State> = Mutex::new(State::new());
    static NEXT_TID: AtomicU64 = AtomicU64::new(1);
    static EPOCH: OnceLock<Instant> = OnceLock::new();

    fn epoch() -> Instant {
        *EPOCH.get_or_init(Instant::now)
    }

    fn lock_state() -> std::sync::MutexGuard<'static, State> {
        // A poisoned registry only means another thread panicked while
        // holding the lock; its partial aggregates are still usable.
        STATE.lock().unwrap_or_else(|p| p.into_inner())
    }

    struct Open {
        name: &'static str,
        start: Instant,
    }

    thread_local! {
        static STACK: RefCell<Vec<Open>> = const { RefCell::new(Vec::new()) };
        static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    }

    /// RAII guard returned by [`span`]; closes the span on drop.
    ///
    /// The guard remembers the stack depth it opened at, so dropping a
    /// guard out of order closes every span above it as well instead of
    /// corrupting the stack.
    pub struct SpanGuard {
        depth: usize,
    }

    impl Drop for SpanGuard {
        fn drop(&mut self) {
            let end = Instant::now();
            let closed = STACK.with(|s| {
                let mut closed = Vec::new();
                if let Ok(mut stack) = s.try_borrow_mut() {
                    while stack.len() > self.depth {
                        if let Some(open) = stack.pop() {
                            closed.push(open);
                        }
                    }
                }
                closed
            });
            if closed.is_empty() {
                return;
            }
            let tid = TID.with(|t| *t);
            let epoch = epoch();
            let mut state = lock_state();
            for open in closed {
                let dur = end.saturating_duration_since(open.start);
                state
                    .spans
                    .entry(open.name)
                    .or_default()
                    .observe(dur.as_nanos() as f64);
                if state.trace.len() < MAX_TRACE_EVENTS {
                    let ts_us = open.start.saturating_duration_since(epoch).as_micros() as u64;
                    state.trace.push(TraceEvent {
                        name: open.name,
                        ts_us,
                        dur_us: dur.as_micros() as u64,
                        tid,
                    });
                } else {
                    state.trace_dropped += 1;
                }
            }
        }
    }

    /// Open a wall-time span; it closes when the guard drops.
    #[must_use = "the span closes when the guard drops"]
    pub fn span(name: &'static str) -> SpanGuard {
        epoch(); // pin the trace epoch before the first start timestamp
        STACK.with(|s| {
            if let Ok(mut stack) = s.try_borrow_mut() {
                let depth = stack.len();
                stack.push(Open {
                    name,
                    start: Instant::now(),
                });
                SpanGuard { depth }
            } else {
                // Re-entrant borrow (probe called from inside a Drop that
                // already holds the stack): record nothing for this span.
                SpanGuard { depth: usize::MAX }
            }
        })
    }

    /// Add `n` to the named counter.
    pub fn counter(name: &'static str, n: u64) {
        *lock_state().counters.entry(name).or_insert(0) += n;
    }

    /// Record one histogram sample; the closure runs only when enabled.
    pub fn gauge_u64(name: &'static str, value: impl FnOnce() -> u64) {
        let v = value();
        lock_state()
            .histograms
            .entry(name)
            .or_default()
            .observe(v as f64);
    }

    /// Record one exact-rational sample (e.g. a fixed-point residual);
    /// stored as its closest double.
    pub fn observe_rat(name: &'static str, value: impl FnOnce() -> Rat) {
        let v = value().to_f64();
        lock_state().histograms.entry(name).or_default().observe(v);
    }

    /// Aggregate everything recorded since the last [`reset`].
    pub fn snapshot() -> Snapshot {
        let state = lock_state();
        let mut snap = Snapshot::default();
        for (name, r) in &state.spans {
            snap.spans.insert((*name).to_string(), r.span_stat());
        }
        for (name, v) in &state.counters {
            snap.counters.insert((*name).to_string(), *v);
        }
        for (name, r) in &state.histograms {
            snap.histograms.insert((*name).to_string(), r.summary());
        }
        if state.trace_dropped > 0 {
            snap.counters
                .insert("telemetry.trace_dropped".to_string(), state.trace_dropped);
        }
        snap
    }

    /// Drain the raw span events accumulated since the last [`reset`].
    pub fn take_trace() -> Vec<TraceEvent> {
        std::mem::take(&mut lock_state().trace)
    }

    /// Clear all aggregates and trace events (open spans keep running and
    /// will record into the fresh state when they close).
    pub fn reset() {
        let mut state = lock_state();
        *state = State::new();
    }
}

#[cfg(not(feature = "enabled"))]
mod imp {
    use crate::snapshot::{Snapshot, TraceEvent};
    use dnc_num::Rat;

    /// RAII guard returned by [`span`]; zero-sized in this build.
    #[must_use = "the span closes when the guard drops"]
    pub struct SpanGuard {
        _private: (),
    }

    /// Open a wall-time span (no-op in this build).
    #[inline(always)]
    pub fn span(_name: &'static str) -> SpanGuard {
        SpanGuard { _private: () }
    }

    /// Add `n` to the named counter (no-op in this build).
    #[inline(always)]
    pub fn counter(_name: &'static str, _n: u64) {}

    /// Record one histogram sample (no-op; the closure never runs).
    #[inline(always)]
    pub fn gauge_u64(_name: &'static str, _value: impl FnOnce() -> u64) {}

    /// Record one exact-rational sample (no-op; the closure never runs).
    #[inline(always)]
    pub fn observe_rat(_name: &'static str, _value: impl FnOnce() -> Rat) {}

    /// Aggregate everything recorded (always empty in this build).
    #[inline(always)]
    pub fn snapshot() -> Snapshot {
        Snapshot::default()
    }

    /// Drain the raw span events (always empty in this build).
    #[inline(always)]
    pub fn take_trace() -> Vec<TraceEvent> {
        Vec::new()
    }

    /// Clear all aggregates (no-op in this build).
    #[inline(always)]
    pub fn reset() {}
}

pub use imp::{counter, gauge_u64, observe_rat, reset, snapshot, span, take_trace, SpanGuard};
