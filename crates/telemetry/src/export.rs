//! Exporters: human summary table, `dnc-metrics/v1` JSON, and Chrome
//! `trace_event` JSON.
//!
//! Everything renders from a [`MetricsDoc`] — a plain data structure the
//! caller assembles (usually from [`crate::snapshot`] plus
//! benchmark-specific [`Series`]) — so the formats cannot drift from what
//! was measured and golden tests can exercise the exporters with
//! hand-built documents instead of real timings.
//!
//! On the audit's `f64` whitelist: export values are reporting-side
//! summaries, downstream of the exact `Rat` analysis.

use crate::schema::{ColumnMeta, SCHEMA};
use crate::snapshot::{Snapshot, TraceEvent};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// One cell of a [`Series`] row.
#[derive(Clone, Debug, PartialEq)]
pub enum Cell {
    /// A numeric value.
    Num(f64),
    /// A label or exact-rational rendering.
    Text(String),
    /// Missing data (e.g. an algorithm with no bound at this point).
    Null,
}

impl Cell {
    /// A cell holding an integer value exactly.
    pub fn int(v: u64) -> Cell {
        Cell::Num(v as f64)
    }
}

/// A named table of rows with typed columns — the machine form of one
/// benchmark sweep or report table.
#[derive(Clone, Debug, PartialEq)]
pub struct Series {
    /// Series name (e.g. `fig4.bounds`).
    pub name: String,
    /// Column metadata, from [`crate::schema`] so charts and JSON agree.
    pub columns: Vec<ColumnMeta>,
    /// Data rows; every row must have `columns.len()` cells.
    pub rows: Vec<Vec<Cell>>,
}

impl Series {
    /// An empty series over the given columns.
    pub fn new(name: impl Into<String>, columns: Vec<ColumnMeta>) -> Series {
        Series {
            name: name.into(),
            columns,
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the column count; checked by the schema
    /// validator rather than panicking here).
    pub fn push_row(&mut self, row: Vec<Cell>) {
        self.rows.push(row);
    }
}

/// A complete metrics document: identification, free-form context,
/// aggregated telemetry, and benchmark series.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsDoc {
    /// Document name (e.g. `profile`, `fig4`).
    pub name: String,
    /// Free-form context (`scenario`, `flows`, git rev, …).
    pub meta: BTreeMap<String, String>,
    /// Aggregated spans/counters/histograms.
    pub snapshot: Snapshot,
    /// Benchmark/report tables.
    pub series: Vec<Series>,
}

impl MetricsDoc {
    /// A document named `name` around an aggregated snapshot.
    pub fn new(name: impl Into<String>, snapshot: Snapshot) -> MetricsDoc {
        MetricsDoc {
            name: name.into(),
            meta: BTreeMap::new(),
            snapshot,
            series: Vec::new(),
        }
    }

    /// Attach one context key (builder style).
    pub fn with_meta(mut self, key: impl Into<String>, value: impl Into<String>) -> MetricsDoc {
        self.meta.insert(key.into(), value.into());
        self
    }
}

/// Escape a string for inclusion in a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render a number the way the metrics JSON wants it: integers without a
/// fraction, everything else via Rust's shortest-roundtrip `Display`.
/// Non-finite values (never produced by the pipeline, but possible in a
/// hand-built doc) degrade to `null`.
fn number_json(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    if v == v.trunc() && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn cell_json(c: &Cell) -> String {
    match c {
        Cell::Num(v) => number_json(*v),
        Cell::Text(s) => format!("\"{}\"", escape_json(s)),
        Cell::Null => "null".to_string(),
    }
}

/// Serialise a [`MetricsDoc`] as `dnc-metrics/v1` JSON (stable key
/// order; see `DESIGN.md` §10 for the schema).
pub fn metrics_json(doc: &MetricsDoc) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"{}\",", SCHEMA);
    let _ = writeln!(out, "  \"name\": \"{}\",", escape_json(&doc.name));
    out.push_str("  \"meta\": {");
    let mut first = true;
    for (k, v) in &doc.meta {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\n    \"{}\": \"{}\"", escape_json(k), escape_json(v));
    }
    out.push_str(if doc.meta.is_empty() {
        "},\n"
    } else {
        "\n  },\n"
    });

    out.push_str("  \"spans\": {");
    let mut first = true;
    for (name, s) in &doc.snapshot.spans {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "\n    \"{}\": {{\"count\": {}, \"total_ns\": {}, \"mean_ns\": {}, \"max_ns\": {}, \"p50_ns\": {}, \"p95_ns\": {}}}",
            escape_json(name),
            s.count,
            s.total_ns,
            s.mean_ns(),
            s.max_ns,
            s.p50_ns,
            s.p95_ns
        );
    }
    out.push_str(if doc.snapshot.spans.is_empty() {
        "},\n"
    } else {
        "\n  },\n"
    });

    out.push_str("  \"counters\": {");
    let mut first = true;
    for (name, v) in &doc.snapshot.counters {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\n    \"{}\": {}", escape_json(name), v);
    }
    out.push_str(if doc.snapshot.counters.is_empty() {
        "},\n"
    } else {
        "\n  },\n"
    });

    out.push_str("  \"histograms\": {");
    let mut first = true;
    for (name, h) in &doc.snapshot.histograms {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "\n    \"{}\": {{\"count\": {}, \"min\": {}, \"max\": {}, \"mean\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
            escape_json(name),
            h.count,
            number_json(h.min),
            number_json(h.max),
            number_json(h.mean),
            number_json(h.p50),
            number_json(h.p95),
            number_json(h.p99)
        );
    }
    out.push_str(if doc.snapshot.histograms.is_empty() {
        "},\n"
    } else {
        "\n  },\n"
    });

    out.push_str("  \"series\": [");
    let mut first_series = true;
    for s in &doc.series {
        if !first_series {
            out.push(',');
        }
        first_series = false;
        let _ = write!(
            out,
            "\n    {{\"name\": \"{}\", \"columns\": [",
            escape_json(&s.name)
        );
        let mut first = true;
        for c in &s.columns {
            if !first {
                out.push_str(", ");
            }
            first = false;
            let _ = write!(
                out,
                "{{\"label\": \"{}\", \"unit\": \"{}\"}}",
                escape_json(c.label),
                escape_json(c.unit)
            );
        }
        out.push_str("], \"rows\": [");
        let mut first_row = true;
        for row in &s.rows {
            if !first_row {
                out.push(',');
            }
            first_row = false;
            out.push_str("\n      [");
            let mut first_cell = true;
            for cell in row {
                if !first_cell {
                    out.push_str(", ");
                }
                first_cell = false;
                out.push_str(&cell_json(cell));
            }
            out.push(']');
        }
        out.push_str(if s.rows.is_empty() { "]}" } else { "\n    ]}" });
    }
    out.push_str(if doc.series.is_empty() {
        "]\n"
    } else {
        "\n  ]\n"
    });
    out.push_str("}\n");
    out
}

/// Serialise trace events as Chrome `trace_event` JSON — complete
/// (`ph: "X"`) duration events, loadable in `chrome://tracing` or
/// [Perfetto](https://ui.perfetto.dev).
pub fn trace_json(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    out.push_str("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [");
    let mut first = true;
    for e in events {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "\n  {{\"name\": \"{}\", \"cat\": \"dnc\", \"ph\": \"X\", \"ts\": {}, \"dur\": {}, \"pid\": 1, \"tid\": {}}}",
            escape_json(e.name),
            e.ts_us,
            e.dur_us,
            e.tid
        );
    }
    out.push_str(if events.is_empty() { "]}\n" } else { "\n]}\n" });
    out
}

/// Format nanoseconds human-readably (`847ns`, `12.4µs`, `3.1ms`, `2.0s`).
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

fn fmt_sample(v: f64) -> String {
    if v == v.trunc() && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.3}")
    }
}

/// Render a plain-text summary of a document: spans (sorted by total
/// time), counters, histograms, then each series as an aligned table.
pub fn render_summary(doc: &MetricsDoc) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {} ==", doc.name);
    for (k, v) in &doc.meta {
        let _ = writeln!(out, "   {k}: {v}");
    }

    if !doc.snapshot.spans.is_empty() {
        let mut spans: Vec<_> = doc.snapshot.spans.iter().collect();
        spans.sort_by(|a, b| b.1.total_ns.cmp(&a.1.total_ns).then(a.0.cmp(b.0)));
        out.push_str("\nspans (by total time):\n");
        let name_w = spans.iter().map(|(n, _)| n.len()).max().unwrap_or(4).max(4);
        let _ = writeln!(
            out,
            "  {:<name_w$}  {:>8}  {:>10}  {:>10}  {:>10}  {:>10}",
            "span", "count", "total", "mean", "p95", "max"
        );
        for (name, s) in spans {
            let _ = writeln!(
                out,
                "  {:<name_w$}  {:>8}  {:>10}  {:>10}  {:>10}  {:>10}",
                name,
                s.count,
                fmt_ns(s.total_ns),
                fmt_ns(s.mean_ns()),
                fmt_ns(s.p95_ns),
                fmt_ns(s.max_ns)
            );
        }
    }

    if !doc.snapshot.counters.is_empty() {
        out.push_str("\ncounters:\n");
        let name_w = doc
            .snapshot
            .counters
            .keys()
            .map(|n| n.len())
            .max()
            .unwrap_or(4);
        for (name, v) in &doc.snapshot.counters {
            let _ = writeln!(out, "  {name:<name_w$}  {v}");
        }
    }

    if !doc.snapshot.histograms.is_empty() {
        out.push_str("\nhistograms:\n");
        let name_w = doc
            .snapshot
            .histograms
            .keys()
            .map(|n| n.len())
            .max()
            .unwrap_or(4);
        let _ = writeln!(
            out,
            "  {:<name_w$}  {:>8}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}",
            "histogram", "count", "min", "mean", "p50", "p95", "max"
        );
        for (name, h) in &doc.snapshot.histograms {
            let _ = writeln!(
                out,
                "  {:<name_w$}  {:>8}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}",
                name,
                h.count,
                fmt_sample(h.min),
                fmt_sample(h.mean),
                fmt_sample(h.p50),
                fmt_sample(h.p95),
                fmt_sample(h.max)
            );
        }
    }

    for s in &doc.series {
        let _ = writeln!(out, "\nseries {}:", s.name);
        let headers: Vec<String> = s
            .columns
            .iter()
            .map(|c| {
                if c.unit.is_empty() {
                    c.label.to_string()
                } else {
                    format!("{} [{}]", c.label, c.unit)
                }
            })
            .collect();
        let rendered: Vec<Vec<String>> = s
            .rows
            .iter()
            .map(|row| {
                row.iter()
                    .map(|c| match c {
                        Cell::Num(v) => fmt_sample(*v),
                        Cell::Text(t) => t.clone(),
                        Cell::Null => "-".to_string(),
                    })
                    .collect()
            })
            .collect();
        let widths: Vec<usize> = headers
            .iter()
            .enumerate()
            .map(|(i, h)| {
                rendered
                    .iter()
                    .filter_map(|r| r.get(i))
                    .map(|c| c.len())
                    .max()
                    .unwrap_or(0)
                    .max(h.len())
            })
            .collect();
        let mut line = String::from(" ");
        for (h, w) in headers.iter().zip(&widths) {
            let _ = write!(line, " {h:>w$}");
        }
        let _ = writeln!(out, "{line}");
        for row in &rendered {
            let mut line = String::from(" ");
            for (c, w) in row.iter().zip(&widths) {
                let _ = write!(line, " {c:>w$}");
            }
            let _ = writeln!(out, "{line}");
        }
    }
    out
}

/// Write `dnc-metrics/v1` JSON to `path`, creating parent directories.
pub fn write_metrics(doc: &MetricsDoc, path: &Path) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, metrics_json(doc))
}

/// Write Chrome-trace JSON to `path`, creating parent directories.
pub fn write_trace(events: &[TraceEvent], path: &Path) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, trace_json(events))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema;
    use crate::snapshot::{HistogramStat, SpanStat};

    fn sample_doc() -> MetricsDoc {
        let mut snap = Snapshot::default();
        snap.spans.insert(
            "curve.conv".into(),
            SpanStat {
                count: 3,
                total_ns: 3_000,
                max_ns: 1_500,
                p50_ns: 900,
                p95_ns: 1_500,
            },
        );
        snap.counters.insert("net.pairing.pairs".into(), 2);
        snap.histograms.insert(
            "curve.conv.segments_out".into(),
            HistogramStat {
                count: 3,
                min: 2.0,
                max: 6.0,
                mean: 4.0,
                p50: 4.0,
                p95: 6.0,
                p99: 6.0,
            },
        );
        let mut series = Series::new("bounds", vec![schema::WORK_LOAD, schema::bound_column()]);
        series.push_row(vec![Cell::Num(0.5), Cell::Num(12.25)]);
        series.push_row(vec![Cell::Num(0.9), Cell::Null]);
        let mut doc = MetricsDoc::new("test", snap).with_meta("scenario", "ring4");
        doc.series.push(series);
        doc
    }

    #[test]
    fn metrics_json_is_schema_valid() {
        let json = metrics_json(&sample_doc());
        schema::validate_metrics(&json).unwrap();
        assert!(json.contains("\"schema\": \"dnc-metrics/v1\""));
        assert!(json.contains("\"curve.conv\""));
        assert!(
            json.contains("null"),
            "missing bound must serialise as null"
        );
    }

    #[test]
    fn trace_json_is_schema_valid() {
        let events = vec![
            TraceEvent {
                name: "algo.decomposed",
                ts_us: 0,
                dur_us: 120,
                tid: 1,
            },
            TraceEvent {
                name: "curve.conv",
                ts_us: 10,
                dur_us: 40,
                tid: 1,
            },
        ];
        let json = trace_json(&events);
        schema::validate_trace(&json).unwrap();
        assert!(json.contains("\"ph\": \"X\""));
    }

    #[test]
    fn empty_doc_serialises_and_validates() {
        let json = metrics_json(&MetricsDoc::new("empty", Snapshot::default()));
        schema::validate_metrics(&json).unwrap();
        schema::validate_trace(&trace_json(&[])).unwrap();
    }

    #[test]
    fn summary_contains_all_sections() {
        let text = render_summary(&sample_doc());
        assert!(text.contains("== test =="));
        assert!(text.contains("scenario: ring4"));
        assert!(text.contains("curve.conv"));
        assert!(text.contains("net.pairing.pairs"));
        assert!(text.contains("series bounds"));
        assert!(text.contains("work load U"));
        assert!(text.contains("-"), "null cells render as dashes");
    }

    #[test]
    fn escaping_round_trips_through_parser() {
        let doc = MetricsDoc::new("quote\"\\\nname", Snapshot::default());
        let parsed = crate::json::parse(&metrics_json(&doc)).unwrap();
        assert_eq!(
            parsed.get("name").and_then(|v| v.as_str()),
            Some("quote\"\\\nname")
        );
    }

    #[test]
    fn number_formatting() {
        assert_eq!(number_json(3.0), "3");
        assert_eq!(number_json(-2.0), "-2");
        assert_eq!(number_json(0.125), "0.125");
        assert_eq!(number_json(f64::NAN), "null");
        assert_eq!(fmt_ns(950), "950ns");
        assert_eq!(fmt_ns(12_400), "12.4µs");
        assert_eq!(fmt_ns(3_100_000), "3.1ms");
        assert_eq!(fmt_ns(2_000_000_000), "2.00s");
    }
}
