//! The `dnc-metrics/v1` schema: shared column metadata (the single
//! source of truth for chart axis labels and JSON headers) and
//! structural validators for the two machine formats.
//!
//! A metrics document looks like:
//!
//! ```json
//! {
//!   "schema": "dnc-metrics/v1",
//!   "name": "fig4",
//!   "meta": {"scenario": "ring4"},
//!   "spans": {"curve.conv": {"count": 3, "total_ns": 3000, "mean_ns": 1000,
//!                            "max_ns": 1500, "p50_ns": 900, "p95_ns": 1500}},
//!   "counters": {"net.pairing.pairs": 2},
//!   "histograms": {"curve.conv.segments_out": {"count": 3, "min": 2, "max": 6,
//!                   "mean": 4, "p50": 4, "p95": 6, "p99": 6}},
//!   "series": [{"name": "bounds",
//!               "columns": [{"label": "work load U", "unit": ""}],
//!               "rows": [[0.5]]}]
//! }
//! ```
//!
//! Validation is structural: required keys present with the right JSON
//! types, row widths matching column counts. It deliberately does not
//! constrain which spans/counters exist — instrumentation sites may grow
//! without a schema bump.

use crate::json::{self, Value};

/// Schema identifier written into and required from every metrics JSON.
pub const SCHEMA: &str = "dnc-metrics/v1";

/// Label + unit of one series column. `unit` may be empty for
/// dimensionless quantities.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ColumnMeta {
    /// Human-readable axis/column label.
    pub label: &'static str,
    /// Unit suffix (may be empty).
    pub unit: &'static str,
}

/// Workload axis: total utilisation `U` of the bottleneck server.
pub const WORK_LOAD: ColumnMeta = ColumnMeta {
    label: "work load U",
    unit: "",
};

/// Network-size axis: servers along the analysed path.
pub const NETWORK_SIZE: ColumnMeta = ColumnMeta {
    label: "network size n",
    unit: "servers",
};

/// End-to-end delay bound, in the paper's tick units.
pub const DELAY_BOUND: ColumnMeta = ColumnMeta {
    label: "end-to-end delay bound (ticks)",
    unit: "ticks",
};

/// Relative improvement of one bound over another (dimensionless ratio).
pub const REL_IMPROVEMENT: ColumnMeta = ColumnMeta {
    label: "relative improvement",
    unit: "",
};

/// Backlog bound, in the paper's cell units.
pub const BACKLOG_BOUND: ColumnMeta = ColumnMeta {
    label: "backlog bound",
    unit: "cells",
};

/// Simulated worst-case delay observed over a run.
pub const SIM_MAX_DELAY: ColumnMeta = ColumnMeta {
    label: "simulated max delay",
    unit: "ticks",
};

/// Wall-clock cost of an analysis run.
pub const WALL_TIME: ColumnMeta = ColumnMeta {
    label: "wall time",
    unit: "µs",
};

/// Free-text column (algorithm names, scenario labels, notes).
pub const LABEL: ColumnMeta = ColumnMeta {
    label: "label",
    unit: "",
};

/// Admitted-flow count (admission-control sweeps).
pub const ADMITTED: ColumnMeta = ColumnMeta {
    label: "admitted flows",
    unit: "flows",
};

/// Token-bucket burst σ.
pub const BURST: ColumnMeta = ColumnMeta {
    label: "burst σ",
    unit: "cells",
};

/// Token-bucket sustained rate ρ.
pub const SUSTAINED_RATE: ColumnMeta = ColumnMeta {
    label: "sustained rate ρ",
    unit: "cells/tick",
};

/// Tightness ratio of an exact worst case against a bound.
pub const TIGHTNESS: ColumnMeta = ColumnMeta {
    label: "tightness exact/bound",
    unit: "",
};

/// Deadline a flow declared (admission sweeps).
pub const DEADLINE: ColumnMeta = ColumnMeta {
    label: "deadline",
    unit: "ticks",
};

/// The delay-bound column ([`DELAY_BOUND`]) — kept as a function so the
/// common case reads as `schema::bound_column()` at call sites that build
/// per-algorithm variants around it.
pub fn bound_column() -> ColumnMeta {
    DELAY_BOUND
}

fn field_is_number(obj: &Value, key: &str) -> Result<(), String> {
    match obj.get(key) {
        Some(Value::Number(_)) => Ok(()),
        Some(_) => Err(format!("field `{key}` must be a number")),
        None => Err(format!("missing field `{key}`")),
    }
}

fn field_is_string(obj: &Value, key: &str) -> Result<(), String> {
    match obj.get(key) {
        Some(Value::Str(_)) => Ok(()),
        Some(_) => Err(format!("field `{key}` must be a string")),
        None => Err(format!("missing field `{key}`")),
    }
}

/// Structurally validate a `dnc-metrics/v1` document.
///
/// Returns `Err` with a path-qualified message on the first violation.
pub fn validate_metrics(input: &str) -> Result<(), String> {
    let doc = json::parse(input).map_err(|e| e.to_string())?;
    match doc.get("schema").and_then(Value::as_str) {
        Some(s) if s == SCHEMA => {}
        Some(s) => return Err(format!("schema is `{s}`, expected `{SCHEMA}`")),
        None => return Err("missing string field `schema`".to_string()),
    }
    field_is_string(&doc, "name")?;

    let meta = doc
        .get("meta")
        .and_then(Value::as_object)
        .ok_or("missing object field `meta`")?;
    for (k, v) in meta {
        if v.as_str().is_none() {
            return Err(format!("meta.{k} must be a string"));
        }
    }

    let spans = doc
        .get("spans")
        .and_then(Value::as_object)
        .ok_or("missing object field `spans`")?;
    for (name, span) in spans {
        for key in ["count", "total_ns", "mean_ns", "max_ns", "p50_ns", "p95_ns"] {
            field_is_number(span, key).map_err(|e| format!("spans.{name}: {e}"))?;
        }
    }

    let counters = doc
        .get("counters")
        .and_then(Value::as_object)
        .ok_or("missing object field `counters`")?;
    for (name, v) in counters {
        if v.as_number().is_none() {
            return Err(format!("counters.{name} must be a number"));
        }
    }

    let histograms = doc
        .get("histograms")
        .and_then(Value::as_object)
        .ok_or("missing object field `histograms`")?;
    for (name, h) in histograms {
        for key in ["count", "min", "max", "mean", "p50", "p95", "p99"] {
            field_is_number(h, key).map_err(|e| format!("histograms.{name}: {e}"))?;
        }
    }

    let series = doc
        .get("series")
        .and_then(Value::as_array)
        .ok_or("missing array field `series`")?;
    for (i, s) in series.iter().enumerate() {
        field_is_string(s, "name").map_err(|e| format!("series[{i}]: {e}"))?;
        let columns = s
            .get("columns")
            .and_then(Value::as_array)
            .ok_or(format!("series[{i}]: missing array field `columns`"))?;
        for (ci, c) in columns.iter().enumerate() {
            field_is_string(c, "label").map_err(|e| format!("series[{i}].columns[{ci}]: {e}"))?;
            field_is_string(c, "unit").map_err(|e| format!("series[{i}].columns[{ci}]: {e}"))?;
        }
        let rows = s
            .get("rows")
            .and_then(Value::as_array)
            .ok_or(format!("series[{i}]: missing array field `rows`"))?;
        for (ri, row) in rows.iter().enumerate() {
            let cells = row
                .as_array()
                .ok_or(format!("series[{i}].rows[{ri}] must be an array"))?;
            if cells.len() != columns.len() {
                return Err(format!(
                    "series[{i}].rows[{ri}] has {} cells for {} columns",
                    cells.len(),
                    columns.len()
                ));
            }
            for (ci, cell) in cells.iter().enumerate() {
                match cell {
                    Value::Number(_) | Value::Str(_) | Value::Null => {}
                    _ => {
                        return Err(format!(
                            "series[{i}].rows[{ri}][{ci}] must be a number, string, or null"
                        ))
                    }
                }
            }
        }
    }
    Ok(())
}

/// Schema identifier of perf-trajectory records (the repo-root
/// `BENCH_*.json` files appended by `cargo xtask bench`).
pub const BENCH_SCHEMA: &str = "dnc-bench/v1";

fn bench_string_map(doc: &Value, key: &str) -> Result<(), String> {
    let map = doc
        .get(key)
        .and_then(Value::as_object)
        .ok_or(format!("missing object field `{key}`"))?;
    for (k, v) in map {
        if v.as_str().is_none() {
            return Err(format!("{key}.{k} must be a string"));
        }
    }
    Ok(())
}

fn bench_number_map(doc: &Value, key: &str) -> Result<(), String> {
    let map = doc
        .get(key)
        .and_then(Value::as_object)
        .ok_or(format!("missing object field `{key}`"))?;
    for (k, v) in map {
        if v.as_number().is_none() {
            return Err(format!("{key}.{k} must be a number"));
        }
    }
    Ok(())
}

/// Structurally validate one `dnc-bench/v1` record (a single JSON
/// object — one line of a trajectory file).
pub fn validate_bench_record(input: &str) -> Result<(), String> {
    let doc = json::parse(input).map_err(|e| e.to_string())?;
    match doc.get("schema").and_then(Value::as_str) {
        Some(s) if s == BENCH_SCHEMA => {}
        Some(s) => return Err(format!("schema is `{s}`, expected `{BENCH_SCHEMA}`")),
        None => return Err("missing string field `schema`".to_string()),
    }
    for key in ["timestamp", "git_sha", "toolchain"] {
        field_is_string(&doc, key)?;
    }
    bench_string_map(&doc, "knobs")?;
    bench_number_map(&doc, "metrics")?;
    bench_number_map(&doc, "counters")?;
    Ok(())
}

fn value_kind(v: &Value) -> &'static str {
    match v {
        Value::Null => "null",
        Value::Bool(_) => "bool",
        Value::Number(_) => "number",
        Value::Str(_) => "string",
        Value::Array(_) => "array",
        Value::Object(_) => "object",
    }
}

/// Describe the *shape* of the last record in a trajectory file: one
/// sorted `key: type` line per top-level field, with homogeneous object
/// values collapsed to `object<type>`. CI diffs this against the shape
/// of the committed `docs/bench-record.example.json` so schema drift in
/// appended records is caught even when both sides still validate.
pub fn bench_record_shape(input: &str) -> Result<String, String> {
    let line = input
        .lines()
        .rev()
        .find(|l| !l.trim().is_empty())
        .ok_or("empty trajectory (no records)")?;
    let doc = json::parse(line).map_err(|e| e.to_string())?;
    let obj = match &doc {
        Value::Object(map) => map,
        other => {
            return Err(format!(
                "record must be an object, got {}",
                value_kind(other)
            ))
        }
    };
    let mut out = String::new();
    for (key, v) in obj {
        let kind = match v {
            Value::Str(s) if key == "schema" => s.clone(),
            Value::Object(map) => {
                let mut kinds: Vec<&str> = map.values().map(value_kind).collect();
                kinds.sort_unstable();
                kinds.dedup();
                match kinds.as_slice() {
                    [] => "object<empty>".to_string(),
                    [one] => format!("object<{one}>"),
                    _ => "object<mixed>".to_string(),
                }
            }
            other => value_kind(other).to_string(),
        };
        out.push_str(key);
        out.push_str(": ");
        out.push_str(&kind);
        out.push('\n');
    }
    Ok(out)
}

/// Structurally validate a whole trajectory file: JSON Lines, one
/// `dnc-bench/v1` record per non-empty line, at least one record.
pub fn validate_bench(input: &str) -> Result<(), String> {
    let mut records = 0usize;
    for (i, line) in input.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        validate_bench_record(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        records += 1;
    }
    if records == 0 {
        return Err("empty trajectory (no records)".to_string());
    }
    Ok(())
}

/// Structurally validate a Chrome `trace_event` document as emitted by
/// [`crate::export::trace_json`] (complete events only).
pub fn validate_trace(input: &str) -> Result<(), String> {
    let doc = json::parse(input).map_err(|e| e.to_string())?;
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .ok_or("missing array field `traceEvents`")?;
    for (i, e) in events.iter().enumerate() {
        field_is_string(e, "name").map_err(|err| format!("traceEvents[{i}]: {err}"))?;
        match e.get("ph").and_then(Value::as_str) {
            Some("X") => {}
            Some(ph) => return Err(format!("traceEvents[{i}]: ph is `{ph}`, expected `X`")),
            None => return Err(format!("traceEvents[{i}]: missing string field `ph`")),
        }
        for key in ["ts", "dur", "pid", "tid"] {
            field_is_number(e, key).map_err(|err| format!("traceEvents[{i}]: {err}"))?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_wrong_schema_tag() {
        let doc = r#"{"schema": "dnc-metrics/v0", "name": "x", "meta": {},
                      "spans": {}, "counters": {}, "histograms": {}, "series": []}"#;
        let err = validate_metrics(doc).unwrap_err();
        assert!(err.contains("dnc-metrics/v0"), "{err}");
    }

    #[test]
    fn rejects_missing_sections() {
        let doc = r#"{"schema": "dnc-metrics/v1", "name": "x", "meta": {},
                      "spans": {}, "counters": {}, "series": []}"#;
        let err = validate_metrics(doc).unwrap_err();
        assert!(err.contains("histograms"), "{err}");
    }

    #[test]
    fn rejects_ragged_rows() {
        let doc = r#"{"schema": "dnc-metrics/v1", "name": "x", "meta": {},
                      "spans": {}, "counters": {}, "histograms": {},
                      "series": [{"name": "s",
                                  "columns": [{"label": "a", "unit": ""}],
                                  "rows": [[1, 2]]}]}"#;
        let err = validate_metrics(doc).unwrap_err();
        assert!(err.contains("2 cells for 1 columns"), "{err}");
    }

    #[test]
    fn rejects_bad_span_stat() {
        let doc = r#"{"schema": "dnc-metrics/v1", "name": "x", "meta": {},
                      "spans": {"s": {"count": 1}}, "counters": {},
                      "histograms": {}, "series": []}"#;
        let err = validate_metrics(doc).unwrap_err();
        assert!(err.contains("total_ns"), "{err}");
    }

    #[test]
    fn trace_requires_complete_events() {
        let ok = r#"{"traceEvents": [{"name": "a", "ph": "X", "ts": 0, "dur": 1,
                                      "pid": 1, "tid": 1}]}"#;
        validate_trace(ok).unwrap();
        let bad_ph = r#"{"traceEvents": [{"name": "a", "ph": "B", "ts": 0, "dur": 1,
                                          "pid": 1, "tid": 1}]}"#;
        assert!(validate_trace(bad_ph).is_err());
        let missing = r#"{"traceEvents": [{"name": "a", "ph": "X"}]}"#;
        assert!(validate_trace(missing).is_err());
    }

    #[test]
    fn bench_record_round_trips() {
        let rec = r#"{"schema": "dnc-bench/v1", "timestamp": "2026-08-08T00:00:00Z",
                      "git_sha": "abc1234", "toolchain": "rustc 1.75.0",
                      "knobs": {"seed": "1", "quick": "true"},
                      "metrics": {"throughput.admissions_per_sec": 1200.5},
                      "counters": {"curve.conv": 42}}"#;
        validate_bench_record(rec).unwrap();
        let trajectory = format!("{}\n{}\n", rec.replace('\n', " "), rec.replace('\n', " "));
        validate_bench(&trajectory).unwrap();
    }

    #[test]
    fn bench_shape_is_sorted_and_collapsed() {
        let rec = r#"{"schema": "dnc-bench/v1", "timestamp": "t", "git_sha": "s",
                      "toolchain": "r", "knobs": {"seed": "1"},
                      "metrics": {"m": 2}, "counters": {}}"#;
        let input = format!("ignored-line-is-not-parsed\n{}\n", rec.replace('\n', " "));
        // Only the last record's shape is reported.
        let shape = bench_record_shape(&input).unwrap();
        assert_eq!(
            shape,
            "counters: object<empty>\n\
             git_sha: string\n\
             knobs: object<string>\n\
             metrics: object<number>\n\
             schema: dnc-bench/v1\n\
             timestamp: string\n\
             toolchain: string\n"
        );
        assert!(bench_record_shape("").is_err());
    }

    #[test]
    fn bench_rejects_wrong_schema_and_shapes() {
        let bad_tag = r#"{"schema": "dnc-bench/v0", "timestamp": "t", "git_sha": "s",
                          "toolchain": "r", "knobs": {}, "metrics": {}, "counters": {}}"#;
        let err = validate_bench_record(bad_tag).unwrap_err();
        assert!(err.contains("dnc-bench/v0"), "{err}");

        let bad_metric = r#"{"schema": "dnc-bench/v1", "timestamp": "t", "git_sha": "s",
                             "toolchain": "r", "knobs": {}, "metrics": {"m": "oops"},
                             "counters": {}}"#;
        let err = validate_bench_record(bad_metric).unwrap_err();
        assert!(err.contains("metrics.m"), "{err}");

        let bad_knob = r#"{"schema": "dnc-bench/v1", "timestamp": "t", "git_sha": "s",
                           "toolchain": "r", "knobs": {"k": 3}, "metrics": {},
                           "counters": {}}"#;
        let err = validate_bench_record(bad_knob).unwrap_err();
        assert!(err.contains("knobs.k"), "{err}");

        assert!(validate_bench("").is_err(), "empty trajectory must fail");
        let err = validate_bench("\n{\"schema\": 1}\n").unwrap_err();
        assert!(err.starts_with("line 2"), "{err}");
    }

    #[test]
    fn column_constants_have_stable_labels() {
        // chart.rs renders these labels on figure axes; the strings are
        // part of the v1 schema surface and must not drift.
        assert_eq!(WORK_LOAD.label, "work load U");
        assert_eq!(DELAY_BOUND.label, "end-to-end delay bound (ticks)");
        assert_eq!(bound_column(), DELAY_BOUND);
    }
}
