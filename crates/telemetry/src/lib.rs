#![warn(missing_docs)]

//! # dnc-telemetry — zero-dependency tracing + metrics for the pipeline
//!
//! The three analysis families the workspace reproduces differ not just in
//! bound tightness but in *cost*: segment growth under min-plus
//! convolution, fixed-point iterations in output propagation, pairing
//! choices in the Integrated partition. This crate is the measurement
//! substrate that makes those costs visible without pulling in `tracing`
//! or `tokio` (the workspace builds offline; see the vendored-stub policy
//! in the root `Cargo.toml`).
//!
//! ## Probes
//!
//! * [`span`] — RAII wall-time span on a thread-local stack:
//!   `let _g = dnc_telemetry::span("curve.conv");`. Nested spans record
//!   their depth, so the Chrome trace shows a proper flame graph.
//! * [`counter`] — monotonically increasing named counter.
//! * [`gauge_u64`] / [`observe_rat`] — one histogram sample; both take a
//!   **closure** so the value is never computed when recording is off.
//!
//! Recording is compiled in only with the `enabled` cargo feature (the
//! downstream crates forward it as `telemetry`). Without it every probe
//! is an empty `#[inline(always)]` function and [`SpanGuard`] is a
//! zero-sized type: the instrumented hot paths are bit-for-bit no-ops.
//!
//! ## Collection and export
//!
//! Probes aggregate into a process-global registry. [`snapshot`] returns
//! the aggregated [`Snapshot`] (span stats, counters, histogram
//! percentiles), [`take_trace`] drains the raw span events. The
//! [`export`] module renders a [`export::MetricsDoc`] as a human summary
//! table, as the stable `dnc-metrics/v1` JSON (see [`schema`]), or as
//! Chrome `trace_event` JSON loadable in `chrome://tracing` / Perfetto.
//! [`schema::validate_metrics`] re-parses and structurally validates a
//! metrics document (used by the golden tests and CI smoke job).

pub mod export;
pub mod json;
pub mod schema;
pub mod snapshot;

mod record;

pub use record::{counter, gauge_u64, observe_rat, reset, snapshot, span, take_trace, SpanGuard};
pub use snapshot::{HistogramStat, Snapshot, SpanStat, TraceEvent};

/// Whether this build records telemetry (the `enabled` cargo feature).
#[inline(always)]
pub const fn enabled() -> bool {
    cfg!(feature = "enabled")
}
