//! Empirical arrival envelopes: measure the tightest window constraint a
//! cell trace actually satisfies, and fit token-bucket descriptors to it.
//!
//! This is the measurement-side counterpart of the analytic
//! traffic-constraint functions: if the analysis claims an internal
//! stream is constrained by `b'(I) = b(I + d)` (the paper's Step 3.2
//! output characterization), then the measured envelope of a simulated
//! trace of that stream must lie below `b'` at every window — a direct
//! empirical check of the propagation machinery.

use dnc_num::Rat;

/// The empirical envelope of a per-tick cell-count trace:
/// `envelope[w]` = the maximum number of cells observed in any window of
/// `w + 1` consecutive ticks (index 0 = single-tick maximum).
pub fn measure_envelope(counts: &[u64], max_window: usize) -> Vec<u64> {
    let n = counts.len();
    let w_max = max_window.min(n);
    let mut prefix = vec![0u64; n + 1];
    for (i, &c) in counts.iter().enumerate() {
        prefix[i + 1] = prefix[i] + c;
    }
    (1..=w_max)
        .map(|w| {
            (0..=n - w)
                .map(|s| prefix[s + w] - prefix[s])
                .max()
                .unwrap_or(0)
        })
        .collect()
}

/// Check a measured envelope against an analytic constraint curve: every
/// window `w` must satisfy `envelope[w−1] ≤ alpha(w)`. Returns the first
/// violating window, if any.
pub fn envelope_violates(envelope: &[u64], alpha: &dnc_curves::Curve) -> Option<usize> {
    for (idx, &cells) in envelope.iter().enumerate() {
        let w = Rat::from((idx + 1) as i64);
        if Rat::from(cells as i64) > alpha.eval(w) {
            return Some(idx + 1);
        }
    }
    None
}

/// Fit a token bucket `(σ, ρ)` to a measured envelope: `ρ` is the
/// best long-run slope across the envelope (max over windows of
/// `cells/window`, taken on the larger half to avoid small-window noise),
/// and `σ` the smallest burst making `σ + ρ·w` dominate every window.
/// Returns `None` for an empty envelope.
pub fn fit_token_bucket(envelope: &[u64]) -> Option<(Rat, Rat)> {
    if envelope.is_empty() {
        return None;
    }
    let n = envelope.len();
    // Long-run rate from the tail half of the window range.
    let rho = (n / 2..n)
        .map(|i| Rat::new(envelope[i] as i128, (i + 1) as i128))
        .max()
        .unwrap_or_else(|| Rat::new(envelope[n - 1] as i128, n as i128));
    let sigma = envelope
        .iter()
        .enumerate()
        .map(|(idx, &cells)| Rat::from(cells as i64) - rho * Rat::from((idx + 1) as i64))
        .max()
        .unwrap_or(Rat::ZERO)
        .max(Rat::ZERO);
    Some((sigma, rho))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CellSource, SourceModel, TrafficSpec};
    use dnc_num::{int, rat};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn envelope_of_constant_trace() {
        let counts = vec![1u64; 10];
        let env = measure_envelope(&counts, 5);
        assert_eq!(env, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn envelope_finds_worst_window() {
        let counts = [0u64, 3, 2, 0, 0, 1, 4, 0];
        let env = measure_envelope(&counts, 3);
        assert_eq!(env[0], 4);
        assert_eq!(env[1], 5); // [3,2] or [1,4]
        assert_eq!(env[2], 5);
    }

    #[test]
    fn envelope_clamps_to_trace_length() {
        let env = measure_envelope(&[1, 1], 10);
        assert_eq!(env.len(), 2);
    }

    #[test]
    fn greedy_source_envelope_below_its_curve() {
        let spec = TrafficSpec::paper_source(int(3), rat(1, 4));
        let mut src = CellSource::new(&spec, SourceModel::Greedy);
        let mut rng = StdRng::seed_from_u64(1);
        let trace = src.trace(256, &mut rng);
        let env = measure_envelope(&trace, 64);
        assert_eq!(envelope_violates(&env, &spec.arrival_curve()), None);
        // And the greedy path is tight at the burst scale: the measured
        // σ-ish value is close to the analytic one.
        let (sigma, rho) = fit_token_bucket(&env).unwrap();
        assert!(rho <= rat(1, 2), "fitted rate sane: {rho}");
        assert!(sigma <= int(4), "fitted burst sane: {sigma}");
    }

    #[test]
    fn fit_dominates_envelope() {
        let counts = [2u64, 0, 1, 3, 0, 0, 2, 1, 0, 2];
        let env = measure_envelope(&counts, 8);
        let (sigma, rho) = fit_token_bucket(&env).unwrap();
        for (idx, &cells) in env.iter().enumerate() {
            let w = Rat::from((idx + 1) as i64);
            assert!(
                Rat::from(cells as i64) <= sigma + rho * w,
                "window {} not dominated",
                idx + 1
            );
        }
    }

    #[test]
    fn violation_detected() {
        let alpha = dnc_curves::Curve::token_bucket(int(1), rat(1, 4));
        let env = vec![3u64]; // 3 cells in one tick vs allowed 1.25
        assert_eq!(envelope_violates(&env, &alpha), Some(1));
    }
}
