//! Exact stateful token-bucket regulator.

use crate::spec::TrafficSpec;
use dnc_num::Rat;

/// A shaping regulator enforcing a [`TrafficSpec`] on a cell stream.
///
/// Credits are tracked as exact rationals, so conformance is exact: any
/// stream that passes through the regulator satisfies the spec's arrival
/// curve (certified by `TrafficSpec::conforms` in tests). Time advances in
/// unit ticks via [`Regulator::refill`]; cells are released one at a time
/// via [`Regulator::try_emit`].
#[derive(Clone, Debug)]
pub struct Regulator {
    /// `(tokens, depth σ, rate ρ)` per bucket.
    buckets: Vec<(Rat, Rat, Rat)>,
    /// `(credit, peak p)` for the peak-rate cap, if any.
    peak: Option<(Rat, Rat)>,
}

impl Regulator {
    /// A regulator with full buckets (worst-case initial state).
    pub fn new(spec: &TrafficSpec) -> Regulator {
        Regulator {
            buckets: spec
                .buckets()
                .iter()
                .map(|b| (b.sigma, b.sigma, b.rho))
                .collect(),
            peak: spec.peak().map(|p| (p, p)),
        }
    }

    /// Advance one tick: refill every bucket (capped at its depth) and the
    /// peak credit (capped at the peak rate).
    pub fn refill(&mut self) {
        for (tokens, depth, rate) in &mut self.buckets {
            *tokens = (*tokens + *rate).min(*depth);
        }
        if let Some((credit, p)) = &mut self.peak {
            *credit = (*credit + *p).min(*p);
        }
    }

    /// `true` iff one cell may be emitted right now.
    pub fn can_emit(&self) -> bool {
        self.buckets.iter().all(|(t, _, _)| *t >= Rat::ONE)
            && self.peak.is_none_or(|(c, _)| c >= Rat::ONE)
    }

    /// Try to emit one cell, consuming credit. Returns `false` (and
    /// consumes nothing) when short of credit.
    pub fn try_emit(&mut self) -> bool {
        if !self.can_emit() {
            return false;
        }
        for (tokens, _, _) in &mut self.buckets {
            *tokens -= Rat::ONE;
        }
        if let Some((credit, _)) = &mut self.peak {
            *credit -= Rat::ONE;
        }
        true
    }

    /// Emit up to `want` cells, returning how many were allowed.
    pub fn emit_up_to(&mut self, want: u64) -> u64 {
        let mut sent = 0;
        while sent < want && self.try_emit() {
            sent += 1;
        }
        sent
    }

    /// Current minimum bucket fill (diagnostic).
    pub fn min_tokens(&self) -> Rat {
        self.buckets
            .iter()
            .map(|(t, _, _)| *t)
            .min()
            .expect("non-empty buckets")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnc_num::{int, rat};

    fn greedy_trace(spec: &TrafficSpec, ticks: usize) -> Vec<u64> {
        let mut reg = Regulator::new(spec);
        let mut out = Vec::with_capacity(ticks);
        for _ in 0..ticks {
            reg.refill(); // note: first refill caps at depth, no overfill
            out.push(reg.emit_up_to(u64::MAX));
        }
        out
    }

    #[test]
    fn greedy_conforms_paper_source() {
        let spec = TrafficSpec::paper_source(int(1), rat(1, 4));
        let trace = greedy_trace(&spec, 64);
        assert!(spec.conforms(&trace));
        // Long-run rate approaches ρ = 1/4: 64 ticks -> at most 1 + 16.
        let total: u64 = trace.iter().sum();
        assert!((16..=17).contains(&total), "total={total}");
    }

    #[test]
    fn greedy_conforms_bursty_bucket() {
        let spec = TrafficSpec::paper_source(int(5), rat(1, 2));
        let trace = greedy_trace(&spec, 40);
        assert!(spec.conforms(&trace));
        // Peak cap 1 forbids multi-cell ticks.
        assert!(trace.iter().all(|&c| c <= 1));
    }

    #[test]
    fn uncapped_bucket_allows_burst() {
        let spec = TrafficSpec::token_bucket(int(4), rat(1, 4));
        let trace = greedy_trace(&spec, 16);
        assert_eq!(trace[0], 4, "full burst in the first tick");
        assert!(spec.conforms(&trace));
    }

    #[test]
    fn refill_caps_at_depth() {
        let spec = TrafficSpec::token_bucket(int(2), int(1));
        let mut reg = Regulator::new(&spec);
        for _ in 0..10 {
            reg.refill();
        }
        assert_eq!(reg.min_tokens(), int(2));
        assert_eq!(reg.emit_up_to(10), 2);
    }

    #[test]
    fn try_emit_respects_fractional_tokens() {
        let spec = TrafficSpec::token_bucket(rat(1, 2), rat(1, 4));
        let mut reg = Regulator::new(&spec);
        assert!(!reg.try_emit(), "half a token is not a cell");
        reg.refill();
        reg.refill();
        // 1/2 + 1/4 + 1/4 = 1 but capped at depth 1/2 each refill... the
        // cap keeps tokens at 1/2, so still no cell.
        assert!(!reg.try_emit());
    }
}
