//! Static traffic descriptions and their arrival curves.

use dnc_curves::Curve;
use dnc_num::Rat;

/// A single `(σ, ρ)` token bucket: at most `σ + ρ·I` data in any interval
/// of length `I`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TokenBucket {
    /// Bucket depth (maximum burst), in cells.
    pub sigma: Rat,
    /// Token (sustained) rate, in cells per tick.
    pub rho: Rat,
}

impl TokenBucket {
    /// Create a bucket; panics on negative parameters.
    pub fn new(sigma: Rat, rho: Rat) -> TokenBucket {
        assert!(!sigma.is_negative(), "TokenBucket: σ < 0");
        assert!(!rho.is_negative(), "TokenBucket: ρ < 0");
        TokenBucket { sigma, rho }
    }

    /// The curve `γ_{σ,ρ}(t) = σ + ρ·t`.
    pub fn curve(&self) -> Curve {
        Curve::token_bucket(self.sigma, self.rho)
    }
}

/// A connection's entry traffic constraint: the concave hull of one or more
/// token buckets, optionally capped by a peak rate (the paper's sources use
/// a single bucket with peak rate 1 — see [`TrafficSpec::paper_source`]).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct TrafficSpec {
    buckets: Vec<TokenBucket>,
    peak: Option<Rat>,
}

impl TrafficSpec {
    /// Multi-bucket spec with optional peak-rate cap.
    ///
    /// # Panics
    /// Panics if `buckets` is empty or `peak` is non-positive.
    pub fn new(buckets: Vec<TokenBucket>, peak: Option<Rat>) -> TrafficSpec {
        assert!(!buckets.is_empty(), "TrafficSpec: no buckets");
        if let Some(p) = peak {
            assert!(p.is_positive(), "TrafficSpec: peak must be positive");
        }
        TrafficSpec { buckets, peak }
    }

    /// Single token bucket without peak cap.
    pub fn token_bucket(sigma: Rat, rho: Rat) -> TrafficSpec {
        TrafficSpec::new(vec![TokenBucket::new(sigma, rho)], None)
    }

    /// The paper's source model: `b(I) = min{ I, σ + ρ·I }` — one token
    /// bucket behind a unit-peak-rate link.
    pub fn paper_source(sigma: Rat, rho: Rat) -> TrafficSpec {
        TrafficSpec::new(vec![TokenBucket::new(sigma, rho)], Some(Rat::ONE))
    }

    /// The IETF IntServ TSpec: maximum packet burst `m`, peak rate `p`,
    /// sustained rate `r`, bucket depth `b` — arrival curve
    /// `min{ m + p·t, b + r·t }` (RFC 2212's traffic envelope, the
    /// descriptor a Guaranteed-Service admission test receives).
    ///
    /// # Panics
    /// Panics unless `p >= r` and all parameters are non-negative.
    pub fn tspec(m: Rat, p: Rat, r: Rat, b: Rat) -> TrafficSpec {
        assert!(p >= r, "TSpec: peak rate below sustained rate");
        TrafficSpec::new(vec![TokenBucket::new(m, p), TokenBucket::new(b, r)], None)
    }

    /// The component buckets.
    pub fn buckets(&self) -> &[TokenBucket] {
        &self.buckets
    }

    /// The peak-rate cap, if any.
    pub fn peak(&self) -> Option<Rat> {
        self.peak
    }

    /// Sustained rate: the minimum bucket rate (the binding long-term one).
    pub fn sustained_rate(&self) -> Rat {
        self.buckets
            .iter()
            .map(|b| b.rho)
            .min()
            .expect("non-empty buckets")
    }

    /// Worst-case instantaneous burst: `α(0⁺)`; zero under a peak cap.
    pub fn burst(&self) -> Rat {
        if self.peak.is_some() {
            Rat::ZERO
        } else {
            self.buckets
                .iter()
                .map(|b| b.sigma)
                .min()
                .expect("non-empty buckets")
        }
    }

    /// The arrival curve: `min_i γ_{σ_i,ρ_i}` intersected with `p·t`.
    pub fn arrival_curve(&self) -> Curve {
        let hull = Curve::multi_token_bucket(
            &self
                .buckets
                .iter()
                .map(|b| (b.sigma, b.rho))
                .collect::<Vec<_>>(),
        );
        match self.peak {
            Some(p) => hull.min(&Curve::rate(p)),
            None => hull,
        }
    }

    /// Check a cumulative cell-count trace (`counts[t]` = cells emitted in
    /// tick `t`) against the constraint: every window `[s, s+I)` must carry
    /// at most `α(I)` cells, with the convention that a window of `I` ticks
    /// has fluid length `I`.
    ///
    /// Used by tests to certify that simulated sources conform.
    pub fn conforms(&self, counts: &[u64]) -> bool {
        let alpha = self.arrival_curve();
        let n = counts.len();
        let mut prefix = vec![0u64; n + 1];
        for (i, &c) in counts.iter().enumerate() {
            prefix[i + 1] = prefix[i] + c;
        }
        for s in 0..n {
            for e in (s + 1)..=n {
                let got = Rat::from((prefix[e] - prefix[s]) as i64);
                let allowed = alpha.eval(Rat::from((e - s) as i64));
                if got > allowed {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnc_num::{int, rat};

    #[test]
    fn paper_source_curve() {
        let s = TrafficSpec::paper_source(int(1), rat(1, 4));
        assert_eq!(
            s.arrival_curve(),
            Curve::token_bucket_peak(int(1), rat(1, 4), int(1))
        );
        assert_eq!(s.sustained_rate(), rat(1, 4));
        assert_eq!(s.burst(), int(0));
    }

    #[test]
    fn multi_bucket_hull() {
        let s = TrafficSpec::new(
            vec![
                TokenBucket::new(int(10), rat(1, 4)),
                TokenBucket::new(int(2), int(1)),
            ],
            None,
        );
        let c = s.arrival_curve();
        assert!(c.is_concave());
        assert_eq!(c.eval(int(0)), int(2));
        assert_eq!(s.sustained_rate(), rat(1, 4));
        assert_eq!(s.burst(), int(2));
    }

    #[test]
    fn tspec_envelope() {
        // m=2, p=1, r=1/4, b=8: crossover where 2 + t = 8 + t/4 -> t = 8.
        let s = TrafficSpec::tspec(int(2), int(1), rat(1, 4), int(8));
        let c = s.arrival_curve();
        assert!(c.is_concave());
        assert_eq!(c.eval(int(0)), int(2));
        assert_eq!(c.eval(int(4)), int(6));
        assert_eq!(c.eval(int(8)), int(10));
        assert_eq!(c.eval(int(12)), int(11));
        assert_eq!(s.sustained_rate(), rat(1, 4));
    }

    #[test]
    #[should_panic(expected = "peak rate below sustained")]
    fn tspec_rejects_inverted_rates() {
        let _ = TrafficSpec::tspec(int(1), rat(1, 8), rat(1, 4), int(4));
    }

    #[test]
    fn conforms_accepts_greedy_shape() {
        // σ=2, ρ=1/2, peak 1: greedy = 2 back-to-back cells then 1 every
        // other tick.
        let s = TrafficSpec::paper_source(int(2), rat(1, 2));
        let counts = [1, 1, 0, 1, 0, 1, 0, 1];
        assert!(s.conforms(&counts));
    }

    #[test]
    fn conforms_rejects_violation() {
        let s = TrafficSpec::paper_source(int(1), rat(1, 4));
        // Two cells in two consecutive ticks: window I=2 allows
        // min{2, 1 + 1/2} = 3/2 < 2.
        let counts = [1, 1];
        assert!(!s.conforms(&counts));
    }

    #[test]
    #[should_panic(expected = "no buckets")]
    fn empty_spec_panics() {
        let _ = TrafficSpec::new(vec![], None);
    }
}
