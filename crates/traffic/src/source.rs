//! Cell-level source processes, always shaped by a [`Regulator`].

use crate::{Regulator, TrafficSpec};
use rand::Rng;

/// How a source *wants* to emit; the regulator decides what it *may* emit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SourceModel {
    /// Adversarial: emit as much as the regulator allows, every tick.
    /// Greedy sources realize the worst-case sample paths that the
    /// deterministic bounds are computed against.
    Greedy,
    /// Emit a burst of `burst` cells every `period` ticks, offset by
    /// `phase`.
    Periodic {
        /// Ticks between bursts (must be > 0).
        period: u64,
        /// Desired cells per burst.
        burst: u64,
        /// Offset of the first burst.
        phase: u64,
    },
    /// Alternate `on` ticks of greedy emission with `off` silent ticks.
    OnOff {
        /// Length of the greedy phase.
        on: u64,
        /// Length of the silent phase.
        off: u64,
        /// Offset into the cycle at t = 0.
        phase: u64,
    },
    /// Each tick, want one cell with probability `num/den`.
    Bernoulli {
        /// Probability numerator.
        num: u32,
        /// Probability denominator (> 0).
        den: u32,
    },
    /// Silent until tick `start`, then greedy. Buckets start full, so a
    /// phased source releases its maximal burst exactly at `start` —
    /// the building block for *coordinated* adversaries whose bursts
    /// collide downstream (plain greedy sources all burst at t = 0 and
    /// never meet again).
    Phased {
        /// First tick of greedy emission.
        start: u64,
    },
}

/// A stateful source bound to a traffic spec.
#[derive(Clone, Debug)]
pub struct CellSource {
    model: SourceModel,
    regulator: Regulator,
    tick: u64,
}

impl CellSource {
    /// Create a source whose emissions conform to `spec`.
    pub fn new(spec: &TrafficSpec, model: SourceModel) -> CellSource {
        if let SourceModel::Periodic { period, .. } = &model {
            assert!(*period > 0, "Periodic source: period must be > 0");
        }
        if let SourceModel::Bernoulli { den, .. } = &model {
            assert!(*den > 0, "Bernoulli source: zero denominator");
        }
        CellSource {
            model,
            regulator: Regulator::new(spec),
            tick: 0,
        }
    }

    /// Advance one tick and return the number of cells emitted.
    pub fn step<R: Rng + ?Sized>(&mut self, rng: &mut R) -> u64 {
        self.regulator.refill();
        let t = self.tick;
        self.tick += 1;
        let want = match &self.model {
            SourceModel::Greedy => u64::MAX,
            SourceModel::Periodic {
                period,
                burst,
                phase,
            } => {
                if (t + phase).is_multiple_of(*period) {
                    *burst
                } else {
                    0
                }
            }
            SourceModel::OnOff { on, off, phase } => {
                let cycle = on + off;
                if cycle == 0 || (t + phase) % cycle < *on {
                    u64::MAX
                } else {
                    0
                }
            }
            SourceModel::Bernoulli { num, den } => {
                if rng.gen_ratio(*num, *den) {
                    1
                } else {
                    0
                }
            }
            SourceModel::Phased { start } => {
                if t >= *start {
                    u64::MAX
                } else {
                    0
                }
            }
        };
        self.regulator.emit_up_to(want)
    }

    /// Generate a full emission trace of `ticks` ticks.
    pub fn trace<R: Rng + ?Sized>(&mut self, ticks: usize, rng: &mut R) -> Vec<u64> {
        (0..ticks).map(|_| self.step(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnc_num::{int, rat};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn all_models_conform() {
        let spec = TrafficSpec::paper_source(int(2), rat(1, 3));
        let models = [
            SourceModel::Greedy,
            SourceModel::Periodic {
                period: 6,
                burst: 2,
                phase: 1,
            },
            SourceModel::OnOff {
                on: 4,
                off: 8,
                phase: 0,
            },
            SourceModel::Bernoulli { num: 1, den: 3 },
            SourceModel::Phased { start: 17 },
        ];
        for model in models {
            let mut src = CellSource::new(&spec, model.clone());
            let trace = src.trace(96, &mut rng());
            assert!(spec.conforms(&trace), "model {model:?} violated its spec");
        }
    }

    #[test]
    fn greedy_dominates_other_models() {
        // Greedy emits at least as much cumulative traffic as any shaped
        // model at every prefix (it is the extremal sample path).
        let spec = TrafficSpec::paper_source(int(3), rat(1, 2));
        let greedy: Vec<u64> = CellSource::new(&spec, SourceModel::Greedy).trace(64, &mut rng());
        let onoff: Vec<u64> = CellSource::new(
            &spec,
            SourceModel::OnOff {
                on: 2,
                off: 2,
                phase: 0,
            },
        )
        .trace(64, &mut rng());
        let mut cg = 0u64;
        let mut co = 0u64;
        for i in 0..64 {
            cg += greedy[i];
            co += onoff[i];
            assert!(cg >= co, "greedy fell behind at tick {i}");
        }
    }

    #[test]
    fn periodic_respects_phase() {
        let spec = TrafficSpec::token_bucket(int(10), int(1));
        let mut src = CellSource::new(
            &spec,
            SourceModel::Periodic {
                period: 4,
                burst: 2,
                phase: 0,
            },
        );
        let trace = src.trace(12, &mut rng());
        assert_eq!(trace[0], 2);
        assert_eq!(trace[1], 0);
        assert_eq!(trace[4], 2);
    }

    #[test]
    fn phased_bursts_at_start() {
        let spec = TrafficSpec::token_bucket(int(4), rat(1, 8));
        let mut src = CellSource::new(&spec, SourceModel::Phased { start: 10 });
        let trace = src.trace(16, &mut rng());
        assert!(trace[..10].iter().all(|&c| c == 0), "silent before start");
        assert_eq!(trace[10], 4, "full bucket released at start");
        assert!(spec.conforms(&trace));
    }

    #[test]
    fn bernoulli_rate_close_to_p() {
        let spec = TrafficSpec::token_bucket(int(1000), int(1));
        let mut src = CellSource::new(&spec, SourceModel::Bernoulli { num: 1, den: 4 });
        let total: u64 = src.trace(4000, &mut rng()).iter().sum();
        assert!((800..1200).contains(&total), "total={total}");
    }
}
