#![warn(missing_docs)]

//! # dnc-traffic — traffic constraint functions, regulators, and sources
//!
//! The paper assumes "the traffic of every connection is controlled at the
//! source by a token bucket": `b(I) = min{ I, σ + ρ·I }` on unit-rate links.
//! This crate provides:
//!
//! * [`TokenBucket`] / [`TrafficSpec`] — static descriptions of a
//!   connection's entry constraint, convertible to [`dnc_curves::Curve`]
//!   arrival curves for the analysis crates;
//! * [`Regulator`] — an exact (rational-credit) stateful token-bucket
//!   shaper used by the simulator to guarantee that generated traffic
//!   *conforms* to its spec;
//! * [`SourceModel`] and [`CellSource`] — cell-level source processes
//!   (greedy/adversarial, periodic, on-off, Bernoulli) whose output is
//!   always shaped through the regulator, so every simulated trace is a
//!   legal sample path of the analyzed constraint.

pub mod envelope;
mod regulator;
mod source;
mod spec;

pub use regulator::Regulator;
pub use source::{CellSource, SourceModel};
pub use spec::{TokenBucket, TrafficSpec};
