//! Command implementations. Every command produces its report as a
//! `String` so the whole CLI is testable without spawning processes.

use crate::parse::{parse_spec, BuiltNetwork};
use dnc_core::decomposed::{backlog_bounds, Decomposed};
use dnc_core::fifo_family::FifoFamily;
use dnc_core::integrated::Integrated;
use dnc_core::resilient::ResilientRunner;
use dnc_core::service_curve::ServiceCurve;
use dnc_core::{AnalysisReport, DelayAnalysis, OutputCap};
use dnc_net::pairing::{partition, PairingStrategy};
use dnc_net::ServerId;
use dnc_num::Rat;
use dnc_sim::{all_greedy, simulate, SimConfig};
use dnc_telemetry::export::{write_metrics, write_trace, Cell, MetricsDoc, Series};
use dnc_telemetry::{schema, Snapshot, TraceEvent};
use dnc_traffic::SourceModel;
use std::fmt::Write as _;
use std::time::Instant;

/// CLI failure: a message and a suggested exit code.
#[derive(Debug)]
pub struct CliError {
    /// Human-readable message.
    pub message: String,
    /// Process exit code.
    pub code: i32,
}

/// Exit code for a run that completed but found a bound violation.
/// (Single-sourced from the workspace exit-code table, `dnc_bench::exit`.)
pub const EXIT_VIOLATION: i32 = dnc_bench::exit::VIOLATION;
/// Exit code for usage/input errors.
pub const EXIT_USAGE: i32 = dnc_bench::exit::USAGE;
/// Exit code for "no valid bound within budget" (time-stopping
/// divergence or guard exhaustion after the full degradation chain).
pub const EXIT_NO_BOUND: i32 = dnc_bench::exit::NO_BOUND;
/// Exit code for a tripped perf-regression gate (`bench --gate`).
pub const EXIT_REGRESSION: i32 = dnc_bench::exit::REGRESSION;

impl CliError {
    fn new(message: impl Into<String>) -> CliError {
        CliError {
            message: message.into(),
            code: EXIT_USAGE,
        }
    }
}

fn load(path: &str) -> Result<(BuiltNetwork, crate::parse::NetworkSpec), CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::new(format!("cannot read {path}: {e}")))?;
    let spec = parse_spec(&text).map_err(|e| CliError::new(format!("{path}: {e}")))?;
    let built = spec
        .build()
        .map_err(|e| CliError::new(format!("{path}: {e}")))?;
    // Tolerate cyclic networks (the time-stopping analysis handles them);
    // reject only structural overload.
    match built.net.validate() {
        Ok(()) | Err(dnc_net::NetworkError::NotFeedforward) => {}
        Err(e) => return Err(CliError::new(format!("{path}: invalid network: {e}"))),
    }
    Ok((built, spec))
}

const USAGE: &str = "\
usage: dnc <command> <file.dnc> [options]

commands:
  check     structure report: topology, utilizations, integrated pairing
  analyze   end-to-end delay bounds   [--algo integrated|decomposed|service-curve|
                                       fifo-family|time-stopping|resilient|all]
                                      [--csv <path>] [--metrics <path>] [--trace <path>]
                                      [--workers N]
            `resilient` runs the guarded Integrated -> Decomposed -> Unbounded
            fallback chain; exit code 3 means no valid bound within budget;
            --workers N fans pairing groups over N threads (identical output)
  profile   run every applicable algorithm and compare cost vs tightness
            (incl. curve-cache hit rate) [--metrics <path>] [--trace <path>]
  backlog   per-server buffer bounds
  simulate  adversarial simulation    [--ticks N] [--seed S]
  chaos     randomized fault-injection soundness sweep (no file argument)
                                      [--scenarios N] [--seed S] [--ticks T]
                                      [--metrics <path>] [--scenario K]
            exit code 1 flags a simulated delay above a claimed bound;
            --scenario K replays scenario K of the seed alone, bit-exact
  churn     randomized online-admission soundness sweep (no file argument)
                                      [--seqs N] [--ops N] [--seed S]
                                      [--kill-points K] [--metrics <path>]
                                      [--seq I] [--workers N]
            every commit is independently re-certified and every journal
            is crash-recovered from K random truncation points; exit
            code 1 flags either falsifier firing; --seq I replays
            sequence I of the seed alone, bit-exact; --snapshot-every E
            compacts the journal and checks tail-only recovery instead
            of the raw truncation falsifier
  torture   disk-fault torture sweep (no file argument): enumerate every
            storage failpoint (journal append/fsync, snapshot publish,
            rotation), inject EIO/ENOSPC/short-write/crash at each, and
            verify fail-stop recovery — no acked op lost, no phantom op
            recovered, tail-only replay past the newest snapshot
                                      [--scenarios N] [--ops N] [--seed S]
                                      [--snapshot-every E] [--stride K]
                                      [--metrics <path>]
            exit code 1 flags any lost ack or recovery divergence
  bench     record one perf-trajectory run (no file argument): run the
            throughput, profile, chaos, and churn harnesses with pinned
            seeds, archive their raw metrics under results/runs/<sha>-<ts>/,
            and append one dnc-bench/v1 record each to BENCH_throughput.json
            and BENCH_churn.json     [--quick] [--seed S] [--out-dir DIR]
                                     [--gate] [--window K] [--threshold PCT]
                                     [--dashboard DIR]
            with --gate, exit code 4 flags a gated metric outside the
            noise band (median of the last K runs ± the threshold)
  tandem    emit the paper's tandem as a .dnc file: dnc tandem <n> <U>
  provision minimal GPS reservations meeting the declared deadlines
  serve     durable online admission   --script <requests> [--journal <wal>]
                                       [--queue N] [--workers N]
                                       [--snapshot-every N]
            processes scripted admit/release/query requests against the
            network file; certified commits are journaled before they are
            acknowledged, and an existing journal is recovered first
            (newest valid snapshot + tail replay); --snapshot-every N
            compacts the journal every N commits via an atomically
            published snapshot; a storage failure poisons the journal
            and the server fail-stops (terminal ERR, no ack)
            socket mode: --listen <addr> [--max-conns N] [--batch N]
                         [--drain-timeout SECS]
            serves the same request lines to concurrent TCP clients; up
            to --batch ops share one journal record and fsync (group
            commit) and are acknowledged only after it; a `shutdown`
            line drains the server (flush, fsync, exit 0)

exit codes (uniform across commands):
  0  success — rejections/sheds by `serve` are normal service answers
  1  violation — a simulated delay exceeded a claimed bound, or a
     durability falsifier fired (simulate, chaos, churn, torture)
  2  usage error — bad flags, unreadable files, malformed input
  3  no bound — the resilient chain ended at the explicit Unbounded tier
     (analyze --algo resilient/time-stopping)
  4  regression — a gated perf metric left the trajectory noise band
     (bench --gate)

`--metrics` writes a dnc-metrics/v1 JSON document; `--trace` writes Chrome
trace_event JSON (open in chrome://tracing or https://ui.perfetto.dev).
Span/counter detail needs a build with `--features telemetry`.

`.dnc` format: see the dnc-cli crate documentation.";

/// Entry point: interpret `args` (without the program name).
pub fn run(args: &[String]) -> Result<String, CliError> {
    let mut it = args.iter();
    let cmd = it.next().ok_or_else(|| CliError::new(USAGE))?;
    match cmd.as_str() {
        "check" => {
            let path = it.next().ok_or_else(|| CliError::new(USAGE))?;
            check(path)
        }
        "analyze" => {
            let path = it.next().ok_or_else(|| CliError::new(USAGE))?;
            let mut algo = "all".to_string();
            let mut csv: Option<String> = None;
            let mut workers = 1usize;
            let mut sinks = ExportSinks::default();
            let rest: Vec<&String> = it.collect();
            let mut i = 0;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--algo" => {
                        algo = rest
                            .get(i + 1)
                            .ok_or_else(|| CliError::new("--algo needs a value"))?
                            .to_string();
                        i += 2;
                    }
                    "--csv" => {
                        csv = Some(
                            rest.get(i + 1)
                                .ok_or_else(|| CliError::new("--csv needs a path"))?
                                .to_string(),
                        );
                        i += 2;
                    }
                    "--workers" => {
                        workers = rest
                            .get(i + 1)
                            .and_then(|v| v.parse::<usize>().ok())
                            .filter(|&w| w >= 1)
                            .ok_or_else(|| CliError::new("--workers needs a positive integer"))?;
                        i += 2;
                    }
                    other => i = sinks.parse_opt(&rest, i, other)?,
                }
            }
            analyze(path, &algo, csv.as_deref(), &sinks, workers)
        }
        "profile" => {
            let path = it.next().ok_or_else(|| CliError::new(USAGE))?;
            let mut sinks = ExportSinks::default();
            let rest: Vec<&String> = it.collect();
            let mut i = 0;
            while i < rest.len() {
                let opt = rest[i].as_str();
                i = sinks.parse_opt(&rest, i, opt)?;
            }
            profile(path, &sinks)
        }
        "backlog" => {
            let path = it.next().ok_or_else(|| CliError::new(USAGE))?;
            backlog(path)
        }
        "simulate" => {
            let path = it.next().ok_or_else(|| CliError::new(USAGE))?;
            let mut ticks = 8192u64;
            let mut seed = 1u64;
            let rest: Vec<&String> = it.collect();
            let mut i = 0;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--ticks" => {
                        ticks = rest
                            .get(i + 1)
                            .and_then(|v| v.parse().ok())
                            .ok_or_else(|| CliError::new("--ticks needs an integer"))?;
                        i += 2;
                    }
                    "--seed" => {
                        seed = rest
                            .get(i + 1)
                            .and_then(|v| v.parse().ok())
                            .ok_or_else(|| CliError::new("--seed needs an integer"))?;
                        i += 2;
                    }
                    other => return Err(CliError::new(format!("unknown option {other}"))),
                }
            }
            simulate_cmd(path, ticks, seed)
        }
        "chaos" => {
            let mut cfg = dnc_bench::chaos::ChaosConfig::default();
            let mut metrics: Option<String> = None;
            let mut scenario: Option<usize> = None;
            let rest: Vec<&String> = it.collect();
            let mut i = 0;
            while i < rest.len() {
                let int_value = |name: &str, i: usize| -> Result<u64, CliError> {
                    rest.get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| CliError::new(format!("{name} needs an integer")))
                };
                match rest[i].as_str() {
                    "--scenarios" => {
                        cfg.scenarios = int_value("--scenarios", i)? as usize;
                        i += 2;
                    }
                    "--seed" => {
                        cfg.seed = int_value("--seed", i)?;
                        i += 2;
                    }
                    "--ticks" => {
                        cfg.ticks = int_value("--ticks", i)?;
                        i += 2;
                    }
                    "--scenario" => {
                        scenario = Some(int_value("--scenario", i)? as usize);
                        i += 2;
                    }
                    "--metrics" => {
                        metrics = Some(
                            rest.get(i + 1)
                                .ok_or_else(|| CliError::new("--metrics needs a path"))?
                                .to_string(),
                        );
                        i += 2;
                    }
                    other => return Err(CliError::new(format!("unknown option {other}"))),
                }
            }
            match scenario {
                Some(id) => chaos_replay_cmd(&cfg, id),
                None => chaos_cmd(&cfg, metrics.as_deref()),
            }
        }
        "churn" => {
            let mut cfg = dnc_bench::churn::ChurnConfig::default();
            let mut metrics: Option<String> = None;
            let mut seq: Option<usize> = None;
            let rest: Vec<&String> = it.collect();
            let mut i = 0;
            while i < rest.len() {
                let int_value = |name: &str, i: usize| -> Result<u64, CliError> {
                    rest.get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| CliError::new(format!("{name} needs an integer")))
                };
                match rest[i].as_str() {
                    "--seqs" => {
                        cfg.seqs = int_value("--seqs", i)? as usize;
                        i += 2;
                    }
                    "--ops" => {
                        cfg.ops = int_value("--ops", i)? as usize;
                        i += 2;
                    }
                    "--seed" => {
                        cfg.seed = int_value("--seed", i)?;
                        i += 2;
                    }
                    "--kill-points" => {
                        cfg.kill_points = int_value("--kill-points", i)? as usize;
                        i += 2;
                    }
                    "--snapshot-every" => {
                        cfg.snapshot_every = Some(int_value("--snapshot-every", i)?.max(1));
                        i += 2;
                    }
                    "--seq" => {
                        seq = Some(int_value("--seq", i)? as usize);
                        i += 2;
                    }
                    "--workers" => {
                        cfg.workers = (int_value("--workers", i)? as usize).max(1);
                        i += 2;
                    }
                    "--metrics" => {
                        metrics = Some(
                            rest.get(i + 1)
                                .ok_or_else(|| CliError::new("--metrics needs a path"))?
                                .to_string(),
                        );
                        i += 2;
                    }
                    other => return Err(CliError::new(format!("unknown option {other}"))),
                }
            }
            churn_cmd(&cfg, metrics.as_deref(), seq)
        }
        "torture" => {
            let mut cfg = dnc_bench::torture::TortureConfig::default();
            let mut metrics: Option<String> = None;
            let rest: Vec<&String> = it.collect();
            let mut i = 0;
            while i < rest.len() {
                let int_value = |name: &str, i: usize| -> Result<u64, CliError> {
                    rest.get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| CliError::new(format!("{name} needs an integer")))
                };
                match rest[i].as_str() {
                    "--scenarios" => {
                        cfg.scenarios = int_value("--scenarios", i)? as usize;
                        i += 2;
                    }
                    "--ops" => {
                        cfg.ops = int_value("--ops", i)? as usize;
                        i += 2;
                    }
                    "--seed" => {
                        cfg.seed = int_value("--seed", i)?;
                        i += 2;
                    }
                    "--snapshot-every" => {
                        cfg.snapshot_every = int_value("--snapshot-every", i)?.max(1);
                        i += 2;
                    }
                    "--stride" => {
                        cfg.stride = (int_value("--stride", i)? as usize).max(1);
                        i += 2;
                    }
                    "--metrics" => {
                        metrics = Some(
                            rest.get(i + 1)
                                .ok_or_else(|| CliError::new("--metrics needs a path"))?
                                .to_string(),
                        );
                        i += 2;
                    }
                    other => return Err(CliError::new(format!("unknown option {other}"))),
                }
            }
            torture_cmd(&cfg, metrics.as_deref())
        }
        "bench" => {
            let mut opts = dnc_bench::runner::BenchOptions::default();
            let mut gate_enforced = false;
            let rest: Vec<&String> = it.collect();
            let mut i = 0;
            while i < rest.len() {
                let value = |name: &str, i: usize| -> Result<String, CliError> {
                    rest.get(i + 1)
                        .map(|v| v.to_string())
                        .ok_or_else(|| CliError::new(format!("{name} needs a value")))
                };
                match rest[i].as_str() {
                    "--quick" => {
                        opts.quick = true;
                        i += 1;
                    }
                    "--gate" => {
                        gate_enforced = true;
                        i += 1;
                    }
                    "--seed" => {
                        opts.seed = value("--seed", i)?
                            .parse()
                            .map_err(|_| CliError::new("--seed needs an integer"))?;
                        i += 2;
                    }
                    "--window" => {
                        opts.gate.window = value("--window", i)?
                            .parse()
                            .map_err(|_| CliError::new("--window needs an integer"))?;
                        i += 2;
                    }
                    "--threshold" => {
                        opts.gate.threshold_pct = value("--threshold", i)?
                            .parse()
                            .map_err(|_| CliError::new("--threshold needs an integer"))?;
                        i += 2;
                    }
                    "--out-dir" => {
                        opts.out_dir = std::path::PathBuf::from(value("--out-dir", i)?);
                        i += 2;
                    }
                    "--bench-dir" => {
                        opts.bench_dir = std::path::PathBuf::from(value("--bench-dir", i)?);
                        i += 2;
                    }
                    "--dashboard" => {
                        opts.dashboard = Some(std::path::PathBuf::from(value("--dashboard", i)?));
                        i += 2;
                    }
                    other => return Err(CliError::new(format!("unknown option {other}"))),
                }
            }
            bench_cmd(&opts, gate_enforced)
        }
        "provision" => {
            let path = it.next().ok_or_else(|| CliError::new(USAGE))?;
            provision(path)
        }
        "serve" => {
            let path = it.next().ok_or_else(|| CliError::new(USAGE))?;
            let mut script: Option<String> = None;
            let mut journal: Option<String> = None;
            let mut queue = 64usize;
            let mut workers = 1usize;
            let mut listen: Option<String> = None;
            let mut max_conns = 64usize;
            let mut batch = 8usize;
            let mut drain_timeout = 5u64;
            let mut snapshot_every: Option<u64> = None;
            let rest: Vec<&String> = it.collect();
            let mut i = 0;
            while i < rest.len() {
                let value = |name: &str, i: usize| -> Result<String, CliError> {
                    rest.get(i + 1)
                        .map(|v| v.to_string())
                        .ok_or_else(|| CliError::new(format!("{name} needs a value")))
                };
                match rest[i].as_str() {
                    "--script" => {
                        script = Some(value("--script", i)?);
                        i += 2;
                    }
                    "--journal" => {
                        journal = Some(value("--journal", i)?);
                        i += 2;
                    }
                    "--queue" => {
                        queue = value("--queue", i)?
                            .parse()
                            .map_err(|_| CliError::new("--queue needs an integer"))?;
                        i += 2;
                    }
                    "--workers" => {
                        workers = value("--workers", i)?
                            .parse::<usize>()
                            .ok()
                            .filter(|&w| w >= 1)
                            .ok_or_else(|| CliError::new("--workers needs a positive integer"))?;
                        i += 2;
                    }
                    "--listen" => {
                        listen = Some(value("--listen", i)?);
                        i += 2;
                    }
                    "--max-conns" => {
                        max_conns = value("--max-conns", i)?
                            .parse::<usize>()
                            .ok()
                            .filter(|&n| n >= 1)
                            .ok_or_else(|| CliError::new("--max-conns needs a positive integer"))?;
                        i += 2;
                    }
                    "--batch" => {
                        batch = value("--batch", i)?
                            .parse::<usize>()
                            .ok()
                            .filter(|&n| n >= 1)
                            .ok_or_else(|| CliError::new("--batch needs a positive integer"))?;
                        i += 2;
                    }
                    "--drain-timeout" => {
                        drain_timeout = value("--drain-timeout", i)?
                            .parse()
                            .map_err(|_| CliError::new("--drain-timeout needs seconds"))?;
                        i += 2;
                    }
                    "--snapshot-every" => {
                        snapshot_every = Some(
                            value("--snapshot-every", i)?
                                .parse::<u64>()
                                .ok()
                                .filter(|&n| n >= 1)
                                .ok_or_else(|| {
                                    CliError::new("--snapshot-every needs a positive integer")
                                })?,
                        );
                        i += 2;
                    }
                    other => return Err(CliError::new(format!("unknown option {other}"))),
                }
            }
            if snapshot_every.is_some() && journal.is_none() {
                return Err(CliError::new("--snapshot-every needs --journal <wal>"));
            }
            if script.is_none() && listen.is_none() {
                return Err(CliError::new(
                    "serve needs --script <requests> or --listen <addr>",
                ));
            }
            let (built, _) = load(path)?;
            let base_deadlines = built
                .deadlines
                .iter()
                .enumerate()
                .filter_map(|(i, d)| {
                    d.map(|deadline| dnc_core::admission::Deadline {
                        flow: dnc_net::FlowId(i),
                        deadline,
                    })
                })
                .collect();
            crate::serve::serve(
                &crate::serve::ServeOptions {
                    network: path.to_string(),
                    script,
                    journal,
                    queue,
                    workers,
                    listen,
                    max_conns,
                    batch,
                    drain_timeout,
                    snapshot_every,
                },
                built.net,
                base_deadlines,
            )
        }
        "tandem" => {
            let n: usize = it
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| CliError::new("usage: dnc tandem <n> <U>"))?;
            let u: Rat = it
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| CliError::new("usage: dnc tandem <n> <U>"))?;
            tandem_file(n, u)
        }
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(CliError::new(format!(
            "unknown command {other:?}\n\n{USAGE}"
        ))),
    }
}

fn algorithms(which: &str, workers: usize) -> Result<Vec<Box<dyn DelayAnalysis>>, CliError> {
    let one = |name: &str| -> Option<Box<dyn DelayAnalysis>> {
        match name {
            "integrated" => Some(Box::new(Integrated::paper().with_workers(workers))),
            "decomposed" => Some(Box::new(Decomposed::paper())),
            "service-curve" => Some(Box::new(ServiceCurve::paper())),
            "fifo-family" => Some(Box::new(FifoFamily::default())),
            _ => None,
        }
    };
    if which == "all" {
        Ok(vec![
            one("service-curve").unwrap(),
            one("decomposed").unwrap(),
            one("integrated").unwrap(),
        ])
    } else {
        one(which)
            .map(|a| vec![a])
            .ok_or_else(|| CliError::new(format!("unknown algorithm {which:?}")))
    }
}

/// Optional machine-readable outputs shared by `analyze` and `profile`.
#[derive(Default)]
struct ExportSinks {
    metrics: Option<String>,
    trace: Option<String>,
}

impl ExportSinks {
    /// Consume `--metrics <path>` / `--trace <path>` at position `i`;
    /// returns the next position or an error for an unknown option.
    fn parse_opt(&mut self, rest: &[&String], i: usize, opt: &str) -> Result<usize, CliError> {
        let value = |name: &str| {
            rest.get(i + 1)
                .map(|v| v.to_string())
                .ok_or_else(|| CliError::new(format!("{name} needs a path")))
        };
        match opt {
            "--metrics" => {
                self.metrics = Some(value("--metrics")?);
                Ok(i + 2)
            }
            "--trace" => {
                self.trace = Some(value("--trace")?);
                Ok(i + 2)
            }
            other => Err(CliError::new(format!("unknown option {other}"))),
        }
    }

    fn any(&self) -> bool {
        self.metrics.is_some() || self.trace.is_some()
    }

    /// Write whichever outputs were requested, appending a `wrote <path>`
    /// line per file to `out`.
    fn write(
        &self,
        doc: &MetricsDoc,
        events: &[TraceEvent],
        out: &mut String,
    ) -> Result<(), CliError> {
        if let Some(p) = &self.metrics {
            write_metrics(doc, std::path::Path::new(p))
                .map_err(|e| CliError::new(format!("cannot write {p}: {e}")))?;
            let _ = writeln!(out, "wrote {p}");
        }
        if let Some(p) = &self.trace {
            write_trace(events, std::path::Path::new(p))
                .map_err(|e| CliError::new(format!("cannot write {p}: {e}")))?;
            let _ = writeln!(out, "wrote {p}");
        }
        Ok(())
    }
}

/// Fold one algorithm run's snapshot into `into`, prefixing every
/// span/counter/histogram name with `prefix/` so runs stay separable.
fn merge_namespaced(prefix: &str, snap: Snapshot, into: &mut Snapshot) {
    for (k, v) in snap.spans {
        into.spans.insert(format!("{prefix}/{k}"), v);
    }
    for (k, v) in snap.counters {
        into.counters.insert(format!("{prefix}/{k}"), v);
    }
    for (k, v) in snap.histograms {
        into.histograms.insert(format!("{prefix}/{k}"), v);
    }
}

/// One algorithm's row in the profile report.
struct ProfileRow {
    name: &'static str,
    /// Worst end-to-end bound across flows (`None` when the run failed).
    bound: Option<Rat>,
    wall_us: u64,
    conv_calls: u64,
    hdev_calls: u64,
    /// Curve/aggregate cache hits (`cache.hit` counter).
    cache_hits: u64,
    /// Total cache lookups (hits + misses); 0 = the run never consulted
    /// a cache, rendered as "-".
    cache_lookups: u64,
    notes: String,
}

/// Hit fraction of the curve/aggregate caches during one profiled run.
const CACHE_HIT_RATE: dnc_telemetry::schema::ColumnMeta = dnc_telemetry::schema::ColumnMeta {
    label: "cache hit rate",
    unit: "",
};

/// One profiled analysis run: the report plus a free-form notes string.
type ProfileRun<'a> = dyn Fn(&dnc_net::Network) -> Result<(AnalysisReport, String), String> + 'a;

/// Run every applicable algorithm on `path`, reporting tightness (worst
/// end-to-end bound) against cost (wall time, curve-operation counts).
fn profile(path: &str, sinks: &ExportSinks) -> Result<String, CliError> {
    let (built, _) = load(path)?;
    let net = &built.net;
    let cyclic = net.topological_order().is_err();

    let mut rows: Vec<ProfileRow> = Vec::new();
    let mut merged = Snapshot::default();
    let mut events: Vec<TraceEvent> = Vec::new();
    let mut bounds_series = Series::new(
        "profile.bounds",
        vec![schema::LABEL, schema::bound_column()],
    );

    let mut run_one = |name: &'static str, run: &ProfileRun<'_>| {
        dnc_telemetry::reset();
        // audit: allow(det-wall-clock, profile wall-time column is reporting-side by design and never feeds the Rat analysis)
        let t0 = Instant::now();
        let outcome = run(net);
        let wall_us = u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX);
        let snap = dnc_telemetry::snapshot();
        events.extend(dnc_telemetry::take_trace());
        let conv_calls = snap.span_count("curve.conv");
        let hdev_calls = snap.span_count("curve.hdev") + snap.span_count("curve.hdev_general");
        let cache_hits = snap.counter_value("cache.hit");
        let cache_lookups = cache_hits + snap.counter_value("cache.miss");
        let (bound, notes) = match outcome {
            Ok((report, mut notes)) => {
                let worst = report.flows.iter().map(|f| f.e2e).max();
                for f in &report.flows {
                    bounds_series.push_row(vec![
                        Cell::Text(format!("{name}/{}", f.name)),
                        Cell::Num(f.e2e.to_f64()),
                    ]);
                }
                let pairs = snap.counter_value("net.pairing.pairs");
                if pairs > 0 {
                    if !notes.is_empty() {
                        notes.push(' ');
                    }
                    let _ = write!(notes, "pairs={pairs}");
                }
                (worst, notes)
            }
            Err(e) => (None, format!("failed: {e}")),
        };
        merge_namespaced(name, snap, &mut merged);
        rows.push(ProfileRow {
            name,
            bound,
            wall_us,
            conv_calls,
            hdev_calls,
            cache_hits,
            cache_lookups,
            notes,
        });
    };

    if cyclic {
        run_one("time-stopping", &|net| {
            let r = dnc_core::cyclic::TimeStopping::default()
                .analyze(net)
                .map_err(|e| e.to_string())?;
            let iters = r.iterations;
            match r.into_bounds() {
                Some(report) => Ok((report, format!("iters={iters}"))),
                None => Err(format!("did not converge after {iters} iterations")),
            }
        });
    } else {
        for alg in algorithms("all", 1)? {
            let name = alg.name();
            if name == "integrated" {
                // Profile the cached path so the hit-rate column reflects
                // what analyze/serve/churn actually run.
                run_one(name, &|net| {
                    let cache = dnc_core::cache::AnalysisCache::new();
                    Integrated::paper()
                        .analyze_with(net, Some(&cache))
                        .map(|r| (r, String::new()))
                        .map_err(|e| e.to_string())
                });
            } else {
                run_one(name, &|net| {
                    alg.analyze(net)
                        .map(|r| (r, String::new()))
                        .map_err(|e| e.to_string())
                });
            }
        }
    }

    // Tightness is relative to the best (smallest) worst-case bound.
    let best = rows.iter().filter_map(|r| r.bound).min();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "profile {path}: {} servers, {} flows{}",
        net.servers().len(),
        net.flows().len(),
        if cyclic { " (cyclic)" } else { "" }
    );
    let _ = writeln!(
        out,
        "{:<14} {:>12} {:>8} {:>10} {:>7} {:>7} {:>6}  notes",
        "algorithm", "worst bound", "vs best", "wall", "conv", "hdev", "hit%"
    );
    let mut algo_series = Series::new(
        "profile.algorithms",
        vec![
            schema::LABEL,
            schema::bound_column(),
            schema::REL_IMPROVEMENT,
            schema::WALL_TIME,
            CACHE_HIT_RATE,
        ],
    );
    for r in &rows {
        let ratio = match (r.bound, best) {
            (Some(b), Some(best)) if best.is_positive() => Some(b / best),
            _ => None,
        };
        let ratio_text = match (r.bound, ratio) {
            (Some(_), Some(q)) => format!("{:.2}x", q.to_f64()),
            (Some(_), None) => "1.00x".to_string(), // every bound is zero
            (None, _) => "-".to_string(),
        };
        // With telemetry compiled out (or a cache-free algorithm) there
        // are no lookups at all — show "-" rather than a fake 0%.
        let hit_rate = (r.cache_lookups > 0).then(|| r.cache_hits as f64 / r.cache_lookups as f64); // audit: allow(float, display-only hit rate; never feeds back into the analysis)
        let _ = writeln!(
            out,
            "{:<14} {:>12} {:>8} {:>10} {:>7} {:>7} {:>6}  {}",
            r.name,
            r.bound
                .map_or("-".to_string(), |b| format!("{:.4}", b.to_f64())),
            ratio_text,
            format!("{}µs", r.wall_us),
            r.conv_calls,
            r.hdev_calls,
            hit_rate.map_or("-".to_string(), |h| format!("{:.0}%", 100.0 * h)),
            r.notes
        );
        algo_series.push_row(vec![
            Cell::Text(r.name.to_string()),
            r.bound.map_or(Cell::Null, |b| Cell::Num(b.to_f64())),
            ratio.map_or(Cell::Null, |q| Cell::Num(q.to_f64())),
            Cell::int(r.wall_us),
            hit_rate.map_or(Cell::Null, Cell::Num),
        ]);
    }
    if !dnc_telemetry::enabled() {
        let _ = writeln!(
            out,
            "note: span/counter detail is zero — rebuild with `--features telemetry`"
        );
    }

    if sinks.any() {
        let mut doc = MetricsDoc::new("profile", merged)
            .with_meta("scenario", path)
            .with_meta("servers", net.servers().len().to_string())
            .with_meta("flows", net.flows().len().to_string())
            .with_meta(
                "telemetry",
                if dnc_telemetry::enabled() {
                    "on"
                } else {
                    "off"
                },
            );
        doc.series.push(algo_series);
        doc.series.push(bounds_series);
        sinks.write(&doc, &events, &mut out)?;
    }
    Ok(out)
}

fn check(path: &str) -> Result<String, CliError> {
    let (built, _) = load(path)?;
    let net = &built.net;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}: {} servers, {} flows",
        path,
        net.servers().len(),
        net.flows().len()
    );
    let cyclic = match net.topological_order() {
        Ok(order) => {
            let names: Vec<&str> = order.iter().map(|&s| net.server(s).name.as_str()).collect();
            let _ = writeln!(out, "topological order: {}", names.join(" -> "));
            false
        }
        Err(_) => {
            let _ = writeln!(
                out,
                "topology: CYCLIC (feedforward algorithms unavailable; use time-stopping)"
            );
            true
        }
    };
    let _ = writeln!(out, "servers:");
    for (i, s) in net.servers().iter().enumerate() {
        let _ = writeln!(
            out,
            "  {:<12} rate {:<6} {:<5} load {:<8} util {:.3}",
            s.name,
            s.rate.to_string(),
            match s.discipline {
                dnc_net::Discipline::Fifo => "fifo",
                dnc_net::Discipline::StaticPriority => "sp",
                dnc_net::Discipline::Gps => "gps",
                dnc_net::Discipline::Edf => "edf",
            },
            net.load(ServerId(i)).to_string(),
            net.utilization(ServerId(i)).to_f64()
        );
    }
    if !cyclic {
        let part = partition(net, PairingStrategy::GreedyChain).expect("feedforward");
        let _ = writeln!(out, "integrated pairing ({} pairs):", part.pair_count());
        for g in &part.groups {
            let names: Vec<&str> = g
                .servers()
                .iter()
                .map(|&s| net.server(s).name.as_str())
                .collect();
            let _ = writeln!(out, "  {}", names.join(" + "));
        }
    }
    Ok(out)
}

fn format_report(out: &mut String, report: &AnalysisReport, deadlines: &[Option<Rat>]) {
    let _ = writeln!(out, "[{}]", report.algorithm);
    for (i, f) in report.flows.iter().enumerate() {
        let verdict = match deadlines.get(i).copied().flatten() {
            Some(d) if f.e2e <= d => "  MEETS",
            Some(_) => "  MISSES",
            None => "",
        };
        let _ = writeln!(
            out,
            "  {:<14} {:>12} = {:>10.4} ticks{}",
            f.name,
            f.e2e.to_string(),
            f.e2e.to_f64(),
            verdict
        );
    }
}

fn analyze(
    path: &str,
    which: &str,
    csv: Option<&str>,
    sinks: &ExportSinks,
    workers: usize,
) -> Result<String, CliError> {
    let (built, _) = load(path)?;
    if sinks.any() {
        dnc_telemetry::reset();
    }
    let mut out = String::new();
    let mut csv_rows = String::from("algorithm,flow,name,bound,bound_f64\n");
    let mut bounds_series = Series::new(
        "analyze.bounds",
        vec![schema::LABEL, schema::bound_column()],
    );
    let record = |report: &AnalysisReport, csv_rows: &mut String, bounds_series: &mut Series| {
        for line in report.to_csv().lines().skip(1) {
            csv_rows.push_str(report.algorithm);
            csv_rows.push(',');
            csv_rows.push_str(line);
            csv_rows.push('\n');
        }
        for f in &report.flows {
            bounds_series.push_row(vec![
                Cell::Text(format!("{}/{}", report.algorithm, f.name)),
                Cell::Num(f.e2e.to_f64()),
            ]);
        }
    };
    let finish =
        |mut out: String, csv_rows: String, bounds_series: Series| -> Result<String, CliError> {
            if let Some(p) = csv {
                std::fs::write(p, &csv_rows)
                    .map_err(|e| CliError::new(format!("cannot write {p}: {e}")))?;
                let _ = writeln!(out, "wrote {p}");
            }
            if sinks.any() {
                let mut doc = MetricsDoc::new("analyze", dnc_telemetry::snapshot())
                    .with_meta("scenario", path)
                    .with_meta("algo", which);
                doc.series.push(bounds_series);
                sinks.write(&doc, &dnc_telemetry::take_trace(), &mut out)?;
            }
            Ok(out)
        };
    let cyclic = built.net.topological_order().is_err();
    if which == "resilient" || which == "time-stopping" || (cyclic && which == "all") {
        let runner = ResilientRunner {
            workers,
            ..ResilientRunner::default()
        };
        let r = runner.analyze(&built.net);
        match r.bounds() {
            Some(report) => {
                let _ = writeln!(
                    out,
                    "# resilient: answered at tier {} ({})",
                    r.tier(),
                    r.chain_summary()
                );
                format_report(&mut out, report, &built.deadlines);
                record(report, &mut csv_rows, &mut bounds_series);
                return finish(out, csv_rows, bounds_series);
            }
            None => {
                // Divergence / budget exhaustion gets its own exit code so
                // scripts can tell "no valid bound" from usage errors.
                return Err(CliError {
                    message: format!(
                        "no valid bound within budget; degradation chain: {}",
                        r.chain_summary()
                    ),
                    code: EXIT_NO_BOUND,
                });
            }
        }
    }
    if cyclic {
        return Err(CliError::new(
            "network is cyclic: only `--algo time-stopping` (or `resilient`) applies",
        ));
    }
    for alg in algorithms(which, workers)? {
        match alg.analyze(&built.net) {
            Ok(report) => {
                format_report(&mut out, &report, &built.deadlines);
                record(&report, &mut csv_rows, &mut bounds_series);
            }
            Err(e) => {
                let _ = writeln!(out, "[{}] failed: {e}", alg.name());
            }
        }
    }
    finish(out, csv_rows, bounds_series)
}

fn backlog(path: &str) -> Result<String, CliError> {
    let (built, _) = load(path)?;
    let bounds = backlog_bounds(&built.net, OutputCap::Shift)
        .map_err(|e| CliError::new(format!("analysis failed: {e}")))?;
    let mut out = String::from("worst-case buffer requirements (cells):\n");
    for (i, s) in built.net.servers().iter().enumerate() {
        let _ = writeln!(
            out,
            "  {:<12} {:>10} = {:>9.3}",
            s.name,
            bounds[i].to_string(),
            bounds[i].to_f64()
        );
    }
    Ok(out)
}

fn simulate_cmd(path: &str, ticks: u64, seed: u64) -> Result<String, CliError> {
    let (built, _) = load(path)?;
    let net = &built.net;
    let cfg = SimConfig {
        ticks,
        seed,
        ..SimConfig::default()
    };
    let greedy = simulate(net, &all_greedy(net), &cfg);
    // A second, randomized workload for contrast.
    let onoff = vec![
        SourceModel::OnOff {
            on: 8,
            off: 8,
            phase: 3,
        };
        net.flows().len()
    ];
    let random = simulate(net, &onoff, &cfg);
    let bound = Integrated::paper()
        .analyze(net)
        .map_err(|e| CliError::new(format!("analysis failed: {e}")))?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14} {:>9} {:>9} {:>9} {:>12}",
        "flow", "greedy", "on-off", "bound", "verdict"
    );
    let mut violations = 0;
    for (i, f) in net.flows().iter().enumerate() {
        let worst = greedy.flows[i].max_delay.max(random.flows[i].max_delay);
        let b = bound.flows[i].e2e;
        let ok = Rat::from(worst as i64) <= b;
        if !ok {
            violations += 1;
        }
        let _ = writeln!(
            out,
            "{:<14} {:>9} {:>9} {:>9.3} {:>12}",
            f.name,
            greedy.flows[i].max_delay,
            random.flows[i].max_delay,
            b.to_f64(),
            if ok { "ok" } else { "VIOLATION" }
        );
    }
    if violations > 0 {
        return Err(CliError {
            message: format!("{out}\n{violations} bound violation(s)"),
            code: EXIT_VIOLATION,
        });
    }
    Ok(out)
}

/// Run the chaos soundness harness: randomized fault scenarios through
/// the simulator and the guarded analysis chain. Any simulated delay
/// above a bound still claimed valid for the degraded capacity is a
/// soundness violation (exit code [`EXIT_VIOLATION`]).
fn chaos_cmd(
    cfg: &dnc_bench::chaos::ChaosConfig,
    metrics: Option<&str>,
) -> Result<String, CliError> {
    let report = dnc_bench::chaos::run_chaos(cfg);
    let mut out = dnc_bench::chaos::render_report(&report);
    if let Some(p) = metrics {
        let mut doc = MetricsDoc::new("chaos", dnc_telemetry::snapshot());
        doc.series = dnc_bench::chaos::chaos_series(&report);
        write_metrics(&doc, std::path::Path::new(p))
            .map_err(|e| CliError::new(format!("cannot write {p}: {e}")))?;
        let _ = writeln!(out, "wrote {p}");
    }
    if report.violation_count() > 0 {
        Err(CliError {
            message: out,
            code: EXIT_VIOLATION,
        })
    } else {
        Ok(out)
    }
}

/// Replay scenario `id` of a chaos run alone (`--scenario`): identical
/// draws to the full sweep, same exit-code contract.
fn chaos_replay_cmd(cfg: &dnc_bench::chaos::ChaosConfig, id: usize) -> Result<String, CliError> {
    let outcome = dnc_bench::chaos::replay_scenario(cfg, id);
    let out = dnc_bench::chaos::render_scenario(cfg, &outcome);
    if outcome.violations.is_empty() {
        Ok(out)
    } else {
        Err(CliError {
            message: out,
            code: EXIT_VIOLATION,
        })
    }
}

/// Run the churn soundness harness (or replay one sequence with
/// `--seq`): randomized admit/release mixes through the durable
/// engine, independently re-certified after every commit and
/// crash-recovered from random journal truncation points. Either
/// falsifier firing is exit code [`EXIT_VIOLATION`].
fn churn_cmd(
    cfg: &dnc_bench::churn::ChurnConfig,
    metrics: Option<&str>,
    seq: Option<usize>,
) -> Result<String, CliError> {
    let report = match seq {
        Some(id) => dnc_bench::churn::ChurnReport {
            cfg: cfg.clone(),
            outcomes: vec![dnc_bench::churn::replay_sequence(cfg, id)],
        },
        None => dnc_bench::churn::run_churn(cfg),
    };
    let mut out = dnc_bench::churn::render_report(&report);
    if let Some(p) = metrics {
        let mut doc = MetricsDoc::new("churn", dnc_telemetry::snapshot());
        doc.series = dnc_bench::churn::churn_series(&report);
        write_metrics(&doc, std::path::Path::new(p))
            .map_err(|e| CliError::new(format!("cannot write {p}: {e}")))?;
        let _ = writeln!(out, "wrote {p}");
    }
    if report.sound() {
        Ok(out)
    } else {
        Err(CliError {
            message: out,
            code: EXIT_VIOLATION,
        })
    }
}

/// Run the disk-fault torture sweep: enumerate every storage failpoint
/// (journal append/fsync, snapshot publish, rotation), inject each
/// fault kind at each site, and verify fail-stop recovery — no acked
/// op lost, no phantom op recovered, tail-only replay past the newest
/// snapshot. Any falsifier hit is exit code [`EXIT_VIOLATION`].
fn torture_cmd(
    cfg: &dnc_bench::torture::TortureConfig,
    metrics: Option<&str>,
) -> Result<String, CliError> {
    let report = dnc_bench::torture::run_torture(cfg);
    let mut out = dnc_bench::torture::render_report(&report);
    if let Some(p) = metrics {
        let mut doc = MetricsDoc::new("torture", dnc_telemetry::snapshot());
        doc.series = dnc_bench::torture::torture_series(&report);
        write_metrics(&doc, std::path::Path::new(p))
            .map_err(|e| CliError::new(format!("cannot write {p}: {e}")))?;
        let _ = writeln!(out, "wrote {p}");
    }
    if report.sound() {
        Ok(out)
    } else {
        Err(CliError {
            message: out,
            code: EXIT_VIOLATION,
        })
    }
}

/// `dnc bench`: record one perf-trajectory run through
/// [`dnc_bench::runner::run_bench`], then map the outcome onto the
/// unified exit table: harness soundness failures exit 1, a tripped
/// gate (only when `--gate` was passed) exits 4.
fn bench_cmd(
    opts: &dnc_bench::runner::BenchOptions,
    gate_enforced: bool,
) -> Result<String, CliError> {
    let summary =
        dnc_bench::runner::run_bench(opts).map_err(|e| CliError::new(format!("bench: {e}")))?;
    let mut out = summary.text.clone();
    if !summary.sound() {
        let _ = writeln!(out, "bench: harness soundness failure");
        return Err(CliError {
            message: out,
            code: EXIT_VIOLATION,
        });
    }
    if gate_enforced && summary.regressed() {
        let _ = writeln!(out, "bench: regression gate tripped");
        return Err(CliError {
            message: out,
            code: EXIT_REGRESSION,
        });
    }
    Ok(out)
}

/// For every flow with a deadline that crosses GPS servers, find the
/// minimal uniform reservation (on a 1/64 grid) that certifies the
/// deadline, allocating flows greedily in declaration order.
fn provision(path: &str) -> Result<String, CliError> {
    use dnc_net::Discipline;
    let (built, spec) = load(path)?;
    let mut net = built.net.clone();
    let mut gps_flows: Vec<usize> = (0..net.flows().len())
        .filter(|&i| {
            built.deadlines[i].is_some()
                && net.flows()[i]
                    .route
                    .iter()
                    .any(|&s| net.server(s).discipline == Discipline::Gps)
        })
        .collect();
    // Allocate the tightest deadlines first so loose flows cannot starve
    // urgent ones.
    gps_flows.sort_by_key(|&i| built.deadlines[i].expect("filtered"));
    if gps_flows.is_empty() {
        return Err(CliError::new(
            "provision: no flow has both a deadline and a GPS hop",
        ));
    }

    let analyzer = Decomposed::paper();
    let mut out = String::from(
        "minimal GPS reservations meeting the deadlines (1/64 grid):
",
    );
    for &i in &gps_flows {
        let f = dnc_net::FlowId(i);
        let deadline = built.deadlines[i].expect("filtered");
        let gps_hops: Vec<dnc_net::ServerId> = net.flows()[i]
            .route
            .iter()
            .copied()
            .filter(|&s| net.server(s).discipline == Discipline::Gps)
            .collect();
        // Sustained rate is the floor; search upward on the grid.
        let floor = net.flows()[i].spec.sustained_rate();
        let mut chosen: Option<Rat> = None;
        for k in 1..=256u32 {
            let r = floor + Rat::new(k as i128, 64);
            let mut trial = net.clone();
            for &s in &gps_hops {
                trial.reserve(f, s, r);
            }
            if trial.validate().is_err() {
                break; // ran out of capacity
            }
            if let Ok(rep) = analyzer.analyze(&trial) {
                if rep.bound(f) <= deadline {
                    chosen = Some(r);
                    net = trial;
                    break;
                }
            }
        }
        let name = &spec.flows[i].name;
        match chosen {
            Some(r) => {
                let _ = writeln!(
                    out,
                    "  {:<14} reserve {:>8}  (deadline {}, bound {:.3})",
                    name,
                    r.to_string(),
                    deadline,
                    analyzer.analyze(&net).unwrap().bound(f).to_f64()
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "  {:<14} INFEASIBLE within remaining capacity (deadline {deadline})",
                    name
                );
            }
        }
    }
    Ok(out)
}

/// Emit the paper's `n`-switch tandem at work load `U` as a `.dnc`
/// document (σ = 1, ρ = U/4, unit links, unit peaks).
fn tandem_file(n: usize, u: Rat) -> Result<String, CliError> {
    if n == 0 {
        return Err(CliError::new("tandem: n must be at least 1"));
    }
    if !u.is_positive() || u >= Rat::ONE {
        return Err(CliError::new("tandem: U must be in (0, 1)"));
    }
    let rho = u / Rat::from(4);
    let mut out = format!("# ICPP'99 evaluation tandem: n = {n}, U = {u} (rho = {rho})\n");
    for j in 0..n {
        let _ = writeln!(out, "server L{j} rate 1 fifo");
    }
    let route: Vec<String> = (0..n).map(|j| format!("L{j}")).collect();
    let _ = writeln!(
        out,
        "flow conn0 route {} bucket 1 {rho} peak 1 prio 1",
        route.join(" ")
    );
    for j in 0..n {
        let _ = writeln!(out, "flow upper{j} route L{j} bucket 1 {rho} peak 1");
        if j + 1 < n {
            let _ = writeln!(
                out,
                "flow lower{j} route L{j} L{} bucket 1 {rho} peak 1",
                j + 1
            );
        } else {
            let _ = writeln!(out, "flow lower{j} route L{j} bucket 1 {rho} peak 1");
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_file() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("dnc_cli_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.dnc");
        std::fs::write(
            &path,
            "\
server L0 rate 1 fifo
server L1 rate 1 fifo
flow conn0 route L0 L1 bucket 1 1/8 peak 1 deadline 10
flow upper0 route L0 bucket 1 1/8 peak 1
flow upper1 route L1 bucket 1 1/8 peak 1
",
        )
        .unwrap();
        path
    }

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn check_reports_structure() {
        let p = sample_file();
        let out = run(&args(&["check", p.to_str().unwrap()])).unwrap();
        assert!(out.contains("2 servers, 3 flows"));
        assert!(out.contains("topological order: L0 -> L1"));
        assert!(out.contains("integrated pairing (1 pairs)"));
    }

    #[test]
    fn analyze_all_algorithms() {
        let p = sample_file();
        let out = run(&args(&["analyze", p.to_str().unwrap(), "--algo", "all"])).unwrap();
        assert!(out.contains("[decomposed]"));
        assert!(out.contains("[integrated]"));
        assert!(out.contains("[service-curve]"));
        assert!(out.contains("conn0"));
        assert!(out.contains("MEETS") || out.contains("MISSES"));
    }

    #[test]
    fn analyze_csv_output() {
        let p = sample_file();
        let dir = p.parent().unwrap().to_path_buf();
        let csv_path = dir.join("out.csv");
        let out = run(&args(&[
            "analyze",
            p.to_str().unwrap(),
            "--algo",
            "integrated",
            "--csv",
            csv_path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("wrote"));
        let csv = std::fs::read_to_string(&csv_path).unwrap();
        assert!(csv.starts_with("algorithm,flow,name,bound,bound_f64"));
        assert!(csv.contains("integrated,0,conn0,"));
        assert_eq!(csv.lines().count(), 4, "header + three flows");
    }

    #[test]
    fn chaos_smoke_reports_soundness_and_writes_metrics() {
        let p = sample_file();
        let metrics = p.parent().unwrap().join("chaos-metrics.json");
        let out = run(&args(&[
            "chaos",
            "--scenarios",
            "3",
            "--seed",
            "5",
            "--ticks",
            "256",
            "--metrics",
            metrics.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("3 scenarios, seed 5, 256 ticks"), "{out}");
        assert!(out.contains("no soundness violations"), "{out}");
        let json = std::fs::read_to_string(&metrics).unwrap();
        schema::validate_metrics(&json).unwrap();
        assert!(json.contains("\"chaos\""));
    }

    #[test]
    fn chaos_scenario_replay_is_exit_clean_and_detailed() {
        let out = run(&args(&[
            "chaos",
            "--scenarios",
            "4",
            "--seed",
            "11",
            "--ticks",
            "256",
            "--scenario",
            "2",
        ]))
        .unwrap();
        assert!(out.contains("chaos replay: scenario 2 of seed 11"), "{out}");
        assert!(
            out.contains("no soundness violations") || out.contains("VIOLATION"),
            "{out}"
        );
    }

    #[test]
    fn churn_smoke_is_sound_and_writes_metrics() {
        let metrics = sample_file().parent().unwrap().join("churn-metrics.json");
        let out = run(&args(&[
            "churn",
            "--seqs",
            "2",
            "--ops",
            "10",
            "--seed",
            "5",
            "--kill-points",
            "3",
            "--metrics",
            metrics.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("2 sequences"), "{out}");
        assert!(
            out.contains("no certification or recovery violations"),
            "{out}"
        );
        let json = std::fs::read_to_string(&metrics).unwrap();
        dnc_telemetry::schema::validate_metrics(&json).unwrap();
        assert!(json.contains("\"churn\""));
        // Replay of one sequence alone is also exit-clean.
        let out = run(&args(&[
            "churn",
            "--seqs",
            "2",
            "--ops",
            "10",
            "--seed",
            "5",
            "--kill-points",
            "3",
            "--seq",
            "1",
        ]))
        .unwrap();
        assert!(
            out.contains("no certification or recovery violations"),
            "{out}"
        );
    }

    fn write_script(name: &str, text: &str) -> std::path::PathBuf {
        let dir = sample_file().parent().unwrap().to_path_buf();
        let path = dir.join(name);
        std::fs::write(&path, text).unwrap();
        path
    }

    #[test]
    fn serve_admits_releases_and_queries() {
        let p = sample_file();
        let script = write_script(
            "serve-roundtrip.txt",
            "\
# one connection in, inspected, then out again
admit a route L0 L1 bucket 1 1/8 deadline 40
query
release a
query
",
        );
        let out = run(&args(&[
            "serve",
            p.to_str().unwrap(),
            "--script",
            script.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("ADMIT   a: certified"), "{out}");
        assert!(out.contains("QUERY   1 admitted"), "{out}");
        assert!(out.contains("RELEASE a: ok"), "{out}");
        assert!(out.contains("QUERY   0 admitted"), "{out}");
        assert!(out.contains("2 commit(s)"), "{out}");
    }

    #[test]
    fn serve_rejects_an_impossible_deadline() {
        let p = sample_file();
        let script = write_script(
            "serve-reject.txt",
            "admit hopeless route L0 L1 bucket 1 1/8 deadline 1/1000\n",
        );
        let out = run(&args(&[
            "serve",
            p.to_str().unwrap(),
            "--script",
            script.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("REJECT  hopeless:"), "{out}");
        assert!(out.contains("1 rollback(s)"), "{out}");
        assert!(out.contains("0 connection(s) admitted"), "{out}");
    }

    #[test]
    fn serve_recovers_committed_state_from_the_journal() {
        let p = sample_file();
        let journal = p.parent().unwrap().join("serve-recovery.wal");
        let _ = std::fs::remove_file(&journal);
        let first = write_script(
            "serve-recovery-1.txt",
            "admit durable route L0 L1 bucket 1 1/8 deadline 40\n",
        );
        let out = run(&args(&[
            "serve",
            p.to_str().unwrap(),
            "--script",
            first.to_str().unwrap(),
            "--journal",
            journal.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("ADMIT   durable"), "{out}");

        let second = write_script("serve-recovery-2.txt", "query\n");
        let out = run(&args(&[
            "serve",
            p.to_str().unwrap(),
            "--script",
            second.to_str().unwrap(),
            "--journal",
            journal.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(
            out.contains("recovery: replayed 1 committed operation(s), 1 connection(s) live"),
            "{out}"
        );
        assert!(out.contains("QUERY   1 admitted"), "{out}");
        assert!(out.contains("durable"), "{out}");
    }

    #[test]
    fn serve_sheds_under_overload() {
        let p = sample_file();
        let script = write_script(
            "serve-shed.txt",
            "\
admit a route L0 L1 bucket 1 1/8 deadline 50
admit b route L0 L1 bucket 1 1/8 deadline 30
admit c route L0 L1 bucket 1 1/8 deadline 90
",
        );
        let out = run(&args(&[
            "serve",
            p.to_str().unwrap(),
            "--script",
            script.to_str().unwrap(),
            "--queue",
            "1",
        ]))
        .unwrap();
        // Capacity 1: `b` (tighter) displaces `a`; `c` (loosest) is shed
        // outright; only `b` reaches certification.
        assert!(
            out.contains("SHED    a: displaced by a tighter-deadline admit"),
            "{out}"
        );
        assert!(
            out.contains("SHED    c: queue full; deadline looser than all queued admits"),
            "{out}"
        );
        assert!(out.contains("ADMIT   b: certified"), "{out}");
        assert!(out.contains("2 shed(s)"), "{out}");
    }

    #[test]
    fn serve_usage_errors_exit_2() {
        let p = sample_file();
        // No --script at all.
        let err = run(&args(&["serve", p.to_str().unwrap()])).unwrap_err();
        assert_eq!(err.code, EXIT_USAGE);
        // A script line the grammar rejects.
        let script = write_script("serve-bad.txt", "admit x route L0 bucket 1 1/8\n");
        let err = run(&args(&[
            "serve",
            p.to_str().unwrap(),
            "--script",
            script.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert_eq!(err.code, EXIT_USAGE);
        assert!(err.message.contains("deadline"), "{}", err.message);
        // An unknown server name.
        let script = write_script(
            "serve-bad-server.txt",
            "admit x route L9 bucket 1 1/8 deadline 5\n",
        );
        let err = run(&args(&[
            "serve",
            p.to_str().unwrap(),
            "--script",
            script.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert_eq!(err.code, EXIT_USAGE);
        assert!(err.message.contains("unknown server"), "{}", err.message);
    }

    #[test]
    fn chaos_rejects_bad_options() {
        let err = run(&args(&["chaos", "--scenarios", "not-a-number"])).unwrap_err();
        assert_eq!(err.code, EXIT_USAGE);
        let err = run(&args(&["chaos", "--bogus"])).unwrap_err();
        assert_eq!(err.code, EXIT_USAGE);
    }

    #[test]
    fn analyze_single_algorithm() {
        let p = sample_file();
        let out = run(&args(&[
            "analyze",
            p.to_str().unwrap(),
            "--algo",
            "integrated",
        ]))
        .unwrap();
        assert!(out.contains("[integrated]"));
        assert!(!out.contains("[decomposed]"));
    }

    #[test]
    fn backlog_lists_every_server() {
        let p = sample_file();
        let out = run(&args(&["backlog", p.to_str().unwrap()])).unwrap();
        assert!(out.contains("L0"));
        assert!(out.contains("L1"));
    }

    #[test]
    fn simulate_reports_ok() {
        let p = sample_file();
        let out = run(&args(&[
            "simulate",
            p.to_str().unwrap(),
            "--ticks",
            "2048",
            "--seed",
            "7",
        ]))
        .unwrap();
        assert!(out.contains("conn0"));
        assert!(out.contains("ok"));
        assert!(!out.contains("VIOLATION"));
    }

    #[test]
    fn bad_inputs_fail_cleanly() {
        assert!(run(&args(&["analyze", "/nonexistent.dnc"])).is_err());
        assert!(run(&args(&["frobnicate"])).is_err());
        assert!(run(&args(&[])).is_err());
        let p = sample_file();
        assert!(run(&args(&["analyze", p.to_str().unwrap(), "--algo", "magic"])).is_err());
    }

    #[test]
    fn help_prints_usage() {
        let out = run(&args(&["help"])).unwrap();
        assert!(out.contains("usage: dnc"));
    }

    fn ring_file() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("dnc_cli_ring_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ring.dnc");
        std::fs::write(
            &path,
            "\
server r0 rate 1
server r1 rate 1
server r2 rate 1
flow f0 route r0 r1 bucket 1 1/8 peak 1
flow f1 route r1 r2 bucket 1 1/8 peak 1
flow f2 route r2 r0 bucket 1 1/8 peak 1
",
        )
        .unwrap();
        path
    }

    #[test]
    fn cyclic_file_is_checked_and_analyzed() {
        let p = ring_file();
        let out = run(&args(&["check", p.to_str().unwrap()])).unwrap();
        assert!(out.contains("CYCLIC"));
        // `analyze` with the default routes through the resilient chain,
        // which answers via time-stopping at the decomposed tier.
        let out = run(&args(&["analyze", p.to_str().unwrap()])).unwrap();
        assert!(out.contains("[time-stopping]"));
        assert!(out.contains("answered at tier decomposed"), "{out}");
        assert!(out.contains("integrated: inapplicable"), "{out}");
        // Feedforward-only algorithms are refused with a clear message.
        let err = run(&args(&[
            "analyze",
            p.to_str().unwrap(),
            "--algo",
            "integrated",
        ]))
        .unwrap_err();
        assert!(err.message.contains("cyclic"));
    }

    #[test]
    fn resilient_algo_on_feedforward_reports_tier() {
        let p = sample_file();
        let out = run(&args(&[
            "analyze",
            p.to_str().unwrap(),
            "--algo",
            "resilient",
        ]))
        .unwrap();
        assert!(out.contains("answered at tier integrated"), "{out}");
        assert!(out.contains("[integrated]"), "{out}");
    }

    #[test]
    fn diverging_ring_exits_with_no_bound_code() {
        // 5-ring with full-circumference flows past the time-stopping
        // amplification threshold: the chain must end at the explicit
        // Unbounded tier with its dedicated exit code.
        let dir = std::env::temp_dir().join(format!("dnc_cli_heavy_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("heavy-ring.dnc");
        let mut text = String::new();
        for i in 0..5 {
            text.push_str(&format!("server r{i} rate 1\n"));
        }
        for k in 0..5u32 {
            let route: Vec<String> = (0..5).map(|j| format!("r{}", (k + j) % 5)).collect();
            text.push_str(&format!(
                "flow f{k} route {} bucket 2 3/20\n",
                route.join(" ")
            ));
        }
        std::fs::write(&path, text).unwrap();
        let err = run(&args(&["analyze", path.to_str().unwrap()])).unwrap_err();
        assert_eq!(err.code, EXIT_NO_BOUND);
        assert!(err.message.contains("no valid bound"), "{}", err.message);
        assert!(err.message.contains("decomposed"), "{}", err.message);
    }

    #[test]
    fn provision_allocates_reservations() {
        let dir = std::env::temp_dir().join(format!("dnc_cli_prov_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("prov.dnc");
        std::fs::write(
            &path,
            "\
server core rate 2 gps
flow video route core bucket 8 1/8 peak 1 deadline 20
flow voice route core bucket 1 1/16 peak 1 deadline 8
",
        )
        .unwrap();
        let out = run(&args(&["provision", path.to_str().unwrap()])).unwrap();
        assert!(out.contains("video"));
        assert!(out.contains("voice"));
        assert!(out.contains("reserve"), "at least one allocation: {out}");
        assert!(!out.contains("INFEASIBLE"), "both must fit: {out}");
        // A FIFO-only file is rejected with a clear message.
        let fifo = dir.join("fifo.dnc");
        std::fs::write(
            &fifo,
            "server a rate 1\nflow f route a bucket 1 1/8 deadline 5\n",
        )
        .unwrap();
        assert!(run(&args(&["provision", fifo.to_str().unwrap()])).is_err());
    }

    #[test]
    fn tandem_generator_round_trips() {
        // Generate the paper tandem, parse it back, and verify it matches
        // the builder exactly (same bounds).
        use dnc_net::builders::{tandem, TandemOptions};
        let text = run(&args(&["tandem", "4", "3/5"])).unwrap();
        let spec = crate::parse::parse_spec(&text).unwrap();
        let built = spec.build().unwrap();
        built.net.validate().unwrap();
        let t = tandem(4, Rat::ONE, Rat::new(3, 20), TandemOptions::default());
        let from_file = Integrated::paper().analyze(&built.net).unwrap();
        let from_builder = Integrated::paper().analyze(&t.net).unwrap();
        let conn0 = spec.flow_id("conn0").unwrap();
        assert_eq!(from_file.bound(conn0), from_builder.bound(t.conn0));
    }

    #[test]
    fn profile_compares_all_algorithms() {
        let p = sample_file();
        let out = run(&args(&["profile", p.to_str().unwrap()])).unwrap();
        assert!(out.contains("service-curve"));
        assert!(out.contains("decomposed"));
        assert!(out.contains("integrated"));
        assert!(out.contains("vs best"));
        // Exactly one algorithm is the 1.00x baseline (or all tie).
        assert!(out.contains("1.00x"), "{out}");
    }

    #[test]
    fn profile_cyclic_uses_time_stopping() {
        let p = ring_file();
        let out = run(&args(&["profile", p.to_str().unwrap()])).unwrap();
        assert!(out.contains("(cyclic)"));
        assert!(out.contains("time-stopping"));
        assert!(out.contains("iters="), "{out}");
    }

    #[test]
    fn profile_writes_valid_metrics_and_trace() {
        let p = sample_file();
        let dir = p.parent().unwrap().to_path_buf();
        let metrics = dir.join("profile-metrics.json");
        let trace = dir.join("profile-trace.json");
        let out = run(&args(&[
            "profile",
            p.to_str().unwrap(),
            "--metrics",
            metrics.to_str().unwrap(),
            "--trace",
            trace.to_str().unwrap(),
        ]))
        .unwrap();
        assert_eq!(out.matches("wrote ").count(), 2, "{out}");
        let mjson = std::fs::read_to_string(&metrics).unwrap();
        dnc_telemetry::schema::validate_metrics(&mjson).unwrap();
        assert!(mjson.contains("\"profile.algorithms\""));
        assert!(mjson.contains("integrated"));
        let tjson = std::fs::read_to_string(&trace).unwrap();
        dnc_telemetry::schema::validate_trace(&tjson).unwrap();
        if dnc_telemetry::enabled() {
            assert!(mjson.contains("integrated/algo.integrated"));
            assert!(tjson.contains("algo.decomposed"));
        }
    }

    #[test]
    fn analyze_metrics_flag_writes_valid_json() {
        let p = sample_file();
        let dir = p.parent().unwrap().to_path_buf();
        let metrics = dir.join("analyze-metrics.json");
        run(&args(&[
            "analyze",
            p.to_str().unwrap(),
            "--algo",
            "integrated",
            "--metrics",
            metrics.to_str().unwrap(),
        ]))
        .unwrap();
        let mjson = std::fs::read_to_string(&metrics).unwrap();
        dnc_telemetry::schema::validate_metrics(&mjson).unwrap();
        assert!(mjson.contains("integrated/conn0"));
    }

    #[test]
    fn profile_rejects_unknown_option() {
        let p = sample_file();
        assert!(run(&args(&["profile", p.to_str().unwrap(), "--bogus"])).is_err());
        assert!(run(&args(&["profile", p.to_str().unwrap(), "--metrics"])).is_err());
    }

    #[test]
    fn tandem_generator_rejects_bad_params() {
        assert!(run(&args(&["tandem", "0", "1/2"])).is_err());
        assert!(run(&args(&["tandem", "4", "1"])).is_err());
        assert!(run(&args(&["tandem", "4"])).is_err());
    }
}
