//! Parser for the `.dnc` network-description format.

use dnc_net::{Discipline, Flow, FlowId, Network, Server};
use dnc_num::Rat;
use dnc_traffic::{TokenBucket, TrafficSpec};
use std::collections::HashMap;
use std::fmt;

/// A parsed description, convertible into a [`Network`].
#[derive(Clone, Debug, Default)]
pub struct NetworkSpec {
    /// Declared servers in file order.
    pub servers: Vec<ServerDecl>,
    /// Declared flows in file order.
    pub flows: Vec<FlowDecl>,
}

/// One `server` line.
#[derive(Clone, Debug)]
pub struct ServerDecl {
    /// Server name.
    pub name: String,
    /// Service rate in cells/tick.
    pub rate: Rat,
    /// Scheduling discipline.
    pub discipline: Discipline,
}

/// One `flow` line.
#[derive(Clone, Debug)]
pub struct FlowDecl {
    /// Flow name.
    pub name: String,
    /// Route as server names.
    pub route: Vec<String>,
    /// Token buckets `(σ, ρ)`.
    pub buckets: Vec<(Rat, Rat)>,
    /// Optional peak-rate cap.
    pub peak: Option<Rat>,
    /// Priority (for `sp` servers).
    pub priority: u8,
    /// GPS rate reservation applied at every `gps` hop (defaults to the
    /// flow's sustained rate).
    pub reserve: Option<Rat>,
    /// EDF local deadline applied at every `edf` hop.
    pub local_deadline: Option<Rat>,
    /// Optional end-to-end deadline.
    pub deadline: Option<Rat>,
}

/// Parse error with a line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

fn parse_rat(tok: &str, line: usize, what: &str) -> Result<Rat, ParseError> {
    tok.parse::<Rat>().map_err(|_| {
        err(
            line,
            format!("invalid {what} {tok:?} (expected e.g. 3, 1/4, 0.25)"),
        )
    })
}

/// Parse a full `.dnc` document.
pub fn parse_spec(input: &str) -> Result<NetworkSpec, ParseError> {
    let mut spec = NetworkSpec::default();
    for (idx, raw) in input.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        match toks[0] {
            "server" => spec.servers.push(parse_server(&toks, line_no)?),
            "flow" => spec.flows.push(parse_flow(&toks, line_no)?),
            other => {
                return Err(err(
                    line_no,
                    format!("unknown directive {other:?} (expected `server` or `flow`)"),
                ))
            }
        }
    }
    Ok(spec)
}

fn parse_server(toks: &[&str], line: usize) -> Result<ServerDecl, ParseError> {
    // server <name> rate <rat> [fifo|sp]
    if toks.len() < 4 || toks[2] != "rate" {
        return Err(err(line, "usage: server <name> rate <rat> [fifo|sp]"));
    }
    const RESERVED: [&str; 7] = [
        "bucket", "peak", "prio", "deadline", "reserve", "ldl", "route",
    ];
    if RESERVED.contains(&toks[1]) {
        return Err(err(
            line,
            format!("server name {:?} collides with a flow keyword", toks[1]),
        ));
    }
    let rate = parse_rat(toks[3], line, "rate")?;
    if !rate.is_positive() {
        return Err(err(line, "server rate must be positive"));
    }
    let discipline = match toks.get(4) {
        None | Some(&"fifo") => Discipline::Fifo,
        Some(&"sp") => Discipline::StaticPriority,
        Some(&"gps") => Discipline::Gps,
        Some(&"edf") => Discipline::Edf,
        Some(other) => {
            return Err(err(
                line,
                format!("unknown discipline {other:?} (expected fifo, sp, gps, or edf)"),
            ))
        }
    };
    if toks.len() > 5 {
        return Err(err(
            line,
            format!("unexpected trailing token {:?}", toks[5]),
        ));
    }
    Ok(ServerDecl {
        name: toks[1].to_string(),
        rate,
        discipline,
    })
}

/// Parse one flow-shaped token line (`toks[1]` = name, `toks[2]` must be
/// `route`). Shared with the `serve` script parser, whose `admit` lines
/// use the same grammar under a different leading keyword.
pub(crate) fn parse_flow(toks: &[&str], line: usize) -> Result<FlowDecl, ParseError> {
    // flow <name> route <s>... bucket <σ> <ρ> [bucket ...] [peak <r>]
    //      [prio <n>] [deadline <rat>]
    if toks.len() < 3 || toks[2] != "route" {
        return Err(err(
            line,
            "usage: flow <name> route <server>... bucket <σ> <ρ> [peak <r>] [prio <n>] [deadline <d>]",
        ));
    }
    let mut decl = FlowDecl {
        name: toks[1].to_string(),
        route: Vec::new(),
        buckets: Vec::new(),
        peak: None,
        priority: 0,
        reserve: None,
        local_deadline: None,
        deadline: None,
    };
    let mut i = 3;
    // Route servers until the next keyword.
    while i < toks.len()
        && !matches!(
            toks[i],
            "bucket" | "peak" | "prio" | "deadline" | "reserve" | "ldl"
        )
    {
        decl.route.push(toks[i].to_string());
        i += 1;
    }
    if decl.route.is_empty() {
        return Err(err(line, "flow route is empty"));
    }
    while i < toks.len() {
        match toks[i] {
            "bucket" => {
                if i + 2 >= toks.len() {
                    return Err(err(line, "bucket needs two arguments: <σ> <ρ>"));
                }
                let sigma = parse_rat(toks[i + 1], line, "bucket σ")?;
                let rho = parse_rat(toks[i + 2], line, "bucket ρ")?;
                if sigma.is_negative() || rho.is_negative() {
                    return Err(err(line, "bucket parameters must be non-negative"));
                }
                decl.buckets.push((sigma, rho));
                i += 3;
            }
            "peak" => {
                if i + 1 >= toks.len() {
                    return Err(err(line, "peak needs an argument"));
                }
                let p = parse_rat(toks[i + 1], line, "peak")?;
                if !p.is_positive() {
                    return Err(err(line, "peak must be positive"));
                }
                decl.peak = Some(p);
                i += 2;
            }
            "prio" => {
                if i + 1 >= toks.len() {
                    return Err(err(line, "prio needs an argument"));
                }
                decl.priority = toks[i + 1]
                    .parse()
                    .map_err(|_| err(line, format!("invalid priority {:?}", toks[i + 1])))?;
                i += 2;
            }
            "deadline" => {
                if i + 1 >= toks.len() {
                    return Err(err(line, "deadline needs an argument"));
                }
                decl.deadline = Some(parse_rat(toks[i + 1], line, "deadline")?);
                i += 2;
            }
            "reserve" => {
                if i + 1 >= toks.len() {
                    return Err(err(line, "reserve needs an argument"));
                }
                let r = parse_rat(toks[i + 1], line, "reserve")?;
                if !r.is_positive() {
                    return Err(err(line, "reservation must be positive"));
                }
                decl.reserve = Some(r);
                i += 2;
            }
            "ldl" => {
                if i + 1 >= toks.len() {
                    return Err(err(line, "ldl needs an argument"));
                }
                let d = parse_rat(toks[i + 1], line, "local deadline")?;
                if !d.is_positive() {
                    return Err(err(line, "local deadline must be positive"));
                }
                decl.local_deadline = Some(d);
                i += 2;
            }
            other => return Err(err(line, format!("unexpected token {other:?}"))),
        }
    }
    if decl.buckets.is_empty() {
        return Err(err(line, "flow needs at least one `bucket <σ> <ρ>`"));
    }
    Ok(decl)
}

/// A spec lowered into an analyzable network plus name/deadline tables.
#[derive(Clone, Debug)]
pub struct BuiltNetwork {
    /// The network.
    pub net: Network,
    /// Flow deadlines by id.
    pub deadlines: Vec<Option<Rat>>,
}

impl NetworkSpec {
    /// Lower into a [`Network`]; resolves server names and reports
    /// unknown references.
    pub fn build(&self) -> Result<BuiltNetwork, String> {
        let mut net = Network::new();
        let mut by_name: HashMap<&str, dnc_net::ServerId> = HashMap::new();
        for s in &self.servers {
            if by_name.contains_key(s.name.as_str()) {
                return Err(format!("duplicate server name {:?}", s.name));
            }
            let id = net.add_server(Server {
                name: s.name.clone(),
                rate: s.rate,
                discipline: s.discipline,
            });
            by_name.insert(&s.name, id);
        }
        let mut deadlines = Vec::with_capacity(self.flows.len());
        for f in &self.flows {
            let route =
                f.route
                    .iter()
                    .map(|n| {
                        by_name.get(n.as_str()).copied().ok_or_else(|| {
                            format!("flow {:?} references unknown server {n:?}", f.name)
                        })
                    })
                    .collect::<Result<Vec<_>, _>>()?;
            let buckets = f
                .buckets
                .iter()
                .map(|&(s, r)| TokenBucket::new(s, r))
                .collect();
            let spec = TrafficSpec::new(buckets, f.peak);
            let id = net
                .add_flow(Flow {
                    name: f.name.clone(),
                    spec,
                    route: route.clone(),
                    priority: f.priority,
                })
                .map_err(|e| format!("flow {:?}: {e}", f.name))?;
            if let Some(r) = f.reserve {
                for &s in &route {
                    if net.server(s).discipline == Discipline::Gps {
                        net.reserve(id, s, r);
                    }
                }
            }
            if let Some(d) = f.local_deadline {
                for &s in &route {
                    if net.server(s).discipline == Discipline::Edf {
                        net.set_local_deadline(id, s, d);
                    }
                }
            }
            deadlines.push(f.deadline);
        }
        Ok(BuiltNetwork { net, deadlines })
    }

    /// Find a flow id by name (after [`NetworkSpec::build`]).
    pub fn flow_id(&self, name: &str) -> Option<FlowId> {
        self.flows.iter().position(|f| f.name == name).map(FlowId)
    }

    /// Serialize back to the `.dnc` text format
    /// (`parse_spec(spec.to_dnc())` round-trips).
    pub fn to_dnc(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for s in &self.servers {
            let disc = match s.discipline {
                Discipline::Fifo => "fifo",
                Discipline::StaticPriority => "sp",
                Discipline::Gps => "gps",
                Discipline::Edf => "edf",
            };
            let _ = writeln!(out, "server {} rate {} {}", s.name, s.rate, disc);
        }
        for f in &self.flows {
            let _ = write!(out, "flow {} route {}", f.name, f.route.join(" "));
            for (sigma, rho) in &f.buckets {
                let _ = write!(out, " bucket {sigma} {rho}");
            }
            if let Some(p) = f.peak {
                let _ = write!(out, " peak {p}");
            }
            if f.priority != 0 {
                let _ = write!(out, " prio {}", f.priority);
            }
            if let Some(r) = f.reserve {
                let _ = write!(out, " reserve {r}");
            }
            if let Some(d) = f.local_deadline {
                let _ = write!(out, " ldl {d}");
            }
            if let Some(d) = f.deadline {
                let _ = write!(out, " deadline {d}");
            }
            let _ = writeln!(out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnc_num::{int, rat};

    const SAMPLE: &str = "\
# two-hop sample
server L0 rate 1 fifo
server L1 rate 1
flow conn0 route L0 L1 bucket 1 1/4 peak 1 prio 1 deadline 12
flow cross route L0 bucket 2 0.125
";

    #[test]
    fn parses_sample() {
        let spec = parse_spec(SAMPLE).unwrap();
        assert_eq!(spec.servers.len(), 2);
        assert_eq!(spec.flows.len(), 2);
        assert_eq!(spec.servers[0].rate, int(1));
        assert_eq!(spec.flows[0].buckets, vec![(int(1), rat(1, 4))]);
        assert_eq!(spec.flows[0].peak, Some(int(1)));
        assert_eq!(spec.flows[0].priority, 1);
        assert_eq!(spec.flows[0].deadline, Some(int(12)));
        assert_eq!(spec.flows[1].buckets, vec![(int(2), rat(1, 8))]);
        assert_eq!(spec.flows[1].deadline, None);
    }

    #[test]
    fn builds_network() {
        let built = parse_spec(SAMPLE).unwrap().build().unwrap();
        assert_eq!(built.net.servers().len(), 2);
        assert_eq!(built.net.flows().len(), 2);
        built.net.validate().unwrap();
        assert_eq!(built.deadlines[0], Some(int(12)));
    }

    #[test]
    fn error_reports_line_numbers() {
        let e = parse_spec("server a rate 1\nbogus x\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("unknown directive"));
        let e = parse_spec("server a rate 0\n").unwrap_err();
        assert!(e.message.contains("positive"));
        let e = parse_spec("flow f route a\n").unwrap_err();
        assert!(e.message.contains("bucket"));
        let e = parse_spec("server a rate 1 lifo\n").unwrap_err();
        assert!(e.message.contains("discipline"));
        let e = parse_spec("server peak rate 1\n").unwrap_err();
        assert!(e.message.contains("collides"));
    }

    #[test]
    fn unknown_server_reference() {
        let spec = parse_spec("server a rate 1\nflow f route ghost bucket 1 1/8\n").unwrap();
        let e = spec.build().unwrap_err();
        assert!(e.contains("unknown server"));
    }

    #[test]
    fn duplicate_server_rejected() {
        let spec = parse_spec("server a rate 1\nserver a rate 2\n").unwrap();
        assert!(spec.build().unwrap_err().contains("duplicate"));
    }

    #[test]
    fn multi_bucket_flow() {
        let spec =
            parse_spec("server a rate 1\nflow f route a bucket 10 1/8 bucket 2 1/2 peak 1\n")
                .unwrap();
        assert_eq!(spec.flows[0].buckets.len(), 2);
        let built = spec.build().unwrap();
        assert!(built.net.flows()[0].spec.arrival_curve().is_concave());
    }

    #[test]
    fn sp_discipline_parses() {
        let spec = parse_spec("server s rate 2 sp\n").unwrap();
        assert_eq!(spec.servers[0].discipline, Discipline::StaticPriority);
    }
}
