//! The `dnc` binary: thin wrapper over [`dnc_cli::commands::run`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dnc_cli::commands::run(&args) {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("{}", e.message);
            std::process::exit(e.code);
        }
    }
}
