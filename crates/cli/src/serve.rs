//! `dnc serve` — drive the durable churn engine from a request script.
//!
//! The script is line-oriented (`#` comments), one request per line:
//!
//! ```text
//! admit <name> route <server>... bucket <σ> <ρ> [bucket ...]
//!       [peak <r>] [prio <n>] deadline <d>
//! release <name>
//! query [<name>]
//! ```
//!
//! `admit` lines share the `.dnc` flow grammar (same keywords, server
//! *names* resolved against the network file). All requests are fed
//! through the engine's bounded shed queue first — so overload behavior
//! is observable with scripts longer than `--queue` — then drained in
//! FIFO order, one answer line per request.
//!
//! With `--journal <path>`, committed operations are written ahead of
//! acknowledgment; re-running `dnc serve` against an existing journal
//! first **recovers** the committed state (truncating any torn tail)
//! and then applies the script on top.

use crate::commands::CliError;
use crate::parse::{self, FlowDecl, ParseError};
use dnc_core::admission::Deadline;
use dnc_net::{Network, ServerId};
use dnc_service::{AdmitRequest, ChurnEngine, EngineConfig, Request, Response};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Options for one `dnc serve` run.
pub struct ServeOptions {
    /// The `.dnc` network file (base topology + pre-existing flows).
    pub network: String,
    /// The request script.
    pub script: String,
    /// Write-ahead journal path (`None` = volatile engine).
    pub journal: Option<String>,
    /// Bound on the pending-request queue.
    pub queue: usize,
    /// Analysis worker threads per certification (1 = sequential).
    pub workers: usize,
}

/// Parse the script into requests, resolving server names via `names`.
fn parse_script(text: &str, names: &HashMap<String, ServerId>) -> Result<Vec<Request>, ParseError> {
    let mut requests = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        let bad = |m: String| ParseError {
            line: line_no,
            message: m,
        };
        match toks.first().copied() {
            Some("admit") => {
                let decl: FlowDecl = parse::parse_flow(&toks, line_no)?;
                if decl.reserve.is_some() || decl.local_deadline.is_some() {
                    return Err(bad(
                        "admit does not take `reserve`/`ldl` (set them in the network file)".into(),
                    ));
                }
                let Some(deadline) = decl.deadline else {
                    return Err(bad(format!(
                        "admit {:?} needs a `deadline <d>` to certify",
                        decl.name
                    )));
                };
                let route = decl
                    .route
                    .iter()
                    .map(|n| {
                        names
                            .get(n)
                            .copied()
                            .ok_or_else(|| bad(format!("unknown server {n:?}")))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                requests.push(Request::Admit(AdmitRequest {
                    name: decl.name,
                    route,
                    buckets: decl.buckets,
                    peak: decl.peak,
                    priority: decl.priority,
                    deadline,
                }));
            }
            Some("release") => match (toks.get(1), toks.len()) {
                (Some(name), 2) => requests.push(Request::Release {
                    name: (*name).to_string(),
                }),
                _ => return Err(bad("usage: release <name>".into())),
            },
            Some("query") => match toks.len() {
                1 => requests.push(Request::Query { name: None }),
                2 => requests.push(Request::Query {
                    name: toks.get(1).map(|s| (*s).to_string()),
                }),
                _ => return Err(bad("usage: query [<name>]".into())),
            },
            other => {
                return Err(bad(format!(
                    "unknown request {other:?} (expected admit, release, or query)"
                )))
            }
        }
    }
    Ok(requests)
}

fn render(out: &mut String, r: &Response) {
    match r {
        Response::Admitted {
            name,
            bound,
            deadline,
            tier,
            retried,
            ..
        } => {
            let _ = writeln!(
                out,
                "ADMIT   {name}: certified, bound {bound} <= deadline {deadline} (tier {tier}{})",
                if *retried { ", after budget retry" } else { "" }
            );
        }
        Response::Rejected { name, reason } => {
            let _ = writeln!(out, "REJECT  {name}: {reason}");
        }
        Response::Released { name } => {
            let _ = writeln!(out, "RELEASE {name}: ok, remaining set re-certified");
        }
        Response::ReleaseFailed { name, reason } => {
            let _ = writeln!(out, "RELEASE {name}: refused: {reason}");
        }
        Response::Queried { entries } => {
            let _ = writeln!(out, "QUERY   {} admitted", entries.len());
            for e in entries {
                let _ = writeln!(
                    out,
                    "        {} ({}) deadline {}",
                    e.name, e.flow, e.deadline
                );
            }
        }
        Response::Shed { name, reason } => {
            let _ = writeln!(out, "SHED    {name}: {reason}");
        }
    }
}

/// Run one scripted serve session. Rejections and sheds are normal
/// service answers (exit 0); only usage/script errors and journal
/// failures are [`CliError`]s.
pub fn serve(
    opts: &ServeOptions,
    built_net: Network,
    base_deadlines: Vec<Deadline>,
) -> Result<String, CliError> {
    let usage = |m: String| CliError {
        message: m,
        code: crate::commands::EXIT_USAGE,
    };
    let names: HashMap<String, ServerId> = built_net
        .servers()
        .iter()
        .enumerate()
        .map(|(i, s)| (s.name.clone(), ServerId(i)))
        .collect();
    let script_text = std::fs::read_to_string(&opts.script)
        .map_err(|e| usage(format!("cannot read {}: {e}", opts.script)))?;
    let requests =
        parse_script(&script_text, &names).map_err(|e| usage(format!("{}: {e}", opts.script)))?;

    let config = EngineConfig {
        queue_capacity: opts.queue,
        workers: opts.workers.max(1),
        ..EngineConfig::default()
    };
    let mut out = String::new();
    let mut engine = match &opts.journal {
        Some(journal) => {
            let (engine, info) = ChurnEngine::open(
                built_net,
                base_deadlines,
                config,
                std::path::Path::new(journal),
            )
            .map_err(|e| usage(format!("{journal}: {e}")))?;
            if let Some((defect, total)) = &info.tail {
                let _ = writeln!(
                    out,
                    "recovery: {defect} at byte {} of {total}; torn tail truncated",
                    info.valid_len
                );
            }
            if info.ops_replayed > 0 {
                let _ = writeln!(
                    out,
                    "recovery: replayed {} committed operation(s), {} connection(s) live",
                    info.ops_replayed,
                    engine.admitted().count()
                );
            }
            engine
        }
        None => ChurnEngine::new(built_net, base_deadlines, config)
            .map_err(|e| usage(format!("{}: {e}", opts.network)))?,
    };

    // Enqueue everything first so the shed policy sees the whole burst,
    // then drain FIFO.
    for req in requests {
        for shed in engine.submit(req) {
            render(&mut out, &shed);
        }
    }
    let answers = engine
        .drain()
        .map_err(|e| usage(format!("journal failure mid-drain: {e}")))?;
    for r in &answers {
        render(&mut out, r);
    }

    let stats = engine.stats();
    let _ = writeln!(
        out,
        "done: {} commit(s), {} rollback(s), {} shed(s), {} budget retr{}, {} connection(s) admitted",
        stats.commits,
        stats.rollbacks,
        stats.sheds,
        stats.retries,
        if stats.retries == 1 { "y" } else { "ies" },
        engine.admitted().count()
    );
    Ok(out)
}
